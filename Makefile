GO ?= go
DATE := $(shell date +%F)
# bench output path; override to avoid clobbering an existing snapshot taken
# the same day (e.g. make bench OUT=BENCH_$(DATE)-pr2.json).
OUT ?= BENCH_$(DATE).json

.PHONY: build test check detvet fuzz-smoke bench bench-headline bench-sweep bench-report bench-leap verify serve sweep-e2e crash-e2e fleet-e2e metrics-e2e chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build test

# check is the tier-1 gate (see ROADMAP.md): formatting, vet, detvet,
# build, tests. detvet is the in-repo determinism/hash-neutrality linter
# (see DESIGN.md "Static analysis"); a finding fails the gate.
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/detvet ./...
	$(GO) build ./...
	$(GO) test ./...

# detvet runs the determinism & hash-neutrality analyzers standalone
# (walltime, globalrand, maporder, journalerr, hashneutral, annotations).
detvet:
	$(GO) run ./cmd/detvet ./...

# fuzz-smoke runs the fuzzers briefly — long enough to replay the corpus
# and shake the mutator, short enough for CI: the spec-canonicalization
# fuzzer and the exact-vs-leap differential engine harness.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSpecCanonicalization -fuzztime 30s ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzLeapDifferential -fuzztime 30s ./internal/harness

# serve runs the simulation service daemon (see examples/radiod/README.md
# for the API quickstart; ADDR overrides the listen address).
ADDR ?= :8080
serve:
	$(GO) run ./cmd/radiod -addr $(ADDR)

# bench runs the full benchmark suite at quick scale (one iteration count,
# memory stats) and records the run as a BENCH_<date>.json snapshot so the
# perf trajectory is tracked in-repo. The snapshot splits the setup path
# (BuildScenario benchmarks in internal/expr) from the run path.
# internal/gen's BenchmarkAssemble (grid vs retained all-pairs reference) is
# deliberately excluded: it exists for on-demand scaling comparisons and
# would add an O(n²) reference sweep to every snapshot run.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=1 . ./internal/sim ./internal/expr \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchtool -out $(OUT)

# bench-sweep snapshots the sweep/durability layer: sweep expansion and
# the persistent store round trip (see BENCH_<date>-sweep.json).
bench-sweep:
	$(GO) test -run '^$$' -bench='BenchmarkSweepExpand|BenchmarkStoreRoundTrip' -benchmem -count=1 \
		./internal/scenario ./internal/store \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchtool -out BENCH_$(DATE)-sweep.json

# bench-leap snapshots the exact-vs-leap engine comparison: the distilled
# quiet-phase pair (the acceptance ratio) plus full-MIS end-to-end pairs
# (see BENCH_<date>-leap.json). Single-core-CI caveat: only the exact/leap
# ratio measured on one machine is meaningful, not absolute ns/op.
bench-leap:
	$(GO) test -run '^$$' -bench='BenchmarkLeapVsExact' -benchmem -count=1 \
		./internal/sim \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchtool -out BENCH_$(DATE)-leap.json

# bench-report snapshots the streaming-reduction and report layer: the
# trial reducer, the quantile-sketch accumulator, and the sweep pivot
# (see BENCH_<date>-report.json).
bench-report:
	$(GO) test -run '^$$' -bench='BenchmarkReducer|BenchmarkAccumulator|BenchmarkBuildReport' -benchmem -count=1 \
		./internal/scenario ./internal/stats ./internal/report \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchtool -out BENCH_$(DATE)-report.json

# sweep-e2e runs the daemon restart / durability check CI runs (boots a
# real radiod against a temp -data dir; see scripts/sweep_e2e.sh).
sweep-e2e:
	sh scripts/sweep_e2e.sh

# crash-e2e kills a real radiod with SIGKILL mid-sweep, restarts it on the
# same -data dir, and asserts the journal-resumed sweep's CSV report is
# byte-identical to an uninterrupted run's (see scripts/crash_e2e.sh).
crash-e2e:
	sh scripts/crash_e2e.sh

# fleet-e2e runs a coordinator plus two worker processes, kills one with
# SIGKILL while it holds a lease, and asserts the re-dispatched sweep's
# CSV report is byte-identical to a single-node run's (see
# scripts/fleet_e2e.sh).
fleet-e2e:
	sh scripts/fleet_e2e.sh

# metrics-e2e boots a real radiod, runs the mis-quick preset twice (miss
# then cache hit) and a 2x2 sweep, lints the /metrics exposition with
# cmd/promlint, and asserts cache counters, latency-histogram sums, phase
# monotonicity, and the per-sweep stats rollup (see scripts/metrics_e2e.sh).
metrics-e2e:
	sh scripts/metrics_e2e.sh

# chaos reruns the crash e2e under the stock chaos fault spec: injected
# transient trial errors and panics (plus delays) that retry and panic
# isolation must absorb without changing the final report.
chaos:
	FAULT_SPEC=scripts/chaos_fault.json sh scripts/crash_e2e.sh

# bench-headline runs only the acceptance benchmarks (E1/E3/E8 + setup).
bench-headline:
	$(GO) test -run '^$$' -bench='BenchmarkE1MISScaling|BenchmarkE3CCDSRounds|BenchmarkE8AsyncMIS' \
		-benchmem -count=1 .
	$(GO) test -run '^$$' -bench='BenchmarkBuildScenario' -benchmem -count=1 ./internal/expr
