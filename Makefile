GO ?= go
DATE := $(shell date +%F)

.PHONY: build test bench bench-headline verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build test

# bench runs the full benchmark suite at quick scale (one iteration count,
# memory stats) and records the run as a BENCH_<date>.json snapshot so the
# perf trajectory is tracked in-repo.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=1 . ./internal/sim \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchtool -out BENCH_$(DATE).json

# bench-headline runs only the acceptance benchmarks (E1/E3/E8).
bench-headline:
	$(GO) test -run '^$$' -bench='BenchmarkE1MISScaling|BenchmarkE3CCDSRounds|BenchmarkE8AsyncMIS' \
		-benchmem -count=1 .
