// Wakeup: asynchronous deployments. Sensor nodes power up over several
// minutes rather than in lockstep; the Section 9 MIS variant handles this
// with per-process epochs that begin with a listening phase, and requires no
// topology knowledge at all in the classic radio model. Theorem 9.4: each
// process decides within O(log³ n) rounds of its own wake-up.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"dualradio"
)

func main() {
	const n = 128
	// Classic radio model: no unreliable links (GrayProb < 0).
	net, err := dualradio.Generate(dualradio.NetworkOptions{
		Nodes:    n,
		GrayProb: -1,
		Seed:     13,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Nodes wake over a 2000-round window.
	rng := rand.New(rand.NewPCG(13, 1))
	wake := make([]int, n)
	for v := range wake {
		wake[v] = rng.IntN(2000)
	}

	res, err := dualradio.BuildMISAsync(net, wake, true /* classic model */, dualradio.RunOptions{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}

	var worst, total int
	for _, l := range res.Latency {
		total += l
		if l > worst {
			worst = l
		}
	}
	logN := math.Log2(float64(n))
	bound := logN * logN * logN
	fmt.Printf("MIS of %d nodes built despite staggered wake-ups\n", res.Size())
	fmt.Printf("decision latency after waking: mean %.0f rounds, worst %d rounds\n",
		float64(total)/float64(n), worst)
	fmt.Printf("Theorem 9.4 scale: log³(%d) = %.0f (worst/bound = %.2f)\n",
		n, bound, float64(worst)/bound)
	fmt.Println("no process used any topology information — ids and n only")
}
