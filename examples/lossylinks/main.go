// Lossylinks: the cost of imperfect link detection. With a 0-complete
// detector (perfect classification of reliable links) the banned-list CCDS
// is fast; when the detector may include even one unreliable link per node
// (1-complete), the Section 6 algorithm must fall back to neighbor
// enumeration — and Theorem 7.1 proves nothing fundamentally faster exists:
// Ω(Δ) rounds are required.
package main

import (
	"fmt"
	"log"

	"dualradio"
)

func main() {
	const n = 96

	// Perfect detectors: banned-list CCDS.
	clean, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: n, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := dualradio.BuildCCDS(clean, dualradio.RunOptions{
		Seed:        3,
		MessageBits: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fast.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("τ=0 (perfect detector):  %6d rounds, %d CCDS members\n",
		fast.Rounds, fast.Size())

	// One mistake per node: the iterated-MIS + enumeration algorithm.
	lossy, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: n, Seed: 3, Tau: 1})
	if err != nil {
		log.Fatal(err)
	}
	slow, err := dualradio.BuildTauCCDS(lossy, dualradio.RunOptions{
		Seed:        3,
		MessageBits: 1 << 15, // Section 6 labels messages with detector sets
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := slow.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("τ=1 (one mistake/node):  %6d rounds, %d CCDS members\n",
		slow.Rounds, slow.Size())

	fmt.Printf("\nslowdown from a single detector mistake: x%.1f\n",
		float64(slow.Rounds)/float64(fast.Rounds))
	fmt.Println("(Theorem 7.1: with 1-complete detectors, Ω(Δ) rounds are unavoidable,")
	fmt.Println(" no matter the message size — the separation grows linearly with Δ.)")

	// Both algorithms run on fixed global schedules, so the separation at
	// scale can be predicted exactly: τ=0 stays near-polylog while τ=1
	// grows linearly with Δ.
	fmt.Println("\npredicted schedule lengths at n=4096, b=4096:")
	fmt.Println("     Δ     τ=0 rounds   τ=1 rounds   separation")
	for _, delta := range []int{256, 1024, 4096} {
		t0, err := dualradio.CCDSRounds(4096, delta, 4096)
		if err != nil {
			log.Fatal(err)
		}
		t1, err := dualradio.TauCCDSRounds(4096, delta, 4096, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d   %10d   %10d   x%.1f\n", delta, t0, t1, float64(t1)/float64(t0))
	}
}
