// Dynamic: long-lived networks where link quality changes. The link
// detector service starts out fooled by bursty gray-zone links (two
// misclassified links per node) and stabilizes mid-execution; the Section 8
// continuous CCDS reruns the construction every δ_CDS rounds and its
// committed outputs solve the CCDS problem within two periods of
// stabilization (Theorem 8.1).
package main

import (
	"fmt"
	"log"

	"dualradio"
)

func main() {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 96, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	const bits = 512
	period, err := dualradio.CCDSRounds(net.N(), net.Delta(), bits)
	if err != nil {
		log.Fatal(err)
	}
	stabilize := period + period/2 // links settle mid-second-period
	deadline := stabilize + 2*period
	fmt.Printf("δ_CDS = %d rounds; detector stabilizes at round %d\n", period, stabilize)
	fmt.Printf("Theorem 8.1 deadline: round %d (stabilize + 2·δ_CDS)\n", deadline)

	res, err := dualradio.BuildContinuousCCDS(net,
		2,         // mistakes per node before stabilization
		stabilize, // stabilization round
		5,         // periods to simulate
		[]int{stabilize, deadline},
		dualradio.RunOptions{Seed: 11, MessageBits: bits},
	)
	if err != nil {
		log.Fatal(err)
	}

	if err := res.VerifyAt(stabilize); err != nil {
		fmt.Printf("at stabilization (round %d): not yet solved — %v\n", stabilize, err)
	} else {
		fmt.Printf("at stabilization (round %d): already solved\n", stabilize)
	}
	if err := res.VerifyAt(deadline); err != nil {
		log.Fatalf("at deadline (round %d): STILL NOT SOLVED: %v", deadline, err)
	}
	fmt.Printf("at deadline (round %d): CCDS conditions hold — Theorem 8.1 confirmed\n", deadline)
}
