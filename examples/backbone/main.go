// Backbone: the paper's Section 1 motivation in action. A sensor network
// disseminates readings network-wide; routing over the CCDS backbone needs
// a fraction of the transmissions full flooding would, while the
// constant-bounded condition keeps every node's backbone load constant.
package main

import (
	"fmt"
	"log"

	"dualradio"
)

func main() {
	net, err := dualradio.Generate(dualradio.NetworkOptions{
		Nodes:        192,
		TargetDegree: 20,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := dualradio.BuildCCDS(net, dualradio.RunOptions{
		Seed:        7,
		MessageBits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone: %d of %d nodes, built in %d rounds\n",
		res.Size(), net.N(), res.Rounds)

	// Disseminate from several sources and account transmissions.
	var floodTotal, backboneTotal int
	sources := []int{0, net.N() / 3, 2 * net.N() / 3}
	for _, src := range sources {
		flood, backbone, err := dualradio.BroadcastCost(net, res, src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  source %3d: flooding %d tx, backbone %d tx\n", src, flood, backbone)
		floodTotal += flood
		backboneTotal += backbone
	}
	fmt.Printf("total: %d vs %d transmissions (%.0f%% saved)\n",
		floodTotal, backboneTotal,
		100*(1-float64(backboneTotal)/float64(floodTotal)))
	fmt.Printf("max backbone neighbors of any node: %d (constant-bounded)\n",
		res.MaxBackboneDegree())
}
