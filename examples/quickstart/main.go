// Quickstart: generate a dual graph radio network, build a constant-degree
// connected dominating set with the paper's banned-list algorithm, and
// verify the Section 3 CCDS conditions.
package main

import (
	"fmt"
	"log"

	"dualradio"
)

func main() {
	// A 128-node random geometric network: reliable links within unit
	// distance, unreliable gray-zone links up to distance 2, perfect
	// (0-complete) link detectors.
	net, err := dualradio.Generate(dualradio.NetworkOptions{
		Nodes: 128,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, Δ=%d, %d unreliable links\n",
		net.N(), net.Delta(), net.UnreliableEdges())

	// Build the CCDS against the collision-seeking adversary with 512-bit
	// messages. Theorem 5.3: O(Δ·log²n/b + log³n) rounds w.h.p.
	res, err := dualradio.BuildCCDS(net, dualradio.RunOptions{
		Seed:        42,
		MessageBits: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CCDS built in %d rounds: %d members, max backbone degree %d\n",
		res.Rounds, res.Size(), res.MaxBackboneDegree())

	// Check connectivity, domination, and the constant-bounded condition.
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all CCDS conditions verified")

	for v := 0; v < net.N(); v++ {
		if res.Outputs[v] == 1 && v < 8 {
			fmt.Printf("  node %d (process %d) is in the backbone\n", v, net.ProcessID(v))
		}
	}
}
