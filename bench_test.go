package dualradio_test

// The benchmark harness regenerates every reproduction table (E1–E15, see
// DESIGN.md for the theorem → experiment index). Each benchmark runs one
// full experiment per iteration at quick scale and reports its headline
// metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's claims end to end. cmd/experiments prints the same
// tables at full scale.

import (
	"testing"

	"dualradio/internal/expr"
)

func benchExperiment(b *testing.B, run func(expr.Config) (*expr.Result, error), metrics ...string) {
	b.Helper()
	cfg := expr.QuickConfig()
	var last *expr.Result
	for i := 0; i < b.N; i++ {
		res, err := run(cfg)
		if err != nil {
			b.Fatalf("experiment: %v", err)
		}
		last = res
	}
	if last != nil {
		for _, m := range metrics {
			b.ReportMetric(last.Metrics[m], m)
		}
	}
}

// BenchmarkE1MISScaling regenerates the Theorem 4.6 table: MIS
// rounds-until-decided across network sizes, with the log-power fit.
func BenchmarkE1MISScaling(b *testing.B) {
	benchExperiment(b, expr.E1MISScaling, "exponent_vs_logn")
}

// BenchmarkE2MISDensity regenerates the Corollary 4.7 table: MIS density
// within distance r versus the hexagonal overlay bound I_r.
func BenchmarkE2MISDensity(b *testing.B) {
	benchExperiment(b, expr.E2MISDensity, "max_density_r2", "bound_r2")
}

// BenchmarkE3CCDSRounds regenerates the Theorem 5.3 table: CCDS rounds over
// the (Δ, b) sweep with the small-b/large-b growth factors.
func BenchmarkE3CCDSRounds(b *testing.B) {
	benchExperiment(b, expr.E3CCDSRounds, "growth_small_b", "growth_large_b")
}

// BenchmarkE4TauCCDS regenerates the Theorem 6.2 table: τ-CCDS rounds
// growing linearly in Δ.
func BenchmarkE4TauCCDS(b *testing.B) {
	benchExperiment(b, expr.E4TauCCDS, "exponent_vs_delta")
}

// BenchmarkE5LowerBound regenerates the Theorem 7.1 table: the Ω(Δ)
// crossing time on the two-clique bridge network versus the near-flat τ=0
// round count.
func BenchmarkE5LowerBound(b *testing.B) {
	benchExperiment(b, expr.E5LowerBound, "crossing_exponent_vs_beta", "fast_exponent_vs_beta")
}

// BenchmarkE6HittingGame regenerates the Section 7 game table: Θ(β) rounds
// for the single hitting game and the Lemma 7.3 reduction.
func BenchmarkE6HittingGame(b *testing.B) {
	benchExperiment(b, expr.E6HittingGame, "random_over_beta_64")
}

// BenchmarkE7DynamicCCDS regenerates the Theorem 8.1 table: continuous CCDS
// validity at stabilization + 2·δ_CDS.
func BenchmarkE7DynamicCCDS(b *testing.B) {
	benchExperiment(b, expr.E7DynamicCCDS, "valid_fraction", "period")
}

// BenchmarkE8AsyncMIS regenerates the Theorem 9.4 table: per-process
// decision latency of the asynchronous-start MIS in the classic model.
func BenchmarkE8AsyncMIS(b *testing.B) {
	benchExperiment(b, expr.E8AsyncMIS, "exponent_vs_logn")
}

// BenchmarkE9BannedListAblation regenerates the Section 5 ablation table:
// banned-list versus naive-enumeration schedule lengths across Δ.
func BenchmarkE9BannedListAblation(b *testing.B) {
	benchExperiment(b, expr.E9BannedListAblation, "speedup_delta2048")
}

// BenchmarkE10Subroutines regenerates the Lemma 5.1 table: bounded-broadcast
// delivery rates under increasing contention.
func BenchmarkE10Subroutines(b *testing.B) {
	benchExperiment(b, expr.E10Subroutines, "delivery_k1", "delivery_k16")
}

// BenchmarkE10DirectedDecay regenerates the Lemma 5.2 table: directed-decay
// delivery across covered-set sizes.
func BenchmarkE10DirectedDecay(b *testing.B) {
	benchExperiment(b, expr.E10DirectedDecay, "delivery_k16")
}

// BenchmarkE11Backbone regenerates the Section 1 motivation table: broadcast
// transmissions over the CCDS backbone versus flooding.
func BenchmarkE11Backbone(b *testing.B) {
	benchExperiment(b, expr.E11Backbone, "tx_saving_96")
}

// BenchmarkE12ReannounceAblation regenerates the design-choice ablation
// table: one-shot announcements versus member re-announcement under the
// collision-seeking adversary.
func BenchmarkE12ReannounceAblation(b *testing.B) {
	benchExperiment(b, expr.E12ReannounceAblation, "valid_reannounce", "valid_oneshot")
}

// BenchmarkE13IncompleteDetectors regenerates the footnote-1 table:
// correctness under detectors that misclassify reliable links as unreliable.
func BenchmarkE13IncompleteDetectors(b *testing.B) {
	benchExperiment(b, expr.E13IncompleteDetectors, "mis_valid_p0.300")
}

// BenchmarkE14RadioBroadcast regenerates the in-model broadcast table:
// CCDS-backbone dissemination versus full decay flooding.
func BenchmarkE14RadioBroadcast(b *testing.B) {
	benchExperiment(b, expr.E14RadioBroadcast, "tx_saving")
}

// BenchmarkE15TauSweep regenerates the Section 10 open-problem table:
// growing τ budgets against round counts and realized CCDS degree.
func BenchmarkE15TauSweep(b *testing.B) {
	benchExperiment(b, expr.E15TauSweep, "rounds_tau4", "maxdeg_tau4")
}
