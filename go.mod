module dualradio

go 1.24.0
