// Command promlint lints a Prometheus text exposition payload (stdin or a
// file argument) against the contract internal/metrics.WriteProm promises:
// HELP/TYPE headers for every family, well-formed and escaped labels, no
// duplicate series, coherent cumulative histograms. The e2e scripts pipe
// live /metrics output through it; CI fails on any violation.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint -min-histograms 3
//	promlint -require radiod_cache_hits_total metrics.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"dualradio/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	minHistograms := flag.Int("min-histograms", 0, "fail unless at least this many histogram families are present")
	var requires multiFlag
	flag.Var(&requires, "require", "fail unless a sample line matches this regexp (repeatable)")
	flag.Parse()

	var data []byte
	var err error
	if flag.NArg() > 0 {
		data, err = os.ReadFile(flag.Arg(0))
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	stats, err := metrics.Lint(data)
	if err != nil {
		return err
	}
	if stats.Histograms < *minHistograms {
		return fmt.Errorf("%d histogram families, want >= %d", stats.Histograms, *minHistograms)
	}
	for _, req := range requires {
		re, err := regexp.Compile("(?m)" + req)
		if err != nil {
			return fmt.Errorf("bad -require %q: %w", req, err)
		}
		if !re.Match(data) {
			return fmt.Errorf("no line matches -require %q", req)
		}
	}
	fmt.Printf("ok: %d families (%d counters, %d gauges, %d histograms), %d series\n",
		stats.Families, stats.Counters, stats.Gauges, stats.Histograms, stats.Series)
	return nil
}

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
