// Command detvet is the repo's determinism lint wall: a suite of static
// analyzers that mechanically enforce the invariant every layer rests on —
// execution is a pure function of (spec, seed), so reports, cached results,
// and journal replays are byte-identical across restarts, workers, and
// crashes.
//
// Usage:
//
//	go run ./cmd/detvet [-list] [packages]
//
// With no package patterns it analyzes ./... from the current directory.
// Findings print as file:line:col: analyzer: message and a non-zero exit
// makes `make check` (and CI) fail. See the "Static analysis" section of
// DESIGN.md for each analyzer's rationale and the //detvet:<key> <reason>
// annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"dualradio/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detvet:", err)
		os.Exit(2)
	}
	diags := analysis.Analyze(pkgs, analyzers)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
