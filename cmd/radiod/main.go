// Command radiod is the long-running simulation service: it serves the
// scenario-spec HTTP API (submit jobs and parameter sweeps, poll status,
// stream NDJSON progress, list presets) over a bounded job queue and
// worker pool, with per-spec result caching keyed by the canonical spec
// hash, optional durable result storage, and cost-aware admission.
//
// Usage:
//
//	radiod                       # listen on :8080, in-memory cache only
//	radiod -data ./radiod-data   # persist results across restarts
//	radiod -addr :9000 -workers 4 -queue 128 -cache 256 -trial-workers 2
//	radiod -max-cost 8589934592  # double the admission budget
//	radiod -fault-spec faults.json -retry-backoff 50ms  # chaos testing
//	radiod -worker http://coordinator:8080 -worker-name w1  # fleet worker
//	radiod -workers -1 -data ./d # coordinator-only: dispatch to fleet
//
// Every radiod is also a fleet coordinator: remote workers started with
// -worker register against it, heartbeat, and pull leased jobs off the
// same queue the local pool drains. A worker that stops heartbeating is
// declared dead and its in-flight jobs are re-dispatched to survivors (or
// run locally); with no workers registered the fleet layer is inert.
//
// With -data the daemon is crash-safe: every admission and terminal
// transition is journaled, and a restart — graceful or kill -9 — re-admits
// incomplete jobs and resumes half-finished sweeps, serving already-stored
// child results from the persistent store without re-simulation.
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight HTTP requests
// get a shutdown window, running jobs are cancelled via their contexts, and
// event streams observe the terminal events before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/fleet"
	"dualradio/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiod:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent local jobs (0 = GOMAXPROCS, -1 = none: dispatch only to fleet workers)")
		queue        = flag.Int("queue", 64, "job queue depth")
		cache        = flag.Int("cache", 128, "result cache entries")
		trialWorkers = flag.Int("trial-workers", 1, "goroutines per job's trial fan-out")
		history      = flag.Int("history", 512, "terminal jobs retained before pruning")
		dataDir      = flag.String("data", "", "persist results under this directory (empty = in-memory only)")
		storeMax     = flag.Int64("store-max-bytes", 0, "evict oldest stored results past this total size (0 = unbounded)")
		maxCost      = flag.Int64("max-cost", 0, "admission budget in round-process units (0 = default)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown window")
		maxRetries   = flag.Int("max-retries", 3, "automatic retries after a transient failure (0 disables)")
		retryBackoff = flag.Duration("retry-backoff", 250*time.Millisecond, "initial retry backoff (doubles per retry)")
		retryMax     = flag.Duration("retry-max-backoff", 5*time.Second, "retry backoff cap")
		faultSpec    = flag.String("fault-spec", "", "JSON fault-injection spec for chaos testing (see internal/faultinject)")

		workerURL      = flag.String("worker", "", "run as a fleet worker for the coordinator at this URL (serves no HTTP API)")
		workerName     = flag.String("worker-name", "", "worker name reported to the coordinator (default hostname)")
		workerSlots    = flag.Int("worker-slots", 0, "concurrent leased jobs in worker mode (0 = GOMAXPROCS)")
		fleetHeartbeat = flag.Duration("fleet-heartbeat", 2*time.Second, "coordinator: heartbeat interval workers are told to use")
		fleetDeadAfter = flag.Duration("fleet-dead-after", 0, "coordinator: declare a worker dead after this heartbeat silence (0 = 3x heartbeat)")
		fleetLeaseTTL  = flag.Duration("fleet-lease-ttl", 10*time.Minute, "coordinator: absolute lease lifetime before re-dispatch")
	)
	flag.Parse()

	var inj *faultinject.Injector
	if *faultSpec != "" {
		var err error
		if inj, err = faultinject.Load(*faultSpec); err != nil {
			return err
		}
		log.Printf("radiod: fault injection active: %d rules from %s", inj.Rules(), *faultSpec)
	}

	if *workerURL != "" {
		name := *workerName
		if name == "" {
			name, _ = os.Hostname()
		}
		w := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator:  *workerURL,
			Name:         name,
			Slots:        *workerSlots,
			TrialWorkers: *trialWorkers,
			Fault:        inj,
			Logf:         log.Printf,
		})
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		log.Printf("radiod: worker %s serving coordinator %s", name, *workerURL)
		return w.Run(ctx)
	}

	cfg := server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		TrialWorkers:    *trialWorkers,
		History:         *history,
		DataDir:         *dataDir,
		StoreMaxBytes:   *storeMax,
		MaxPendingCost:  *maxCost,
		MaxRetries:      *maxRetries,
		RetryBackoff:    *retryBackoff,
		RetryMaxBackoff: *retryMax,
		Fault:           inj,
		Fleet: fleet.Config{
			Heartbeat: *fleetHeartbeat,
			DeadAfter: *fleetDeadAfter,
			LeaseTTL:  *fleetLeaseTTL,
		},
	}
	if *maxRetries <= 0 {
		cfg.MaxRetries = -1 // Config treats 0 as "default"; negative disables
	}
	svc, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("radiod: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("radiod: shutting down")
	// Cancel running jobs first so blocked event streams terminate, then
	// give in-flight requests the drain window.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil &&
		!errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
