// Command radiod is the long-running simulation service: it serves the
// scenario-spec HTTP API (submit jobs and parameter sweeps, poll status,
// stream NDJSON progress, list presets) over a bounded job queue and
// worker pool, with per-spec result caching keyed by the canonical spec
// hash, optional durable result storage, and cost-aware admission.
//
// Usage:
//
//	radiod                       # listen on :8080, in-memory cache only
//	radiod -data ./radiod-data   # persist results across restarts
//	radiod -addr :9000 -workers 4 -queue 128 -cache 256 -trial-workers 2
//	radiod -max-cost 8589934592  # double the admission budget
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight HTTP requests
// get a shutdown window, running jobs are cancelled via their contexts, and
// event streams observe the terminal events before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualradio/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiod:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth")
		cache        = flag.Int("cache", 128, "result cache entries")
		trialWorkers = flag.Int("trial-workers", 1, "goroutines per job's trial fan-out")
		history      = flag.Int("history", 512, "terminal jobs retained before pruning")
		dataDir      = flag.String("data", "", "persist results under this directory (empty = in-memory only)")
		storeMax     = flag.Int64("store-max-bytes", 0, "evict oldest stored results past this total size (0 = unbounded)")
		maxCost      = flag.Int64("max-cost", 0, "admission budget in round-process units (0 = default)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown window")
	)
	flag.Parse()

	svc, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		TrialWorkers:   *trialWorkers,
		History:        *history,
		DataDir:        *dataDir,
		StoreMaxBytes:  *storeMax,
		MaxPendingCost: *maxCost,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("radiod: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("radiod: shutting down")
	// Cancel running jobs first so blocked event streams terminate, then
	// give in-flight requests the drain window.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil &&
		!errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
