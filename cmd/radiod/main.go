// Command radiod is the long-running simulation service: it serves the
// scenario-spec HTTP API (submit jobs and parameter sweeps, poll status,
// stream NDJSON progress, list presets) over a bounded job queue and
// worker pool, with per-spec result caching keyed by the canonical spec
// hash, optional durable result storage, and cost-aware admission.
//
// Usage:
//
//	radiod                       # listen on :8080, in-memory cache only
//	radiod -data ./radiod-data   # persist results across restarts
//	radiod -addr :9000 -workers 4 -queue 128 -cache 256 -trial-workers 2
//	radiod -max-cost 8589934592  # double the admission budget
//	radiod -fault-spec faults.json -retry-backoff 50ms  # chaos testing
//
// With -data the daemon is crash-safe: every admission and terminal
// transition is journaled, and a restart — graceful or kill -9 — re-admits
// incomplete jobs and resumes half-finished sweeps, serving already-stored
// child results from the persistent store without re-simulation.
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight HTTP requests
// get a shutdown window, running jobs are cancelled via their contexts, and
// event streams observe the terminal events before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiod:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth")
		cache        = flag.Int("cache", 128, "result cache entries")
		trialWorkers = flag.Int("trial-workers", 1, "goroutines per job's trial fan-out")
		history      = flag.Int("history", 512, "terminal jobs retained before pruning")
		dataDir      = flag.String("data", "", "persist results under this directory (empty = in-memory only)")
		storeMax     = flag.Int64("store-max-bytes", 0, "evict oldest stored results past this total size (0 = unbounded)")
		maxCost      = flag.Int64("max-cost", 0, "admission budget in round-process units (0 = default)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown window")
		maxRetries   = flag.Int("max-retries", 3, "automatic retries after a transient failure (0 disables)")
		retryBackoff = flag.Duration("retry-backoff", 250*time.Millisecond, "initial retry backoff (doubles per retry)")
		retryMax     = flag.Duration("retry-max-backoff", 5*time.Second, "retry backoff cap")
		faultSpec    = flag.String("fault-spec", "", "JSON fault-injection spec for chaos testing (see internal/faultinject)")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		TrialWorkers:    *trialWorkers,
		History:         *history,
		DataDir:         *dataDir,
		StoreMaxBytes:   *storeMax,
		MaxPendingCost:  *maxCost,
		MaxRetries:      *maxRetries,
		RetryBackoff:    *retryBackoff,
		RetryMaxBackoff: *retryMax,
	}
	if *maxRetries <= 0 {
		cfg.MaxRetries = -1 // Config treats 0 as "default"; negative disables
	}
	if *faultSpec != "" {
		inj, err := faultinject.Load(*faultSpec)
		if err != nil {
			return err
		}
		cfg.Fault = inj
		log.Printf("radiod: fault injection active: %d rules from %s", inj.Rules(), *faultSpec)
	}
	svc, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("radiod: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("radiod: shutting down")
	// Cancel running jobs first so blocked event streams terminate, then
	// give in-flight requests the drain window.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil &&
		!errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
