// Command radiod is the long-running simulation service: it serves the
// scenario-spec HTTP API (submit jobs, poll status, stream NDJSON progress,
// list presets) over a bounded job queue and worker pool, with per-spec
// result caching keyed by the canonical spec hash.
//
// Usage:
//
//	radiod                       # listen on :8080
//	radiod -addr :9000 -workers 4 -queue 128 -cache 256 -trial-workers 2
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight HTTP requests
// get a shutdown window, running jobs are cancelled via their contexts, and
// event streams observe the terminal events before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualradio/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiod:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth")
		cache        = flag.Int("cache", 128, "result cache entries")
		trialWorkers = flag.Int("trial-workers", 1, "goroutines per job's trial fan-out")
		history      = flag.Int("history", 512, "terminal jobs retained before pruning")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown window")
	)
	flag.Parse()

	svc := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		TrialWorkers: *trialWorkers,
		History:      *history,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("radiod: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("radiod: shutting down")
	// Cancel running jobs first so blocked event streams terminate, then
	// give in-flight requests the drain window.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil &&
		!errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
