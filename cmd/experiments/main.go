// Command experiments regenerates the reproduction tables E1–E15 mapping
// the paper's theorems to measured quantities (see DESIGN.md for the index
// and EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Usage:
//
//	experiments            # full scale (minutes)
//	experiments -quick     # trimmed sweeps (seconds)
//	experiments -only E5   # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dualradio/internal/expr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "trimmed sweeps for a fast pass")
		seeds = flag.Int("seeds", 0, "override runs per parameter point")
		only  = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5)")
	)
	flag.Parse()

	cfg := expr.DefaultConfig()
	if *quick {
		cfg = expr.QuickConfig()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}

	all := map[string]func(expr.Config) (*expr.Result, error){
		"E1":   expr.E1MISScaling,
		"E2":   expr.E2MISDensity,
		"E3":   expr.E3CCDSRounds,
		"E4":   expr.E4TauCCDS,
		"E5":   expr.E5LowerBound,
		"E6":   expr.E6HittingGame,
		"E7":   expr.E7DynamicCCDS,
		"E8":   expr.E8AsyncMIS,
		"E9":   expr.E9BannedListAblation,
		"E10":  expr.E10Subroutines,
		"E10b": expr.E10DirectedDecay,
		"E11":  expr.E11Backbone,
		"E12":  expr.E12ReannounceAblation,
		"E13":  expr.E13IncompleteDetectors,
		"E14":  expr.E14RadioBroadcast,
		"E15":  expr.E15TauSweep,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E10b", "E11", "E12", "E13", "E14", "E15"}

	selected := order
	if *only != "" {
		selected = strings.Split(*only, ",")
	}
	for _, id := range selected {
		id = strings.TrimSpace(id)
		runFn, ok := all[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(order, ", "))
		}
		res, err := runFn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Table.String())
	}
	return nil
}
