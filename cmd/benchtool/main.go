// Command benchtool converts `go test -bench` output into a JSON snapshot
// so benchmark trajectories can be tracked in-repo across changes.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem -count=1 ./... | go run ./cmd/benchtool -out BENCH_2026-07-29.json
//
// or via the Makefile:
//
//	make bench
//
// The parser understands standard benchmark lines:
//
//	BenchmarkE1MISScaling   5  252718396 ns/op  3.403 exponent_vs_logn  8031060 B/op  208516 allocs/op
//
// and records every reported unit (ns/op, B/op, allocs/op, and custom
// metrics) per benchmark, plus the goos/goarch/pkg/cpu header lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the serialized benchmark run.
type Snapshot struct {
	Date       string            `json:"date"`
	Env        map[string]string `json:"env"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name    string `json:"name"`
	Package string `json:"package,omitempty"`
	// Group splits the suite into the setup path (scenario/instance
	// construction benchmarks) and the run path (experiment round loops),
	// so trajectory diffs can report the two separately.
	Group      string             `json:"group"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// groupOf classifies a benchmark into the setup or run path by name.
func groupOf(name string) string {
	for _, marker := range []string{"BuildScenario", "Assemble", "Setup"} {
		if strings.Contains(name, marker) {
			return "setup"
		}
	}
	return "run"
}

func main() {
	out := flag.String("out", "", "output JSON path (default: BENCH_<date>.json)")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02")) //detvet:wallclock snapshot filename date; bench metadata, not simulation state
	}
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtool:", err)
		os.Exit(1)
	}
	snap.Date = time.Now().Format(time.RFC3339) //detvet:wallclock bench snapshot metadata
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtool:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchtool:", err)
		os.Exit(1)
	}
	setup, run := 0, 0
	var setupNs, runNs float64
	for _, b := range snap.Benchmarks {
		ns := b.Metrics["ns/op"]
		if b.Group == "setup" {
			setup++
			setupNs += ns
		} else {
			run++
			runNs += ns
		}
	}
	fmt.Printf("benchtool: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	fmt.Printf("benchtool: setup path: %d benchmarks summing to %.3fms/op; run path: %d benchmarks summing to %.1fms/op\n",
		setup, setupNs/1e6, run, runNs/1e6)
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{Env: map[string]string{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBench(line)
			if !ok {
				continue
			}
			b.Package = pkg
			b.Group = groupOf(b.Name)
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return snap, nil
}

// parseBench parses one "BenchmarkName  N  value unit  value unit ..." line.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimSuffix(fields[0], "-1"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Strip any -P GOMAXPROCS suffix.
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
