// Command radiosim runs one algorithm of "Structuring Unreliable Radio
// Networks" on a generated dual graph network and reports the outcome.
//
// Usage:
//
//	radiosim -algo ccds -n 128 -b 512 -seed 1
//	radiosim -algo mis -n 256 -adversary full
//	radiosim -algo tau -n 96 -tau 2 -b 32768
package main

import (
	"flag"
	"fmt"
	"os"

	"dualradio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo    = flag.String("algo", "ccds", "algorithm: mis | ccds | baseline | tau")
		n       = flag.Int("n", 128, "network size")
		degree  = flag.Float64("degree", 0, "target reliable degree (0 = 3·log₂ n)")
		tau     = flag.Int("tau", 0, "link detector mistake bound τ")
		bits    = flag.Int("b", 512, "message size bound b in bits")
		seed    = flag.Uint64("seed", 1, "random seed")
		adv     = flag.String("adversary", "collision", "adversary: collision | none | full | uniform")
		showMap = flag.Bool("map", false, "render the network and outputs as ASCII art")
		doTrace = flag.Bool("trace", false, "print aggregate activity statistics")
	)
	flag.Parse()

	net, err := dualradio.Generate(dualradio.NetworkOptions{
		Nodes:        *n,
		TargetDegree: *degree,
		Tau:          *tau,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: n=%d Δ=%d unreliable-edges=%d τ=%d\n",
		net.N(), net.Delta(), net.UnreliableEdges(), net.Tau())

	opts := dualradio.RunOptions{Seed: *seed, MessageBits: *bits, CollectTrace: *doTrace}
	switch *adv {
	case "none":
		opts.Adversary = dualradio.AdversaryNone
	case "full":
		opts.Adversary = dualradio.AdversaryFull
	case "uniform":
		opts.Adversary = dualradio.AdversaryUniform
	case "collision":
		opts.Adversary = dualradio.AdversaryCollisionSeeking
	default:
		return fmt.Errorf("unknown adversary %q", *adv)
	}

	var res *dualradio.Result
	switch *algo {
	case "mis":
		res, err = dualradio.BuildMIS(net, opts)
	case "ccds":
		res, err = dualradio.BuildCCDS(net, opts)
	case "baseline":
		res, err = dualradio.BuildBaselineCCDS(net, opts)
	case "tau":
		res, err = dualradio.BuildTauCCDS(net, opts)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	fmt.Printf("result: rounds=%d decided-by=%d size=%d max-backbone-degree=%d\n",
		res.Rounds, res.DecidedRound, res.Size(), res.MaxBackboneDegree())
	if err := res.Verify(); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Println("verification: all conditions hold")

	if *algo != "mis" {
		flood, back, err := dualradio.BroadcastCost(net, res, 0)
		if err != nil {
			return err
		}
		fmt.Printf("backbone broadcast: %d transmissions vs %d flooding (%.0f%% saved)\n",
			back, flood, 100*(1-float64(back)/float64(flood)))
	}
	if *doTrace {
		fmt.Print(res.TraceSummary)
	}
	if *showMap {
		fmt.Print(dualradio.RenderMap(net, res, 72, 24))
	}
	return nil
}
