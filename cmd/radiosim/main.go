// Command radiosim runs one algorithm of "Structuring Unreliable Radio
// Networks" on a generated dual graph network and reports the outcome.
//
// Usage:
//
//	radiosim -algo ccds -n 128 -b 512 -seed 1
//	radiosim -algo mis -n 256 -adversary full
//	radiosim -algo tau -n 96 -tau 2 -b 32768
//
// With -spec, radiosim instead runs a declarative scenario spec through the
// same compiler the radiod service uses, so the CLI and the daemon share
// one code path (identical seeds, identical results):
//
//	radiosim -spec scenario.json
//	radiosim -spec - < scenario.json      # read the spec from stdin
//	radiosim -spec scenario.json -json    # machine-readable result
//
// With -sweep, the file is a sweep spec (a base spec plus axes) expanded
// with the same deterministic expansion the daemon's POST /v1/sweeps uses;
// every child runs in grid order:
//
//	radiosim -sweep sweep.json
//	radiosim -sweep sweep.json -json      # {"sweep_hash": ..., "results": [...]}
//
// With -report, the sweep's children are pivoted onto its axes into the
// same report the daemon serves at GET /v1/sweeps/{id}/report — rows ×
// columns of the chosen metric, collapsed across any remaining axes:
//
//	radiosim -sweep sweep.json -report mean_rounds
//	radiosim -sweep sweep.json -report valid_fraction -format csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"strings"

	"dualradio"
	"dualradio/internal/report"
	"dualradio/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo      = flag.String("algo", "ccds", "algorithm: mis | ccds | baseline | tau")
		n         = flag.Int("n", 128, "network size")
		degree    = flag.Float64("degree", 0, "target reliable degree (0 = 3·log₂ n)")
		tau       = flag.Int("tau", 0, "link detector mistake bound τ")
		bits      = flag.Int("b", 512, "message size bound b in bits")
		seed      = flag.Uint64("seed", 1, "random seed")
		adv       = flag.String("adversary", "collision", "adversary: collision | none | full | uniform")
		engine    = flag.String("engine", "exact", "execution engine: exact | leap")
		showMap   = flag.Bool("map", false, "render the network and outputs as ASCII art")
		doTrace   = flag.Bool("trace", false, "print aggregate activity statistics")
		specPath  = flag.String("spec", "", "run a scenario spec file instead (\"-\" = stdin)")
		sweepPath = flag.String("sweep", "", "run a sweep spec file instead (\"-\" = stdin)")
		asJSON    = flag.Bool("json", false, "with -spec/-sweep: print the full result as JSON")
		workers   = flag.Int("workers", 0, "with -spec/-sweep: trial fan-out goroutines (0 = GOMAXPROCS)")
		metric    = flag.String("report", "", "with -sweep: pivot the children into a report of this metric (e.g. mean_rounds)")
		format    = flag.String("format", "table", "with -report: csv | json | table")
	)
	flag.Parse()

	if *specPath != "" && *sweepPath != "" {
		return fmt.Errorf("give either -spec or -sweep, not both")
	}
	if *metric != "" {
		// Fail fast: a typo'd metric or format must not cost a full sweep
		// simulation before it is rejected.
		if *sweepPath == "" {
			return fmt.Errorf("-report needs -sweep")
		}
		if *asJSON {
			return fmt.Errorf("give either -json or -report (use -report ... -format json for a JSON report)")
		}
		if !slices.Contains(report.Metrics(), *metric) {
			return fmt.Errorf("unknown -report metric %q (want one of %s)",
				*metric, strings.Join(report.Metrics(), "|"))
		}
		switch *format {
		case "", "csv", "json", "table":
		default:
			return fmt.Errorf("unknown -format %q (want csv|json|table)", *format)
		}
	}
	if *sweepPath != "" {
		return runSweep(*sweepPath, *asJSON, *workers, *metric, *format)
	}
	if *specPath != "" {
		return runSpec(*specPath, *asJSON, *workers)
	}

	net, err := dualradio.Generate(dualradio.NetworkOptions{
		Nodes:        *n,
		TargetDegree: *degree,
		Tau:          *tau,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: n=%d Δ=%d unreliable-edges=%d τ=%d\n",
		net.N(), net.Delta(), net.UnreliableEdges(), net.Tau())

	opts := dualradio.RunOptions{Seed: *seed, MessageBits: *bits, CollectTrace: *doTrace}
	switch *engine {
	case "", "exact":
	case "leap":
		opts.Leap = true
	default:
		return fmt.Errorf("unknown engine %q (want exact|leap)", *engine)
	}
	switch *adv {
	case "none":
		opts.Adversary = dualradio.AdversaryNone
	case "full":
		opts.Adversary = dualradio.AdversaryFull
	case "uniform":
		opts.Adversary = dualradio.AdversaryUniform
	case "collision":
		opts.Adversary = dualradio.AdversaryCollisionSeeking
	default:
		return fmt.Errorf("unknown adversary %q", *adv)
	}

	var res *dualradio.Result
	switch *algo {
	case "mis":
		res, err = dualradio.BuildMIS(net, opts)
	case "ccds":
		res, err = dualradio.BuildCCDS(net, opts)
	case "baseline":
		res, err = dualradio.BuildBaselineCCDS(net, opts)
	case "tau":
		res, err = dualradio.BuildTauCCDS(net, opts)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	fmt.Printf("result: rounds=%d decided-by=%d size=%d max-backbone-degree=%d\n",
		res.Rounds, res.DecidedRound, res.Size(), res.MaxBackboneDegree())
	if err := res.Verify(); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Println("verification: all conditions hold")

	if *algo != "mis" {
		flood, back, err := dualradio.BroadcastCost(net, res, 0)
		if err != nil {
			return err
		}
		fmt.Printf("backbone broadcast: %d transmissions vs %d flooding (%.0f%% saved)\n",
			back, flood, 100*(1-float64(back)/float64(flood)))
	}
	if *doTrace {
		fmt.Print(res.TraceSummary)
	}
	if *showMap {
		fmt.Print(dualradio.RenderMap(net, res, 72, 24))
	}
	return nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// runSweep expands a sweep spec — the identical deterministic expansion
// the radiod daemon's POST /v1/sweeps performs — and runs every child in
// grid order. With a metric, the children are pivoted into the same report
// GET /v1/sweeps/{id}/report serves.
func runSweep(path string, asJSON bool, workers int, metric, format string) error {
	data, err := readInput(path)
	if err != nil {
		return err
	}
	sw, err := scenario.ParseSweep(data)
	if err != nil {
		return err
	}
	exp, err := scenario.ExpandSweep(sw)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d children hash=%s cost≈%d\n",
		len(exp.Children), exp.Hash()[:12], exp.CostEstimate())
	results := make([]*scenario.Result, 0, len(exp.Children))
	for i, comp := range exp.Children {
		c := comp.Spec()
		res, err := comp.Run(nil, workers, nil)
		if err != nil {
			return fmt.Errorf("child %d (%s): %w", i, c.Name, err)
		}
		results = append(results, res)
		switch {
		case metric != "":
			fmt.Fprintf(os.Stderr, "child %d/%d (%s) done\n", i+1, len(exp.Children), c.Name)
		case !asJSON:
			a := res.Aggregate
			fmt.Printf("%-3d %-40s valid=%.0f%% mean-rounds=%.1f mean-size=%.1f\n",
				i, c.Name, 100*a.ValidFraction, a.MeanRounds, a.MeanSize)
		default:
			fmt.Fprintf(os.Stderr, "child %d/%d (%s) done\n", i+1, len(exp.Children), c.Name)
		}
	}
	if metric != "" {
		aggs := make([]scenario.Aggregate, len(results))
		for i, res := range results {
			aggs[i] = res.Aggregate
		}
		rep, err := report.Build(exp, aggs, report.Options{Metric: metric})
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return rep.WriteCSV(os.Stdout)
		case "json":
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		case "", "table":
			fmt.Print(rep.Table())
			return nil
		default:
			return fmt.Errorf("unknown -format %q (want csv|json|table)", format)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"sweep_hash": exp.Hash(), "results": results})
	}
	return nil
}

// runSpec runs a declarative scenario spec through the scenario compiler —
// the identical code path the radiod service executes, so a spec run here
// and a job submitted there produce the same per-trial results.
func runSpec(path string, asJSON bool, workers int) error {
	data, err := readInput(path)
	if err != nil {
		return err
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		return err
	}
	comp, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	c := comp.Spec()
	fmt.Fprintf(os.Stderr, "scenario: algo=%s n=%d trials=%d hash=%s\n",
		c.Algorithm, c.Network.N, comp.Trials(), comp.Hash()[:12])
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res, err := comp.Run(nil, workers, func(p scenario.Progress) {
		tr := p.Trial
		fmt.Fprintf(os.Stderr, "trial %d/%d: rounds=%d decided=%d size=%d valid=%v (folded %d: mean-rounds=%.1f)\n",
			tr.Trial+1, comp.Trials(), tr.Rounds, tr.DecidedRound, tr.Size, tr.Valid,
			p.Folded, p.Aggregate.MeanRounds)
	})
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	a := res.Aggregate
	fmt.Printf("result: trials=%d valid=%.0f%% mean-rounds=%.1f mean-size=%.1f\n",
		a.Trials, 100*a.ValidFraction, a.MeanRounds, a.MeanSize)
	if a.MeanDecidedRound > 0 {
		fmt.Printf("decision latency: mean=%.1f p90=%.1f rounds\n",
			a.MeanDecidedRound, a.P90DecidedRound)
	}
	if a.MeanLatency > 0 {
		fmt.Printf("local decision latency: mean=%.1f rounds\n", a.MeanLatency)
	}
	return nil
}
