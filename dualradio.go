// Package dualradio is a Go implementation of "Structuring Unreliable Radio
// Networks" (Censor-Hillel, Gilbert, Kuhn, Lynch, Newport; PODC 2011): the
// dual graph radio network model with reliable links G and unreliable links
// G', the τ-complete link detector formalism, and the paper's algorithms —
// the O(log³ n) MIS, the O(Δ·log²n/b + log³n) banned-list CCDS, the
// O(Δ·polylog n) CCDS for τ-complete detectors, the continuous CCDS for
// dynamic detectors, and the asynchronous-start MIS for the classic radio
// model — together with a deterministic simulation engine, adversary
// strategies, and verification of the Section 3 problem definitions.
//
// The package is a facade over the internal packages; it covers the common
// workflows:
//
//	net, _ := dualradio.Generate(dualradio.NetworkOptions{Nodes: 128, Seed: 1})
//	res, _ := dualradio.BuildCCDS(net, dualradio.RunOptions{Seed: 1, MessageBits: 512})
//	if err := res.Verify(); err != nil { ... }
//
// Power users can reach the internal packages directly (they are part of
// this module): internal/sim for the engine, internal/core for the
// algorithms, internal/expr for the paper's reproduction experiments.
package dualradio

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/graph"
	"dualradio/internal/harness"
	"dualradio/internal/trace"
	"dualradio/internal/verify"
)

// NetworkOptions parameterizes Generate.
type NetworkOptions struct {
	// Nodes is the network size n (> 2).
	Nodes int
	// TargetDegree steers the expected reliable degree Δ; 0 selects
	// 3·log₂ n, matching the paper's Δ = ω(log n) assumption.
	TargetDegree float64
	// GrayZone is the constant d ≥ 1 bounding unreliable link length;
	// 0 selects 2.
	GrayZone float64
	// GrayProb is the probability of an unreliable edge inside the gray
	// zone; 0 selects 0.5, negative disables unreliable edges.
	GrayProb float64
	// Tau is the link detector mistake bound τ; 0 builds 0-complete
	// detectors.
	Tau int
	// Seed makes generation deterministic.
	Seed uint64
}

// Network bundles a generated dual graph network with its process-id
// assignment and link detectors.
type Network struct {
	net *dualgraph.Network
	asg *dualgraph.Assignment
	det *detector.Detector
	tau int
}

// Generate builds a connected random geometric dual graph network with
// τ-complete link detectors and a random process-to-node assignment.
func Generate(opts NetworkOptions) (*Network, error) {
	rng := rand.New(rand.NewPCG(opts.Seed, 0xFACADE))
	net, err := gen.RandomGeometric(gen.GeometricConfig{
		N:            opts.Nodes,
		TargetDegree: opts.TargetDegree,
		D:            opts.GrayZone,
		GrayProb:     opts.GrayProb,
	}, rng)
	if err != nil {
		return nil, err
	}
	asg := dualgraph.RandomAssignment(opts.Nodes, rng)
	var det *detector.Detector
	if opts.Tau <= 0 {
		det = detector.Complete(net, asg)
	} else {
		det = detector.TauComplete(net, asg, opts.Tau, detector.PlaceGrayFirst, rng)
	}
	return &Network{net: net, asg: asg, det: det, tau: opts.Tau}, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.net.N() }

// Delta returns Δ, the maximum degree of the reliable graph.
func (nw *Network) Delta() int { return nw.net.Delta() }

// ReliableDegree returns the reliable-graph degree of node v.
func (nw *Network) ReliableDegree(v int) int { return nw.net.G().Degree(v) }

// UnreliableEdges returns the number of gray (unreliable-only) edges.
func (nw *Network) UnreliableEdges() int { return len(nw.net.GrayEdges()) }

// Tau returns the detector mistake bound the network was generated with.
func (nw *Network) Tau() int { return nw.tau }

// ProcessID returns the process id assigned to node v.
func (nw *Network) ProcessID(v int) int { return nw.asg.ID(v) }

// H returns the detector-induced graph H of Section 3 (mutual detector
// membership), over which maximality, connectivity, and domination are
// defined.
func (nw *Network) H() *graph.Graph {
	return detector.BuildH(nw.net, nw.asg, nw.det)
}

// Validate checks the Section 2 model invariants.
func (nw *Network) Validate() error { return nw.net.Validate() }

// AdversaryKind selects the unreliable-link strategy for a run.
type AdversaryKind int

const (
	// AdversaryCollisionSeeking greedily turns unique deliveries into
	// collisions whenever a gray edge permits — the strongest
	// general-purpose strategy. This is the default.
	AdversaryCollisionSeeking AdversaryKind = iota
	// AdversaryNone never activates unreliable links.
	AdversaryNone
	// AdversaryFull activates every unreliable link every round.
	AdversaryFull
	// AdversaryUniform activates each unreliable link independently with
	// probability 1/2 each round.
	AdversaryUniform
)

// RunOptions configures an algorithm execution.
type RunOptions struct {
	// Seed derives all process randomness.
	Seed uint64
	// MessageBits is the model's bound b on message size in bits.
	// Required (positive) for the CCDS algorithms; 0 leaves MIS messages
	// unbounded.
	MessageBits int
	// Adversary selects the unreliable-link strategy.
	Adversary AdversaryKind
	// Params overrides the algorithms' constant factors; zero value uses
	// calibrated defaults.
	Params core.Params
	// Workers > 1 fans per-round process callbacks over goroutines.
	Workers int
	// CollectTrace aggregates per-node and per-round activity during the
	// run; the summary is reported in Result.TraceSummary.
	CollectTrace bool
	// Leap selects the leap-ahead engine: broadcast-free stretches are
	// skipped via geometric sampling. Statistically equivalent to the
	// default exact engine but not bit-identical run for run.
	Leap bool
}

func (nw *Network) scenario(opts RunOptions) *harness.Scenario {
	var adv adversary.Adversary
	switch opts.Adversary {
	case AdversaryNone:
		adv = adversary.None{}
	case AdversaryFull:
		adv = adversary.NewFull(nw.net)
	case AdversaryUniform:
		adv = adversary.NewUniformP(nw.net, 0.5,
			rand.New(rand.NewPCG(opts.Seed, 0xADA)))
	default:
		adv = adversary.NewCollisionSeeking(nw.net)
	}
	s := &harness.Scenario{
		Net:     nw.net,
		Asg:     nw.asg,
		Det:     nw.det,
		Adv:     adv,
		Params:  opts.Params,
		Seed:    opts.Seed,
		B:       opts.MessageBits,
		Workers: opts.Workers,
		Leap:    opts.Leap,
	}
	if opts.CollectTrace {
		s.Observer = trace.NewRecorder(nw.N())
	}
	return s
}

// Result reports one algorithm execution.
type Result struct {
	// Outputs holds each node's output: 0, 1, or -1 for undecided.
	Outputs []int
	// InMIS flags nodes whose process joined the MIS / dominating
	// structure.
	InMIS []bool
	// Rounds is the execution length.
	Rounds int
	// DecidedRound is the first round by which every process had decided
	// (-1 if some never did).
	DecidedRound int
	// TraceSummary holds aggregate activity statistics when the run was
	// configured with CollectTrace.
	TraceSummary string

	problem string
	nw      *Network
}

// RenderMap draws the network embedding as ASCII art with each node marked
// by its output — '#' for members, '.' for covered nodes.
func RenderMap(nw *Network, res *Result, width, height int) string {
	return trace.Map(nw.net, res.Outputs, width, height)
}

// Size returns the number of nodes that output 1.
func (r *Result) Size() int { return verify.CCDSSize(r.Outputs) }

// Verify checks the execution against the Section 3 problem definition it
// ran (MIS or CCDS) and returns nil when all conditions hold.
func (r *Result) Verify() error {
	h := r.nw.H()
	switch r.problem {
	case "mis":
		return verify.MIS(r.nw.net, h, r.Outputs).Err()
	case "ccds":
		return verify.CCDS(r.nw.net, h, r.Outputs, 0).Err()
	default:
		return errors.New("dualradio: unknown problem kind")
	}
}

// MaxBackboneDegree returns the largest number of CCDS members adjacent to
// any node in G' — the quantity the constant-bounded condition limits.
func (r *Result) MaxBackboneDegree() int {
	return verify.MaxCCDSDegree(r.nw.net, r.Outputs)
}

func fromOutcome(nw *Network, problem string, out *harness.Outcome) *Result {
	return &Result{
		Outputs:      out.Outputs,
		InMIS:        out.InMIS,
		Rounds:       out.Rounds,
		DecidedRound: out.DecidedRound,
		problem:      problem,
		nw:           nw,
	}
}

// attachTrace copies the recorder summary into the result when tracing was
// enabled.
func attachTrace(s *harness.Scenario, res *Result) *Result {
	if rec, ok := s.Observer.(*trace.Recorder); ok {
		res.TraceSummary = rec.Summary()
	}
	return res
}

// BuildMIS runs the Section 4 MIS algorithm (Theorem 4.6: O(log³ n) rounds
// w.h.p. with 0-complete detectors).
func BuildMIS(nw *Network, opts RunOptions) (*Result, error) {
	s := nw.scenario(opts)
	out, err := s.RunMIS()
	if err != nil {
		return nil, err
	}
	return attachTrace(s, fromOutcome(nw, "mis", out)), nil
}

// BuildCCDS runs the Section 5 banned-list CCDS algorithm (Theorem 5.3:
// O(Δ·log²n/b + log³n) rounds w.h.p. with 0-complete detectors). The
// network must have been generated with Tau = 0.
func BuildCCDS(nw *Network, opts RunOptions) (*Result, error) {
	if nw.tau != 0 {
		return nil, fmt.Errorf("dualradio: the banned-list CCDS requires 0-complete detectors; network has tau=%d (use BuildTauCCDS)", nw.tau)
	}
	s := nw.scenario(opts)
	out, err := s.RunCCDS()
	if err != nil {
		return nil, err
	}
	return attachTrace(s, fromOutcome(nw, "ccds", out)), nil
}

// BuildTauCCDS runs the Section 6 CCDS algorithm for τ-complete detectors
// (Theorem 6.2: O(Δ·polylog n) rounds w.h.p. for τ = O(1)). It uses the
// network's generated τ.
func BuildTauCCDS(nw *Network, opts RunOptions) (*Result, error) {
	s := nw.scenario(opts)
	out, err := s.RunTauCCDS(nw.tau)
	if err != nil {
		return nil, err
	}
	return attachTrace(s, fromOutcome(nw, "ccds", out)), nil
}

// BuildBaselineCCDS runs the naive neighbor-enumeration CCDS — the
// O(Δ·polylog n) comparison point of Section 5.
func BuildBaselineCCDS(nw *Network, opts RunOptions) (*Result, error) {
	if nw.tau != 0 {
		return nil, fmt.Errorf("dualradio: the baseline CCDS requires 0-complete detectors; network has tau=%d", nw.tau)
	}
	s := nw.scenario(opts)
	out, err := s.RunBaselineCCDS()
	if err != nil {
		return nil, err
	}
	return attachTrace(s, fromOutcome(nw, "ccds", out)), nil
}

// CCDSRounds predicts the fixed schedule length of the Section 5 CCDS for
// the given parameters (the Theorem 5.3 bound with calibrated constants).
func CCDSRounds(n, delta, bits int) (int, error) {
	return core.CCDSRounds(n, delta, bits, core.DefaultParams())
}

// TauCCDSRounds predicts the fixed schedule length of the Section 6 CCDS
// for mistake bound tau (the Theorem 6.2 O(Δ·polylog n) bound).
func TauCCDSRounds(n, delta, bits, tau int) (int, error) {
	return core.TauCCDSRounds(n, delta, bits, core.DefaultParams(), tau)
}

// BaselineCCDSRounds predicts the fixed schedule length of the naive
// neighbor-enumeration CCDS.
func BaselineCCDSRounds(n, delta, bits int) (int, error) {
	return core.BaselineCCDSRounds(n, delta, bits, core.DefaultParams())
}

// verifyCCDS checks outputs against the CCDS conditions over h.
func verifyCCDS(nw *Network, h *graph.Graph, outputs []int) error {
	return verify.CCDS(nw.net, h, outputs, 0).Err()
}
