package dualradio_test

import (
	"strings"
	"testing"

	"dualradio"
)

func TestFacadeTraceAndMap(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dualradio.BuildMIS(net, dualradio.RunOptions{Seed: 21, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TraceSummary, "total broadcasts") {
		t.Errorf("trace summary missing:\n%s", res.TraceSummary)
	}
	m := dualradio.RenderMap(net, res, 40, 12)
	if !strings.Contains(m, "#") || !strings.Contains(m, "legend") {
		t.Errorf("map malformed:\n%s", m)
	}
	// Without the flag, no summary is collected.
	plain, err := dualradio.BuildMIS(net, dualradio.RunOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceSummary != "" {
		t.Error("trace collected without the flag")
	}
}

func TestFacadeAdversaryKinds(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []dualradio.AdversaryKind{
		dualradio.AdversaryCollisionSeeking,
		dualradio.AdversaryNone,
		dualradio.AdversaryFull,
		dualradio.AdversaryUniform,
	} {
		res, err := dualradio.BuildMIS(net, dualradio.RunOptions{Seed: 22, Adversary: kind})
		if err != nil {
			t.Fatalf("adversary %d: %v", kind, err)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("adversary %d: %v", kind, err)
		}
	}
}

func TestFacadeBaselineCCDS(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dualradio.BuildBaselineCCDS(net, dualradio.RunOptions{Seed: 23, MessageBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("baseline verify: %v", err)
	}
}

func TestFacadeWorkersMatchSequential(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 128, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := dualradio.BuildMIS(net, dualradio.RunOptions{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	par, err := dualradio.BuildMIS(net, dualradio.RunOptions{Seed: 24, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Outputs {
		if seq.Outputs[v] != par.Outputs[v] {
			t.Fatalf("node %d: outputs diverge between sequential and parallel", v)
		}
	}
}

func TestFacadeSchedulePredictors(t *testing.T) {
	ccds, err := dualradio.CCDSRounds(1024, 64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tau1, err := dualradio.TauCCDSRounds(1024, 64, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := dualradio.BaselineCCDSRounds(1024, 64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if ccds <= 0 || tau1 <= ccds || base <= 0 {
		t.Errorf("predictors: ccds=%d tau1=%d base=%d", ccds, tau1, base)
	}
	if _, err := dualradio.CCDSRounds(1024, 64, 4); err == nil {
		t.Error("tiny b accepted by predictor")
	}
}

func TestFacadeGenerateRejectsBadOptions(t *testing.T) {
	if _, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 2}); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, GrayZone: 0.5}); err == nil {
		t.Error("d<1 accepted")
	}
}

func TestFacadeNetworkAccessors(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 25, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	if net.Tau() != 2 {
		t.Errorf("tau = %d", net.Tau())
	}
	if net.N() != 64 || net.Delta() <= 0 || net.UnreliableEdges() == 0 {
		t.Error("accessors inconsistent")
	}
	seen := map[int]bool{}
	for v := 0; v < net.N(); v++ {
		id := net.ProcessID(v)
		if id < 1 || id > 64 || seen[id] {
			t.Fatalf("bad process id %d at node %d", id, v)
		}
		seen[id] = true
		if net.ReliableDegree(v) < 1 {
			t.Errorf("node %d isolated in G", v)
		}
	}
	// H contains G for any τ-complete detector.
	h := net.H()
	if h.M() < 1 {
		t.Error("H empty")
	}
}
