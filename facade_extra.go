package dualradio

import (
	"math/rand/v2"

	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/routing"
)

// AsyncResult extends Result with per-process decision latencies.
type AsyncResult struct {
	Result
	// Latency holds, per node, the number of rounds between the process
	// waking and fixing its output (-1 if undecided). Theorem 9.4 bounds
	// it by O(log³ n) w.h.p.
	Latency []int
}

// BuildMISAsync runs the Section 9 asynchronous-start MIS variant. wake
// gives each node's wake-up round; classic selects the classic radio model
// behavior (no detector filtering — correct when the network has no
// unreliable edges).
func BuildMISAsync(nw *Network, wake []int, classic bool, opts RunOptions) (*AsyncResult, error) {
	s := nw.scenario(opts)
	s.MaxRounds = 1 << 20
	filter := core.FilterDetector
	if classic {
		filter = core.FilterNone
		s.Det = nil
	}
	out, err := s.RunAsyncMIS(wake, filter)
	if err != nil {
		return nil, err
	}
	res := fromOutcome(nw, "mis", &out.Outcome)
	return &AsyncResult{Result: *res, Latency: out.Latency}, nil
}

// DynamicResult reports a continuous CCDS execution (Section 8).
type DynamicResult struct {
	// Period is δ_CDS, the rerun period in rounds.
	Period int
	// OutputsAt maps each requested checkpoint round to the committed
	// outputs observed there.
	OutputsAt map[int][]int
	// Final holds the committed outputs at the end of the execution.
	Final []int

	nw *Network
}

// VerifyAt checks the committed outputs at the given checkpoint against the
// CCDS conditions under the network's (stabilized) detectors.
func (r *DynamicResult) VerifyAt(round int) error {
	outputs, ok := r.OutputsAt[round]
	if !ok {
		outputs = r.Final
	}
	h := r.nw.H()
	return verifyCCDS(r.nw, h, outputs)
}

// BuildContinuousCCDS runs the Section 8 continuous CCDS: the algorithm is
// rerun every δ_CDS rounds with a dynamic link detector that serves a noisy
// view (mistakes per node up to noisyTau) until stabilizeRound, and the
// network's true detector afterwards. Committed outputs are sampled at the
// checkpoint rounds; Theorem 8.1 guarantees validity from
// stabilizeRound + 2·δ_CDS onward.
func BuildContinuousCCDS(nw *Network, noisyTau, stabilizeRound, periods int,
	checkpoints []int, opts RunOptions) (*DynamicResult, error) {
	drng := rand.New(rand.NewPCG(opts.Seed, 0xD14A))
	noisy := detector.TauComplete(nw.net, nw.asg, noisyTau, detector.PlaceGrayFirst, drng)
	dyn := detector.NewSchedule(
		detector.ScheduleStep{Round: 0, Detector: noisy},
		detector.ScheduleStep{Round: stabilizeRound, Detector: nw.det},
	)
	out, err := nw.scenario(opts).RunContinuousCCDS(dyn, periods, checkpoints)
	if err != nil {
		return nil, err
	}
	return &DynamicResult{
		Period:    out.Period,
		OutputsAt: out.Checkpoints,
		Final:     out.Final,
		nw:        nw,
	}, nil
}

// BroadcastCost compares network-wide dissemination by flooding against
// dissemination relayed only by the given CCDS backbone, over the graph H.
// It returns (floodTransmissions, backboneTransmissions).
func BroadcastCost(nw *Network, res *Result, src int) (int, int, error) {
	member := make([]bool, nw.N())
	for v, o := range res.Outputs {
		member[v] = o == 1
	}
	flood, back, err := routing.Compare(nw.H(), member, src)
	if err != nil {
		return 0, 0, err
	}
	return flood.Transmissions, back.Transmissions, nil
}
