#!/bin/sh
# metrics_e2e.sh — end-to-end observability check against a real radiod.
#
#   1. Boot a daemon with a temp -data dir and run the mis-quick preset
#      twice: the first run simulates, the identical resubmission must be
#      served from the result cache.
#   2. Lint the /metrics exposition with cmd/promlint: strict format
#      (HELP/TYPE, escapes, no duplicates, coherent cumulative histograms)
#      and at least three histogram families.
#   3. Assert the cache hit/miss counters moved, the latency histograms
#      observed the run (positive counts and sums), and the job's phase
#      breakdown is monotone (each phase >= 0, parts sum <= total).
#   4. Run a 2x2 sweep and assert /v1/sweeps/{id}/stats rolls all four
#      children up into per-phase stats.
#
# Run from the repo root; used by CI (`make metrics-e2e`) and runnable
# locally.
set -eu

. "$(dirname "$0")/lib.sh"

ADDR="${ADDR:-127.0.0.1:18083}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""

cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/radiod" ./cmd/radiod
go build -o "$WORK/promlint" ./cmd/promlint

"$WORK/radiod" -addr "$ADDR" -data "$WORK/data" -workers 1 \
	>"$WORK/radiod.log" 2>&1 &
PID=$!
poll "radiod health" 15 healthy "$BASE"

job_id() {
	printf '%s' "$1" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -n 1
}
job_done() {
	curl -sf "$BASE/v1/jobs/$1" | grep -q '"status": "done"'
}

# Run 1 simulates; run 2 is the same canonical spec and must hit the cache.
J1="$(job_id "$(curl -sf -X POST "$BASE/v1/jobs" -d '{"preset":"mis-quick"}')")"
[ -n "$J1" ] || { echo "FAIL: first job not accepted" >&2; exit 1; }
poll "first job completion" 60 job_done "$J1"
J2="$(job_id "$(curl -sf -X POST "$BASE/v1/jobs" -d '{"preset":"mis-quick"}')")"
[ -n "$J2" ] || { echo "FAIL: second job not accepted" >&2; exit 1; }
poll "second job completion" 30 job_done "$J2"
curl -sf "$BASE/v1/jobs/$J2" | grep -q '"cached": true' \
	|| { echo "FAIL: identical resubmission was not cache-served" >&2; exit 1; }

# Strict exposition lint: format, >=3 histogram families, and the specific
# latency histograms this PR promises.
METRICS="$WORK/metrics.txt"
curl -sf "$BASE/metrics" >"$METRICS"
"$WORK/promlint" -min-histograms 3 \
	-require '^radiod_queue_wait_seconds_count' \
	-require '^radiod_trial_duration_seconds_count' \
	-require '^radiod_job_duration_seconds_sum' \
	-require '^radiod_journal_append_seconds_count [1-9]' \
	-require '^radiod_store_put_seconds_count [1-9]' \
	"$METRICS" \
	|| { echo "FAIL: /metrics fails lint" >&2; cat "$METRICS" >&2; exit 1; }

# The cache tiers were both exercised: run 1 missed, run 2 hit.
grep -Eq '^radiod_cache_hits_total [1-9]' "$METRICS" \
	|| { echo "FAIL: no cache hit counted" >&2; cat "$METRICS" >&2; exit 1; }
grep -Eq '^radiod_cache_misses_total [1-9]' "$METRICS" \
	|| { echo "FAIL: no cache miss counted" >&2; cat "$METRICS" >&2; exit 1; }

# The run job landed in the latency histograms with a positive sum.
grep -Eq '^radiod_job_duration_seconds_count\{[^}]*\} [1-9]' "$METRICS" \
	|| { echo "FAIL: job-duration histogram observed nothing" >&2; cat "$METRICS" >&2; exit 1; }
awk '/^radiod_job_duration_seconds_sum/ { if ($NF + 0 > 0) found = 1 }
	END { exit !found }' "$METRICS" \
	|| { echo "FAIL: job-duration histogram sum is not positive" >&2; cat "$METRICS" >&2; exit 1; }

# Phase breakdown: present on the terminal job, every phase non-negative,
# parts sum bounded by the total (1ms slack for clock rounding).
curl -sf "$BASE/v1/jobs/$J1" >"$WORK/job.json"
awk -F': ' '
	/"queue_wait_ms"/ { qw = $2 + 0 }
	/"trials_ms"/     { tr = $2 + 0 }
	/"reduce_ms"/     { rd = $2 + 0 }
	/"persist_ms"/    { ps = $2 + 0 }
	/"total_ms"/      { tot = $2 + 0; seen = 1 }
	END {
		if (!seen) { print "no phase breakdown"; exit 1 }
		if (qw < 0 || tr < 0 || rd < 0 || ps < 0 || tot <= 0) { print "negative phase"; exit 1 }
		if (qw + tr + rd + ps > tot + 1) { print "phases exceed total"; exit 1 }
	}' "$WORK/job.json" \
	|| { echo "FAIL: phase breakdown missing or incoherent" >&2; cat "$WORK/job.json" >&2; exit 1; }
curl -sf "$BASE/v1/jobs/$J1/events" | grep -q '"type":"phases"' \
	|| { echo "FAIL: event stream has no phases event" >&2; exit 1; }

# Sweep stats: all four children fold into every phase rollup.
SWEEP='{
  "base": {"algorithm": "mis", "network": {"n": 16}, "trials": 2, "stop_when_decided": true},
  "axes": {"n": {"values": [12, 16]}, "gray_prob": {"values": [0.1, 0.3]}}
}'
SID="$(sweep_id "$(curl -sf -X POST "$BASE/v1/sweeps" -d "$SWEEP")")"
[ -n "$SID" ] || { echo "FAIL: sweep not accepted" >&2; exit 1; }
sweep_done() {
	curl -sf "$BASE/v1/sweeps/$1" | grep -q '"status": "done"'
}
poll "sweep completion" 60 sweep_done "$SID"
curl -sf "$BASE/v1/sweeps/$SID/stats" >"$WORK/stats.json"
grep -q '"terminal": 4' "$WORK/stats.json" \
	|| { echo "FAIL: sweep stats do not cover all children" >&2; cat "$WORK/stats.json" >&2; exit 1; }
for phase in queue_wait trials reduce persist total; do
	grep -q "\"$phase\"" "$WORK/stats.json" \
		|| { echo "FAIL: sweep stats lack phase $phase" >&2; cat "$WORK/stats.json" >&2; exit 1; }
done

echo "OK: /metrics lints with histograms, cache counters and phase timings are coherent, sweep stats roll up"
