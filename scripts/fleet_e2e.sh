#!/bin/sh
# fleet_e2e.sh — end-to-end check of distributed sweep execution with a
# mid-sweep worker crash. Two runs of the same 2×2 sweep:
#
#   reference: single-node radiod (-workers 1), sweep runs locally, CSV
#              report captured;
#   fleet:     coordinator-only radiod (-workers -1) plus two -worker
#              processes. A trial-delay fault slows the workers so every
#              child holds its lease for a while; worker w1 is killed with
#              SIGKILL while it holds a lease. The coordinator must declare
#              it dead, re-dispatch its in-flight child to the survivor,
#              and the final CSV report must be byte-identical to the
#              single-node run's.
#
# The re-dispatch is asserted observably: the journal records the
# redispatch op (checked before graceful shutdown compacts it away) and
# /metrics reports fleet_redispatched >= 1. Run from the repo root; used by
# CI (`make fleet-e2e`) and runnable locally.
set -eu

. "$(dirname "$0")/lib.sh"

ADDR="${ADDR:-127.0.0.1:18082}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""
W1PID=""
W2PID=""

cleanup() {
	for p in "$PID" "$W1PID" "$W2PID"; do
		[ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/radiod" ./cmd/radiod
go build -o "$WORK/promlint" ./cmd/promlint

# Slow every trial on the workers so the kill reliably lands while w1
# holds a lease; delays never change results.
FAULT_SPEC="$WORK/delay.json"
printf '{"rules": [{"kind": "trial-delay", "delay_ms": 400}]}\n' >"$FAULT_SPEC"

SWEEP='{
  "name": "fleet-e2e",
  "base": {"algorithm": "mis", "network": {"n": 24}, "trials": 2, "stop_when_decided": true},
  "axes": {"n": {"values": [16, 24]}, "gray_prob": {"values": [0.1, 0.3]}}
}'

submit_sweep() {
	curl -sf -X POST "$BASE/v1/sweeps" -d "$SWEEP"
}

sweep_done() {
	curl -sf "$BASE/v1/sweeps/$1" | grep -q '"done": 4'
}

fetch_report() {
	curl -sf "$BASE/v1/sweeps/$1/report?metric=mean_rounds&format=csv"
}

# Reference run: plain single-node daemon, no fleet, no faults.
"$WORK/radiod" -addr "$ADDR" -data "$WORK/data-ref" -workers 1 \
	>"$WORK/radiod.log" 2>&1 &
PID=$!
poll "radiod health" 15 healthy "$BASE"
REF_ID="$(sweep_id "$(submit_sweep)")"
[ -n "$REF_ID" ] || { echo "FAIL: reference sweep not accepted" >&2; exit 1; }
poll "reference sweep completion" 60 sweep_done "$REF_ID"
fetch_report "$REF_ID" >"$WORK/report_ref.csv"
kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# Fleet run: coordinator dispatches only to remote workers.
"$WORK/radiod" -addr "$ADDR" -data "$WORK/data-fleet" -workers -1 \
	-fleet-heartbeat 100ms >>"$WORK/radiod.log" 2>&1 &
PID=$!
poll "coordinator health" 15 healthy "$BASE"
"$WORK/radiod" -worker "$BASE" -worker-name w1 -worker-slots 1 \
	-fault-spec "$FAULT_SPEC" >"$WORK/w1.log" 2>&1 &
W1PID=$!
"$WORK/radiod" -worker "$BASE" -worker-name w2 -worker-slots 1 \
	-fault-spec "$FAULT_SPEC" >"$WORK/w2.log" 2>&1 &
W2PID=$!

ID="$(sweep_id "$(submit_sweep)")"
[ -n "$ID" ] || { echo "FAIL: fleet sweep not accepted" >&2; exit 1; }

# Kill -9 w1 the moment the fleet view shows it holding a lease. The
# snapshot is single-line JSON with a fixed field order per worker.
w1_leased() {
	curl -sf "$BASE/v1/fleet" | grep -q '"name":"w1","live":true,"active_leases":[1-9]'
}
poll "w1 to hold a lease" 30 w1_leased
kill -9 "$W1PID"
wait "$W1PID" 2>/dev/null || true
W1PID=""

poll "fleet sweep completion" 120 sweep_done "$ID"

# The re-dispatch must be observable before graceful shutdown compacts the
# journal: a redispatch record on disk and a nonzero counter in /metrics.
grep -q '"op":"redispatch"' "$WORK/data-fleet/journal.ndjson" \
	|| { echo "FAIL: journal holds no redispatch record" >&2; cat "$WORK/data-fleet/journal.ndjson" >&2; exit 1; }
curl -sf "$BASE/metrics" | grep -Eq '^radiod_fleet_redispatched [1-9]' \
	|| { echo "FAIL: /metrics shows no redispatch" >&2; curl -sf "$BASE/metrics" >&2; exit 1; }
curl -sf "$BASE/metrics" | grep -Eq '^radiod_fleet_workers_dead [1-9]' \
	|| { echo "FAIL: /metrics shows no dead worker" >&2; curl -sf "$BASE/metrics" >&2; exit 1; }

# The exposition must lint strictly and carry per-worker labeled series:
# both workers leased and polled, the survivor finished work, and only the
# survivor still reports a heartbeat age (dead workers' gauges are dropped
# at scrape time).
METRICS="$WORK/metrics.txt"
curl -sf "$BASE/metrics" >"$METRICS"
"$WORK/promlint" -min-histograms 1 \
	-require '^radiod_fleet_worker_leases_granted_total\{worker="w1"\} [1-9]' \
	-require '^radiod_fleet_worker_leases_granted_total\{worker="w2"\} [1-9]' \
	-require '^radiod_fleet_worker_rpc_total\{worker="w1",rpc="lease"\} [1-9]' \
	-require '^radiod_fleet_worker_completed_total\{worker="w2"\} [1-9]' \
	-require '^radiod_fleet_worker_heartbeat_age_seconds\{worker="w2"\}' \
	"$METRICS" \
	|| { echo "FAIL: fleet /metrics lacks per-worker series or fails lint" >&2; cat "$METRICS" >&2; exit 1; }
grep -q '^radiod_fleet_worker_heartbeat_age_seconds{worker="w1"}' "$METRICS" \
	&& { echo "FAIL: dead worker w1 still reports a heartbeat age" >&2; cat "$METRICS" >&2; exit 1; }

fetch_report "$ID" >"$WORK/report_fleet.csv"

cmp -s "$WORK/report_ref.csv" "$WORK/report_fleet.csv" || {
	echo "FAIL: fleet report differs from the single-node run" >&2
	diff "$WORK/report_ref.csv" "$WORK/report_fleet.csv" >&2 || true
	exit 1
}

echo "OK: sweep $ID survived kill -9 of a leased worker; re-dispatched to the survivor with a byte-identical report"
