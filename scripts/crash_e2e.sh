#!/bin/sh
# crash_e2e.sh — end-to-end crash-recovery check against a real radiod
# process. Two runs of the same 2×2 sweep:
#
#   reference: fresh daemon + fresh -data dir, sweep runs uninterrupted,
#              CSV report captured;
#   crashed:   fresh daemon + its own -data dir, daemon killed with SIGKILL
#              mid-sweep (after at least one child finished, before all
#              did), then restarted on the same dir. The journal replay
#              must resume the sweep under its original id — finished
#              children served from the persistent store, the rest
#              re-simulated — and the final CSV report must be
#              byte-identical to the uninterrupted run's.
#
# A trial-delay fault spec slows trials so the kill reliably lands
# mid-sweep; delays never change results. Set FAULT_SPEC to override (e.g.
# scripts/chaos_fault.json via `make chaos` adds transient errors and
# panics, which retry/panic-isolation must absorb without changing the
# report). Run from the repo root; used by CI and runnable locally.
set -eu

. "$(dirname "$0")/lib.sh"

ADDR="${ADDR:-127.0.0.1:18081}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""

cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/radiod" ./cmd/radiod

if [ -z "${FAULT_SPEC:-}" ]; then
	FAULT_SPEC="$WORK/delay.json"
	printf '{"rules": [{"kind": "trial-delay", "delay_ms": 120}]}\n' >"$FAULT_SPEC"
fi

# -workers 1 serializes the children so "some done, some not" is a wide,
# reliable kill window; -retry-backoff keeps chaos-spec retries fast.
start_daemon() {
	data="$1"
	"$WORK/radiod" -addr "$ADDR" -data "$data" -workers 1 \
		-fault-spec "$FAULT_SPEC" -retry-backoff 20ms >>"$WORK/radiod.log" 2>&1 &
	PID=$!
	poll "radiod health" 15 healthy "$BASE"
}

stop_daemon() {
	kill "$PID"
	wait "$PID" 2>/dev/null || true
	PID=""
}

SWEEP='{
  "name": "crash-e2e",
  "base": {"algorithm": "mis", "network": {"n": 24}, "trials": 2, "stop_when_decided": true},
  "axes": {"n": {"values": [16, 24]}, "gray_prob": {"values": [0.1, 0.3]}}
}'

submit_sweep() {
	curl -sf -X POST "$BASE/v1/sweeps" -d "$SWEEP"
}

# The detail view also renders each child's "status", so the sweep's own
# completion is detected through its status-counts rollup: all 4 children
# done.
sweep_done() {
	curl -sf "$BASE/v1/sweeps/$1" | grep -q '"done": 4'
}

wait_done() {
	poll "sweep $1 completion" 60 sweep_done "$1"
}

fetch_report() {
	curl -sf "$BASE/v1/sweeps/$1/report?metric=mean_rounds&format=csv"
}

# Reference run: uninterrupted, its own store.
start_daemon "$WORK/data-ref"
REF_ID="$(sweep_id "$(submit_sweep)")"
[ -n "$REF_ID" ] || { echo "FAIL: reference sweep not accepted" >&2; exit 1; }
wait_done "$REF_ID"
fetch_report "$REF_ID" >"$WORK/report_ref.csv"
stop_daemon

# Crash run: kill -9 once the sweep is strictly mid-flight.
start_daemon "$WORK/data-crash"
ID="$(sweep_id "$(submit_sweep)")"
[ -n "$ID" ] || { echo "FAIL: crash-run sweep not accepted" >&2; exit 1; }
KILLED=0
DEADLINE=$(($(date +%s) + 60))
while [ "$(date +%s)" -lt "$DEADLINE" ]; do
	COUNTS="$(curl -sf "$BASE/v1/sweeps/$ID" || true)"
	if printf '%s' "$COUNTS" | grep -q '"done": 4'; then
		break
	fi
	if printf '%s' "$COUNTS" | grep -Eq '"done": [1-3]'; then
		kill -9 "$PID"
		wait "$PID" 2>/dev/null || true
		PID=""
		KILLED=1
		break
	fi
	sleep 0.05
done
[ "$KILLED" -eq 1 ] || { echo "FAIL: sweep finished before the kill window" >&2; exit 1; }

# Restart on the crashed store: the journal must resume the sweep.
start_daemon "$WORK/data-crash"
curl -sf "$BASE/healthz" | grep -q '"replayed_sweeps": 1' \
	|| { echo "FAIL: restart did not replay the sweep" >&2; curl -sf "$BASE/healthz" >&2; exit 1; }
curl -sf "$BASE/v1/sweeps/$ID" >/dev/null \
	|| { echo "FAIL: resumed sweep lost its id $ID" >&2; exit 1; }
wait_done "$ID"
fetch_report "$ID" >"$WORK/report_crash.csv"
stop_daemon

cmp -s "$WORK/report_ref.csv" "$WORK/report_crash.csv" || {
	echo "FAIL: post-crash report differs from the uninterrupted run" >&2
	diff "$WORK/report_ref.csv" "$WORK/report_crash.csv" >&2 || true
	exit 1
}

echo "OK: sweep $ID survived kill -9 mid-run; resumed report is byte-identical to the uninterrupted run"
