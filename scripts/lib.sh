# lib.sh — shared helpers for the e2e scripts. POSIX sh; source after
# defining WORK (poll dumps $WORK/radiod.log on timeout when present).

# poll <what> <seconds> <cmd...> — run cmd (silenced) until it succeeds or
# the wall-clock deadline passes. Bounded by elapsed time, not iteration
# count, so a slow machine gets the full window instead of a smaller one.
poll() {
	_what="$1"
	_secs="$2"
	shift 2
	_deadline=$(($(date +%s) + _secs))
	until "$@" >/dev/null 2>&1; do
		if [ "$(date +%s)" -ge "$_deadline" ]; then
			echo "FAIL: timed out after ${_secs}s waiting for $_what" >&2
			[ -f "${WORK:-}/radiod.log" ] && cat "$WORK/radiod.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# healthy <base-url> — true once /healthz answers.
healthy() {
	curl -sf "$1/healthz" >/dev/null 2>&1
}

# sweep_id <accept-json> — extract the sweep id from a submission response.
sweep_id() {
	printf '%s' "$1" | sed -n 's/.*"id": "\(s[0-9]*\)".*/\1/p' | head -n 1
}
