#!/bin/sh
# sweep_e2e.sh — end-to-end check of the sweep + durability + report layer
# against a real radiod process: boot with a temp -data dir, run a 2×2
# sweep over HTTP, fetch its CSV report, restart the daemon, resubmit the
# identical sweep, and assert every child is served from the persistent
# store ("cached":true) without re-simulation AND that the post-restart CSV
# report is byte-identical to the pre-restart one. Run from the repo root;
# used by CI and runnable locally.
set -eu

. "$(dirname "$0")/lib.sh"

ADDR="${ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DATA="$WORK/data"
PID=""

cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/radiod" ./cmd/radiod

start_daemon() {
	"$WORK/radiod" -addr "$ADDR" -data "$DATA" >"$WORK/radiod.log" 2>&1 &
	PID=$!
	poll "radiod health" 15 healthy "$BASE"
}

stop_daemon() {
	kill "$PID"
	wait "$PID" 2>/dev/null || true
	PID=""
}

SWEEP='{
  "name": "e2e",
  "base": {"algorithm": "mis", "network": {"n": 24}, "trials": 2, "stop_when_decided": true},
  "axes": {"n": {"values": [16, 24]}, "gray_prob": {"values": [0.1, 0.3]}}
}'

submit_sweep() {
	curl -sf -X POST "$BASE/v1/sweeps" -d "$SWEEP"
}

# Poll the listing view: it omits children, so the only '"status": ...'
# field in the body is the sweep's own (the detail view would also match a
# finished child's status).
listing_done() {
	curl -sf "$BASE/v1/sweeps" | grep -q '"status": "done"'
}

wait_done() {
	poll "sweep $1 completion" 30 listing_done
	curl -sf "$BASE/v1/sweeps/$1"
}

fetch_report() {
	curl -sf "$BASE/v1/sweeps/$1/report?metric=mean_rounds&format=csv"
}

# Round 1: fresh daemon, fresh store — the sweep simulates for real.
start_daemon
ACCEPT1="$(submit_sweep)"
ID1="$(sweep_id "$ACCEPT1")"
[ -n "$ID1" ] || { echo "FAIL: no sweep id in: $ACCEPT1" >&2; exit 1; }
DONE1="$(wait_done "$ID1")"
HASH1="$(printf '%s' "$DONE1" | sed -n 's/.*"sweep_hash": "\([0-9a-f]*\)".*/\1/p' | head -n 1)"
STORED="$(ls "$DATA"/*.json 2>/dev/null | wc -l)"
[ "$STORED" -eq 4 ] || { echo "FAIL: store holds $STORED results, want 4" >&2; exit 1; }
fetch_report "$ID1" >"$WORK/report1.csv" \
	|| { echo "FAIL: no CSV report for $ID1" >&2; exit 1; }
grep -q 'n\\gray_prob' "$WORK/report1.csv" \
	|| { echo "FAIL: report lacks the pivot header:" >&2; cat "$WORK/report1.csv" >&2; exit 1; }
stop_daemon

# Round 2: restarted daemon, same store — every child must be a cache hit.
start_daemon
ACCEPT2="$(submit_sweep)"
ID2="$(sweep_id "$ACCEPT2")"
HASH2="$(printf '%s' "$ACCEPT2" | sed -n 's/.*"sweep_hash": "\([0-9a-f]*\)".*/\1/p' | head -n 1)"
[ "$HASH1" = "$HASH2" ] || { echo "FAIL: sweep hash changed across restart: $HASH1 vs $HASH2" >&2; exit 1; }
printf '%s' "$ACCEPT2" | grep -q '"status": "done"' \
	|| { echo "FAIL: restarted sweep not done at submission: $ACCEPT2" >&2; exit 1; }
CACHED="$(printf '%s' "$ACCEPT2" | grep -c '"cached": true')"
[ "$CACHED" -eq 4 ] || { echo "FAIL: $CACHED/4 children cached after restart" >&2; exit 1; }
# The report over the store-served sweep must be byte-identical to the one
# computed from the fresh simulations before the restart.
fetch_report "$ID2" >"$WORK/report2.csv" \
	|| { echo "FAIL: no CSV report for $ID2 after restart" >&2; exit 1; }
cmp -s "$WORK/report1.csv" "$WORK/report2.csv" || {
	echo "FAIL: CSV report changed across restart" >&2
	diff "$WORK/report1.csv" "$WORK/report2.csv" >&2 || true
	exit 1
}
stop_daemon

echo "OK: 2x2 sweep $ID1/$ID2 hash=$HASH1 survived restart with 4/4 store hits and a byte-identical CSV report"
