package dualradio_test

import (
	"math/rand/v2"
	"testing"

	"dualradio"
)

func TestFacadeMIS(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 96, Seed: 5})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("model invariants: %v", err)
	}
	res, err := dualradio.BuildMIS(net, dualradio.RunOptions{Seed: 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if res.Size() == 0 {
		t.Error("empty MIS")
	}
}

func TestFacadeCCDS(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 96, Seed: 6})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := dualradio.BuildCCDS(net, dualradio.RunOptions{Seed: 6, MessageBits: 512})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	flood, back, err := dualradio.BroadcastCost(net, res, 0)
	if err != nil {
		t.Fatalf("broadcast cost: %v", err)
	}
	if back >= flood {
		t.Errorf("backbone broadcast (%d tx) should beat flooding (%d tx)", back, flood)
	}
}

func TestFacadeCCDSRejectsTauNetwork(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 7, Tau: 1})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := dualradio.BuildCCDS(net, dualradio.RunOptions{Seed: 7, MessageBits: 512}); err == nil {
		t.Error("BuildCCDS accepted a tau>0 network")
	}
}

func TestFacadeTauCCDS(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 8, Tau: 1})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := dualradio.BuildTauCCDS(net, dualradio.RunOptions{Seed: 8, MessageBits: 1 << 15})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestFacadeAsyncMIS(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 9, GrayProb: -1})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	wake := make([]int, net.N())
	for v := range wake {
		wake[v] = rng.IntN(300)
	}
	res, err := dualradio.BuildMISAsync(net, wake, true, dualradio.RunOptions{Seed: 9})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for v, l := range res.Latency {
		if l < 0 {
			t.Errorf("node %d never decided", v)
		}
	}
}

func TestFacadeContinuousCCDS(t *testing.T) {
	net, err := dualradio.Generate(dualradio.NetworkOptions{Nodes: 64, Seed: 10})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	period, err := dualradio.CCDSRounds(net.N(), net.Delta(), 512)
	if err != nil {
		t.Fatalf("period: %v", err)
	}
	stab := period + period/2
	checkpoint := stab + 2*period
	res, err := dualradio.BuildContinuousCCDS(net, 2, stab, 5, []int{checkpoint},
		dualradio.RunOptions{Seed: 10, MessageBits: 512})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := res.VerifyAt(checkpoint); err != nil {
		t.Errorf("not solved at r+2δ: %v", err)
	}
}
