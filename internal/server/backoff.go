package server

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"time"
)

// retryDelay computes the backoff before retry `attempt` of the job with
// the given id: base<<attempt capped at max, plus up to 50% jitter to
// decorrelate retry herds. The jitter is seeded by (id, attempt), so the
// schedule is a pure function of the job's identity: a replayed run, a
// test, and a fleet re-dispatch all observe the same delays, and distinct
// jobs still spread out.
func retryDelay(base, max time.Duration, id string, attempt int) time.Duration {
	d := base << attempt
	// Large attempt counts shift to zero or overflow negative; both mean
	// "past the cap", exactly like a shifted value that exceeds max.
	if d <= 0 || d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	seed := h.Sum64()
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return d + time.Duration(r.Int64N(int64(d)/2+1))
}
