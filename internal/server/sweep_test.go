package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"dualradio/internal/scenario"
)

// quickSweep is a 3-axis 2×2×2 grid of fast MIS workloads
// (n × gray_prob × adversary).
func quickSweep(seed uint64) scenario.SweepSpec {
	return scenario.SweepSpec{
		Name: "quick grid",
		Base: scenario.Spec{
			Algorithm:       scenario.AlgoMIS,
			Network:         scenario.NetworkSpec{N: 16},
			Trials:          1,
			Seed:            seed,
			StopWhenDecided: true,
		},
		Axes: scenario.SweepAxes{
			N:        &scenario.Axis{Values: []float64{16, 24}},
			GrayProb: &scenario.Axis{Values: []float64{0.1, 0.3}},
			Adversary: []scenario.AdversarySpec{
				{Kind: scenario.AdvCollision},
				{Kind: scenario.AdvNone},
			},
		},
	}
}

func waitForSweepDone(t *testing.T, sw *Sweep) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := sw.View(true)
		if v.Status == "done" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSweepLifecycleHTTP(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", quickSweep(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d, body %s", resp.StatusCode, body)
	}
	var accepted SweepView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || accepted.Total != 8 || accepted.SweepHash == "" || len(accepted.Children) != 8 {
		t.Fatalf("bad accepted sweep view: %+v", accepted)
	}

	sw, ok := svc.Sweep(accepted.ID)
	if !ok {
		t.Fatalf("sweep %s not registered", accepted.ID)
	}
	done := waitForSweepDone(t, sw)
	if done.Counts[StatusDone] != 8 {
		t.Fatalf("sweep rollup counts %v, want 8 done", done.Counts)
	}

	// Every child is an ordinary job with its own result.
	for _, c := range done.Children {
		code, view := getJSON[JobView](t, ts.URL+"/v1/jobs/"+c.ID)
		if code != http.StatusOK || view.Result == nil {
			t.Fatalf("child %s: code %d result %v", c.ID, code, view.Result)
		}
		if view.Spec.Name == "" {
			t.Errorf("child %s has no coordinate name", c.ID)
		}
	}

	// The event stream: queued, 8 child completions, done; the completed
	// counter reaches the total.
	events := streamSweepEvents(t, ts.URL+"/v1/sweeps/"+accepted.ID+"/events")
	if events[0].Type != "queued" || events[len(events)-1].Type != "done" {
		t.Fatalf("event envelope wrong: %+v", events)
	}
	children := 0
	for _, e := range events {
		if e.Type == "child" {
			children++
			if e.Job == "" || e.SpecHash == "" || e.Status != StatusDone {
				t.Fatalf("bad child event %+v", e)
			}
		}
	}
	if children != 8 {
		t.Fatalf("%d child events, want 8", children)
	}
	if last := events[len(events)-1]; last.Completed != 8 || last.Total != 8 {
		t.Fatalf("final event counters %d/%d, want 8/8", last.Completed, last.Total)
	}

	// Listing shows the sweep without children.
	code, list := getJSON[struct{ Sweeps []SweepView }](t, ts.URL+"/v1/sweeps")
	if code != http.StatusOK || len(list.Sweeps) != 1 || len(list.Sweeps[0].Children) != 0 {
		t.Fatalf("bad sweep listing: %d, %+v", code, list)
	}

	// Resubmitting the identical sweep is served wholly from the cache:
	// same sweep hash, every child cached, terminal immediately.
	resp, body = postJSON(t, ts.URL+"/v1/sweeps", quickSweep(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", resp.StatusCode)
	}
	var second SweepView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.SweepHash != accepted.SweepHash {
		t.Fatal("identical sweep hashed differently")
	}
	if second.Status != "done" {
		t.Fatalf("cached sweep status %q at submission", second.Status)
	}
	for _, c := range second.Children {
		if !c.Cached {
			t.Fatalf("child %s of cached sweep not cached", c.ID)
		}
	}

	// Malformed sweeps are rejected loudly.
	resp, _ = postJSON(t, ts.URL+"/v1/sweeps", map[string]any{"base": map[string]any{"algorithm": "mis"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid sweep: status %d", resp.StatusCode)
	}
}

func TestSweepResultsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, DataDir: dir}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	swp, err := svc.SubmitSweep(quickSweep(7))
	if err != nil {
		t.Fatal(err)
	}
	first := waitForSweepDone(t, swp)
	results := map[string][]byte{} // child spec hash → marshaled result
	for i, c := range first.Children {
		job := swp.children[i]
		data, err := json.Marshal(job.View(true).Result)
		if err != nil {
			t.Fatal(err)
		}
		results[c.SpecHash] = data
	}
	svc.Close()

	// A fresh daemon over the same data dir must serve the identical sweep
	// entirely from the persistent store: every child cached, results
	// byte-identical, zero re-simulation (nothing ever enters the queue).
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	swp2, err := svc2.SubmitSweep(quickSweep(7))
	if err != nil {
		t.Fatal(err)
	}
	if swp2.hash != swp.hash {
		t.Fatal("sweep hash changed across restart")
	}
	second := swp2.View(true)
	if second.Status != "done" {
		t.Fatalf("restarted sweep status %q at submission, want done", second.Status)
	}
	if len(second.Children) != len(first.Children) {
		t.Fatalf("child count changed: %d vs %d", len(second.Children), len(first.Children))
	}
	for i, c := range second.Children {
		if !c.Cached {
			t.Fatalf("child %s re-simulated after restart", c.ID)
		}
		if c.SpecHash != first.Children[i].SpecHash {
			t.Fatalf("child order changed across restart at %d", i)
		}
		data, err := json.Marshal(swp2.children[i].View(true).Result)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(data, results[c.SpecHash]) {
			t.Fatalf("child %s result not byte-identical across restart:\n%s\n%s",
				c.ID, results[c.SpecHash], data)
		}
	}
	if got := len(svc2.queue); got != 0 {
		t.Fatalf("%d jobs queued for a fully stored sweep", got)
	}
}

func TestSweepRejectedWhenQueueCannotFitAllChildren(t *testing.T) {
	// 8 fresh children cannot fit a depth-2 queue: the sweep must be
	// rejected atomically — no children admitted, no sweep registered.
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	blocker, err := svc.Submit(quickSpec(4000, 99))
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Cancel()
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", quickSweep(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized sweep: status %d, body %s", resp.StatusCode, body)
	}
	code, list := getJSON[struct{ Sweeps []SweepView }](t, ts.URL+"/v1/sweeps")
	if code != http.StatusOK || len(list.Sweeps) != 0 {
		t.Fatalf("rejected sweep registered: %+v", list)
	}
	code, jobs := getJSON[struct{ Jobs []JobView }](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(jobs.Jobs) != 1 {
		t.Fatalf("rejected sweep leaked children into the registry: %d jobs", len(jobs.Jobs))
	}
}

func TestOverBudgetRejectedWith429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxPendingCost: 1})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(2, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget job: status %d, body %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/sweeps", quickSweep(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget sweep: status %d, body %s", resp.StatusCode, body)
	}
	// Nothing was admitted.
	code, jobs := getJSON[struct{ Jobs []JobView }](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(jobs.Jobs) != 0 {
		t.Fatalf("over-budget submissions leaked: %d jobs", len(jobs.Jobs))
	}
}

func TestAdmissionBudgetReleasedOnTerminal(t *testing.T) {
	// Budget fits exactly one copy of the workload: the second distinct
	// submission is rejected while the first is pending and admitted once
	// the first terminates (cancellation releases the charge too).
	spec := quickSpec(4000, 1)
	comp, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Workers: 1, MaxPendingCost: comp.CostEstimate()})
	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(quickSpec(4000, 2)); err == nil {
		t.Fatal("second workload admitted beyond the budget")
	}
	first.Cancel()
	waitForStatus(t, ts.URL+"/v1/jobs/"+first.id, StatusCancelled)
	second, err := svc.Submit(quickSpec(4000, 2))
	if err != nil {
		t.Fatalf("budget not released on cancellation: %v", err)
	}
	second.Cancel()
}

func streamSweepEvents(t *testing.T, url string) []SweepEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var events []SweepEvent
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var e SweepEvent
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("empty sweep event stream")
	}
	return events
}
