package server

import (
	"fmt"
	"sync"
	"time"

	"dualradio/internal/scenario"
)

// Sweep is one submitted parameter sweep: a batch of child jobs expanded
// from a SweepSpec, tracked together so callers get a per-child rollup and
// a completion event stream without polling every child. Children are
// ordinary jobs — they appear under /v1/jobs, share the queue, the result
// cache, and the persistent store — and the sweep only observes them.
type Sweep struct {
	id    string
	hash  string
	name  string
	total int
	exp   *scenario.Expansion // immutable; axes + grid for report pivoting

	mu       sync.Mutex
	children []*Job // grid order; fully populated before the sweep is published
	done     int    // children that reached a terminal state
	created  time.Time
	finished time.Time
	events   []SweepEvent
	wake     chan struct{} // closed and replaced whenever events grows
}

// SweepEvent is one NDJSON record on a sweep's event stream: "queued" at
// submission, one "child" per child reaching a terminal state (in
// completion order, so concurrently running children interleave), and
// finally "done" when every child is terminal.
type SweepEvent struct {
	Type  string `json:"type"`
	Sweep string `json:"sweep"`
	// TS is the wallclock append time — observability only, never hashed.
	TS time.Time `json:"ts"`
	// Job, SpecHash, Status, and Cached describe the finished child on
	// "child" events.
	Job      string    `json:"job,omitempty"`
	SpecHash string    `json:"spec_hash,omitempty"`
	Status   JobStatus `json:"status,omitempty"`
	Cached   bool      `json:"cached,omitempty"`
	// Completed and Total count terminal children.
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

func newSweep(id string, exp *scenario.Expansion) *Sweep {
	sw := &Sweep{
		id:       id,
		hash:     exp.Hash(),
		name:     exp.Spec.Name,
		exp:      exp,
		total:    len(exp.Children),
		children: make([]*Job, len(exp.Children)),
		created:  time.Now(), //detvet:wallclock sweep age for status views; not part of any hash or report
		wake:     make(chan struct{}),
	}
	sw.appendLocked(SweepEvent{Type: "queued"})
	return sw
}

// appendLocked records an event and wakes stream readers. Callers must
// hold mu — except newSweep, whose sweep is not yet shared.
func (sw *Sweep) appendLocked(e SweepEvent) {
	e.Sweep = sw.id
	e.TS = time.Now() //detvet:wallclock NDJSON event timestamp; hash-excluded and shape-stable
	e.Completed = sw.done
	e.Total = sw.total
	sw.events = append(sw.events, e)
	close(sw.wake)
	sw.wake = make(chan struct{})
}

// childTerminal is the child jobs' terminal hook. It runs with no job or
// server lock held (see Job.onTerminal), exactly once per child.
func (sw *Sweep) childTerminal(j *Job) {
	v := j.View(false)
	sw.mu.Lock()
	sw.done++
	sw.appendLocked(SweepEvent{
		Type:     "child",
		Job:      v.ID,
		SpecHash: v.SpecHash,
		Status:   v.Status,
		Cached:   v.Cached,
	})
	if sw.done == sw.total {
		sw.finished = time.Now() //detvet:wallclock sweep duration for status views only
		sw.appendLocked(SweepEvent{Type: "done"})
	}
	sw.mu.Unlock()
}

// terminal reports whether every child has reached a terminal state.
func (sw *Sweep) terminal() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.done == sw.total
}

// eventsSince mirrors Job.eventsSince for the sweep stream.
func (sw *Sweep) eventsSince(from int) (events []SweepEvent, terminal bool, wake <-chan struct{}) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if from < len(sw.events) {
		return append([]SweepEvent(nil), sw.events[from:]...), sw.done == sw.total, nil
	}
	return nil, sw.done == sw.total, sw.wake
}

// reportData hands the report engine its inputs: the sweep's expansion,
// the child aggregates in grid order, and the presence mask. A full report
// (partial=false) requires every child done — a failed or cancelled child
// has no aggregate, and a silently partial pivot would misrepresent the
// grid. Partial mode instead masks out children that are not (yet) done,
// so callers can watch an in-flight sweep converge; done counts the
// present children so the caller can label the report's completeness.
func (sw *Sweep) reportData(partial bool) (exp *scenario.Expansion, aggs []scenario.Aggregate, present []bool, done int, err error) {
	aggs = make([]scenario.Aggregate, len(sw.children))
	present = make([]bool, len(sw.children))
	for i, j := range sw.children {
		if st := j.Status(); st != StatusDone {
			if !partial {
				return nil, nil, nil, 0, fmt.Errorf("child %s is %s, not done", j.id, st)
			}
			continue
		}
		res := j.Result()
		if res == nil {
			if !partial {
				return nil, nil, nil, 0, fmt.Errorf("child %s has no result", j.id)
			}
			continue
		}
		aggs[i] = res.Aggregate
		present[i] = true
		done++
	}
	return sw.exp, aggs, present, done, nil
}

// PhaseStat summarizes one timing phase across a sweep's terminal
// children, in milliseconds.
type PhaseStat struct {
	Count  int     `json:"count"`
	MinMS  float64 `json:"min_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
	SumMS  float64 `json:"sum_ms"`
}

// SweepStats is the GET /v1/sweeps/{id}/stats payload: per-phase timing
// rollups over the terminal children, plus status and cache-hit counts so
// the reader can interpret them (cached children contribute near-zero
// totals and no trial/reduce time).
type SweepStats struct {
	ID       string            `json:"id"`
	Total    int               `json:"total"`
	Terminal int               `json:"terminal"`
	Cached   int               `json:"cached"`
	Counts   map[JobStatus]int `json:"counts"`
	// Phases keys: queue_wait, trials, reduce, persist, total.
	Phases map[string]PhaseStat `json:"phases"`
}

// Stats rolls the terminal children's phase breakdowns up into per-phase
// count/min/mean/max/sum. Non-terminal children are excluded (their
// phases are not final); callers can poll until Terminal == Total.
func (sw *Sweep) Stats() SweepStats {
	st := SweepStats{
		ID:     sw.id,
		Total:  sw.total,
		Counts: make(map[JobStatus]int, 4),
		Phases: make(map[string]PhaseStat, 5),
	}
	fold := func(name string, v float64) {
		ps := st.Phases[name]
		if ps.Count == 0 || v < ps.MinMS {
			ps.MinMS = v
		}
		if v > ps.MaxMS {
			ps.MaxMS = v
		}
		ps.SumMS += v
		ps.Count++
		st.Phases[name] = ps
	}
	for _, j := range sw.children {
		v := j.View(false)
		st.Counts[v.Status]++
		if v.Phases == nil {
			continue
		}
		st.Terminal++
		if v.Cached {
			st.Cached++
		}
		fold("queue_wait", v.Phases.QueueWaitMS)
		fold("trials", v.Phases.TrialsMS)
		fold("reduce", v.Phases.ReduceMS)
		fold("persist", v.Phases.PersistMS)
		fold("total", v.Phases.TotalMS)
	}
	for name, ps := range st.Phases {
		ps.MeanMS = ps.SumMS / float64(ps.Count)
		st.Phases[name] = ps
	}
	return st
}

// CancelChildren cancels every non-terminal child and reports how many
// cancellations took effect.
func (sw *Sweep) CancelChildren() int {
	n := 0
	for _, j := range sw.children {
		if j.Cancel() {
			n++
		}
	}
	return n
}

// SweepChildView is one child's summary in the sweep rollup.
type SweepChildView struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	SpecHash string    `json:"spec_hash"`
	Status   JobStatus `json:"status"`
	Cached   bool      `json:"cached,omitempty"`
	// Completed and Total track the child's trial progress.
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// SweepView is the JSON representation served by the sweeps endpoints.
type SweepView struct {
	ID        string `json:"id"`
	SweepHash string `json:"sweep_hash"`
	Name      string `json:"name,omitempty"`
	// Status is "running" until every child is terminal, then "done".
	Status   string     `json:"status"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Total counts children; Counts rolls their statuses up.
	Total  int               `json:"total"`
	Counts map[JobStatus]int `json:"counts"`
	// Children lists per-child summaries in grid order (full view only).
	Children []SweepChildView `json:"children,omitempty"`
}

// View snapshots the sweep. withChildren includes the per-child summaries;
// listings omit them.
func (sw *Sweep) View(withChildren bool) SweepView {
	sw.mu.Lock()
	finished, created := sw.finished, sw.created
	done := sw.done
	children := sw.children
	sw.mu.Unlock()
	v := SweepView{
		ID:        sw.id,
		SweepHash: sw.hash,
		Name:      sw.name,
		Status:    "running",
		Created:   created,
		Total:     sw.total,
		Counts:    make(map[JobStatus]int, 4),
	}
	if done == sw.total {
		v.Status = "done"
	}
	if !finished.IsZero() {
		t := finished
		v.Finished = &t
	}
	for _, j := range children {
		jv := j.View(false)
		v.Counts[jv.Status]++
		if withChildren {
			v.Children = append(v.Children, SweepChildView{
				ID:        jv.ID,
				Name:      jv.Spec.Name,
				SpecHash:  jv.SpecHash,
				Status:    jv.Status,
				Cached:    jv.Cached,
				Completed: jv.Completed,
				Total:     jv.Total,
			})
		}
	}
	return v
}
