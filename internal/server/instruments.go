package server

import (
	"errors"
	"time"

	"dualradio/internal/metrics"
	"dualradio/internal/scenario"
)

// srvMetrics is the server's instrument set on its metrics registry: the
// counters and histograms every layer reports into. The gauges /healthz
// and the historical /metrics endpoint exposed keep their names and are
// refreshed at scrape time (see registerBaseGauges), so existing scrape
// pipelines keep working unchanged.
type srvMetrics struct {
	cacheHits   metrics.Counter
	cacheMisses metrics.Counter
	storeHits   metrics.Counter
	storeMisses metrics.Counter

	admissions metrics.CounterVec // kind (job|sweep), outcome
	attempts   metrics.CounterVec // outcome
	trials     metrics.Counter

	queueWait     metrics.HistogramVec // algorithm
	jobDuration   metrics.HistogramVec // algorithm, preset
	trialDuration metrics.HistogramVec // algorithm
	journalAppend metrics.Histogram
	storePut      metrics.Histogram
	storeGC       metrics.Histogram
}

// ioBuckets shapes the journal/store latency histograms: 10µs to ~2.6s in
// ×4 steps — file appends and renames live far below the trial-latency
// range metrics.LatencyBuckets covers.
var ioBuckets = metrics.ExpBuckets(1e-5, 4, 10)

func newServerInstruments(r *metrics.Registry) *srvMetrics {
	return &srvMetrics{
		cacheHits:   r.Counter("radiod_cache_hits_total", "Result lookups served by the in-memory LRU."),
		cacheMisses: r.Counter("radiod_cache_misses_total", "Result lookups that missed the in-memory LRU."),
		storeHits:   r.Counter("radiod_store_hits_total", "LRU misses served by the persistent store."),
		storeMisses: r.Counter("radiod_store_misses_total", "Result lookups that missed both tiers."),

		admissions: r.CounterVec("radiod_admissions_total", "Submission admission outcomes, by kind (job|sweep).", "kind", "outcome"),
		attempts:   r.CounterVec("radiod_job_attempts_total", "Job attempt outcomes (done, cached, failed, deadline, cancelled, retry).", "outcome"),
		trials:     r.Counter("radiod_trials_completed_total", "Trials completed by this process's local pool."),

		queueWait:     r.HistogramVec("radiod_queue_wait_seconds", "Time from admission (or requeue) to execution start.", metrics.LatencyBuckets, "algorithm"),
		jobDuration:   r.HistogramVec("radiod_job_duration_seconds", "Submission-to-done wallclock of completed, non-cached jobs.", metrics.LatencyBuckets, "algorithm", "preset"),
		trialDuration: r.HistogramVec("radiod_trial_duration_seconds", "Per-trial wallclock in the local pool.", metrics.LatencyBuckets, "algorithm"),
		journalAppend: r.Histogram("radiod_journal_append_seconds", "Journal record append latency.", ioBuckets),
		storePut:      r.Histogram("radiod_store_put_seconds", "Persistent store write latency (including write-once no-ops).", ioBuckets),
		storeGC:       r.Histogram("radiod_store_gc_seconds", "Persistent store byte-cap GC pass latency.", ioBuckets),
	}
}

// admit counts one admission decision for kind ("job" or "sweep"),
// mapping the error to its outcome label. The "closed" outcome is counted
// at its call sites (a plain errors.New, not a sentinel).
func (m *srvMetrics) admit(kind string, err error) {
	outcome := "accepted"
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		outcome = "queue_full"
	case errors.Is(err, ErrOverBudget):
		outcome = "over_budget"
	default:
		outcome = "invalid"
	}
	m.admissions.With(kind, outcome).Inc()
}

// presetLabel is the preset dimension of the job-duration histogram: the
// spec's cosmetic name when set (presets always name themselves), "custom"
// otherwise. Arbitrary user-supplied names are bounded by the registry's
// series cap.
func presetLabel(spec scenario.Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "custom"
}

// registerBaseGauges migrates every gauge the pre-registry /metrics
// endpoint emitted onto the registry, under the same metric names, plus
// the registry's own dropped-series gauge. Values derived from live state
// are refreshed by a collect hook at scrape time; fixed configuration is
// set once.
func (s *Server) registerBaseGauges() {
	r := s.metrics
	jobs := r.Gauge("radiod_jobs", "Registered jobs (live plus retained terminal).")
	sweeps := r.Gauge("radiod_sweeps", "Registered sweeps.")
	queued := r.Gauge("radiod_queued", "Jobs waiting in the queue.")
	cacheLen := r.Gauge("radiod_cache_len", "Resident result-cache entries.")
	pendingCost := r.Gauge("radiod_pending_cost", "Admission-cost estimate of queued plus running jobs.")
	retries := r.Gauge("radiod_retries", "Transient-failure retries scheduled.")
	calibJobs := r.Gauge("radiod_calibration_jobs", "Completed non-cached runs feeding the cost calibration.")
	nsPerUnit := r.Gauge("radiod_ns_per_cost_unit", "Measured nanoseconds per admission cost unit.")
	fleetLive := r.Gauge("radiod_fleet_workers_live", "Live fleet workers.")
	fleetDead := r.Gauge("radiod_fleet_workers_dead", "Fleet workers declared dead.")
	fleetActive := r.Gauge("radiod_fleet_leases_active", "Outstanding fleet leases.")
	fleetGranted := r.Gauge("radiod_fleet_leases_granted", "Work-unit leases granted.")
	fleetCompleted := r.Gauge("radiod_fleet_completed", "Remotely completed jobs.")
	fleetFailed := r.Gauge("radiod_fleet_failed", "Remotely failed jobs.")
	fleetRedispatched := r.Gauge("radiod_fleet_redispatched", "Leases returned to the queue.")
	fleetExpired := r.Gauge("radiod_fleet_leases_expired", "Leases expired by TTL.")
	fleetAdopted := r.Gauge("radiod_fleet_adopted", "Late results adopted from void leases.")

	r.Gauge("radiod_queue_depth", "Queue capacity.").Set(float64(s.cfg.QueueDepth))
	r.Gauge("radiod_workers", "Local worker-pool size.").Set(float64(s.cfg.Workers))
	r.Gauge("radiod_cache_cap", "Result-cache capacity.").Set(float64(s.cfg.CacheSize))
	r.Gauge("radiod_max_pending_cost", "Admission cost budget.").Set(float64(s.cfg.MaxPendingCost))
	r.GaugeFunc("radiod_metrics_dropped_series", "Instrument acquisitions collapsed onto overflow series by the cardinality cap.",
		func() float64 { return float64(r.DroppedSeries()) })

	r.OnCollect(func() {
		s.mu.Lock()
		jobsN, sweepsN := len(s.jobs), len(s.sweeps)
		s.mu.Unlock()
		jobs.Set(float64(jobsN))
		sweeps.Set(float64(sweepsN))
		queued.Set(float64(len(s.queue)))
		cacheLen.Set(float64(s.results.Len()))
		pendingCost.Set(float64(s.pending.Load()))
		retries.Set(float64(s.retries.Load()))
		cj, ns := s.Calibration()
		calibJobs.Set(float64(cj))
		nsPerUnit.Set(ns)
		fc := s.fleet.Snapshot().Counters
		fleetLive.Set(float64(fc.WorkersLive))
		fleetDead.Set(float64(fc.WorkersDead))
		fleetActive.Set(float64(fc.LeasesActive))
		fleetGranted.Set(float64(fc.LeasesGranted))
		fleetCompleted.Set(float64(fc.Completed))
		fleetFailed.Set(float64(fc.Failed))
		fleetRedispatched.Set(float64(fc.Redispatched))
		fleetExpired.Set(float64(fc.LeasesExpired))
		fleetAdopted.Set(float64(fc.Adopted))
	})
}

// registerStoreGauges exposes the persistent store's gauges (DataDir
// servers only, matching the historical conditional emission) and routes
// its put/gc latency observations into the histograms.
func (s *Server) registerStoreGauges() {
	r := s.metrics
	r.GaugeFunc("radiod_store_len", "Resident persistent-store entries.",
		func() float64 { return float64(s.store.Len()) })
	r.GaugeFunc("radiod_store_bytes", "Resident persistent-store payload bytes.",
		func() float64 { return float64(s.store.Bytes()) })
	r.GaugeFunc("radiod_store_errors", "Best-effort persistence failures.",
		func() float64 { return float64(s.storeErrs.Load()) })
	s.store.SetObserver(func(op string, d time.Duration) {
		switch op {
		case "put":
			s.srvm.storePut.Observe(d.Seconds())
		case "gc":
			s.srvm.storeGC.Observe(d.Seconds())
		}
	})
}

// registerJournalGauges exposes the journal gauges. Called after
// replayJournal so s.journal is set and the replay gauges are final.
func (s *Server) registerJournalGauges() {
	r := s.metrics
	r.GaugeFunc("radiod_journal_appends", "Records appended to the current journal generation.",
		func() float64 { return float64(s.journal.Appends()) })
	r.GaugeFunc("radiod_journal_errors", "Journal write/parse failures.",
		func() float64 { return float64(s.journalErrs.Load()) })
	r.GaugeFunc("radiod_replayed_jobs", "Standalone jobs re-admitted by crash replay.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.replayedJobs) })
	r.GaugeFunc("radiod_replayed_sweeps", "Sweeps resumed by crash replay.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.replayedSweeps) })
	r.GaugeFunc("radiod_replay_dropped", "Journal entries dropped during replay.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.replayDropped) })
}
