package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/fleet"
	"dualradio/internal/journal"
	"dualradio/internal/scenario"
)

// startWorker runs an in-process fleet worker against the test server's
// URL until the test ends or the returned cancel fires.
func startWorker(t *testing.T, url, name string, fault *faultinject.Injector) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: url,
		Name:        name,
		Slots:       1,
		Poll:        10 * time.Millisecond,
		Fault:       fault,
	})
	go func() { _ = w.Run(ctx) }()
	t.Cleanup(cancel)
	return cancel
}

func fleetCfg() fleet.Config {
	return fleet.Config{Heartbeat: 25 * time.Millisecond, DeadAfter: 100 * time.Millisecond}
}

func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestRemoteExecutionMatchesLocal is the distribution core: the same spec
// run through a remote worker must produce a byte-identical marshaled
// result to a local run — determinism in the canonical spec is what makes
// re-dispatch and multi-node merges safe at all.
func TestRemoteExecutionMatchesLocal(t *testing.T) {
	spec := quickSpec(2, 91)

	local, _ := newTestServer(t, Config{Workers: 1})
	lj, err := local.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, lj, StatusDone)

	// Workers -1: the coordinator runs nothing locally; only the fleet
	// worker can complete the job.
	svc, ts := newTestServer(t, Config{Workers: -1, Fleet: fleetCfg()})
	startWorker(t, ts.URL, "w1", nil)
	rj, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, rj, StatusDone)

	lb, _ := json.Marshal(lj.Result())
	rb, _ := json.Marshal(rj.Result())
	if string(lb) != string(rb) {
		t.Fatalf("remote result differs from local:\nlocal:  %s\nremote: %s", lb, rb)
	}
	// The job's "started" event names the worker it ran on.
	events, _, _ := rj.eventsSince(0)
	var started *Event
	for i := range events {
		if events[i].Type == "started" {
			started = &events[i]
		}
	}
	if started == nil || started.Worker == "" {
		t.Fatalf("no worker-attributed started event in %+v", events)
	}
}

// TestDeadWorkerRedispatch kills a worker (context cancel: heartbeats and
// execution stop dead) while it holds a lease; the coordinator must
// declare it dead, re-dispatch the job, and a survivor must finish it.
func TestDeadWorkerRedispatch(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newTestServer(t, Config{Workers: -1, DataDir: dir, Fleet: fleetCfg()})

	// w1 stalls every trial for minutes — it will lease the job and sit on
	// it until killed. w2 (started after the kill) runs clean.
	stall, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{
		{Kind: faultinject.KindTrialDelay, DelayMS: 120000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cancel1 := startWorker(t, ts.URL, "w1", stall)

	job, err := svc.Submit(quickSpec(1, 92))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for svc.fleet.Snapshot().Counters.LeasesActive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("w1 never leased the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel1() // kill w1 mid-run
	startWorker(t, ts.URL, "w2", nil)
	waitJob(t, job, StatusDone)

	counters := svc.fleet.Snapshot().Counters
	if counters.WorkersDead < 1 || counters.Redispatched < 1 {
		t.Fatalf("counters %+v: want a dead worker and a redispatch", counters)
	}
	// The job's event stream shows the re-dispatch with its reason.
	events, _, _ := job.eventsSince(0)
	found := false
	for _, e := range events {
		if e.Type == "redispatch" && strings.Contains(e.Reason, "missed heartbeats") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no redispatch event in %+v", events)
	}
	// And the journal recorded the assignment history (lease + redispatch).
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{fleet.OpLease, fleet.OpRedispatch, fleet.OpWorkerDead} {
		if !strings.Contains(string(data), `"op":"`+op+`"`) {
			t.Fatalf("journal lacks %q record:\n%s", op, data)
		}
	}
}

// TestDuplicateCompletionDedup drives the backend adapter directly: two
// deliveries of the same result must both succeed (idempotent complete,
// write-once store) and a stale requeue for a finished job must refuse.
func TestDuplicateCompletionDedup(t *testing.T) {
	dir := t.TempDir()
	svc, _ := newTestServer(t, Config{Workers: -1, DataDir: dir, Fleet: fleetCfg()})
	job, err := svc.Submit(quickSpec(1, 93))
	if err != nil {
		t.Fatal(err)
	}
	be := fleetBackend{svc}
	unit := be.Next("wX", "l000099")
	if unit == nil || unit.Job != job.id {
		t.Fatalf("Next returned %+v, want job %s", unit, job.id)
	}
	comp, err := unit.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.RunWithOptions(context.Background(), scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(res)
	if err := be.Complete(job.id, payload); err != nil {
		t.Fatal(err)
	}
	if err := be.Complete(job.id, payload); err != nil {
		t.Fatalf("duplicate completion: %v", err)
	}
	waitJob(t, job, StatusDone)
	if svc.store.Len() != 1 {
		t.Fatalf("store holds %d results, want 1", svc.store.Len())
	}
	if be.Requeue(job.id, "l000099", "wX", "stale expiry") {
		t.Fatal("requeue succeeded on a finished job")
	}
}

// TestRequeueIsLeaseScoped: an expiry for a superseded lease must not
// disturb the current holder's run.
func TestRequeueIsLeaseScoped(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: -1, Fleet: fleetCfg()})
	job, err := svc.Submit(quickSpec(1, 94))
	if err != nil {
		t.Fatal(err)
	}
	be := fleetBackend{svc}
	if be.Next("w1", "l1") == nil {
		t.Fatal("no unit leased")
	}
	if !be.Requeue(job.id, "l1", "w1", "worker w1 missed heartbeats") {
		t.Fatal("legitimate requeue refused")
	}
	if be.Next("w2", "l2") == nil {
		t.Fatal("requeued job not leasable")
	}
	// The stale l1 expiry fires again (e.g. a duplicated reap): refused.
	if be.Requeue(job.id, "l1", "w1", "stale") {
		t.Fatal("stale-lease requeue disturbed the current run")
	}
	if job.Status() != StatusRunning {
		t.Fatalf("job status %q, want running under l2", job.Status())
	}
}

// TestGracefulShutdownCompactsJournal: Close on a server whose work all
// finished must leave an empty journal, so the next boot replays nothing.
func TestGracefulShutdownCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		job, err := svc.Submit(quickSpec(1, 95+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job, StatusDone)
	}
	svc.Close()
	recs, err := journal.ReadAll(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("journal holds %d records after graceful shutdown, want 0:\n%s", len(recs), recs)
	}
	svc2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if jobs, sweeps, _ := replayGauges(svc2); jobs != 0 || sweeps != 0 {
		t.Fatalf("replayed %d jobs / %d sweeps after graceful shutdown, want none", jobs, sweeps)
	}
}

// TestMetricsEndpoint: the plaintext gauges are served and carry the
// fleet counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, body := getText(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics: status %d", code)
	}
	for _, want := range []string{"radiod_queued ", "radiod_retries ", "radiod_fleet_workers_live 0", "radiod_fleet_redispatched 0"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output lacks %q:\n%s", want, body)
		}
	}
}
