// Package server exposes the scenario engine as a long-running simulation
// service: an HTTP JSON API over a bounded job queue and a worker pool that
// fans trials through the harness scheduler, with per-spec result caching
// keyed by the canonical spec hash and graceful shutdown via context.
//
// API (see DESIGN.md for curl examples):
//
//	POST   /v1/jobs             submit a spec ({"preset": "name"} or a spec object)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status + result when done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON progress stream (follows until terminal)
//	GET    /v1/presets          named preset specs
//	GET    /healthz             liveness + queue/cache gauges
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"dualradio/internal/memo"
	"dualradio/internal/scenario"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs run concurrently (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the backlog of queued jobs; submissions beyond it
	// are rejected with 503 (default 64).
	QueueDepth int
	// CacheSize bounds the result cache, keyed by canonical spec hash and
	// evicted least-recently-used (default 128).
	CacheSize int
	// TrialWorkers fans each job's trials across this many goroutines
	// (default 1: trial-level parallelism competes with job-level
	// parallelism for the same cores, so it is opt-in).
	TrialWorkers int
	// History bounds the job registry: once more than this many terminal
	// jobs are retained, the oldest are pruned (default 512). Pruned jobs
	// return 404; their results live on in the spec-hash cache.
	History int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.TrialWorkers <= 0 {
		c.TrialWorkers = 1
	}
	if c.History <= 0 {
		c.History = 512
	}
	return c
}

// ErrQueueFull rejects submissions when the backlog is at QueueDepth.
var ErrQueueFull = errors.New("server: job queue full")

// Server is the simulation service. It implements http.Handler; construct
// with New and stop with Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *Job
	results *memo.LRU[string, *scenario.Result]

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int
	closed bool
}

// New starts a server: its worker pool runs until Close.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		ctx:     ctx,
		stop:    stop,
		queue:   make(chan *Job, cfg.QueueDepth),
		results: memo.NewLRU[string, *scenario.Result](cfg.CacheSize),
		jobs:    make(map[string]*Job),
	}
	s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool: running jobs are cancelled via their
// contexts, queued jobs are marked cancelled, and Close blocks until every
// worker has exited. Event streams observe the terminal events and end.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	for {
		select {
		case job := <-s.queue:
			job.markCancelled()
		default:
			return
		}
	}
}

// Submit compiles, registers, and enqueues a spec. A result-cache hit
// completes the job immediately without touching the queue; a full queue
// rejects with ErrQueueFull; an invalid spec fails compilation.
//
// The closed check, registration, and (non-blocking) enqueue form one
// critical section: an enqueue therefore strictly precedes Close setting
// closed, so Close's post-wait queue drain observes every accepted job —
// nothing can slip into the queue of a closed server and sit there
// unserved. Rejected submissions leave no trace.
func (s *Server) Submit(spec scenario.Spec) (*Job, error) {
	comp, err := scenario.Compile(spec)
	if err != nil {
		return nil, err
	}
	res, cached := s.results.Peek(comp.Hash())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("server: closed")
	}
	job := newJob(fmt.Sprintf("j%06d", s.nextID+1), comp)
	if cached {
		job.complete(res, true)
	} else {
		select {
		case s.queue <- job:
		default:
			return nil, ErrQueueFull
		}
	}
	s.nextID++
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.pruneLocked()
	return job, nil
}

// pruneLocked drops the oldest terminal jobs once more than History are
// retained, so a long-running daemon's registry — and the per-trial result
// payloads each job pins — stays bounded. Live jobs are never pruned.
// Callers must hold s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].Status().terminal() {
			terminal++
		}
	}
	if terminal <= s.cfg.History {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > s.cfg.History && s.jobs[id].Status().terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns the job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// worker pulls jobs off the queue until the server context stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one job end to end. The job's context descends from the
// server's, so both DELETE and Close cancel it; cancellation is observed
// between trials.
func (s *Server) runJob(job *Job) {
	// Re-check the cache before starting: an identical job submitted
	// earlier may have finished while this one sat in the queue. The check
	// precedes tryStart so a cache-served job keeps the documented
	// queued → done event shape (complete no-ops if the job was cancelled
	// while queued).
	if res, ok := s.results.Peek(job.comp.Hash()); ok {
		job.complete(res, true)
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !job.tryStart(cancel) {
		return // cancelled while queued
	}
	res, err := job.comp.Run(ctx, s.cfg.TrialWorkers, job.progress)
	switch {
	case err == nil:
		s.results.Add(job.comp.Hash(), res)
		job.complete(res, false)
	case ctx.Err() != nil:
		job.markCancelled()
	default:
		job.fail(err)
	}
}
