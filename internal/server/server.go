// Package server exposes the scenario engine as a long-running simulation
// service: an HTTP JSON API over a bounded job queue and a worker pool that
// fans trials through the harness scheduler, with per-spec result caching
// keyed by the canonical spec hash, an optional persistent result store
// that survives restarts, parameter-sweep batch submission, and cost-aware
// admission so oversized workloads are rejected instead of wedging the
// queue.
//
// The service is crash-safe: with a DataDir every admission and terminal
// transition is journaled (see journal.go), so a killed daemon re-admits
// its incomplete jobs and resumes half-finished sweeps on restart.
// Transient failures retry with jittered exponential backoff, specs can
// carry a timeout_ms deadline, a panicking trial fails its job instead of
// the process, and the faultinject package drives all of it in chaos runs.
//
// API (see DESIGN.md for curl examples):
//
//	POST   /v1/jobs               submit a spec ({"preset": "name"} or a spec object)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status + result when done
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/jobs/{id}/events   NDJSON progress stream (follows until terminal)
//	POST   /v1/sweeps             submit a parameter sweep (base spec + axes)
//	GET    /v1/sweeps             list sweeps
//	GET    /v1/sweeps/{id}        sweep rollup: per-child status counts + children
//	DELETE /v1/sweeps/{id}        cancel every non-terminal child
//	GET    /v1/sweeps/{id}/events NDJSON child-completion stream
//	GET    /v1/sweeps/{id}/report pivot report (metric, rows, cols, format=csv|json|table, partial=1)
//	GET    /v1/presets            named preset specs
//	GET    /healthz               liveness + queue/cache/store gauges + cost calibration
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/fleet"
	"dualradio/internal/journal"
	"dualradio/internal/memo"
	"dualradio/internal/metrics"
	"dualradio/internal/scenario"
	"dualradio/internal/store"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs run concurrently by the local pool
	// (0 = GOMAXPROCS; -1 = none, for a coordinator that only dispatches
	// to fleet workers).
	Workers int
	// QueueDepth bounds the backlog of queued jobs; submissions beyond it
	// are rejected with 503 (default 64).
	QueueDepth int
	// CacheSize bounds the result cache, keyed by canonical spec hash and
	// evicted least-recently-used (default 128).
	CacheSize int
	// TrialWorkers fans each job's trials across this many goroutines
	// (default 1: trial-level parallelism competes with job-level
	// parallelism for the same cores, so it is opt-in).
	TrialWorkers int
	// History bounds the job registry: once more than this many terminal
	// jobs are retained, the oldest are pruned (default 512). Pruned jobs
	// return 404; their results live on in the spec-hash cache and the
	// persistent store. Sweeps are bounded the same way.
	History int
	// DataDir, when non-empty, persists every completed result as a
	// per-spec-hash file under this directory and consults it on cache
	// misses, so identical specs survive daemon restarts without
	// re-simulation.
	DataDir string
	// StoreMaxBytes caps the persistent store's total size: after every
	// write, the oldest result files (by modification time) are evicted
	// until the store fits (0 = unbounded, the historical behavior).
	StoreMaxBytes int64
	// MaxPendingCost bounds the admitted-but-unfinished work, measured by
	// the analytic cost estimate n·trials·schedule-rounds summed over
	// queued and running jobs (default 1<<32 round-process units).
	// Submissions that would exceed it — huge single jobs or huge sweeps —
	// are rejected with 429 instead of wedging the queue for hours.
	MaxPendingCost int64
	// MaxRetries caps automatic re-runs of a job after a transient failure
	// (an error marked retryable per scenario.IsTransient). Default 3;
	// negative disables retries entirely.
	MaxRetries int
	// RetryBackoff delays the first retry; each further retry doubles it,
	// capped at RetryMaxBackoff, with up to 50% added jitter (defaults
	// 250ms and 5s).
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// Fault, when non-nil, injects deterministic faults at the service's
	// fault points — trial execution and store writes — for chaos testing.
	// Production servers leave it nil.
	Fault *faultinject.Injector
	// Fleet tunes the embedded fleet coordinator (heartbeat cadence, death
	// timeout, lease TTL). The coordinator is always mounted; with no
	// registered workers it is inert and the service behaves exactly like
	// a single node.
	Fleet fleet.Config
}

func (c Config) withDefaults() Config {
	if c.Workers < 0 {
		c.Workers = 0 // coordinator-only: fleet workers drain the queue
	} else if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.TrialWorkers <= 0 {
		c.TrialWorkers = 1
	}
	if c.History <= 0 {
		c.History = 512
	}
	if c.MaxPendingCost <= 0 {
		c.MaxPendingCost = 1 << 32
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.RetryMaxBackoff <= 0 {
		c.RetryMaxBackoff = 5 * time.Second
	}
	return c
}

// ErrQueueFull rejects submissions when the backlog is at QueueDepth.
var ErrQueueFull = errors.New("server: job queue full")

// ErrOverBudget rejects submissions whose cost estimate would push the
// pending workload past MaxPendingCost.
var ErrOverBudget = errors.New("server: admission cost budget exceeded")

// Server is the simulation service. It implements http.Handler; construct
// with New and stop with Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *Job
	results *memo.LRU[string, *scenario.Result]
	store   *store.Store // nil without DataDir
	fleet   *fleet.Coordinator
	metrics *metrics.Registry
	srvm    *srvMetrics

	pending     atomic.Int64 // cost estimate of queued + running jobs
	storeErrs   atomic.Int64 // persistence failures (best-effort writes)
	journalErrs atomic.Int64 // journal write/parse failures (best-effort)
	retries     atomic.Int64 // transient-failure retries scheduled

	journal *journal.Journal // nil without DataDir

	retryMu     sync.Mutex
	retryTimers map[*Job]*time.Timer // backed-off jobs awaiting requeue

	// calib tracks measured wallclock per admission cost unit over
	// completed (non-cached) jobs, so the analytic n·trials·rounds cost
	// model can be sanity-checked against reality via /healthz.
	calibMu    sync.Mutex
	calibJobs  int
	calibNanos float64 // total measured run wallclock
	calibCost  float64 // total admission cost of those runs

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string // submission order, for listing and oldest-first pruning
	sweeps     map[string]*Sweep
	sweepOrder []string
	nextID     int
	nextSweep  int
	closed     bool

	// Journal-replay state (under mu). replaying switches startJobLocked to
	// blocking queue sends and disables budget rejection — every replayed
	// job was admitted before the crash, so recovery must not re-litigate
	// admission. The gauges feed /healthz.
	replaying      bool
	replayedJobs   int
	replayedSweeps int
	replayDropped  int
}

// New starts a server: its worker pool runs until Close. With a DataDir it
// opens (creating if absent) the persistent result store first, then
// replays the job journal: every job and sweep the previous process
// accepted but did not finish is re-admitted under its original id, with
// already-stored child results served from the store as cache hits.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var st *store.Store
	if cfg.DataDir != "" {
		var err error
		if st, err = store.Open(cfg.DataDir); err != nil {
			return nil, err
		}
		st.SetMaxBytes(cfg.StoreMaxBytes)
		if cfg.Fault != nil {
			st.SetPutHook(cfg.Fault.StorePut)
		}
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		ctx:         ctx,
		stop:        stop,
		queue:       make(chan *Job, cfg.QueueDepth),
		results:     memo.NewLRU[string, *scenario.Result](cfg.CacheSize),
		store:       st,
		retryTimers: make(map[*Job]*time.Timer),
		jobs:        make(map[string]*Job),
		sweeps:      make(map[string]*Sweep),
		metrics:     metrics.NewRegistry(),
	}
	s.fleet = fleet.New(fleetBackend{s}, cfg.Fleet)
	// Instrument everything before any traffic: srvm before the journal can
	// append, gauges and fleet series before the routes can be scraped.
	s.srvm = newServerInstruments(s.metrics)
	s.registerBaseGauges()
	if st != nil {
		s.registerStoreGauges()
	}
	s.fleet.Instrument(s.metrics)
	s.routes()
	s.fleet.Start(ctx)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.DataDir != "" {
		if err := s.replayJournal(); err != nil {
			s.Close()
			return nil, err
		}
		s.registerJournalGauges()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool: running jobs are cancelled via their
// contexts, queued jobs are marked cancelled, remotely leased jobs are
// abandoned (requeued, then cancelled through the closed-server path),
// and Close blocks until every worker has exited. Event streams observe
// the terminal events and end. On a graceful shutdown the journal is
// compacted down to the live record set before closing, so the next boot
// replays only what is actually outstanding instead of chewing through
// the full generation.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
drain:
	for {
		select {
		case job := <-s.queue:
			job.markCancelled()
		default:
			break drain
		}
	}
	// Leased jobs are requeued by the coordinator's Close; with the server
	// closed, fireRetry turns each requeue into a cancellation, and the
	// terminal journal records land before the compaction below.
	if s.fleet != nil {
		s.fleet.Close()
	}
	// Backed-off jobs waiting on retry timers would otherwise wait forever
	// for a requeue that cannot come. fireRetry checks closed under s.mu,
	// so a timer that already fired either enqueued before closed was set
	// (drained above) or cancels its job itself.
	s.retryMu.Lock()
	for job, t := range s.retryTimers {
		t.Stop()
		delete(s.retryTimers, job)
		job.markCancelled()
	}
	s.retryMu.Unlock()
	if s.journal != nil {
		// After the terminal transitions above, so their records landed.
		// Sealed is false only when New failed mid-startup — an unsealed
		// generation must not be compacted over the previous one.
		if s.journal.Sealed() {
			s.mu.Lock()
			live := s.liveJournalRecordsLocked()
			s.mu.Unlock()
			if err := s.journal.Compact(live); err != nil {
				s.journalErrs.Add(1)
			}
		}
		s.journal.Close()
	}
}

// lookupResult consults the in-memory LRU first, then the persistent
// store. A store hit is decoded and promoted into the LRU; unreadable or
// undecodable entries degrade to cache misses (the job then re-simulates,
// which is always correct).
func (s *Server) lookupResult(hash string) (*scenario.Result, bool) {
	if res, ok := s.results.Peek(hash); ok {
		s.srvm.cacheHits.Inc()
		return res, true
	}
	s.srvm.cacheMisses.Inc()
	if s.store == nil {
		return nil, false
	}
	data, ok, err := s.store.Get(hash)
	if err != nil || !ok {
		s.srvm.storeMisses.Inc()
		return nil, false
	}
	var res scenario.Result
	if err := json.Unmarshal(data, &res); err != nil {
		s.srvm.storeMisses.Inc()
		return nil, false
	}
	s.srvm.storeHits.Inc()
	s.results.Add(hash, &res)
	return &res, true
}

// persist writes a completed result to the LRU and, when configured, the
// durable store. Only fully completed results ever reach here — cancelled
// and failed runs return nil results and must never be served for their
// spec hash.
func (s *Server) persist(hash string, res *scenario.Result) {
	s.results.Add(hash, res)
	if s.store == nil {
		return
	}
	data, err := json.Marshal(res)
	if err == nil {
		err = s.store.Put(hash, data)
	}
	if err != nil {
		s.storeErrs.Add(1)
	}
}

// Submit compiles, registers, and enqueues a spec. A result-cache or
// store hit completes the job immediately without touching the queue; a
// full queue rejects with ErrQueueFull; a cost estimate beyond the pending
// budget rejects with ErrOverBudget; an invalid spec fails compilation.
//
// The closed check, registration, and (non-blocking) enqueue form one
// critical section: an enqueue therefore strictly precedes Close setting
// closed, so Close's post-wait queue drain observes every accepted job —
// nothing can slip into the queue of a closed server and sit there
// unserved. Rejected submissions leave no trace.
func (s *Server) Submit(spec scenario.Spec) (*Job, error) {
	comp, err := scenario.Compile(spec)
	if err != nil {
		s.srvm.admit("job", err)
		return nil, err
	}
	res, cached := s.lookupResult(comp.Hash())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.srvm.admissions.With("job", "closed").Inc()
		return nil, errors.New("server: closed")
	}
	job, err := s.startJobLocked(fmt.Sprintf("j%06d", s.nextID+1), comp, res, cached, nil)
	s.srvm.admit("job", err)
	if err != nil {
		return nil, err
	}
	s.nextID++
	s.pruneLocked()
	s.maybeCompactJournalLocked()
	return job, nil
}

// startJobLocked creates, registers, and dispatches one job: cached jobs
// complete immediately, everything else is charged against the admission
// budget and enqueued. id is caller-allocated: submissions pass a fresh id
// (advancing nextID on success), journal replay passes the job's pre-crash
// id so restarts preserve identity. The terminal hooks — sweep rollup,
// journal terminal record, and cost release — are registered before the
// job can possibly finish, and none of them takes s.mu, so they are safe
// to fire from any path (including the inline cache-hit completion below,
// which runs with s.mu held). Callers hold s.mu.
func (s *Server) startJobLocked(id string, comp *scenario.Compiled, res *scenario.Result, cached bool, sw *Sweep) (*Job, error) {
	job := newJob(id, comp)
	if sw != nil {
		job.fromSweep = true
		job.onTerminal(func() { sw.childTerminal(job) })
	}
	job.onTerminal(func() {
		s.journalAppend(journalRecord{Op: opTerminal, ID: job.id, Status: job.Status()})
	})
	if cached {
		if job.complete(res, true) {
			s.srvm.attempts.With("cached").Inc()
		}
	} else {
		cost := comp.CostEstimate()
		if !s.replaying && s.pending.Load()+cost > s.cfg.MaxPendingCost {
			return nil, fmt.Errorf("%w: estimate %d over budget %d", ErrOverBudget, cost, s.cfg.MaxPendingCost)
		}
		s.pending.Add(cost)
		job.onTerminal(func() { s.pending.Add(-cost) })
		if s.replaying {
			// Replay may re-admit more jobs than the queue holds. Workers
			// are already draining and never take s.mu, so a blocking send
			// cannot deadlock; every replayed job was admitted before the
			// crash, so it is never rejected a second time. A
			// coordinator-only server (Workers -1) has no local drain, so
			// overflow jobs go through the retry-timer path instead — they
			// re-enter the queue as fleet workers free it up.
			if s.cfg.Workers == 0 {
				select {
				case s.queue <- job:
				default:
					s.retryMu.Lock()
					s.retryTimers[job] = time.AfterFunc(s.cfg.RetryBackoff, func() { s.fireRetry(job) })
					s.retryMu.Unlock()
				}
			} else {
				select {
				case s.queue <- job:
				case <-s.ctx.Done():
					s.pending.Add(-cost)
					return nil, errors.New("server: closed")
				}
			}
		} else {
			select {
			case s.queue <- job:
			default:
				s.pending.Add(-cost)
				return nil, ErrQueueFull
			}
		}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	// The accept record lands only after admission fully succeeded — a
	// rejected submission must leave no trace for replay to resurrect.
	// Sweep children are covered by their sweep record instead.
	if sw == nil {
		s.journalAppend(acceptRecord(job))
	}
	return job, nil
}

// SubmitSweep expands a sweep and submits every child atomically: either
// the whole grid is admitted (cache-served children completing instantly,
// the rest enqueued) or nothing is, so a sweep can never be half-accepted.
// Capacity and cost are checked up front against the whole batch; because
// every submission path holds s.mu and workers only drain the queue, the
// checks cannot be invalidated mid-loop.
func (s *Server) SubmitSweep(sw scenario.SweepSpec) (*Sweep, error) {
	exp, err := scenario.ExpandSweep(sw)
	if err != nil {
		s.srvm.admit("sweep", err)
		return nil, err
	}
	type lookup struct {
		res    *scenario.Result
		cached bool
	}
	looks := make([]lookup, len(exp.Children))
	need := 0
	var cost int64
	for i, comp := range exp.Children {
		looks[i].res, looks[i].cached = s.lookupResult(comp.Hash())
		if !looks[i].cached {
			need++
			cost += comp.CostEstimate()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.srvm.admissions.With("sweep", "closed").Inc()
		return nil, errors.New("server: closed")
	}
	if len(s.queue)+need > cap(s.queue) {
		s.srvm.admissions.With("sweep", "queue_full").Inc()
		return nil, fmt.Errorf("%w: sweep needs %d queue slots", ErrQueueFull, need)
	}
	if s.pending.Load()+cost > s.cfg.MaxPendingCost {
		s.srvm.admissions.With("sweep", "over_budget").Inc()
		return nil, fmt.Errorf("%w: sweep estimate %d over budget %d", ErrOverBudget, cost, s.cfg.MaxPendingCost)
	}
	swpID := fmt.Sprintf("s%06d", s.nextSweep+1)
	childIDs := make([]string, len(exp.Children))
	for i := range childIDs {
		childIDs[i] = fmt.Sprintf("j%06d", s.nextID+1+i)
	}
	// Journal the whole batch before admitting any child: a crash between
	// this record and the last admission re-admits every child on replay
	// (completed ones as store cache hits) instead of losing the tail.
	if raw, err := json.Marshal(exp.Spec); err == nil {
		s.journalAppend(journalRecord{Op: opSweep, ID: swpID, Sweep: raw, Children: childIDs})
	}
	swp := newSweep(swpID, exp)
	s.nextSweep++
	for i, comp := range exp.Children {
		job, err := s.startJobLocked(childIDs[i], comp, looks[i].res, looks[i].cached, swp)
		if err != nil {
			// Unreachable given the up-front checks; fail closed anyway so a
			// future change cannot leave a half-registered sweep behind —
			// including in the journal, where terminal records for every
			// journaled child mark the sweep complete for replay.
			for _, cid := range childIDs {
				s.journalAppend(journalRecord{Op: opTerminal, ID: cid, Status: StatusCancelled})
			}
			for _, c := range swp.children {
				if c != nil {
					c.Cancel()
				}
			}
			s.srvm.admit("sweep", err)
			return nil, err
		}
		s.nextID++
		swp.children[i] = job
	}
	s.sweeps[swp.id] = swp
	s.sweepOrder = append(s.sweepOrder, swp.id)
	s.pruneLocked()
	s.maybeCompactJournalLocked()
	s.srvm.admit("sweep", nil)
	return swp, nil
}

// pruneLocked drops the oldest terminal jobs once more than History are
// retained, so a long-running daemon's registry — and the per-trial result
// payloads each job pins — stays bounded. Eviction is strictly
// oldest-submission-first among terminal jobs: the scan walks s.order
// (append-only submission order), never map iteration order, so which job
// survives is deterministic. Live jobs are never pruned, regardless of
// age. Terminal sweeps are bounded the same way. Callers must hold s.mu.
func (s *Server) pruneLocked() {
	s.order = pruneOldest(s.order, s.cfg.History,
		func(id string) bool { return s.jobs[id].Status().terminal() },
		func(id string) { delete(s.jobs, id) })
	s.sweepOrder = pruneOldest(s.sweepOrder, s.cfg.History,
		func(id string) bool { return s.sweeps[id].terminal() },
		func(id string) { delete(s.sweeps, id) })
}

// pruneOldest drops the oldest terminal entries of order — in slice order,
// strictly front-first — until at most keep remain, calling drop for each
// eviction, and returns the retained order (reusing the backing array).
// Non-terminal entries are always retained.
func pruneOldest(order []string, keep int, terminal func(string) bool, drop func(string)) []string {
	count := 0
	for _, id := range order {
		if terminal(id) {
			count++
		}
	}
	if count <= keep {
		return order
	}
	kept := order[:0]
	for _, id := range order {
		if count > keep && terminal(id) {
			drop(id)
			count--
			continue
		}
		kept = append(kept, id)
	}
	return kept
}

// Job returns the job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Sweep returns the sweep by id.
func (s *Server) Sweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// Sweeps returns every sweep in submission order.
func (s *Server) Sweeps() []*Sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		out = append(out, s.sweeps[id])
	}
	return out
}

// recordCalibration folds one measured run into the wallclock-per-cost-unit
// calibration. Only real simulations count — cache hits would drag the
// factor toward zero and say nothing about the cost model.
func (s *Server) recordCalibration(cost int64, elapsed time.Duration) {
	if cost <= 0 {
		return
	}
	s.calibMu.Lock()
	s.calibJobs++
	s.calibNanos += float64(elapsed)
	s.calibCost += float64(cost)
	s.calibMu.Unlock()
}

// Calibration returns the running admission-cost calibration: how many
// jobs contributed and the measured nanoseconds per cost unit (0 until a
// job completes). The factor is cumulative — total wallclock over total
// cost — so long jobs weigh in proportionally to the work they measured.
func (s *Server) Calibration() (jobs int, nsPerUnit float64) {
	s.calibMu.Lock()
	defer s.calibMu.Unlock()
	if s.calibCost > 0 {
		nsPerUnit = s.calibNanos / s.calibCost
	}
	return s.calibJobs, nsPerUnit
}

// worker pulls jobs off the queue until the server context stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one attempt of a job. The job's context descends from
// the server's, so both DELETE and Close cancel it; a spec with timeout_ms
// additionally bounds the attempt's wallclock. Cancellation and deadline
// are observed between trials.
func (s *Server) runJob(job *Job) {
	// Re-check the cache (and, through lookupResult, the persistent
	// store) before starting: an identical job submitted earlier may have
	// finished while this one sat in the queue, and its result may have
	// already been evicted from the LRU into store-only residence. The
	// check precedes tryStart so a cache-served job keeps the documented
	// queued → done event shape (complete no-ops if the job was cancelled
	// while queued).
	if res, ok := s.lookupResult(job.comp.Hash()); ok {
		if job.complete(res, true) {
			s.srvm.attempts.With("cached").Inc()
		}
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	deadline := job.comp.Spec().TimeoutMS
	if deadline > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(deadline)*time.Millisecond)
		defer tcancel()
	}
	if !job.tryStart(cancel) {
		return // cancelled while queued
	}
	algo := job.comp.Spec().Algorithm
	s.srvm.queueWait.With(algo).Observe(job.queueWait().Seconds())
	attempt := job.Attempt()
	s.journalAppend(journalRecord{Op: opStart, ID: job.id, Attempt: attempt})
	opts := scenario.RunOptions{
		Workers:    s.cfg.TrialWorkers,
		OnProgress: job.progress,
		Attempt:    attempt,
		ObserveTrial: func(d time.Duration) {
			s.srvm.trials.Inc()
			s.srvm.trialDuration.With(algo).Observe(d.Seconds())
		},
	}
	if s.cfg.Fault != nil {
		hash := job.comp.Hash()
		opts.Fault = func(trial, at int) error { return s.cfg.Fault.Trial(hash, trial, at) }
	}
	start := time.Now() //detvet:wallclock admission-cost calibration sample; never reaches results
	res, err := job.comp.RunWithOptions(ctx, opts)
	switch {
	case err == nil:
		// The run returned without error, which guarantees every trial
		// completed — only complete results are ever cached or persisted
		// under the spec hash (a cancelled or failed run returns a nil
		// result with its error instead).
		job.markReduced()
		s.recordCalibration(job.comp.CostEstimate(), time.Since(start)) //detvet:wallclock admission-cost calibration sample
		s.persist(job.comp.Hash(), res)
		job.markPersisted()
		if job.complete(res, false) {
			s.srvm.attempts.With("done").Inc()
			s.srvm.jobDuration.With(algo, presetLabel(job.comp.Spec())).Observe(job.totalDuration().Seconds())
		}
	case s.ctx.Err() != nil:
		// Server shutdown cancels every run.
		if job.markCancelled() {
			s.srvm.attempts.With("cancelled").Inc()
		}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		// The attempt blew the spec's deadline. The workload is
		// deterministic, so a rerun would time out identically: permanent
		// failure, never retried.
		if job.fail(fmt.Errorf("run exceeded %dms deadline", deadline)) {
			s.srvm.attempts.With("deadline").Inc()
		}
	case ctx.Err() != nil:
		// DELETE cancelled this job specifically.
		if job.markCancelled() {
			s.srvm.attempts.With("cancelled").Inc()
		}
	case scenario.IsTransient(err) && attempt < s.cfg.MaxRetries:
		s.scheduleRetry(job, err, attempt)
	default:
		if job.fail(err) {
			s.srvm.attempts.With("failed").Inc()
		}
	}
}

// scheduleRetry requeues a transiently-failed job after a jittered
// exponential backoff. The job transitions back to queued immediately,
// emitting a "retry" event carrying the attempt count and the cause; the
// timer fires the actual requeue.
func (s *Server) scheduleRetry(job *Job, cause error, attempt int) {
	if !job.retry(cause) {
		return // turned terminal concurrently (e.g. cancelled mid-failure)
	}
	s.srvm.attempts.With("retry").Inc()
	s.retries.Add(1)
	backoff := retryDelay(s.cfg.RetryBackoff, s.cfg.RetryMaxBackoff, job.id, attempt)
	s.retryMu.Lock()
	s.retryTimers[job] = time.AfterFunc(backoff, func() { s.fireRetry(job) })
	s.retryMu.Unlock()
}

// fireRetry moves a backed-off job back into the queue. The closed check
// and the send share one s.mu critical section, mirroring the submission
// invariant: an enqueue strictly precedes Close setting closed, so Close's
// post-wait drain observes every requeued job.
func (s *Server) fireRetry(job *Job) {
	s.retryMu.Lock()
	delete(s.retryTimers, job)
	s.retryMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		job.markCancelled()
		return
	}
	select {
	case s.queue <- job:
		s.mu.Unlock()
	default:
		// Queue momentarily full: try again shortly rather than failing a
		// job the backlog merely delayed.
		s.mu.Unlock()
		s.retryMu.Lock()
		s.retryTimers[job] = time.AfterFunc(s.cfg.RetryBackoff, func() { s.fireRetry(job) })
		s.retryMu.Unlock()
	}
}
