package server

import (
	"sync"
	"time"

	"dualradio/internal/scenario"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle: queued → running → {done, failed, cancelled}. A cache hit
// goes queued → done directly. A transient failure loops running → queued
// (a "retry" event, then a backed-off requeue) up to the server's retry
// cap. Cancellation can land in any non-terminal state.
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

func (s JobStatus) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Event is one NDJSON progress record on a job's event stream. Every job
// emits "queued", then (unless cache-served or cancelled while queued)
// "started", one "trial" per completed trial carrying its result, an
// "aggregate" whenever the streaming reduction advances (carrying the
// partial aggregate over the folded trial prefix), then a "phases" event
// carrying the job's per-phase timing breakdown, and finally exactly one
// terminal event: "done", "failed", or "cancelled". A transiently-failed
// job additionally emits "retry" — carrying the attempt count it is about
// to begin and the error that triggered it — before re-entering the queue.
type Event struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// TS is the wallclock append time. It is pure observability: replay
	// and canonical result hashing never read it.
	TS time.Time `json:"ts"`
	// Completed and Total track trial progress.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Attempt carries the upcoming retry attempt on "retry" events.
	Attempt int `json:"attempt,omitempty"`
	// Trial carries the finished trial's result on "trial" events.
	Trial *scenario.TrialResult `json:"trial,omitempty"`
	// Aggregate carries the streaming partial aggregate on "aggregate"
	// events; Folded is the contiguous trial prefix it covers. The final
	// "aggregate" event equals the result's Aggregate exactly.
	Aggregate *scenario.Aggregate `json:"aggregate,omitempty"`
	Folded    int                 `json:"folded,omitempty"`
	// Cached marks a "done" event served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure message on "failed" events.
	Error string `json:"error,omitempty"`
	// Worker names the fleet worker on "started" events for remotely
	// leased runs and on "redispatch" events.
	Worker string `json:"worker,omitempty"`
	// Reason says why a "redispatch" event returned the job to the queue
	// (missed heartbeats, lease TTL, shutdown).
	Reason string `json:"reason,omitempty"`
	// Phases carries the per-phase timing breakdown on "phases" events.
	Phases *PhaseView `json:"phases,omitempty"`
}

// PhaseView is a terminal job's per-phase timing breakdown, derived from
// the lifecycle milestones accepted → started → trials done → reduced →
// persisted → finished. Durations cover the job's final attempt (retries
// and redispatches reset the milestones); phases a job never entered —
// e.g. trials/reduce on a cache hit or a remotely executed run — report 0.
type PhaseView struct {
	// QueueWaitMS is admission (or the last requeue) to execution start.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// TrialsMS is execution start to the last completed trial.
	TrialsMS float64 `json:"trials_ms"`
	// ReduceMS is the last trial to the run returning its reduced result.
	ReduceMS float64 `json:"reduce_ms"`
	// PersistMS is reduction to the result landing in the cache/store.
	PersistMS float64 `json:"persist_ms"`
	// TotalMS is submission to the terminal transition.
	TotalMS float64 `json:"total_ms"`
}

// Job is one submitted scenario run. All mutable state is guarded by mu;
// the compiled spec is immutable.
type Job struct {
	id   string
	comp *scenario.Compiled

	// fromSweep marks sweep children, which the journal covers through
	// their sweep record rather than individual accept records. Set before
	// the job is shared; read-only afterwards.
	fromSweep bool

	mu        sync.Mutex
	status    JobStatus
	completed int
	folded    int    // trials covered by the last streamed aggregate
	attempt   int    // retry attempts so far (0 = first run)
	lease     string // active fleet lease id while running remotely
	cached    bool
	result    *scenario.Result
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	// Phase milestones for the timing breakdown. queuedAt tracks the last
	// (re)entry into the queue; the rest mark the final attempt's progress
	// and are reset by retry/requeue.
	queuedAt   time.Time
	trialsDone time.Time // last completed trial
	reduced    time.Time // run returned its reduced result
	persisted  time.Time // result landed in the cache/store
	cancel     func()    // non-nil while running; requests the run's context stop
	events     []Event
	wake       chan struct{} // closed and replaced whenever events grows
	hooks      []func()      // run once, after the terminal transition, outside mu
}

func newJob(id string, comp *scenario.Compiled) *Job {
	j := &Job{
		id:      id,
		comp:    comp,
		status:  StatusQueued,
		created: time.Now(), //detvet:wallclock job age for status views; not part of any hash or report
		wake:    make(chan struct{}),
	}
	j.queuedAt = j.created
	j.appendLocked(Event{Type: "queued"})
	return j
}

// appendLocked records an event and wakes stream readers. Callers must hold
// mu — except newJob, whose job is not yet shared.
func (j *Job) appendLocked(e Event) {
	e.Job = j.id
	e.TS = time.Now() //detvet:wallclock NDJSON event timestamp; hash-excluded and shape-stable
	e.Completed = j.completed
	e.Total = j.comp.Trials()
	j.events = append(j.events, e)
	close(j.wake)
	j.wake = make(chan struct{})
}

// onTerminal registers a hook to run exactly once when the job reaches a
// terminal state — the server releases the job's admission-cost charge this
// way and sweeps observe child completions. Hooks run after the terminal
// transition with no job lock held (so they may call back into the job),
// in registration order; a hook added to an already-terminal job runs
// immediately.
func (j *Job) onTerminal(h func()) {
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		h()
		return
	}
	j.hooks = append(j.hooks, h)
	j.mu.Unlock()
}

// terminalLocked finalizes the bookkeeping every terminal transition
// shares — including the "phases" timing event, emitted just before the
// terminal event so streams always see the breakdown first — and hands
// back the hooks for the caller to run once the lock is released. Callers
// must hold mu and have checked the job is not already terminal.
func (j *Job) terminalLocked(status JobStatus, e Event) []func() {
	j.status = status
	j.cancel = nil
	j.lease = ""
	j.finished = time.Now() //detvet:wallclock phase-timing milestone; excluded from result bytes
	j.appendLocked(Event{Type: "phases", Phases: j.phaseViewLocked()})
	j.appendLocked(e)
	hooks := j.hooks
	j.hooks = nil
	return hooks
}

// phaseViewLocked derives the per-phase breakdown from the milestones;
// nil until the job is terminal. Callers must hold mu.
func (j *Job) phaseViewLocked() *PhaseView {
	if j.finished.IsZero() {
		return nil
	}
	ms := func(d time.Duration) float64 {
		if d < 0 {
			return 0
		}
		return float64(d) / float64(time.Millisecond)
	}
	pv := &PhaseView{TotalMS: ms(j.finished.Sub(j.created))}
	if !j.started.IsZero() {
		pv.QueueWaitMS = ms(j.started.Sub(j.queuedAt))
		if !j.trialsDone.IsZero() {
			pv.TrialsMS = ms(j.trialsDone.Sub(j.started))
			if !j.reduced.IsZero() {
				pv.ReduceMS = ms(j.reduced.Sub(j.trialsDone))
			}
		}
	}
	if !j.persisted.IsZero() && !j.reduced.IsZero() {
		pv.PersistMS = ms(j.persisted.Sub(j.reduced))
	}
	return pv
}

// queueWait returns how long the job sat queued before its current run
// started — the queue-wait histogram's sample, taken right after
// tryStart/tryLease.
func (j *Job) queueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return 0
	}
	return j.started.Sub(j.queuedAt)
}

// totalDuration returns submission-to-terminal wallclock (0 while live).
func (j *Job) totalDuration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.created)
}

// markReduced records the run returning its reduced result.
func (j *Job) markReduced() {
	j.mu.Lock()
	j.reduced = time.Now() //detvet:wallclock phase-timing milestone; excluded from result bytes
	j.mu.Unlock()
}

// markPersisted records the result landing in the cache/store.
func (j *Job) markPersisted() {
	j.mu.Lock()
	j.persisted = time.Now() //detvet:wallclock phase-timing milestone; excluded from result bytes
	j.mu.Unlock()
}

func runHooks(hooks []func()) {
	for _, h := range hooks {
		h()
	}
}

// eventsSince returns the events after index from, whether the job has
// reached a terminal state, and a channel that is closed when more events
// arrive. When events is non-empty the caller should drain and call again;
// when empty and terminal the stream is complete.
func (j *Job) eventsSince(from int) (events []Event, terminal bool, wake <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		return append([]Event(nil), j.events[from:]...), j.status.terminal(), nil
	}
	return nil, j.status.terminal(), j.wake
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// tryStart transitions queued → running and installs the cancel hook.
// It fails when the job was cancelled while queued.
func (j *Job) tryStart(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now() //detvet:wallclock phase-timing milestone; excluded from result bytes
	j.cancel = cancel
	j.appendLocked(Event{Type: "started"})
	return true
}

// tryLease transitions queued → running for remote execution under a
// fleet lease: the lease id scopes later requeue requests to exactly this
// grant, and the "started" event names the worker. Cancellation of a
// remotely leased job takes effect immediately — there is no remote
// context to unwind, and a late completion against the cancelled job
// no-ops. It fails when the job was cancelled while queued.
func (j *Job) tryLease(lease, worker string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now() //detvet:wallclock phase-timing milestone; excluded from result bytes
	j.lease = lease
	j.cancel = func() { j.markCancelled() }
	j.appendLocked(Event{Type: "started", Worker: worker})
	return true
}

// requeue returns a remotely leased job to the queued state after its
// worker died, its lease expired, or the coordinator shut down. The lease
// id must match the job's active lease: a stale expiry request for a job
// that has since completed, been re-leased, or been picked up locally is
// refused, so a job can never be yanked out from under a live run. Unlike
// retry, the attempt counter does not advance — a dead worker is not the
// job's fault and must not consume its retry budget.
func (j *Job) requeue(lease, worker, reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning || j.lease == "" || j.lease != lease {
		return false
	}
	j.status = StatusQueued
	j.cancel = nil
	j.lease = ""
	j.completed = 0
	j.folded = 0
	j.resetMilestonesLocked()
	j.appendLocked(Event{Type: "redispatch", Worker: worker, Reason: reason})
	return true
}

// resetMilestonesLocked restarts the phase clock when a job re-enters the
// queue: the final breakdown describes the attempt that actually finished,
// not a sum over abandoned ones. Callers must hold mu.
func (j *Job) resetMilestonesLocked() {
	j.queuedAt = time.Now() //detvet:wallclock phase clock restart on requeue; observability only
	j.started = time.Time{}
	j.trialsDone = time.Time{}
	j.reduced = time.Time{}
	j.persisted = time.Time{}
}

// Attempt returns the job's retry attempt count (0 = first run).
func (j *Job) Attempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// retry returns a running job to the queued state for another attempt
// after a transient failure: progress resets, the attempt counter
// advances, and a "retry" event carrying the new attempt count and the
// cause is emitted. It reports false if the job is not running (e.g. it
// was cancelled while the failure was being classified).
func (j *Job) retry(cause error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return false
	}
	j.status = StatusQueued
	j.cancel = nil
	j.lease = ""
	j.attempt++
	j.completed = 0
	j.folded = 0
	j.resetMilestonesLocked()
	j.appendLocked(Event{Type: "retry", Attempt: j.attempt, Error: cause.Error()})
	return true
}

// progress records one completed trial and, when the streaming reduction
// advanced, the live partial aggregate.
func (j *Job) progress(p scenario.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed++
	j.trialsDone = time.Now() //detvet:wallclock phase-timing milestone; excluded from result bytes
	tr := p.Trial
	j.appendLocked(Event{Type: "trial", Trial: &tr})
	if p.Folded > j.folded {
		j.folded = p.Folded
		agg := p.Aggregate
		j.appendLocked(Event{Type: "aggregate", Aggregate: &agg, Folded: p.Folded})
	}
}

// Result returns the completed run (nil unless the job is done).
func (j *Job) Result() *scenario.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// complete finishes the job with a result; cached marks a cache hit. Only
// fully completed runs reach here: the caller either ran every trial to
// the end or is serving a result that did (the cache and the persistent
// store are populated exclusively with complete results), so a terminal
// job can never expose a partial result under its spec hash. It reports
// whether this call performed the transition (false once terminal), so
// callers can attribute outcome metrics exactly once.
func (j *Job) complete(res *scenario.Result, cached bool) bool {
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return false
	}
	j.result = res
	j.cached = cached
	if cached {
		j.completed = j.comp.Trials()
	}
	hooks := j.terminalLocked(StatusDone, Event{Type: "done", Cached: cached})
	j.mu.Unlock()
	runHooks(hooks)
	return true
}

// fail finishes the job with an error, reporting whether this call
// performed the transition.
func (j *Job) fail(err error) bool {
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return false
	}
	j.errMsg = err.Error()
	hooks := j.terminalLocked(StatusFailed, Event{Type: "failed", Error: j.errMsg})
	j.mu.Unlock()
	runHooks(hooks)
	return true
}

// markCancelled finishes the job as cancelled (no-op once terminal),
// reporting whether this call performed the transition.
func (j *Job) markCancelled() bool {
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return false
	}
	hooks := j.terminalLocked(StatusCancelled, Event{Type: "cancelled"})
	j.mu.Unlock()
	runHooks(hooks)
	return true
}

// Cancel requests cancellation: a queued job is cancelled immediately, a
// running job has its context cancelled (the worker then marks it), and a
// terminal job is left untouched. It reports whether the request changed
// anything.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.status == StatusQueued {
		hooks := j.terminalLocked(StatusCancelled, Event{Type: "cancelled"})
		j.mu.Unlock()
		runHooks(hooks)
		return true
	}
	cancel := j.cancel
	j.cancel = nil
	j.mu.Unlock()
	if cancel != nil {
		cancel()
		return true
	}
	return false
}

// JobView is the JSON representation served by the jobs endpoints.
type JobView struct {
	ID        string        `json:"id"`
	Status    JobStatus     `json:"status"`
	SpecHash  string        `json:"spec_hash"`
	Spec      scenario.Spec `json:"spec"`
	Completed int           `json:"completed"`
	Total     int           `json:"total"`
	// Attempt counts transient-failure retries (0 = never retried).
	Attempt  int        `json:"attempt,omitempty"`
	Cached   bool       `json:"cached,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Phases is the per-phase timing breakdown, present once terminal.
	Phases *PhaseView `json:"phases,omitempty"`
	// Result is populated on done jobs (full view only).
	Result *scenario.Result `json:"result,omitempty"`
}

// View snapshots the job. withResult includes the full result payload;
// listings omit it.
func (j *Job) View(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Status:    j.status,
		SpecHash:  j.comp.Hash(),
		Spec:      j.comp.Spec(),
		Completed: j.completed,
		Total:     j.comp.Trials(),
		Attempt:   j.attempt,
		Cached:    j.cached,
		Created:   j.created,
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	v.Phases = j.phaseViewLocked()
	if withResult {
		v.Result = j.result
	}
	return v
}
