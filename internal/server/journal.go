package server

import (
	"encoding/json"
	"path/filepath"
	"strconv"
	"time"

	"dualradio/internal/fleet"
	"dualradio/internal/journal"
	"dualradio/internal/scenario"
)

// The job journal is the service's crash-recovery backbone: an append-only
// NDJSON log under DataDir recording every admission and terminal
// transition. On startup the previous generation is replayed: every
// standalone job without a terminal record and every sweep with an
// incomplete child is re-admitted through the normal submission paths under
// its original id — which also rewrites the new generation to exactly the
// live set, so replay doubles as compaction. Completed children of a
// resumed sweep become cache hits against the content-addressed result
// store, so a restart re-runs only the work the crash actually lost and
// the final report is byte-identical to an uninterrupted run's.

// Journal record ops.
const (
	opAccept   = "accept"   // standalone job admitted; Spec carries its canonical spec
	opStart    = "start"    // job began executing (observability; replay ignores it)
	opTerminal = "terminal" // job reached a terminal status
	opSweep    = "sweep"    // sweep admitted; Sweep + Children carry its spec and child ids
)

// journalRecord is one NDJSON line of the job journal.
type journalRecord struct {
	Op     string    `json:"op"`
	ID     string    `json:"id"`
	Status JobStatus `json:"status,omitempty"`
	// Attempt tags start records with the retry attempt they begin.
	Attempt  int             `json:"attempt,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Sweep    json.RawMessage `json:"sweep,omitempty"`
	Children []string        `json:"children,omitempty"`
	// TS is the wallclock append time, stamped by journalAppend. It is
	// forensic only: replay never reads it, and it does not participate
	// in any canonical hash.
	TS time.Time `json:"ts"`
}

func journalPath(dataDir string) string { return filepath.Join(dataDir, "journal.ndjson") }

// journalAppend writes one record — a journalRecord, or a fleet.Record
// for lease/worker transitions (replay ignores their ops; they document
// the assignment history) — stamping its wallclock TS and observing the
// append latency. Failures are counted, not fatal — the journal is a
// recovery aid and must never take the service down.
func (s *Server) journalAppend(rec any) {
	if s.journal == nil {
		return
	}
	switch r := rec.(type) {
	case journalRecord:
		r.TS = time.Now() //detvet:wallclock forensic record timestamp; replay ignores TS (TestWallclockStampsAreHashNeutral)
		rec = r
	case fleet.Record:
		r.TS = time.Now() //detvet:wallclock forensic record timestamp; replay ignores TS
		rec = r
	}
	start := time.Now() //detvet:wallclock journal_append latency histogram only
	err := s.journal.Append(rec)
	s.srvm.journalAppend.Observe(time.Since(start).Seconds()) //detvet:wallclock journal_append latency histogram only
	if err != nil {
		s.journalErrs.Add(1)
	}
}

func acceptRecord(j *Job) journalRecord {
	// Canonical specs are plain validated data; Marshal cannot fail. A nil
	// Spec would simply drop the job from replay.
	spec, _ := json.Marshal(j.comp.Spec())
	return journalRecord{Op: opAccept, ID: j.id, Spec: spec}
}

// idSuffix returns the numeric suffix of a j%06d / s%06d id (0 if
// malformed), for resuming id allocation past everything the journal saw.
func idSuffix(id string) int {
	if len(id) < 2 {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// replayJournal reads the previous journal generation, re-admits every
// incomplete job and sweep under its original id, and seals a fresh
// generation containing exactly the live set. Workers are already running,
// so replay uses blocking queue sends (nothing else holds s.mu, and
// workers never take it, so the sends drain and cannot deadlock).
//
// Children of a resumed sweep are all re-admitted: previously completed
// ones hit the result store and complete instantly as cache hits;
// previously failed or cancelled ones get a fresh attempt — the journal
// records that they finished, not their irreproducible error state, and
// re-running is always correct for a deterministic workload.
func (s *Server) replayJournal() error {
	path := journalPath(s.cfg.DataDir)
	lines, err := journal.ReadAll(path)
	if err != nil {
		return err
	}
	jl, err := journal.Begin(path)
	if err != nil {
		return err
	}
	s.journal = jl

	// Pass 1: index the records. Terminal records may precede their accept
	// records in the log (a cache hit journals its terminal transition
	// inside the admission critical section), so replay never assumes order.
	var (
		acceptOrder []string
		accepts     = make(map[string]json.RawMessage)
		terminals   = make(map[string]bool)
		sweepOrder  []string
		sweepRecs   = make(map[string]journalRecord)
		sweepChild  = make(map[string]bool)
	)
	for _, line := range lines {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			s.journalErrs.Add(1)
			continue
		}
		switch rec.Op {
		case opAccept:
			if _, dup := accepts[rec.ID]; !dup {
				accepts[rec.ID] = rec.Spec
				acceptOrder = append(acceptOrder, rec.ID)
			}
		case opTerminal:
			terminals[rec.ID] = true
		case opSweep:
			if _, dup := sweepRecs[rec.ID]; !dup {
				sweepRecs[rec.ID] = rec
				sweepOrder = append(sweepOrder, rec.ID)
			}
			for _, c := range rec.Children {
				sweepChild[c] = true
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.replaying = true
	defer func() { s.replaying = false }()

	// Resume id allocation past every id the previous generation mentioned,
	// terminal or not, so new submissions never collide with pre-crash ids.
	bumpJob := func(id string) {
		if n := idSuffix(id); n > s.nextID {
			s.nextID = n
		}
	}
	for _, id := range acceptOrder {
		bumpJob(id)
	}
	for id := range sweepChild {
		bumpJob(id)
	}
	for _, id := range sweepOrder {
		if n := idSuffix(id); n > s.nextSweep {
			s.nextSweep = n
		}
	}

	// Pass 2a: re-admit incomplete standalone jobs in acceptance order.
	for _, id := range acceptOrder {
		if sweepChild[id] || terminals[id] {
			continue
		}
		spec, err := scenario.ParseSpec(accepts[id])
		if err != nil {
			s.replayDropped++
			continue
		}
		comp, err := scenario.Compile(spec)
		if err != nil {
			s.replayDropped++
			continue
		}
		res, cached := s.lookupResult(comp.Hash())
		if _, err := s.startJobLocked(id, comp, res, cached, nil); err != nil {
			s.replayDropped++
			continue
		}
		s.replayedJobs++
	}

	// Pass 2b: resume sweeps with at least one child lacking a terminal
	// record. ExpandSweep is deterministic, so re-expansion reproduces the
	// pre-crash grid; a mismatch against the journaled child ids means the
	// journal and the code disagree, and the sweep is dropped rather than
	// resurrected wrong.
	for _, sid := range sweepOrder {
		rec := sweepRecs[sid]
		complete := len(rec.Children) > 0
		for _, cid := range rec.Children {
			if !terminals[cid] {
				complete = false
				break
			}
		}
		if complete {
			continue
		}
		var swspec scenario.SweepSpec
		if err := json.Unmarshal(rec.Sweep, &swspec); err != nil {
			s.replayDropped++
			continue
		}
		exp, err := scenario.ExpandSweep(swspec)
		if err != nil || len(exp.Children) != len(rec.Children) {
			s.replayDropped++
			continue
		}
		// Re-journal the sweep before its children, mirroring SubmitSweep:
		// a crash mid-resume must not lose the admitted prefix.
		s.journalAppend(journalRecord{Op: opSweep, ID: sid, Sweep: rec.Sweep, Children: rec.Children})
		swp := newSweep(sid, exp)
		admitted := true
		for i, comp := range exp.Children {
			res, cached := s.lookupResult(comp.Hash())
			job, err := s.startJobLocked(rec.Children[i], comp, res, cached, swp)
			if err != nil {
				admitted = false
				break
			}
			swp.children[i] = job
		}
		if !admitted {
			for _, cid := range rec.Children {
				s.journalAppend(journalRecord{Op: opTerminal, ID: cid, Status: StatusCancelled})
			}
			for _, c := range swp.children {
				if c != nil {
					c.Cancel()
				}
			}
			s.replayDropped++
			continue
		}
		s.sweeps[sid] = swp
		s.sweepOrder = append(s.sweepOrder, sid)
		s.replayedSweeps++
	}
	return jl.Seal()
}

// journalCompactEvery triggers an in-process journal rewrite once the
// current generation holds this many records (and dwarfs the live set). A
// variable so tests can lower it.
var journalCompactEvery = 4096

// maybeCompactJournalLocked rewrites the journal to the minimal live
// record set once the generation has grown far past it. Callers hold s.mu.
//
// A child may reach a terminal state concurrently with the rewrite and
// have its terminal record land in the discarded generation; the journal
// is then conservative — replay re-runs that child, and determinism plus
// the result store make the redo a cache hit — so the race loses a little
// work, never any results.
func (s *Server) maybeCompactJournalLocked() {
	if s.journal == nil {
		return
	}
	appends := s.journal.Appends()
	if appends < journalCompactEvery {
		return
	}
	live := s.liveJournalRecordsLocked()
	if appends < 4*len(live) {
		return
	}
	if err := s.journal.Compact(live); err != nil {
		s.journalErrs.Add(1)
	}
}

// liveJournalRecordsLocked rebuilds the minimal record set describing the
// registry's live state: accept records for non-terminal standalone jobs,
// sweep records plus per-child terminal records for unfinished sweeps.
// Terminal standalone jobs and completed sweeps need no records at all —
// replay would drop them anyway. Callers hold s.mu.
func (s *Server) liveJournalRecordsLocked() []any {
	var recs []any
	for _, id := range s.order {
		j := s.jobs[id]
		if j.fromSweep || j.Status().terminal() {
			continue
		}
		recs = append(recs, acceptRecord(j))
	}
	for _, sid := range s.sweepOrder {
		sw := s.sweeps[sid]
		if sw.terminal() {
			continue
		}
		raw, err := json.Marshal(sw.exp.Spec)
		if err != nil {
			continue
		}
		children := make([]string, len(sw.children))
		var terms []any
		for i, c := range sw.children {
			children[i] = c.id
			if st := c.Status(); st.terminal() {
				terms = append(terms, journalRecord{Op: opTerminal, ID: c.id, Status: st})
			}
		}
		recs = append(recs, journalRecord{Op: opSweep, ID: sid, Sweep: raw, Children: children})
		recs = append(recs, terms...)
	}
	return recs
}
