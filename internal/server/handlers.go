package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dualradio/internal/scenario"
)

// maxBodyBytes bounds submission bodies; a spec is a few hundred bytes.
const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"jobs":         jobs,
		"queued":       len(s.queue),
		"queue_depth":  s.cfg.QueueDepth,
		"workers":      s.cfg.Workers,
		"cache_len":    s.results.Len(),
		"cache_cap":    s.results.Cap(),
		"spec_version": scenario.SpecVersion,
	})
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"presets": scenario.Presets()})
}

// submitRequest is the POST /v1/jobs body: either a preset reference or an
// inline spec. For convenience the body may also be a bare spec object (its
// "algorithm" field distinguishes it). The nested spec stays raw here so it
// goes through ParseSpec's strict decoding — typos must not be silently
// dropped just because the spec arrived wrapped.
type submitRequest struct {
	Preset string          `json:"preset,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req submitRequest
	// The wrapper form is lenient (a bare spec has fields the wrapper does
	// not know); the bare-spec fallback is strict.
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	var spec scenario.Spec
	switch {
	case req.Preset != "" && req.Spec != nil:
		writeError(w, http.StatusBadRequest, "give either preset or spec, not both")
		return
	case req.Preset != "":
		var ok bool
		if spec, ok = scenario.PresetByName(req.Preset); !ok {
			writeError(w, http.StatusBadRequest, "unknown preset %q", req.Preset)
			return
		}
	case req.Spec != nil:
		if spec, err = scenario.ParseSpec(req.Spec); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		if spec, err = scenario.ParseSpec(body); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View(false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.View(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View(false))
}

// handleJobEvents streams the job's progress as NDJSON: the full event
// history first, then live events as trials complete, ending after the
// terminal event (or when the client disconnects).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		events, terminal, wake := job.eventsSince(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(events)
		if len(events) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue // drain before deciding the stream is over
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}
