package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"dualradio/internal/report"
	"dualradio/internal/scenario"
)

// maxBodyBytes bounds submission bodies; a spec is a few hundred bytes and
// a sweep a few thousand.
const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.fleet.Mount(s.mux)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/report", s.handleSweepReport)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/stats", s.handleSweepStats)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submitStatus maps a Submit/SubmitSweep error to its HTTP status: full
// queue 503, admission budget 429, everything else (parse/validate) 400.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOverBudget):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	sweeps := len(s.sweeps)
	replayedJobs, replayedSweeps, replayDropped := s.replayedJobs, s.replayedSweeps, s.replayDropped
	s.mu.Unlock()
	calibJobs, nsPerUnit := s.Calibration()
	h := map[string]any{
		"status":           "ok",
		"jobs":             jobs,
		"sweeps":           sweeps,
		"queued":           len(s.queue),
		"queue_depth":      s.cfg.QueueDepth,
		"workers":          s.cfg.Workers,
		"cache_len":        s.results.Len(),
		"cache_cap":        s.results.Cap(),
		"pending_cost":     s.pending.Load(),
		"max_pending_cost": s.cfg.MaxPendingCost,
		// Admission calibration: measured wallclock per cost unit over
		// completed (non-cached) runs, for sanity-checking the analytic
		// n·trials·rounds estimate against reality.
		"calibration_jobs": calibJobs,
		"ns_per_cost_unit": nsPerUnit,
		"retries":          s.retries.Load(),
		"spec_version":     scenario.SpecVersion,
	}
	if s.store != nil {
		h["store_len"] = s.store.Len()
		h["store_dir"] = s.store.Dir()
		h["store_bytes"] = s.store.Bytes()
		h["store_max_bytes"] = s.cfg.StoreMaxBytes
		h["store_errors"] = s.storeErrs.Load()
	}
	if s.journal != nil {
		h["journal_path"] = s.journal.Path()
		h["journal_appends"] = s.journal.Appends()
		h["journal_errors"] = s.journalErrs.Load()
		h["replayed_jobs"] = replayedJobs
		h["replayed_sweeps"] = replayedSweeps
		h["replay_dropped"] = replayDropped
	}
	if s.cfg.Fault != nil {
		h["fault_rules"] = s.cfg.Fault.Rules()
	}
	fc := s.fleet.Snapshot().Counters
	h["fleet_workers_live"] = fc.WorkersLive
	h["fleet_workers_dead"] = fc.WorkersDead
	h["fleet_leases_active"] = fc.LeasesActive
	h["fleet_redispatched"] = fc.Redispatched
	// The full registry — counters, gauges, histograms — as JSON, so health
	// probes see everything /metrics exposes without parsing the text format.
	h["metrics"] = s.metrics.Snapshot()
	writeJSON(w, http.StatusOK, h)
}

// handleSweepStats serves per-phase timing rollups over the sweep's
// terminal children (see Sweep.Stats).
func (s *Server) handleSweepStats(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sw.Stats())
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"presets": scenario.Presets()})
}

// submitRequest is the POST /v1/jobs body: either a preset reference or an
// inline spec. For convenience the body may also be a bare spec object (its
// "algorithm" field distinguishes it). The nested spec stays raw here so it
// goes through ParseSpec's strict decoding — typos must not be silently
// dropped just because the spec arrived wrapped.
type submitRequest struct {
	Preset string          `json:"preset,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return nil, false
	}
	return body, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req submitRequest
	// The wrapper form is lenient (a bare spec has fields the wrapper does
	// not know); the bare-spec fallback is strict.
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	var spec scenario.Spec
	var err error
	switch {
	case req.Preset != "" && req.Spec != nil:
		writeError(w, http.StatusBadRequest, "give either preset or spec, not both")
		return
	case req.Preset != "":
		var ok bool
		if spec, ok = scenario.PresetByName(req.Preset); !ok {
			writeError(w, http.StatusBadRequest, "unknown preset %q", req.Preset)
			return
		}
	case req.Spec != nil:
		if spec, err = scenario.ParseSpec(req.Spec); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		if spec, err = scenario.ParseSpec(body); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeError(w, submitStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View(false))
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	sw, err := scenario.ParseSweep(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	swp, err := s.SubmitSweep(sw)
	if err != nil {
		writeError(w, submitStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, swp.View(true))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	sweeps := s.Sweeps()
	views := make([]SweepView, 0, len(sweeps))
	for _, sw := range sweeps {
		views = append(views, sw.View(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return job, true
}

func (s *Server) sweepOr404(w http.ResponseWriter, r *http.Request) (*Sweep, bool) {
	id := r.PathValue("id")
	sw, ok := s.Sweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", id)
		return nil, false
	}
	return sw, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.View(true))
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sw.View(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View(false))
}

func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepOr404(w, r)
	if !ok {
		return
	}
	sw.CancelChildren()
	writeJSON(w, http.StatusOK, sw.View(true))
}

// streamNDJSON drives an NDJSON event stream: replay history, follow live
// events, end after the terminal event. source mirrors Job.eventsSince —
// it returns pending events (already JSON-marshalable), whether the
// subject is terminal, and a wake channel to wait on when idle. The
// request context is observed both while waiting and between batches, so a
// disconnected client stops the handler instead of leaving it writing into
// a dead connection — event producers are never blocked either way, since
// events live in the subject's log, not in a channel to this handler.
func streamNDJSON(w http.ResponseWriter, r *http.Request, source func(from int) ([]any, bool, <-chan struct{})) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		events, terminal, wake := source(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return // client gone
			}
		}
		next += len(events)
		if len(events) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			if r.Context().Err() != nil {
				return
			}
			continue // drain before deciding the stream is over
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// handleJobEvents streams the job's progress as NDJSON: the full event
// history first, then live events as trials complete, ending after the
// terminal event (or when the client disconnects).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	streamNDJSON(w, r, func(from int) ([]any, bool, <-chan struct{}) {
		events, terminal, wake := job.eventsSince(from)
		out := make([]any, len(events))
		for i, e := range events {
			out[i] = e
		}
		return out, terminal, wake
	})
}

// handleSweepReport renders a sweep as a pivot report: child aggregates
// onto the sweep's axes, rows × columns of the chosen metric. Query
// parameters: metric (default mean_rounds; see report.Metrics), rows/cols
// (axis names; default first/second axis), format (csv, json, or table;
// default table). A sweep with unfinished, failed, or cancelled children
// is not reportable and answers 409 — unless partial=1, which pivots the
// completed children only (absent cells render empty) and labels the
// response with X-Complete-Children / X-Total-Children headers so callers
// can tell how much of the grid they are looking at.
func (s *Server) handleSweepReport(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepOr404(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	partial := q.Get("partial") == "1" || q.Get("partial") == "true"
	exp, aggs, present, done, err := sw.reportData(partial)
	if err != nil {
		writeError(w, http.StatusConflict, "sweep not reportable: %v", err)
		return
	}
	opts := report.Options{
		Metric: q.Get("metric"),
		Rows:   q.Get("rows"),
		Cols:   q.Get("cols"),
	}
	if partial {
		opts.Present = present
		w.Header().Set("X-Complete-Children", strconv.Itoa(done))
		w.Header().Set("X-Total-Children", strconv.Itoa(len(present)))
	}
	rep, err := report.Build(exp, aggs, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch format := q.Get("format"); format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_, _ = io.WriteString(w, rep.CSV())
	case "json":
		writeJSON(w, http.StatusOK, rep)
	case "", "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, rep.Table())
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want csv|json|table)", format)
	}
}

// handleSweepEvents streams the sweep's child completions as NDJSON:
// "queued", one "child" per terminal child in completion order, then
// "done" once the whole grid is terminal.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepOr404(w, r)
	if !ok {
		return
	}
	streamNDJSON(w, r, func(from int) ([]any, bool, <-chan struct{}) {
		events, terminal, wake := sw.eventsSince(from)
		out := make([]any, len(events))
		for i, e := range events {
			out[i] = e
		}
		return out, terminal, wake
	})
}
