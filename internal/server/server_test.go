package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dualradio/internal/scenario"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, v
}

// quickSpec is a fast MIS workload (~ms per trial).
func quickSpec(trials int, seed uint64) scenario.Spec {
	return scenario.Spec{
		Algorithm:       scenario.AlgoMIS,
		Network:         scenario.NetworkSpec{N: 32},
		Trials:          trials,
		Seed:            seed,
		StopWhenDecided: true,
	}
}

func waitForStatus(t *testing.T, url string, want JobStatus) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, view := getJSON[JobView](t, url)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		if view.Status == want {
			return view
		}
		if view.Status.terminal() {
			t.Fatalf("job reached terminal status %q, want %q", view.Status, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q waiting for %q", view.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobLifecycleSubmitPollStreamResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(2, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || accepted.Total != 2 || accepted.SpecHash == "" {
		t.Fatalf("bad accepted view: %+v", accepted)
	}

	jobURL := ts.URL + "/v1/jobs/" + accepted.ID
	done := waitForStatus(t, jobURL, StatusDone)
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if done.Cached {
		t.Fatal("first run reported as cached")
	}
	if len(done.Result.Trials) != 2 || done.Result.SpecHash != accepted.SpecHash {
		t.Fatalf("bad result: %+v", done.Result)
	}
	if done.Completed != 2 {
		t.Fatalf("completed = %d, want 2", done.Completed)
	}

	// The event stream replays history and ends after the terminal event.
	// Each trial is followed by a streaming "aggregate" event covering the
	// folded prefix (with one trial worker, trials fold in order, so every
	// trial advances the fold).
	events := streamEvents(t, jobURL+"/events")
	types := eventTypes(events)
	want := []string{"queued", "started", "trial", "aggregate", "trial", "aggregate", "phases", "done"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("event sequence %v, want %v", types, want)
	}
	var lastAgg *scenario.Aggregate
	for _, e := range events {
		if e.Type == "trial" && e.Trial == nil {
			t.Fatal("trial event without a trial result")
		}
		if e.Type == "aggregate" {
			if e.Aggregate == nil || e.Folded == 0 || e.Aggregate.Trials != e.Folded {
				t.Fatalf("malformed aggregate event: %+v", e)
			}
			lastAgg = e.Aggregate
		}
	}
	// The final streamed aggregate is the result's aggregate exactly.
	if lastAgg == nil || *lastAgg != done.Result.Aggregate {
		t.Fatalf("final streamed aggregate %+v != result aggregate %+v",
			lastAgg, done.Result.Aggregate)
	}

	// The job listing shows the job without the result payload.
	code, list := getJSON[struct{ Jobs []JobView }](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].Result != nil {
		t.Fatalf("bad listing: code %d, %+v", code, list)
	}
}

func TestIdenticalResubmissionServedFromCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(2, 1))
	var first JobView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	firstDone := waitForStatus(t, ts.URL+"/v1/jobs/"+first.ID, StatusDone)

	// Same workload, cosmetically different spec: name differs, defaults
	// spelled out. Must hash identically and be served from the cache.
	respec := quickSpec(2, 1)
	respec.Name = "same workload, different JSON"
	respec.Adversary.Kind = scenario.AdvCollision
	_, body = postJSON(t, ts.URL+"/v1/jobs", respec)
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	secondDone := waitForStatus(t, ts.URL+"/v1/jobs/"+second.ID, StatusDone)
	if !secondDone.Cached {
		t.Fatal("identical resubmission was not served from the cache")
	}
	if !reflect.DeepEqual(firstDone.Result, secondDone.Result) {
		t.Fatal("cached result differs from the original")
	}
	// A cache-served job's stream has no started/trial events.
	types := eventTypes(streamEvents(t, ts.URL+"/v1/jobs/"+second.ID+"/events"))
	if !reflect.DeepEqual(types, []string{"queued", "phases", "done"}) {
		t.Fatalf("cached job events %v, want [queued phases done]", types)
	}
}

func TestCancelMidJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Enough trials that the job is still running when the cancel lands.
	_, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(4000, 1))
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	jobURL := ts.URL + "/v1/jobs/" + view.ID

	// Follow the stream until the first completed trial proves the job is
	// mid-flight.
	resp, err := http.Get(jobURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawTrial := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Type == "trial" {
			sawTrial = true
			break
		}
	}
	if !sawTrial {
		t.Fatal("stream ended before any trial completed")
	}

	req, _ := http.NewRequest(http.MethodDelete, jobURL, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}

	cancelled := waitForStatus(t, jobURL, StatusCancelled)
	if cancelled.Completed >= cancelled.Total {
		t.Fatalf("cancelled job completed all %d trials", cancelled.Total)
	}
	if cancelled.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
	// The open stream observes the terminal event and ends.
	sawCancelled := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Type == "cancelled" {
			sawCancelled = true
		}
	}
	if !sawCancelled {
		t.Fatal("event stream never delivered the cancelled event")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// Occupy the only worker...
	blocker, err := svc.Submit(quickSpec(4000, 99))
	if err != nil {
		t.Fatal(err)
	}
	// ...then cancel a job that never leaves the queue.
	queued, err := svc.Submit(quickSpec(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForStatus(t, ts.URL+"/v1/jobs/"+queued.id, StatusCancelled)
	types := eventTypes(streamEvents(t, ts.URL+"/v1/jobs/"+queued.id+"/events"))
	if !reflect.DeepEqual(types, []string{"queued", "phases", "cancelled"}) {
		t.Fatalf("queued-cancel events %v, want [queued phases cancelled]", types)
	}
	blocker.Cancel()
}

func TestConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const submitters = 8
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct seeds: genuinely different workloads.
			resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(2, uint64(1+g)))
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submitter %d: status %d, body %s", g, resp.StatusCode, body)
				return
			}
			var view JobView
			if err := json.Unmarshal(body, &view); err != nil {
				t.Errorf("submitter %d: %v", g, err)
				return
			}
			ids[g] = view.ID
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	seen := map[string]bool{}
	for g, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("submitter %d got duplicate/empty id %q", g, id)
		}
		seen[id] = true
		done := waitForStatus(t, ts.URL+"/v1/jobs/"+id, StatusDone)
		if done.Result == nil || len(done.Result.Trials) != 2 {
			t.Fatalf("job %s: bad result %+v", id, done.Result)
		}
		if done.Result.Aggregate.ValidFraction == 0 {
			t.Errorf("job %s: no valid trials", id)
		}
	}
}

func TestQueueFullRejectsWith503(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// One long job occupies the worker, a second fills the queue.
	j1, err := svc.Submit(quickSpec(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	var j2 *Job
	// The worker may briefly not have dequeued j1 yet; retry until the
	// queue slot frees.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j2, err = svc.Submit(quickSpec(4000, 2))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second submission never fit the queue: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(4000, 3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("overflow error body %s", body)
	}
	// The rejected job must not appear in the listing.
	code, list := getJSON[struct{ Jobs []JobView }](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(list.Jobs) != 2 {
		t.Fatalf("listing after overflow: code %d, %d jobs (want 2)", code, len(list.Jobs))
	}
	j1.Cancel()
	j2.Cancel()
}

func TestSubmitVariantsAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Preset reference.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]string{"preset": "mis-quick"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("preset submit: status %d, body %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Spec.Name != "mis-quick" || view.Spec.Network.N != 64 {
		t.Fatalf("preset submit spec: %+v", view.Spec)
	}
	waitForStatus(t, ts.URL+"/v1/jobs/"+view.ID, StatusDone)

	// Wrapped spec.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"spec": quickSpec(1, 5)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wrapped submit: status %d", resp.StatusCode)
	}

	for name, tc := range map[string]struct {
		body any
		want int
	}{
		"unknown preset":  {map[string]string{"preset": "nope"}, http.StatusBadRequest},
		"invalid spec":    {map[string]any{"algorithm": "mis", "network": map[string]int{"n": 0}}, http.StatusBadRequest},
		"preset and spec": {map[string]any{"preset": "mis-quick", "spec": quickSpec(1, 1)}, http.StatusBadRequest},
		"junk field":      {map[string]any{"algorithm": "mis", "network": map[string]int{"n": 32}, "trails": 3}, http.StatusBadRequest},
		// The wrapped form must be exactly as strict as the bare form.
		"junk field wrapped": {map[string]any{"spec": map[string]any{
			"algorithm": "mis", "network": map[string]int{"n": 32}, "trails": 3}}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d), body %s", name, resp.StatusCode, tc.want, body)
		}
	}

	// Unknown job id.
	code, _ := getJSON[map[string]string](t, ts.URL+"/v1/jobs/j999999")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

func TestHealthzAndPresets(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 7})
	code, health := getJSON[map[string]any](t, ts.URL+"/healthz")
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	if health["queue_depth"].(float64) != 7 || health["workers"].(float64) != 2 {
		t.Fatalf("healthz gauges: %v", health)
	}
	code, presets := getJSON[struct{ Presets []scenario.Preset }](t, ts.URL+"/v1/presets")
	if code != http.StatusOK || len(presets.Presets) == 0 {
		t.Fatalf("presets: %d, %d entries", code, len(presets.Presets))
	}
	for _, p := range presets.Presets {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("preset missing name/description: %+v", p)
		}
	}
}

func TestTerminalJobsPrunedBeyondHistory(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, History: 2})
	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		_, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(1, seed))
		var view JobView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
		waitForStatus(t, ts.URL+"/v1/jobs/"+view.ID, StatusDone)
	}
	// Submitting the 4th job found 3 terminal jobs, one over History: the
	// oldest was pruned.
	code, _ := getJSON[map[string]string](t, ts.URL+"/v1/jobs/"+ids[0])
	if code != http.StatusNotFound {
		t.Fatalf("oldest terminal job still served: status %d", code)
	}
	code, list := getJSON[struct{ Jobs []JobView }](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(list.Jobs) != 3 {
		t.Fatalf("listing after prune: code %d, %d jobs (want 3)", code, len(list.Jobs))
	}
	for _, j := range list.Jobs {
		if j.ID == ids[0] {
			t.Fatalf("pruned job %s still listed", ids[0])
		}
	}
}

func TestQueueDelayedCacheHitKeepsCachedEventShape(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	// Two identical jobs: the second sits queued until the first finishes,
	// then must be cache-served with the queued → done event shape (no
	// "started", no trials).
	first, err := svc.Submit(quickSpec(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Submit(quickSpec(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, ts.URL+"/v1/jobs/"+first.id, StatusDone)
	done := waitForStatus(t, ts.URL+"/v1/jobs/"+second.id, StatusDone)
	if !done.Cached {
		t.Fatal("queue-delayed identical job was not cache-served")
	}
	types := eventTypes(streamEvents(t, ts.URL+"/v1/jobs/"+second.id+"/events"))
	if !reflect.DeepEqual(types, []string{"queued", "phases", "done"}) {
		t.Fatalf("queue-delayed cached job events %v, want [queued phases done]", types)
	}
}

func TestCloseCancelsRunningJobs(t *testing.T) {
	svc, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(quickSpec(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to start.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := job.View(false); v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Close()
	if v := job.View(false); v.Status != StatusCancelled {
		t.Fatalf("after Close job status = %q, want cancelled", v.Status)
	}
	if _, err := svc.Submit(quickSpec(1, 1)); err == nil {
		t.Fatal("closed server accepted a submission")
	}
}

// TestPruneEvictsOldestTerminalFirst pins pruneLocked's eviction policy:
// strictly oldest-submission-first among terminal jobs, driven by the
// append-only order slice — never map iteration order — with live jobs
// immune regardless of age. The surviving set is therefore deterministic.
func TestPruneEvictsOldestTerminalFirst(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, History: 2, MaxPendingCost: 1 << 40})
	// The oldest job overall stays live for the whole test (n=256 × 4096
	// trials takes far longer than the quick jobs below; one worker runs
	// it, the other serves the rest): pruning must skip over it, not
	// protect younger terminal jobs behind it.
	live, err := svc.Submit(scenario.Spec{
		Algorithm:       scenario.AlgoMIS,
		Network:         scenario.NetworkSpec{N: 256},
		Trials:          4096,
		Seed:            50,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Cancel()
	var ids []string
	for seed := uint64(51); seed <= 55; seed++ {
		job, err := svc.Submit(quickSpec(1, seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.id)
		waitForStatus(t, ts.URL+"/v1/jobs/"+job.id, StatusDone)
	}
	// Pruning runs at submission: the 4th and 5th quick submissions each
	// found three terminal jobs (one over History) and evicted exactly the
	// oldest terminal one — ids[0], then ids[1]. Everything younger
	// survives; nothing else may be touched.
	for i, id := range ids {
		code, _ := getJSON[map[string]any](t, ts.URL+"/v1/jobs/"+id)
		want := http.StatusOK
		if i < 2 {
			want = http.StatusNotFound
		}
		if code != want {
			t.Errorf("job %d (%s): status %d, want %d", i, id, code, want)
		}
	}
	// The live job survived every prune despite being the oldest.
	if v := live.View(false); v.Status.terminal() {
		t.Fatalf("live job reached %q unexpectedly", v.Status)
	}
	if _, ok := svc.Job(live.id); !ok {
		t.Fatal("live job was pruned")
	}
}

// TestCancelledJobNeverPopulatesCacheOrStore locks the cache-insert
// contract: only fully completed runs are stored under the spec hash, so
// cancelling a job mid-run must leave both the LRU and the persistent
// store empty, and resubmitting the same spec must re-simulate from
// scratch to full completion rather than serve the victim's partial state.
func TestCancelledJobNeverPopulatesCacheOrStore(t *testing.T) {
	spec := quickSpec(800, 31)
	svc, ts := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	_, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	var first JobView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	jobURL := ts.URL + "/v1/jobs/" + first.ID

	// Follow the stream until a completed trial proves the job mid-flight.
	resp, err := http.Get(jobURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sawTrial := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Type == "trial" {
			sawTrial = true
			break
		}
	}
	resp.Body.Close()
	if !sawTrial {
		t.Fatal("stream ended before any trial completed")
	}
	req, _ := http.NewRequest(http.MethodDelete, jobURL, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	cancelled := waitForStatus(t, jobURL, StatusCancelled)
	if cancelled.Completed >= cancelled.Total {
		t.Skip("job finished before the cancel landed; nothing partial to guard")
	}

	// Neither cache nor store may hold anything under the spec hash.
	if _, ok := svc.results.Peek(first.SpecHash); ok {
		t.Fatal("cancelled job's partial result entered the LRU")
	}
	if svc.store.Len() != 0 {
		t.Fatalf("cancelled job persisted %d store entries", svc.store.Len())
	}

	// Resubmission runs fresh and to completion.
	_, body = postJSON(t, ts.URL+"/v1/jobs", spec)
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	done := waitForStatus(t, ts.URL+"/v1/jobs/"+second.ID, StatusDone)
	if done.Cached {
		t.Fatal("resubmission after cancel was served from the cache")
	}
	if done.Result == nil || len(done.Result.Trials) != done.Total {
		t.Fatalf("resubmission result incomplete: %+v", done.Result)
	}
	if svc.store.Len() != 1 {
		t.Fatalf("completed resubmission persisted %d entries, want 1", svc.store.Len())
	}
}

// TestJobEventsStreamStopsOnClientDisconnect locks the NDJSON handler's
// disconnect behavior: when the client goes away mid-stream — even while
// events keep arriving, so the handler never parks on the wake channel —
// the handler observes r.Context() and returns instead of writing into a
// dead connection until the job ends. Event producers are unaffected
// either way (events append to the job's log; nothing blocks on this
// handler).
func TestJobEventsStreamStopsOnClientDisconnect(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	_, body := postJSON(t, ts.URL+"/v1/jobs", quickSpec(4000, 77))
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, ts.URL+"/v1/jobs/"+view.ID, StatusRunning)

	rec := httptest.NewRecorder()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+view.ID+"/events", nil).WithContext(ctx)
	handlerDone := make(chan struct{})
	go func() {
		svc.ServeHTTP(rec, req)
		close(handlerDone)
	}()
	// Let the stream run mid-job, then disconnect.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("events handler kept streaming after client disconnect")
	}
	// The job is unaffected by the departed stream.
	job, ok := svc.Job(view.ID)
	if !ok || job.Status().terminal() {
		t.Fatal("job vanished or terminated when its stream client left")
	}
	job.Cancel()
}

func streamEvents(t *testing.T, url string) []Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func eventTypes(events []Event) []string {
	types := make([]string, len(events))
	for i, e := range events {
		types[i] = e.Type
	}
	return types
}
