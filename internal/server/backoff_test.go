package server

import (
	"testing"
	"time"
)

func TestRetryDelayDeterministic(t *testing.T) {
	base, max := 250*time.Millisecond, 5*time.Second
	for attempt := 0; attempt < 6; attempt++ {
		a := retryDelay(base, max, "job-000042", attempt)
		b := retryDelay(base, max, "job-000042", attempt)
		if a != b {
			t.Fatalf("attempt %d: %v != %v — backoff must be deterministic per (id, attempt)", attempt, a, b)
		}
	}
	// Different jobs (and different attempts of one job) de-synchronize.
	if retryDelay(base, max, "job-000001", 3) == retryDelay(base, max, "job-000002", 3) &&
		retryDelay(base, max, "job-000001", 4) == retryDelay(base, max, "job-000002", 4) {
		t.Fatal("distinct jobs drew identical jitter on consecutive attempts")
	}
}

func TestRetryDelayRange(t *testing.T) {
	base, max := 100*time.Millisecond, 10*time.Second
	for attempt := 0; attempt < 5; attempt++ {
		want := base << attempt
		got := retryDelay(base, max, "j", attempt)
		if got < want || got > want+want/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want, want+want/2)
		}
	}
}

func TestRetryDelayCapsAtMax(t *testing.T) {
	base, max := 250*time.Millisecond, time.Second
	// 250ms << 4 = 4s exceeds the 1s cap.
	if got := retryDelay(base, max, "j", 4); got < max || got > max+max/2 {
		t.Fatalf("capped delay %v outside [%v, %v]", got, max, max+max/2)
	}
	// Huge attempts shift the base to zero or negative; still capped, never
	// zero or panicking.
	for _, attempt := range []int{62, 63, 64, 100} {
		if got := retryDelay(base, max, "j", attempt); got < max || got > max+max/2 {
			t.Fatalf("attempt %d: overflow delay %v outside [%v, %v]", attempt, got, max, max+max/2)
		}
	}
}
