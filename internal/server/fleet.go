package server

import (
	"encoding/json"
	"errors"
	"fmt"

	"dualradio/internal/fleet"
	"dualradio/internal/scenario"
)

// fleetBackend adapts the server's job queue to the fleet coordinator.
// Every method is called without coordinator locks held and may take s.mu
// (via fireRetry) or job locks freely.
type fleetBackend struct{ s *Server }

// Next pulls the next runnable job off the shared queue and leases it.
// Remote dispatch and the local worker pool drain the same channel, so
// work naturally flows to whoever has capacity; with no registered
// workers nothing ever calls Next and the service is byte-for-byte the
// single-node one.
func (b fleetBackend) Next(worker, leaseID string) *scenario.WorkUnit {
	s := b.s
	for {
		var job *Job
		select {
		case job = <-s.queue:
		default:
			return nil
		}
		// Same cache recheck as runJob: an identical job may have finished
		// (locally or remotely) while this one sat in the queue.
		if res, ok := s.lookupResult(job.comp.Hash()); ok {
			if job.complete(res, true) {
				s.srvm.attempts.With("cached").Inc()
			}
			continue
		}
		if !job.tryLease(leaseID, worker) {
			continue // cancelled while queued
		}
		s.srvm.queueWait.With(job.comp.Spec().Algorithm).Observe(job.queueWait().Seconds())
		s.journalAppend(fleet.Record{Op: fleet.OpLease, Job: job.id, Lease: leaseID, Worker: worker})
		// Canonical specs are plain validated data; Marshal cannot fail.
		spec, _ := json.Marshal(job.comp.Spec())
		return &scenario.WorkUnit{Job: job.id, Lease: leaseID, Attempt: job.Attempt(), Spec: spec}
	}
}

// Complete finishes a job with a worker's result. The payload is decoded
// and sanity-checked against the job's own spec (the worker ran the
// canonical spec this server serialized, so trial count and hash must
// line up), then persisted under the spec hash exactly like a local run's
// result — the store's write-once Put makes duplicate deliveries merge
// byte-exactly. complete no-ops on a job that already reached a terminal
// state, so late results from "dead" workers are safely adopted.
func (b fleetBackend) Complete(jobID string, result []byte) error {
	job, ok := b.s.Job(jobID)
	if !ok {
		return fmt.Errorf("server: unknown job %s", jobID)
	}
	var res scenario.Result
	if err := json.Unmarshal(result, &res); err != nil {
		return fmt.Errorf("server: job %s: decode remote result: %w", jobID, err)
	}
	if res.SpecHash != job.comp.Hash() {
		return fmt.Errorf("server: job %s: remote result hash %s != spec hash %s", jobID, res.SpecHash, job.comp.Hash())
	}
	if res.Aggregate.Trials != job.comp.Trials() {
		return fmt.Errorf("server: job %s: remote result covers %d trials, want %d", jobID, res.Aggregate.Trials, job.comp.Trials())
	}
	b.s.persist(job.comp.Hash(), &res)
	job.markPersisted()
	if job.complete(&res, false) {
		b.s.srvm.attempts.With("done").Inc()
		spec := job.comp.Spec()
		b.s.srvm.jobDuration.With(spec.Algorithm, presetLabel(spec)).Observe(job.totalDuration().Seconds())
	}
	return nil
}

// Fail applies the server's local failure policy to a remote failure:
// transient errors with retry budget left go through the usual jittered
// backoff (the job re-enters the shared queue and may land anywhere);
// everything else fails the job.
func (b fleetBackend) Fail(jobID, msg string, transient bool) {
	job, ok := b.s.Job(jobID)
	if !ok {
		return
	}
	err := errors.New(msg)
	if transient {
		err = scenario.MarkTransient(err)
	}
	attempt := job.Attempt()
	if transient && attempt < b.s.cfg.MaxRetries {
		b.s.scheduleRetry(job, err, attempt)
		return
	}
	if job.fail(err) {
		b.s.srvm.attempts.With("failed").Inc()
	}
}

// Requeue returns a leased job to the queue after its worker died or its
// lease expired. The job-side transition is lease-scoped (a stale expiry
// cannot disturb a job that moved on); on success the re-dispatch is
// journaled and the job re-enters the queue through the same
// closed-checked path retries use.
func (b fleetBackend) Requeue(jobID, leaseID, worker, reason string) bool {
	job, ok := b.s.Job(jobID)
	if !ok {
		return false
	}
	if !job.requeue(leaseID, worker, reason) {
		return false
	}
	b.s.journalAppend(fleet.Record{Op: fleet.OpRedispatch, Job: jobID, Lease: leaseID, Worker: worker, Reason: reason})
	b.s.fireRetry(job)
	return true
}

// WorkerEvent journals a worker lifecycle transition.
func (b fleetBackend) WorkerEvent(op, worker, name string) {
	b.s.journalAppend(fleet.Record{Op: op, Worker: worker, Name: name})
}
