package server

import (
	"bytes"
	"net/http"
)

// handleMetrics serves the server's metrics registry in the Prometheus
// text exposition format (0.0.4): HELP/TYPE headers, counters, gauges,
// and cumulative histograms, in a stable order (families name-sorted,
// series label-sorted) so diffs between scrapes are line-stable. Every
// gauge the pre-registry endpoint emitted is still here under the same
// name; the registry adds the counter and histogram families on top.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	if err := s.metrics.WriteProm(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}
