package server

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics serves the gauges /healthz computes as plaintext in the
// Prometheus exposition format (one `radiod_<name> <value>` line each), so
// a fleet is scrapeable by standard tooling without a client that parses
// the health JSON. Only numeric gauges are exported; emission order is
// fixed so diffs between scrapes are line-stable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	sweeps := len(s.sweeps)
	replayedJobs, replayedSweeps, replayDropped := s.replayedJobs, s.replayedSweeps, s.replayDropped
	s.mu.Unlock()
	calibJobs, nsPerUnit := s.Calibration()

	var b strings.Builder
	gauge := func(name string, v any) {
		fmt.Fprintf(&b, "radiod_%s %v\n", name, v)
	}
	gauge("jobs", jobs)
	gauge("sweeps", sweeps)
	gauge("queued", len(s.queue))
	gauge("queue_depth", s.cfg.QueueDepth)
	gauge("workers", s.cfg.Workers)
	gauge("cache_len", s.results.Len())
	gauge("cache_cap", s.results.Cap())
	gauge("pending_cost", s.pending.Load())
	gauge("max_pending_cost", s.cfg.MaxPendingCost)
	gauge("retries", s.retries.Load())
	gauge("calibration_jobs", calibJobs)
	gauge("ns_per_cost_unit", nsPerUnit)
	if s.store != nil {
		gauge("store_len", s.store.Len())
		gauge("store_bytes", s.store.Bytes())
		gauge("store_errors", s.storeErrs.Load())
	}
	if s.journal != nil {
		gauge("journal_appends", s.journal.Appends())
		gauge("journal_errors", s.journalErrs.Load())
		gauge("replayed_jobs", replayedJobs)
		gauge("replayed_sweeps", replayedSweeps)
		gauge("replay_dropped", replayDropped)
	}
	fc := s.fleet.Snapshot().Counters
	gauge("fleet_workers_live", fc.WorkersLive)
	gauge("fleet_workers_dead", fc.WorkersDead)
	gauge("fleet_leases_active", fc.LeasesActive)
	gauge("fleet_leases_granted", fc.LeasesGranted)
	gauge("fleet_completed", fc.Completed)
	gauge("fleet_failed", fc.Failed)
	gauge("fleet_redispatched", fc.Redispatched)
	gauge("fleet_leases_expired", fc.LeasesExpired)
	gauge("fleet_adopted", fc.Adopted)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
