package server

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"dualradio/internal/metrics"
)

// TestMetricsExpositionLints: after real traffic — a run job, a cache hit,
// a sweep — the /metrics exposition must pass the strict format linter and
// carry the instrument families the e2e tooling asserts on: the latency
// histograms, the cache counters, and the migrated gauges under their
// historical names.
func TestMetricsExpositionLints(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	job, err := svc.Submit(quickSpec(2, 71))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusDone)
	again, err := svc.Submit(quickSpec(2, 71)) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, again, StatusDone)
	sw, err := svc.SubmitSweep(quickSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, sw)

	code, body := getText(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics: status %d", code)
	}
	stats, err := metrics.Lint([]byte(body))
	if err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	if stats.Histograms < 3 {
		t.Fatalf("exposition has %d histograms, want >= 3", stats.Histograms)
	}
	for _, want := range []string{
		"# TYPE radiod_queue_wait_seconds histogram",
		"# TYPE radiod_job_duration_seconds histogram",
		"# TYPE radiod_trial_duration_seconds histogram",
		"# TYPE radiod_journal_append_seconds histogram",
		"# TYPE radiod_store_put_seconds histogram",
		"# TYPE radiod_cache_hits_total counter",
		"radiod_trials_completed_total ",
		"radiod_queued ",                // migrated gauges keep their names
		"radiod_fleet_redispatched 0\n", // still greppable by the fleet e2e
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, body)
		}
	}
	// Two scrapes must agree on line order (values may move).
	_, body2 := getText(t, ts.URL+"/metrics")
	names := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line[:strings.LastIndexByte(line, ' ')])
		}
		return out
	}
	if !reflect.DeepEqual(names(body), names(body2)) {
		t.Fatalf("scrape order unstable:\n%v\nvs\n%v", names(body), names(body2))
	}
	// The cache counters moved: the resubmission and the sweep recheck hit.
	if !strings.Contains(body, "radiod_cache_hits_total") {
		t.Fatal("no cache-hit counter after a cached resubmission")
	}
}

// TestJobPhaseTimingsAndEvent: a finished job exposes a coherent phase
// breakdown in its view and emits it as a "phases" NDJSON event just
// before the terminal event; every event carries a wallclock ts.
func TestJobPhaseTimingsAndEvent(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	job, err := svc.Submit(quickSpec(2, 72))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusDone)

	v := job.View(false)
	if v.Phases == nil {
		t.Fatal("terminal job has no phase breakdown")
	}
	p := v.Phases
	for name, ms := range map[string]float64{
		"queue_wait": p.QueueWaitMS, "trials": p.TrialsMS,
		"reduce": p.ReduceMS, "persist": p.PersistMS, "total": p.TotalMS,
	} {
		if ms < 0 {
			t.Fatalf("phase %s is negative: %v", name, ms)
		}
	}
	if p.TotalMS <= 0 {
		t.Fatal("total phase must be positive for a run job")
	}
	parts := p.QueueWaitMS + p.TrialsMS + p.ReduceMS + p.PersistMS
	if parts > p.TotalMS+1 { // 1ms slack for clock rounding
		t.Fatalf("phase parts %.3fms exceed total %.3fms", parts, p.TotalMS)
	}

	events := streamEvents(t, ts.URL+"/v1/jobs/"+job.id+"/events")
	var phases *Event
	for i := range events {
		if events[i].TS.IsZero() {
			t.Fatalf("event %q lacks a wallclock ts", events[i].Type)
		}
		if events[i].Type == "phases" {
			phases = &events[i]
		}
	}
	if phases == nil || phases.Phases == nil {
		t.Fatalf("no phases event in %v", eventTypes(events))
	}
	if phases.Phases.TotalMS != p.TotalMS {
		t.Fatalf("phases event total %v != view total %v", phases.Phases.TotalMS, p.TotalMS)
	}
	if last := events[len(events)-1]; last.Type != "done" {
		t.Fatalf("phases event must precede the terminal event, got %v", eventTypes(events))
	}
}

// TestSweepStatsEndpoint: per-sweep phase rollups over the terminal
// children, with cached children counted so readers can interpret the
// near-zero totals they contribute.
func TestSweepStatsEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	sw, err := svc.SubmitSweep(quickSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, sw)

	code, stats := getJSON[SweepStats](t, ts.URL+"/v1/sweeps/"+sw.id+"/stats")
	if code != 200 {
		t.Fatalf("GET stats: status %d", code)
	}
	if stats.ID != sw.id || stats.Total != sw.total {
		t.Fatalf("stats identity wrong: %+v", stats)
	}
	if stats.Terminal != stats.Total {
		t.Fatalf("finished sweep reports %d/%d terminal children", stats.Terminal, stats.Total)
	}
	if stats.Counts[StatusDone] != stats.Total {
		t.Fatalf("status counts %v, want all done", stats.Counts)
	}
	for _, phase := range []string{"queue_wait", "trials", "reduce", "persist", "total"} {
		ps, ok := stats.Phases[phase]
		if !ok {
			t.Fatalf("stats lack phase %q: %+v", phase, stats.Phases)
		}
		if ps.Count != stats.Total {
			t.Fatalf("phase %q folded %d children, want %d", phase, ps.Count, stats.Total)
		}
		if ps.MinMS > ps.MeanMS+1e-9 || ps.MeanMS > ps.MaxMS+1e-9 {
			t.Fatalf("phase %q not min<=mean<=max: %+v", phase, ps)
		}
		if got := ps.SumMS / float64(ps.Count); got != ps.MeanMS {
			t.Fatalf("phase %q mean %v != sum/count %v", phase, ps.MeanMS, got)
		}
	}
	if stats.Phases["total"].MinMS <= 0 {
		t.Fatalf("run children must have positive totals: %+v", stats.Phases["total"])
	}
}

// TestWallclockStampsAreHashNeutral is the differential check behind the
// ts fields: records written at different wallclock times must carry
// different stamps yet identical canonical content — same spec hash, same
// result bytes, same replay behavior.
func TestWallclockStampsAreHashNeutral(t *testing.T) {
	spec := quickSpec(2, 73)

	run := func() (JobView, []Event) {
		svc, ts := newTestServer(t, Config{Workers: 1})
		job, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job, StatusDone)
		return job.View(true), streamEvents(t, ts.URL+"/v1/jobs/"+job.id+"/events")
	}
	v1, e1 := run()
	time.Sleep(5 * time.Millisecond) // distinct wallclock window
	v2, e2 := run()

	if v1.SpecHash != v2.SpecHash {
		t.Fatalf("spec hash drifted across wallclocks: %s vs %s", v1.SpecHash, v2.SpecHash)
	}
	r1, _ := json.Marshal(v1.Result)
	r2, _ := json.Marshal(v2.Result)
	if string(r1) != string(r2) {
		t.Fatalf("result bytes drifted across wallclocks:\n%s\nvs\n%s", r1, r2)
	}
	if !reflect.DeepEqual(eventTypes(e1), eventTypes(e2)) {
		t.Fatalf("event shapes drifted: %v vs %v", eventTypes(e1), eventTypes(e2))
	}
	if e1[0].TS.Equal(e2[0].TS) {
		t.Fatal("distinct runs share a wallclock stamp; ts is not being stamped")
	}

	// Replay ignores ts entirely: a journal whose stamps are rewritten to a
	// bogus fixed time replays exactly like the original.
	dir := t.TempDir()
	writeJournalLines(t, dir,
		journalRecord{Op: opAccept, ID: "j000004", Spec: rawSpec(t, spec), TS: time.Now()})
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.ReplaceAll(string(data), time.Now().Format("2006-01-02"), "1999-12-31")
	if mangled == string(data) {
		t.Fatal("journal ts was not rewritten; the differential proves nothing")
	}
	if err := os.WriteFile(journalPath(dir), []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	job, ok := svc.Job("j000004")
	if !ok {
		t.Fatal("ts-mangled journal was not replayed")
	}
	waitJob(t, job, StatusDone)
	if job.View(false).SpecHash != v1.SpecHash {
		t.Fatal("replayed job's canonical hash drifted under a mangled ts")
	}
}
