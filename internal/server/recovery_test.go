package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/report"
	"dualradio/internal/scenario"
)

// writeJournalLines hand-writes a journal file, simulating the state a
// crashed daemon left behind.
func writeJournalLines(t *testing.T, dir string, recs ...journalRecord) {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(journalPath(dir), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func rawSpec(t *testing.T, s scenario.Spec) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func waitJob(t *testing.T, job *Job, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := job.Status()
		if st == want {
			return
		}
		if st.terminal() {
			t.Fatalf("job %s reached %q, want %q (error %q)", job.id, st, want, job.View(false).Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", job.id, st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitSweep(t *testing.T, sw *Sweep) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !sw.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished", sw.id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func replayGauges(s *Server) (jobs, sweeps, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayedJobs, s.replayedSweeps, s.replayDropped
}

func TestReplayReadmitsAcceptedJob(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		journalRecord{Op: opAccept, ID: "j000007", Spec: rawSpec(t, quickSpec(2, 41))})

	svc, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	job, ok := svc.Job("j000007")
	if !ok {
		t.Fatal("accepted-but-unstarted job was not replayed under its original id")
	}
	waitJob(t, job, StatusDone)
	if job.Result() == nil {
		t.Fatal("replayed job finished without a result")
	}
	if jobs, _, dropped := replayGauges(svc); jobs != 1 || dropped != 0 {
		t.Fatalf("replayed %d jobs, dropped %d; want 1, 0", jobs, dropped)
	}
	// Id allocation resumes past everything the journal mentioned.
	next, err := svc.Submit(quickSpec(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	if next.id != "j000008" {
		t.Fatalf("post-replay id %q, want j000008", next.id)
	}
}

func TestReplayReadmitsMidRunJob(t *testing.T) {
	dir := t.TempDir()
	// A start record without a terminal one is exactly what a daemon killed
	// mid-simulation leaves behind.
	writeJournalLines(t, dir,
		journalRecord{Op: opAccept, ID: "j000003", Spec: rawSpec(t, quickSpec(2, 43))},
		journalRecord{Op: opStart, ID: "j000003"})

	svc, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	job, ok := svc.Job("j000003")
	if !ok {
		t.Fatal("mid-run job was not replayed")
	}
	waitJob(t, job, StatusDone)
	if view := job.View(false); view.Cached {
		t.Fatal("mid-run job had no stored result yet must not be served cached")
	}
}

func TestReplaySkipsTerminalJob(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		journalRecord{Op: opAccept, ID: "j000005", Spec: rawSpec(t, quickSpec(2, 44))},
		journalRecord{Op: opStart, ID: "j000005"},
		journalRecord{Op: opTerminal, ID: "j000005", Status: StatusDone})

	svc, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	if _, ok := svc.Job("j000005"); ok {
		t.Fatal("terminal-but-uncompacted job was resurrected")
	}
	if jobs, _, dropped := replayGauges(svc); jobs != 0 || dropped != 0 {
		t.Fatalf("replayed %d jobs, dropped %d; want 0, 0", jobs, dropped)
	}
	// Even a finished job's id is burned: new submissions allocate past it.
	next, err := svc.Submit(quickSpec(1, 45))
	if err != nil {
		t.Fatal(err)
	}
	if next.id != "j000006" {
		t.Fatalf("post-replay id %q, want j000006", next.id)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		journalRecord{Op: opAccept, ID: "j000002", Spec: rawSpec(t, quickSpec(2, 46))})
	// A kill -9 mid-append leaves a torn final line; replay must keep every
	// record before it.
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"start","id":"j0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	job, ok := svc.Job("j000002")
	if !ok {
		t.Fatal("job before the torn tail was not replayed")
	}
	waitJob(t, job, StatusDone)
	if _, _, dropped := replayGauges(svc); dropped != 0 {
		t.Fatalf("torn tail dropped %d jobs", dropped)
	}
}

// TestReplayResumesHalfFinishedSweep is the crash-recovery round trip: a
// sweep runs to completion, the journal is rewound to look like the daemon
// died before one child finished (its stored result deleted too), and a
// restarted server must resume the sweep — finished children as store
// cache hits, the lost child re-simulated — and produce a byte-identical
// report.
func TestReplayResumesHalfFinishedSweep(t *testing.T) {
	dir := t.TempDir()
	sweepSpec := scenario.SweepSpec{
		Name: "resume",
		Base: quickSpec(2, 7),
		Axes: scenario.SweepAxes{
			N:        &scenario.Axis{Values: []float64{24, 32}},
			GrayProb: &scenario.Axis{Values: []float64{0, 0.05}},
		},
	}

	svcA, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	swA, err := svcA.SubmitSweep(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, swA)
	exp, aggs, _, _, err := swA.reportData(false)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := report.Build(exp, aggs, report.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refCSV := ref.CSV()
	victim := swA.children[2]
	victimID, victimHash := victim.id, victim.comp.Hash()
	sweepID := swA.id
	// Snapshot the journal before Close: graceful shutdown compacts it to
	// the live set (empty here — the sweep finished), but this test wants
	// the crash shape, where the full generation survives. Restoring the
	// snapshot turns the graceful close back into a kill -9.
	preClose, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	svcA.Close()
	if err := os.WriteFile(journalPath(dir), preClose, 0o644); err != nil {
		t.Fatal(err)
	}

	// Rewind: drop the victim's terminal record and its stored result, as if
	// the crash landed before either was written.
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var kept [][]byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Op == opTerminal && rec.ID == victimID {
			continue
		}
		kept = append(kept, line)
	}
	if err := os.WriteFile(journalPath(dir), append(bytes.Join(kept, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, victimHash+".json")); err != nil {
		t.Fatal(err)
	}

	svcB, _ := newTestServer(t, Config{Workers: 2, DataDir: dir})
	swB, ok := svcB.Sweep(sweepID)
	if !ok {
		t.Fatal("half-finished sweep was not resumed")
	}
	if _, sweeps, dropped := replayGauges(svcB); sweeps != 1 || dropped != 0 {
		t.Fatalf("replayed %d sweeps, dropped %d; want 1, 0", sweeps, dropped)
	}
	waitSweep(t, swB)
	for i, child := range swB.children {
		waitJob(t, child, StatusDone)
		cached := child.View(false).Cached
		if child.id == victimID && cached {
			t.Fatal("lost child claims a cache hit despite its deleted result")
		}
		if child.id != victimID && !cached {
			t.Fatalf("finished child %d (%s) was re-simulated instead of served from the store", i, child.id)
		}
	}
	expB, aggsB, _, _, err := swB.reportData(false)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := report.Build(expB, aggsB, report.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := repB.CSV(); got != refCSV {
		t.Fatalf("post-recovery report differs from uninterrupted run:\n--- want\n%s--- got\n%s", refCSV, got)
	}
}

func TestTransientFaultRetriesToSuccess(t *testing.T) {
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindTrialError, Attempts: 1, Transient: true, Message: "injected flake",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newTestServer(t, Config{
		Workers: 1, Fault: inj,
		RetryBackoff: time.Millisecond, RetryMaxBackoff: 4 * time.Millisecond,
	})
	job, err := svc.Submit(quickSpec(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusDone)
	if got := job.Attempt(); got != 1 {
		t.Fatalf("job recovered after %d attempts, want 1", got)
	}
	events, _, _ := job.eventsSince(0)
	var retry *Event
	for i := range events {
		if events[i].Type == "retry" {
			retry = &events[i]
		}
	}
	if retry == nil {
		t.Fatalf("no retry event in %v", eventTypes(events))
	}
	if retry.Attempt != 1 || !strings.Contains(retry.Error, "injected flake") {
		t.Fatalf("retry event %+v lacks attempt count or cause", retry)
	}
	if got := svc.retries.Load(); got != 1 {
		t.Fatalf("retries gauge %d, want 1", got)
	}
}

func TestPermanentFaultFailsWithoutRetry(t *testing.T) {
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindTrialError, Message: "wedged bit",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newTestServer(t, Config{Workers: 1, Fault: inj, RetryBackoff: time.Millisecond})
	job, err := svc.Submit(quickSpec(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusFailed)
	view := job.View(false)
	if view.Attempt != 0 || !strings.Contains(view.Error, "wedged bit") {
		t.Fatalf("permanent fault produced %+v; want attempt 0 and the injected error", view)
	}
	events, _, _ := job.eventsSince(0)
	for _, e := range events {
		if e.Type == "retry" {
			t.Fatal("permanent failure emitted a retry event")
		}
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	// Attempts: 0 fires on every attempt — a fault marked transient that
	// never actually clears must exhaust MaxRetries and fail.
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindTrialError, Transient: true, Message: "always down",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newTestServer(t, Config{
		Workers: 1, Fault: inj, MaxRetries: 2,
		RetryBackoff: time.Millisecond, RetryMaxBackoff: 4 * time.Millisecond,
	})
	job, err := svc.Submit(quickSpec(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusFailed)
	if got := job.Attempt(); got != 2 {
		t.Fatalf("failed after %d attempts, want 2", got)
	}
	events, _, _ := job.eventsSince(0)
	retries := 0
	for _, e := range events {
		if e.Type == "retry" {
			retries++
		}
	}
	if retries != 2 {
		t.Fatalf("%d retry events, want 2 (types %v)", retries, eventTypes(events))
	}
}

func TestInjectedPanicFailsJobNotServer(t *testing.T) {
	doomed := quickSpec(2, 9)
	comp, err := scenario.Compile(doomed)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindTrialPanic, HashPrefix: comp.Hash(), Message: "kaboom",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Workers: 1, Fault: inj})
	job, err := svc.Submit(doomed)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusFailed)
	view := job.View(false)
	if !strings.Contains(view.Error, "panicked") || !strings.Contains(view.Error, "kaboom") {
		t.Fatalf("panic surfaced as %q; want a recovered trial panic", view.Error)
	}
	// The worker that recovered the panic keeps serving.
	next, err := svc.Submit(quickSpec(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, next, StatusDone)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after recovered panic", resp.StatusCode)
	}
}

func TestSpecTimeoutFailsPermanently(t *testing.T) {
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindTrialDelay, DelayMS: 250,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newTestServer(t, Config{Workers: 1, Fault: inj, RetryBackoff: time.Millisecond})
	spec := quickSpec(3, 11)
	spec.TimeoutMS = 40
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job, StatusFailed)
	view := job.View(false)
	if !strings.Contains(view.Error, "deadline") {
		t.Fatalf("timeout surfaced as %q; want a deadline failure", view.Error)
	}
	// Deterministic workloads time out identically on a rerun: no retry.
	if view.Attempt != 0 || svc.retries.Load() != 0 {
		t.Fatalf("timed-out job was retried (attempt %d, retries %d)", view.Attempt, svc.retries.Load())
	}
}

func TestStoreFaultCountsErrors(t *testing.T) {
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindStoreError, Message: "disk gremlin",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	svc, _ := newTestServer(t, Config{Workers: 1, DataDir: dir, Fault: inj})
	job, err := svc.Submit(quickSpec(2, 12))
	if err != nil {
		t.Fatal(err)
	}
	// Persistence is best-effort: the job still completes.
	waitJob(t, job, StatusDone)
	if got := svc.storeErrs.Load(); got != 1 {
		t.Fatalf("store_errors %d, want 1", got)
	}
	if _, ok, _ := svc.store.Get(job.comp.Hash()); ok {
		t.Fatal("vetoed write still landed in the store")
	}
}

func TestPartialSweepReportHTTP(t *testing.T) {
	sweepSpec := scenario.SweepSpec{
		Base: quickSpec(2, 13),
		Axes: scenario.SweepAxes{N: &scenario.Axis{Values: []float64{24, 32}}},
	}
	exp, err := scenario.ExpandSweep(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Permanently fail the first child so the sweep finishes incomplete.
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{{
		Kind: faultinject.KindTrialError, HashPrefix: exp.Children[0].Hash(), Message: "doomed cell",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Workers: 2, Fault: inj})
	swp, err := svc.SubmitSweep(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, swp)

	reportURL := ts.URL + "/v1/sweeps/" + swp.id + "/report?format=csv"
	resp, err := http.Get(reportURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("full report over a failed child: status %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(reportURL + "&partial=1")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial report: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Complete-Children"); got != "1" {
		t.Fatalf("X-Complete-Children %q, want 1", got)
	}
	if got := resp.Header.Get("X-Total-Children"); got != "2" {
		t.Fatalf("X-Total-Children %q, want 2", got)
	}
	csv := body.String()
	if !strings.Contains(csv, "\n24,") || !strings.Contains(csv, "\n32,") {
		t.Fatalf("partial CSV lost its axis rows:\n%s", csv)
	}
	// The failed cell renders empty, never a fabricated number.
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n") {
		if strings.HasPrefix(line, "24,") && strings.TrimPrefix(line, "24,") != "" {
			t.Fatalf("failed child's cell is non-empty: %q", line)
		}
	}
}

func TestJournalCompactionBoundsJournal(t *testing.T) {
	old := journalCompactEvery
	journalCompactEvery = 6
	t.Cleanup(func() { journalCompactEvery = old })

	dir := t.TempDir()
	svc, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		job, err := svc.Submit(quickSpec(1, uint64(900+i)))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job, StatusDone)
	}
	// 5 completed jobs journal ~15 records; compaction must have rewritten
	// the generation down to the (tiny) live set along the way.
	if n := svc.journal.Appends(); n >= 12 {
		t.Fatalf("journal generation holds %d records; compaction never ran", n)
	}
	svc.Close()

	// The compacted journal must not resurrect any finished job.
	svc2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if jobs, sweeps, dropped := replayGauges(svc2); jobs != 0 || sweeps != 0 || dropped != 0 {
		t.Fatalf("compacted journal replayed %d jobs, %d sweeps, dropped %d", jobs, sweeps, dropped)
	}
	if got := len(svc2.Jobs()); got != 0 {
		t.Fatalf("%d jobs resurrected from a compacted journal", got)
	}
}
