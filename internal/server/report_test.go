package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"dualradio/internal/report"
	"dualradio/internal/scenario"
)

func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
}

// TestSweepReportEndpoint drives the full report path over HTTP: submit a
// sweep, wait for completion, and fetch the pivot in every format. The CSV
// must equal a locally built report over the same expansion — the endpoint
// adds serving, not computation.
func TestSweepReportEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	sw, err := svc.SubmitSweep(quickSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	waitForSweepDone(t, sw)
	base := ts.URL + "/v1/sweeps/" + sw.id + "/report"

	code, csv, ctype := getBody(t, base+"?metric=mean_rounds&format=csv")
	if code != http.StatusOK || ctype != "text/csv" {
		t.Fatalf("csv report: %d %q", code, ctype)
	}
	// Reference: build the identical report directly from the engine.
	exp, err := scenario.ExpandSweep(quickSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	aggs := make([]scenario.Aggregate, len(exp.Children))
	for i, c := range exp.Children {
		res, err := c.Run(nil, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		aggs[i] = res.Aggregate
	}
	want, err := report.Build(exp, aggs, report.Options{Metric: "mean_rounds"})
	if err != nil {
		t.Fatal(err)
	}
	if csv != want.CSV() {
		t.Fatalf("served CSV diverges from the engine:\nserved:\n%sengine:\n%s", csv, want.CSV())
	}

	code, body, ctype := getBody(t, base+"?metric=valid_fraction&format=json")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json report: %d %q", code, ctype)
	}
	if !strings.Contains(body, `"metric": "valid_fraction"`) {
		t.Fatalf("json report body: %s", body)
	}

	code, tbl, _ := getBody(t, base) // default: table, default metric
	if code != http.StatusOK || !strings.Contains(tbl, "mean_rounds") || !strings.Contains(tbl, `n\gray_prob`) {
		t.Fatalf("table report: %d\n%s", code, tbl)
	}

	// Pivot selection and validation surface as client errors.
	if code, _, _ := getBody(t, base+"?metric=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus metric: %d", code)
	}
	if code, _, _ := getBody(t, base+"?format=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus format: %d", code)
	}
	if code, _, _ := getBody(t, base+"?rows=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus axis: %d", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/v1/sweeps/nope/report"); code != http.StatusNotFound {
		t.Fatalf("missing sweep: %d", code)
	}
}

// TestSweepReportRequiresCompletion: a sweep with a cancelled child is not
// reportable (409), because a partial pivot would misrepresent the grid.
func TestSweepReportRequiresCompletion(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	sw, err := svc.SubmitSweep(quickSweep(7))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel every child immediately: whichever were still queued become
	// cancelled, so at least one child is terminal-but-not-done.
	sw.CancelChildren()
	waitForSweepDone(t, sw)
	v := sw.View(false)
	if v.Counts[StatusCancelled] == 0 {
		t.Skip("scheduler outran cancellation; nothing to assert")
	}
	code, body, _ := getBody(t, ts.URL+"/v1/sweeps/"+sw.id+"/report?format=csv")
	if code != http.StatusConflict {
		t.Fatalf("report over cancelled children: %d %s", code, body)
	}
}

// TestCalibrationTracksCompletedJobs: completed (non-cached) jobs feed the
// wallclock-per-cost-unit calibration and /healthz exposes it.
func TestCalibrationTracksCompletedJobs(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	if jobs, ns := svc.Calibration(); jobs != 0 || ns != 0 {
		t.Fatalf("fresh server calibration (%d, %v)", jobs, ns)
	}
	job, err := svc.Submit(quickSpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, ts.URL+"/v1/jobs/"+job.id, StatusDone)
	jobs, ns := svc.Calibration()
	if jobs != 1 || ns <= 0 {
		t.Fatalf("post-run calibration (%d, %v)", jobs, ns)
	}
	// A cache-served resubmission must not contribute.
	job2, err := svc.Submit(quickSpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, ts.URL+"/v1/jobs/"+job2.id, StatusDone)
	if jobs2, _ := svc.Calibration(); jobs2 != 1 {
		t.Fatalf("cache hit moved calibration to %d jobs", jobs2)
	}
	code, health := getJSON[map[string]any](t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["calibration_jobs"].(float64) != 1 || health["ns_per_cost_unit"].(float64) <= 0 {
		t.Fatalf("healthz calibration gauges: %v", health)
	}
}
