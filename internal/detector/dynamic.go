package detector

// Dynamic is the Section 8 dynamic link detector: a service providing a set
// to each process at the beginning of every round. A dynamic detector
// stabilizes at round r if from r onward its output matches a static
// detector and never changes again.
type Dynamic interface {
	// At returns the detector in effect at the given round.
	At(round int) *Detector
	// StabilizesAt returns the round from which the output is fixed.
	StabilizesAt() int
}

// Static wraps a fixed detector as a Dynamic that is stable from round 0.
type Static struct {
	d *Detector
}

var _ Dynamic = (*Static)(nil)

// NewStatic returns a Dynamic whose output never changes.
func NewStatic(d *Detector) *Static { return &Static{d: d} }

// At implements Dynamic.
func (s *Static) At(int) *Detector { return s.d }

// StabilizesAt implements Dynamic.
func (s *Static) StabilizesAt() int { return 0 }

// Schedule is a Dynamic defined by a sequence of detector epochs: Steps[i]
// takes effect at round Steps[i].Round and remains in effect until the next
// step. The last step is the stabilized output.
type Schedule struct {
	steps []ScheduleStep
}

// ScheduleStep is one epoch of a Schedule.
type ScheduleStep struct {
	Round    int
	Detector *Detector
}

var _ Dynamic = (*Schedule)(nil)

// NewSchedule builds a Dynamic from ordered steps. Steps must be sorted by
// round ascending, with the first step at round 0; violations are repaired
// by treating the first step as round 0 and ignoring out-of-order steps.
func NewSchedule(steps ...ScheduleStep) *Schedule {
	var clean []ScheduleStep
	for _, st := range steps {
		if len(clean) == 0 {
			st.Round = 0
			clean = append(clean, st)
			continue
		}
		if st.Round > clean[len(clean)-1].Round {
			clean = append(clean, st)
		}
	}
	return &Schedule{steps: clean}
}

// At implements Dynamic.
func (s *Schedule) At(round int) *Detector {
	cur := s.steps[0].Detector
	for _, st := range s.steps[1:] {
		if st.Round <= round {
			cur = st.Detector
		}
	}
	return cur
}

// StabilizesAt implements Dynamic.
func (s *Schedule) StabilizesAt() int {
	return s.steps[len(s.steps)-1].Round
}
