// Package detector implements the link detector formalism of Section 2 of
// the paper: each process u is provided a set L_u of process ids estimating
// which neighbors are connected to u by a reliable link. A τ-complete
// detector contains the id of every reliable neighbor plus up to τ
// additional (mistaken) ids. The package also provides the dynamic variant
// of Section 8, whose output may change from round to round before
// stabilizing.
package detector

import (
	"math/bits"
	"sort"
)

// Set is a set of process ids in [1, n], stored as a bitset for O(1)
// membership tests during message filtering (the algorithms test detector
// membership on every reception).
type Set struct {
	words []uint64
	size  int
}

// NewSet returns an empty set able to hold ids 1..n.
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+64)/64)}
}

// SetOf returns a set holding exactly the provided ids.
func SetOf(n int, ids ...int) *Set {
	s := NewSet(n)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id. Ids outside the set's range are ignored.
func (s *Set) Add(id int) {
	if id < 0 || id/64 >= len(s.words) {
		return
	}
	w, b := id/64, uint(id%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.size++
	}
}

// Remove deletes id if present.
func (s *Set) Remove(id int) {
	if id < 0 || id/64 >= len(s.words) {
		return
	}
	w, b := id/64, uint(id%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.size--
	}
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id int) bool {
	if s == nil || id < 0 || id/64 >= len(s.words) {
		return false
	}
	return s.words[id/64]&(1<<uint(id%64)) != 0
}

// Len returns the number of ids in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.size
}

// IDs returns the members in ascending order.
func (s *Set) IDs() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, s.size)
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &= word - 1
		}
	}
	return out
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: append([]uint64(nil), s.words...), size: s.size}
	return c
}

// Union adds every member of other to s.
func (s *Set) Union(other *Set) {
	if other == nil {
		return
	}
	for _, id := range other.IDs() {
		s.Add(id)
	}
}

// Diff returns the members of s not present in other, ascending.
func (s *Set) Diff(other *Set) []int {
	var out []int
	for _, id := range s.IDs() {
		if !other.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// Equal reports whether s and other contain exactly the same ids.
func (s *Set) Equal(other *Set) bool {
	a, b := s.IDs(), other.IDs()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedCopy returns a sorted copy of ids (helper for deterministic
// adversarial placement).
func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}
