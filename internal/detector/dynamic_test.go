package detector

import "testing"

func TestStaticDynamic(t *testing.T) {
	d := NewEmpty(3)
	s := NewStatic(d)
	if s.At(0) != d || s.At(1000) != d {
		t.Error("static detector should be constant")
	}
	if s.StabilizesAt() != 0 {
		t.Error("static stabilizes at 0")
	}
}

func TestScheduleTransitions(t *testing.T) {
	d0 := NewEmpty(3)
	d1 := NewEmpty(3)
	d2 := NewEmpty(3)
	sched := NewSchedule(
		ScheduleStep{Round: 0, Detector: d0},
		ScheduleStep{Round: 10, Detector: d1},
		ScheduleStep{Round: 20, Detector: d2},
	)
	cases := []struct {
		round int
		want  *Detector
	}{
		{0, d0}, {9, d0}, {10, d1}, {19, d1}, {20, d2}, {1000, d2},
	}
	for _, c := range cases {
		if got := sched.At(c.round); got != c.want {
			t.Errorf("At(%d) wrong detector", c.round)
		}
	}
	if sched.StabilizesAt() != 20 {
		t.Errorf("stabilizes at %d", sched.StabilizesAt())
	}
}

func TestScheduleRepairsBadSteps(t *testing.T) {
	d0, d1, d2 := NewEmpty(2), NewEmpty(2), NewEmpty(2)
	// The first step is forced to round 0; an out-of-order later step is
	// dropped.
	sched := NewSchedule(
		ScheduleStep{Round: 5, Detector: d0},
		ScheduleStep{Round: 10, Detector: d1},
		ScheduleStep{Round: 7, Detector: d2},
	)
	if sched.At(0) != d0 {
		t.Error("first step should take effect at round 0")
	}
	if sched.At(12) != d1 {
		t.Error("in-order step should apply")
	}
	if sched.StabilizesAt() != 10 {
		t.Errorf("out-of-order step should be dropped, stabilizes at %d", sched.StabilizesAt())
	}
}
