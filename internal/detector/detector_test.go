package detector

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// lineNetwork builds a 5-node unit-spaced line with skip-one gray edges.
func lineNetwork(t *testing.T) *dualgraph.Network {
	t.Helper()
	n := 5
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	coords := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		coords[i] = geom.Point{X: float64(i)}
	}
	for i := 0; i+1 < n; i++ {
		addEdge(t, g, i, i+1)
		addEdge(t, gp, i, i+1)
	}
	for i := 0; i+2 < n; i++ {
		addEdge(t, gp, i, i+2)
	}
	return dualgraph.New(g.Build(), gp.Build(), coords, 2)
}

func addEdge(t *testing.T, g *graph.Builder, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteDetector(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	d := Complete(net, asg)
	if err := d.Verify(net, asg, 0); err != nil {
		t.Fatal(err)
	}
	// Node 2's reliable neighbors are 1 and 3 -> ids 2 and 4.
	got := d.Set(2).IDs()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("L_2 = %v", got)
	}
}

func TestTauCompleteWithinBudget(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	for _, tau := range []int{0, 1, 2, 3} {
		rng := rand.New(rand.NewPCG(uint64(tau), 1))
		d := TauComplete(net, asg, tau, PlaceGrayFirst, rng)
		if err := d.Verify(net, asg, tau); err != nil {
			t.Errorf("tau=%d: %v", tau, err)
		}
	}
}

func TestTauCompletePlacementPrefersGray(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	rng := rand.New(rand.NewPCG(1, 1))
	d := TauComplete(net, asg, 1, PlaceGrayFirst, rng)
	// Node 0's gray neighbor is node 2 (distance 2). With exactly one
	// false positive and gray-first placement, it must be id 3.
	mistakes := 0
	for _, id := range d.Set(0).IDs() {
		if !net.G().HasEdge(0, asg.Node(id)) {
			mistakes++
			if asg.Node(id) != 2 {
				t.Errorf("false positive at node %d, want gray neighbor 2", asg.Node(id))
			}
		}
	}
	if mistakes != 1 {
		t.Errorf("mistakes = %d, want 1", mistakes)
	}
}

func TestVerifyDetectsMissingNeighbor(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	d := Complete(net, asg)
	d.Set(0).Remove(2) // drop node 1's id from node 0's set
	if err := d.Verify(net, asg, 0); err == nil {
		t.Error("missing reliable neighbor not detected")
	}
}

func TestVerifyDetectsExcessMistakes(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	d := Complete(net, asg)
	d.Set(0).Add(4) // node 3 is not a reliable neighbor of node 0
	if err := d.Verify(net, asg, 0); err == nil {
		t.Error("excess mistake not detected")
	}
	if err := d.Verify(net, asg, 1); err != nil {
		t.Errorf("one mistake should pass tau=1: %v", err)
	}
}

func TestBuildHEqualsGForZeroComplete(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	h := BuildH(net, asg, Complete(net, asg))
	if h.M() != net.G().M() {
		t.Fatalf("H has %d edges, G has %d", h.M(), net.G().M())
	}
	net.G().Edges(func(u, v int) {
		if !h.HasEdge(u, v) {
			t.Errorf("H missing G edge (%d,%d)", u, v)
		}
	})
}

// TestBuildHContainsG verifies G ⊆ H for any τ-complete detector (the
// Section 3 observation), under random assignments and mistake budgets.
func TestBuildHContainsG(t *testing.T) {
	net := lineNetwork(t)
	f := func(seed uint64, tauRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		tau := int(tauRaw % 4)
		asg := dualgraph.RandomAssignment(net.N(), rng)
		d := TauComplete(net, asg, tau, PlaceUniform, rng)
		ok := true
		net.G().Edges(func(u, v int) {
			if !BuildH(net, asg, d).HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMistakeCount(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	d := Complete(net, asg)
	for v, m := range d.MistakeCount(net, asg) {
		if m != 0 {
			t.Errorf("node %d: %d mistakes on complete detector", v, m)
		}
	}
	d.Set(1).Add(5)
	if d.MistakeCount(net, asg)[1] != 1 {
		t.Error("injected mistake not counted")
	}
}
