package detector

import (
	"fmt"
	"math/rand/v2"

	"dualradio/internal/dualgraph"
	"dualradio/internal/graph"
)

// Placement selects where a τ-complete detector's false positives come
// from. The paper leaves the ≤ τ mistaken ids to the adversary; these
// strategies cover the interesting cases.
type Placement int

const (
	// PlaceGrayFirst prefers G'-only neighbors as false positives — the
	// most deceptive choice, since those links sometimes work. Falls back
	// to arbitrary non-neighbors when a node has too few gray neighbors.
	PlaceGrayFirst Placement = iota + 1
	// PlaceUniform draws false positives uniformly from all non-G-neighbors.
	PlaceUniform
)

// Detector holds one link detector set per node, indexed by node index.
type Detector struct {
	sets []*Set
	n    int
}

// NewEmpty returns a detector with an empty set for every node (useful for
// building custom fixtures).
func NewEmpty(n int) *Detector {
	d := &Detector{sets: make([]*Set, n), n: n}
	for v := range d.sets {
		d.sets[v] = NewSet(n)
	}
	return d
}

// Sets returns the per-node detector sets. The slice and sets are owned by
// the detector.
func (d *Detector) Sets() []*Set { return d.sets }

// Set returns the detector set L for the process at node v.
func (d *Detector) Set(v int) *Set { return d.sets[v] }

// N returns the number of nodes covered.
func (d *Detector) N() int { return d.n }

// Complete builds the 0-complete detector: L_u = ids of u's G-neighbors,
// exactly. This models perfect link classification.
func Complete(net *dualgraph.Network, asg *dualgraph.Assignment) *Detector {
	d := NewEmpty(net.N())
	for v := 0; v < net.N(); v++ {
		for _, w := range net.G().Neighbors(v) {
			d.sets[v].Add(asg.ID(int(w)))
		}
	}
	return d
}

// TauComplete builds a τ-complete detector: every node's set contains all of
// its reliable neighbors' ids plus up to tau additional ids chosen by the
// given placement strategy. tau = 0 reduces to Complete.
func TauComplete(net *dualgraph.Network, asg *dualgraph.Assignment, tau int,
	place Placement, rng *rand.Rand) *Detector {
	d := Complete(net, asg)
	if tau <= 0 {
		return d
	}
	for v := 0; v < net.N(); v++ {
		candidates := falseCandidates(net, asg, v, place)
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		k := tau
		if k > len(candidates) {
			k = len(candidates)
		}
		for _, id := range candidates[:k] {
			d.sets[v].Add(id)
		}
	}
	return d
}

func falseCandidates(net *dualgraph.Network, asg *dualgraph.Assignment,
	v int, place Placement) []int {
	var gray, far []int
	selfID := asg.ID(v)
	isGNeighbor := make(map[int]bool, net.G().Degree(v))
	for _, w := range net.G().Neighbors(v) {
		isGNeighbor[int(w)] = true
	}
	isGPrime := make(map[int]bool, net.GPrime().Degree(v))
	for _, w := range net.GPrime().Neighbors(v) {
		isGPrime[int(w)] = true
	}
	for w := 0; w < net.N(); w++ {
		id := asg.ID(w)
		if w == v || id == selfID || isGNeighbor[w] {
			continue
		}
		if isGPrime[w] {
			gray = append(gray, id)
		} else {
			far = append(far, id)
		}
	}
	switch place {
	case PlaceGrayFirst:
		return append(sortedCopy(gray), sortedCopy(far)...)
	default:
		return sortedCopy(append(gray, far...))
	}
}

// MistakeCount returns, for each node, how many ids in its set are not
// reliable neighbors — the per-node τ actually realized.
func (d *Detector) MistakeCount(net *dualgraph.Network, asg *dualgraph.Assignment) []int {
	out := make([]int, d.n)
	for v := 0; v < d.n; v++ {
		for _, id := range d.sets[v].IDs() {
			if !net.G().HasEdge(v, asg.Node(id)) {
				out[v]++
			}
		}
	}
	return out
}

// Verify checks that d is τ-complete for the given network and assignment:
// every reliable neighbor present and at most tau mistakes per node.
func (d *Detector) Verify(net *dualgraph.Network, asg *dualgraph.Assignment, tau int) error {
	if d.n != net.N() {
		return fmt.Errorf("detector: covers %d nodes, network has %d", d.n, net.N())
	}
	for v := 0; v < d.n; v++ {
		for _, w := range net.G().Neighbors(v) {
			if !d.sets[v].Contains(asg.ID(int(w))) {
				return fmt.Errorf("detector: node %d missing reliable neighbor id %d",
					v, asg.ID(int(w)))
			}
		}
		if d.sets[v].Contains(asg.ID(v)) {
			return fmt.Errorf("detector: node %d contains its own id", v)
		}
	}
	for v, m := range d.MistakeCount(net, asg) {
		if m > tau {
			return fmt.Errorf("detector: node %d has %d mistakes > tau=%d", v, m, tau)
		}
	}
	return nil
}

// BuildH constructs the graph H of Section 3: (u,v) ∈ E_H iff u ∈ L_v and
// v ∈ L_u. For any τ-complete detector, G ⊆ H; for τ = 0, H = G.
func BuildH(net *dualgraph.Network, asg *dualgraph.Assignment, d *Detector) *graph.Graph {
	h := graph.NewBuilder(net.N())
	for u := 0; u < net.N(); u++ {
		for _, idv := range d.sets[u].IDs() {
			v := asg.Node(idv)
			if v > u && d.sets[v].Contains(asg.ID(u)) {
				// Error ignored: endpoints are validated by construction
				// and duplicates are impossible with v > u.
				_ = h.AddEdge(u, v)
			}
		}
	}
	return h.Build()
}
