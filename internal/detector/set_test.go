package detector

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(100)
	if s.Len() != 0 || s.Contains(5) {
		t.Error("new set should be empty")
	}
	s.Add(5)
	s.Add(64) // word boundary
	s.Add(5)  // duplicate
	if s.Len() != 2 || !s.Contains(5) || !s.Contains(64) {
		t.Errorf("set state wrong: %v", s.IDs())
	}
	s.Remove(5)
	s.Remove(5) // double remove
	if s.Len() != 1 || s.Contains(5) {
		t.Error("remove failed")
	}
}

func TestSetOutOfRangeIgnored(t *testing.T) {
	s := NewSet(10)
	s.Add(-1)
	s.Add(1000)
	s.Remove(-1)
	if s.Len() != 0 {
		t.Error("out-of-range ids should be ignored")
	}
	if s.Contains(-1) || s.Contains(1000) {
		t.Error("out-of-range contains should be false")
	}
}

func TestNilSetSafe(t *testing.T) {
	var s *Set
	if s.Contains(1) || s.Len() != 0 || s.IDs() != nil {
		t.Error("nil set should behave as empty")
	}
}

func TestSetIDsSorted(t *testing.T) {
	s := SetOf(100, 42, 7, 99, 1)
	ids := s.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := SetOf(50, 1, 2, 3)
	c := s.Clone()
	c.Add(4)
	s.Remove(1)
	if s.Contains(4) || !c.Contains(1) {
		t.Error("clone aliases original")
	}
}

func TestSetUnionDiffEqual(t *testing.T) {
	a := SetOf(50, 1, 2, 3)
	b := SetOf(50, 3, 4)
	a.Union(b)
	if a.Len() != 4 {
		t.Errorf("union = %v", a.IDs())
	}
	diff := a.Diff(SetOf(50, 2, 3))
	if len(diff) != 2 || diff[0] != 1 || diff[1] != 4 {
		t.Errorf("diff = %v", diff)
	}
	if !a.Equal(SetOf(50, 1, 2, 3, 4)) {
		t.Error("equal sets reported unequal")
	}
	if a.Equal(SetOf(50, 1, 2, 3)) {
		t.Error("unequal sets reported equal")
	}
	a.Union(nil) // must not panic
}

// TestSetMatchesMapModel drives the bitset against a map model with random
// operations — the core property test for the structure every algorithm
// depends on.
func TestSetMatchesMapModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 1 + rng.IntN(200)
		s := NewSet(n)
		model := map[int]bool{}
		for op := 0; op < 300; op++ {
			id := rng.IntN(n + 1)
			switch rng.IntN(3) {
			case 0:
				s.Add(id)
				if id >= 0 && id/64 < (n+64)/64 {
					model[id] = true
				}
			case 1:
				s.Remove(id)
				delete(model, id)
			default:
				if s.Contains(id) != model[id] {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for _, id := range s.IDs() {
			if !model[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
