package detector

import (
	"math"
	"math/rand/v2"
	"testing"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

func TestIncompleteZeroDropIsComplete(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	d := Incomplete(net, asg, 0, rand.New(rand.NewPCG(1, 1)))
	if err := d.Verify(net, asg, 0); err != nil {
		t.Errorf("zero drop should be 0-complete: %v", err)
	}
}

func TestIncompleteNeverAddsMistakes(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	for seed := uint64(1); seed <= 10; seed++ {
		d := Incomplete(net, asg, 0.5, rand.New(rand.NewPCG(seed, 2)))
		for v, m := range d.MistakeCount(net, asg) {
			if m != 0 {
				t.Errorf("seed %d: node %d has %d false positives", seed, v, m)
			}
		}
	}
}

func TestIncompleteKeepsRetainedConnected(t *testing.T) {
	net := lineNetwork(t)
	asg := dualgraph.IdentityAssignment(net.N())
	for seed := uint64(1); seed <= 20; seed++ {
		// Even at drop probability 1 the proviso must hold: on a line no
		// edge is removable, so the detector stays complete.
		d := Incomplete(net, asg, 1, rand.New(rand.NewPCG(seed, 3)))
		retained := RetainedReliableGraph(net, asg, d)
		if !retained.Connected() {
			t.Fatalf("seed %d: retained graph disconnected", seed)
		}
		if retained.M() != net.G().M() {
			t.Errorf("seed %d: line edges are all bridges, none should drop", seed)
		}
	}
}

func TestIncompleteDropsOnDenseGraph(t *testing.T) {
	// A 4-cycle has removable edges; with drop probability 1 at least one
	// must be dropped (and exactly one, since removing two disconnects...
	// removing two opposite edges leaves a path: still connected — up to
	// two may drop).
	net := cycleNetwork(t, 6)
	asg := dualgraph.IdentityAssignment(net.N())
	d := Incomplete(net, asg, 1, rand.New(rand.NewPCG(7, 7)))
	retained := RetainedReliableGraph(net, asg, d)
	if retained.M() >= net.G().M() {
		t.Error("no edge dropped on a cycle")
	}
	if !retained.Connected() {
		t.Error("retained graph disconnected")
	}
}

// cycleNetwork builds an n-cycle with unit chords: points on a circle whose
// adjacent chord length is exactly 1, so only consecutive nodes are forced
// into the reliable graph.
func cycleNetwork(t *testing.T, n int) *dualgraph.Network {
	t.Helper()
	b := graph.NewBuilder(n)
	coords := make([]geom.Point, n)
	radius := 0.5 / math.Sin(math.Pi/float64(n))
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		coords[i] = geom.Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
	}
	for i := 0; i < n; i++ {
		addEdge(t, b, i, (i+1)%n)
	}
	g := b.Build()
	return dualgraph.New(g, g, coords, 2)
}
