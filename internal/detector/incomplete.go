package detector

import (
	"math/rand/v2"

	"dualradio/internal/dualgraph"
	"dualradio/internal/graph"
)

// Incomplete builds a detector that misclassifies reliable links as
// unreliable: each direction of a reliable edge is dropped from the
// corresponding detector set with probability dropProb, except where the
// drop would disconnect the graph of mutually retained reliable edges.
//
// This realizes footnote 1 of the paper: τ-complete detectors never drop
// reliable neighbors, but the authors "suspect such misclassifications would
// not affect our algorithms' correctness, provided that the correctly
// classified reliable edges still describe a connected graph". The
// connectivity proviso is enforced here by construction, so experiments can
// test the conjecture directly.
func Incomplete(net *dualgraph.Network, asg *dualgraph.Assignment,
	dropProb float64, rng *rand.Rand) *Detector {
	d := Complete(net, asg)
	if dropProb <= 0 {
		return d
	}
	// retained tracks the subgraph of reliable edges kept in both
	// directions; an edge may be dropped only if retained stays connected.
	retained := graph.BuilderFrom(net.G())
	var edges [][2]int
	net.G().Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if rng.Float64() >= dropProb {
			continue
		}
		// Tentatively remove; keep the edge when removal would violate
		// the connectivity proviso. This avoids the old clone-per-probe.
		retained.RemoveEdge(e[0], e[1])
		if !retained.Connected() {
			// Re-insertion of a just-removed valid edge cannot fail.
			_ = retained.AddEdge(e[0], e[1])
			continue
		}
		// Drop one or both directions: either breaks mutuality, removing
		// the edge from H.
		switch rng.IntN(3) {
		case 0:
			d.sets[e[0]].Remove(asg.ID(e[1]))
		case 1:
			d.sets[e[1]].Remove(asg.ID(e[0]))
		default:
			d.sets[e[0]].Remove(asg.ID(e[1]))
			d.sets[e[1]].Remove(asg.ID(e[0]))
		}
	}
	return d
}

// RetainedReliableGraph returns the subgraph of reliable edges kept in both
// directions by d — the graph the footnote's proviso requires to be
// connected.
func RetainedReliableGraph(net *dualgraph.Network, asg *dualgraph.Assignment, d *Detector) *graph.Graph {
	kept := graph.NewBuilder(net.N())
	net.G().Edges(func(u, v int) {
		if d.sets[u].Contains(asg.ID(v)) && d.sets[v].Contains(asg.ID(u)) {
			// Error ignored: subgraph of a valid simple graph.
			_ = kept.AddEdge(u, v)
		}
	})
	return kept.Build()
}
