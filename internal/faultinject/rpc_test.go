package faultinject

import (
	"testing"
	"time"
)

func TestRPCRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"rpc-delay without ms", Spec{Rules: []Rule{{Kind: KindRPCDelay, Path: PathLease}}}},
		{"unknown path", Spec{Rules: []Rule{{Kind: KindRPCDrop, Path: "teleport"}}}},
		{"path on trial rule", Spec{Rules: []Rule{{Kind: KindTrialError, Path: PathLease}}}},
		{"after on trial rule", Spec{Rules: []Rule{{Kind: KindTrialError, After: 2}}}},
		{"count on trial rule", Spec{Rules: []Rule{{Kind: KindTrialError, Count: 2}}}},
		{"trial on rpc rule", Spec{Rules: []Rule{{Kind: KindRPCDrop, Trial: intp(1)}}}},
		{"attempts on rpc rule", Spec{Rules: []Rule{{Kind: KindRPCDrop, Attempts: 1}}}},
		{"transient on rpc rule", Spec{Rules: []Rule{{Kind: KindRPCDrop, Transient: true}}}},
		{"negative after", Spec{Rules: []Rule{{Kind: KindRPCDrop, After: -1}}}},
		{"negative count", Spec{Rules: []Rule{{Kind: KindRPCDrop, Count: -1}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The valid shapes parse.
	_, err := New(Spec{Rules: []Rule{
		{Kind: KindRPCDrop, Path: PathHeartbeat},
		{Kind: KindRPCDelay, DelayMS: 10, After: 1, Count: 3},
		{Kind: KindRPCDup, Path: PathComplete, P: 0.5},
	}})
	if err != nil {
		t.Fatalf("valid rpc rules rejected: %v", err)
	}
}

func TestRPCWindowSemantics(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{
		{Kind: KindRPCDrop, Path: PathHeartbeat, After: 2, Count: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Drops exactly calls 2, 3, 4 of the heartbeat path; other paths and
	// out-of-window calls pass.
	for seq := 0; seq < 8; seq++ {
		drop, _, _ := in.RPC(PathHeartbeat, seq)
		want := seq >= 2 && seq < 5
		if drop != want {
			t.Errorf("heartbeat seq %d: drop=%v, want %v", seq, drop, want)
		}
	}
	if drop, _, _ := in.RPC(PathLease, 3); drop {
		t.Error("rule leaked onto the lease path")
	}
}

func TestRPCDelayAccumulatesAndDup(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{
		{Kind: KindRPCDelay, Path: PathComplete, DelayMS: 20},
		{Kind: KindRPCDelay, DelayMS: 5}, // pathless: every rpc
		{Kind: KindRPCDup, Path: PathComplete},
	}})
	if err != nil {
		t.Fatal(err)
	}
	drop, delay, dup := in.RPC(PathComplete, 0)
	if drop || !dup || delay != 25*time.Millisecond {
		t.Fatalf("complete: drop=%v delay=%v dup=%v, want false 25ms true", drop, delay, dup)
	}
	if _, delay, dup := in.RPC(PathRegister, 0); delay != 5*time.Millisecond || dup {
		t.Fatalf("register: delay=%v dup=%v, want 5ms false", delay, dup)
	}
}

func TestRPCProbabilisticDeterminism(t *testing.T) {
	mk := func() *Injector {
		in, err := New(Spec{Rules: []Rule{{Kind: KindRPCDrop, Path: PathLease, P: 0.5}}})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	dropped := 0
	for seq := 0; seq < 200; seq++ {
		da, _, _ := a.RPC(PathLease, seq)
		db, _, _ := b.RPC(PathLease, seq)
		if da != db {
			t.Fatalf("seq %d: identical injectors disagreed", seq)
		}
		if da {
			dropped++
		}
	}
	if dropped == 0 || dropped == 200 {
		t.Fatalf("p=0.5 dropped %d/200 calls", dropped)
	}
}
