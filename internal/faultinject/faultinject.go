// Package faultinject injects deterministic faults into the simulation
// service so its fault-tolerance machinery — retry with backoff, per-trial
// panic isolation, journal replay, best-effort persistence — is exercised
// by tests and chaos runs instead of waiting for production to misbehave.
//
// Faults are described by a JSON spec of rules. Every decision is a pure
// function of (spec seed, rule index, canonical spec hash, trial, attempt):
// the same fault spec against the same workload injects exactly the same
// faults in every run, so chaos tests are reproducible and a "transient"
// error really does vanish on the retry the rule's attempt gate allows.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"
)

// Rule kinds.
const (
	// KindTrialError makes the matched trial fail with an error.
	KindTrialError = "trial-error"
	// KindTrialPanic makes the matched trial panic (exercising the
	// per-trial recover boundary).
	KindTrialPanic = "trial-panic"
	// KindTrialDelay sleeps before the matched trial runs (artificial
	// latency; never changes results).
	KindTrialDelay = "trial-delay"
	// KindStoreError fails the matched persistent-store write.
	KindStoreError = "store-error"
	// KindRPCDrop drops the matched fleet RPC before it is sent (the
	// worker sees a network error; the coordinator sees nothing — exactly
	// a lost packet). A drop rule with Path "heartbeat" and an After/Count
	// window is a deterministic heartbeat blackout.
	KindRPCDrop = "rpc-drop"
	// KindRPCDelay sleeps before the matched fleet RPC is sent (artificial
	// network latency; never changes results).
	KindRPCDelay = "rpc-delay"
	// KindRPCDup delivers the matched fleet RPC twice (duplicate
	// delivery, exercising coordinator-side idempotency).
	KindRPCDup = "rpc-dup"
)

// RPC paths matched by Rule.Path (empty matches every path).
const (
	PathRegister  = "register"
	PathHeartbeat = "heartbeat"
	PathLease     = "lease"
	PathComplete  = "complete"
)

// Rule is one fault: where it fires and what it does. All match fields are
// conjunctive; an omitted field matches everything.
type Rule struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// HashPrefix restricts the rule to workloads whose canonical spec hash
	// starts with it ("" = every workload).
	HashPrefix string `json:"hash_prefix,omitempty"`
	// Trial restricts the rule to one trial index (nil = every trial).
	Trial *int `json:"trial,omitempty"`
	// Attempts fires the rule only while the job's attempt counter is
	// below it: 1 = first attempt only (so one retry recovers),
	// 0 = every attempt (a permanent fault even when marked transient).
	Attempts int `json:"attempts,omitempty"`
	// P injects with this probability per matched site, decided by the
	// seeded deterministic coin (0 or >= 1 = always).
	P float64 `json:"p,omitempty"`
	// DelayMS is the sleep for KindTrialDelay.
	DelayMS int `json:"delay_ms,omitempty"`
	// Transient marks injected errors and panics retryable.
	Transient bool `json:"transient,omitempty"`
	// Message overrides the injected error text.
	Message string `json:"message,omitempty"`
	// Path restricts rpc-* rules to one fleet RPC (one of the Path*
	// constants; "" = every RPC).
	Path string `json:"path,omitempty"`
	// After and Count window rpc-* rules over the per-path call sequence:
	// the rule fires for calls with seq >= After and, when Count > 0,
	// seq < After+Count. A (Path "heartbeat", After, Count) drop rule is a
	// bounded heartbeat blackout that deterministically ends.
	After int `json:"after,omitempty"`
	Count int `json:"count,omitempty"`
}

// isRPC reports whether the rule kind targets fleet RPCs.
func (r *Rule) isRPC() bool {
	switch r.Kind {
	case KindRPCDrop, KindRPCDelay, KindRPCDup:
		return true
	}
	return false
}

// Spec is a fault-injection configuration: a seed for the deterministic
// coins plus the rule list.
type Spec struct {
	Seed  uint64 `json:"seed,omitempty"`
	Rules []Rule `json:"rules"`
}

// Injector evaluates a Spec's rules at the service's fault points. It is
// immutable and safe for concurrent use.
type Injector struct {
	spec Spec
}

// New validates the spec and returns an injector over it.
func New(spec Spec) (*Injector, error) {
	for i, r := range spec.Rules {
		switch r.Kind {
		case KindTrialError, KindTrialPanic, KindTrialDelay, KindStoreError,
			KindRPCDrop, KindRPCDelay, KindRPCDup:
		default:
			return nil, fmt.Errorf("faultinject: rule %d: unknown kind %q", i, r.Kind)
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("faultinject: rule %d: p=%v out of [0, 1]", i, r.P)
		}
		if r.DelayMS < 0 {
			return nil, fmt.Errorf("faultinject: rule %d: negative delay_ms", i)
		}
		if r.Attempts < 0 {
			return nil, fmt.Errorf("faultinject: rule %d: negative attempts", i)
		}
		if r.Kind == KindTrialDelay && r.DelayMS == 0 {
			return nil, fmt.Errorf("faultinject: rule %d: trial-delay needs delay_ms", i)
		}
		if r.Kind == KindRPCDelay && r.DelayMS == 0 {
			return nil, fmt.Errorf("faultinject: rule %d: rpc-delay needs delay_ms", i)
		}
		if r.After < 0 || r.Count < 0 {
			return nil, fmt.Errorf("faultinject: rule %d: negative after/count", i)
		}
		if r.isRPC() {
			switch r.Path {
			case "", PathRegister, PathHeartbeat, PathLease, PathComplete:
			default:
				return nil, fmt.Errorf("faultinject: rule %d: unknown rpc path %q", i, r.Path)
			}
			if r.Trial != nil || r.Attempts != 0 || r.Transient {
				return nil, fmt.Errorf("faultinject: rule %d: trial/attempts/transient are meaningless on %s", i, r.Kind)
			}
		} else if r.Path != "" || r.After != 0 || r.Count != 0 {
			return nil, fmt.Errorf("faultinject: rule %d: path/after/count are meaningless on %s", i, r.Kind)
		}
	}
	return &Injector{spec: spec}, nil
}

// Parse decodes a JSON fault spec, rejecting unknown fields.
func Parse(data []byte) (*Injector, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("faultinject: parse spec: %w", err)
	}
	return New(spec)
}

// Load reads and parses a fault spec file.
func Load(path string) (*Injector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return Parse(data)
}

// Rules returns the number of configured rules.
func (in *Injector) Rules() int { return len(in.spec.Rules) }

// transientError marks an injected error retryable. It matches the
// scenario package's transient classification through the Transient()
// method, so faultinject needs no import of the execution layer.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// InjectedError is the error type of injected faults that are not marked
// transient.
type InjectedError struct{ msg string }

func (e *InjectedError) Error() string { return e.msg }

func (r *Rule) newError(site string) error {
	msg := r.Message
	if msg == "" {
		msg = fmt.Sprintf("faultinject: injected %s at %s", r.Kind, site)
	}
	if r.Transient {
		return &transientError{msg: msg}
	}
	return &InjectedError{msg: msg}
}

// coin decides a probabilistic injection deterministically: an FNV-64 hash
// of (seed, rule index, site key) mapped to [0, 1) and compared against p.
func (in *Injector) coin(rule int, p float64, site string) bool {
	if p <= 0 || p >= 1 {
		return true
	}
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], in.spec.Seed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(rule))
	h.Write(buf[:])
	h.Write([]byte(site))
	u := float64(h.Sum64()>>11) / float64(1<<53) // 53 uniform mantissa bits
	return u < p
}

func (r *Rule) matches(hash string, trial, attempt int) bool {
	if r.HashPrefix != "" && (len(hash) < len(r.HashPrefix) || hash[:len(r.HashPrefix)] != r.HashPrefix) {
		return false
	}
	if r.Trial != nil && trial >= 0 && *r.Trial != trial {
		return false
	}
	if r.Attempts > 0 && attempt >= r.Attempts {
		return false
	}
	return true
}

// Trial evaluates the trial-scoped rules for (workload hash, trial,
// attempt): delays sleep in order, then the first firing error or panic
// rule wins. A returned error fails the trial; a panic rule panics with
// its error value, exercising the recover boundary.
func (in *Injector) Trial(hash string, trial, attempt int) error {
	site := fmt.Sprintf("trial/%s/%d/%d", hash, trial, attempt)
	for i, r := range in.spec.Rules {
		if r.Kind != KindTrialDelay || !r.matches(hash, trial, attempt) || !in.coin(i, r.P, site) {
			continue
		}
		time.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
	}
	for i, r := range in.spec.Rules {
		if (r.Kind != KindTrialError && r.Kind != KindTrialPanic) ||
			!r.matches(hash, trial, attempt) || !in.coin(i, r.P, site) {
			continue
		}
		err := r.newError(site)
		if r.Kind == KindTrialPanic {
			panic(err)
		}
		return err
	}
	return nil
}

// matchesRPC gates an rpc-* rule on its path filter and call-sequence
// window.
func (r *Rule) matchesRPC(path string, seq int) bool {
	if !r.isRPC() {
		return false
	}
	if r.Path != "" && r.Path != path {
		return false
	}
	if seq < r.After {
		return false
	}
	if r.Count > 0 && seq >= r.After+r.Count {
		return false
	}
	return true
}

// RPC evaluates the network-scoped rules for the seq'th call on one fleet
// RPC path (register, heartbeat, lease, complete; seq counts per path from
// 0 on the caller's side). Delays accumulate; drop simulates a lost
// request; dup asks the caller to deliver the request twice. Decisions are
// deterministic in (seed, rule, path, seq), so a heartbeat blackout or a
// duplicated completion happens at exactly the same point in every run.
func (in *Injector) RPC(path string, seq int) (drop bool, delay time.Duration, dup bool) {
	site := fmt.Sprintf("rpc/%s/%d", path, seq)
	for i, r := range in.spec.Rules {
		if !r.matchesRPC(path, seq) || !in.coin(i, r.P, site) {
			continue
		}
		switch r.Kind {
		case KindRPCDrop:
			drop = true
		case KindRPCDelay:
			delay += time.Duration(r.DelayMS) * time.Millisecond
		case KindRPCDup:
			dup = true
		}
	}
	return drop, delay, dup
}

// StorePut evaluates the store-scoped rules for a result write under
// hash, returning the injected write error if one fires.
func (in *Injector) StorePut(hash string) error {
	site := "store/" + hash
	for i, r := range in.spec.Rules {
		if r.Kind != KindStoreError || !r.matches(hash, -1, 0) || !in.coin(i, r.P, site) {
			continue
		}
		return r.newError(site)
	}
	return nil
}
