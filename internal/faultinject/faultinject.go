// Package faultinject injects deterministic faults into the simulation
// service so its fault-tolerance machinery — retry with backoff, per-trial
// panic isolation, journal replay, best-effort persistence — is exercised
// by tests and chaos runs instead of waiting for production to misbehave.
//
// Faults are described by a JSON spec of rules. Every decision is a pure
// function of (spec seed, rule index, canonical spec hash, trial, attempt):
// the same fault spec against the same workload injects exactly the same
// faults in every run, so chaos tests are reproducible and a "transient"
// error really does vanish on the retry the rule's attempt gate allows.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"
)

// Rule kinds.
const (
	// KindTrialError makes the matched trial fail with an error.
	KindTrialError = "trial-error"
	// KindTrialPanic makes the matched trial panic (exercising the
	// per-trial recover boundary).
	KindTrialPanic = "trial-panic"
	// KindTrialDelay sleeps before the matched trial runs (artificial
	// latency; never changes results).
	KindTrialDelay = "trial-delay"
	// KindStoreError fails the matched persistent-store write.
	KindStoreError = "store-error"
)

// Rule is one fault: where it fires and what it does. All match fields are
// conjunctive; an omitted field matches everything.
type Rule struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// HashPrefix restricts the rule to workloads whose canonical spec hash
	// starts with it ("" = every workload).
	HashPrefix string `json:"hash_prefix,omitempty"`
	// Trial restricts the rule to one trial index (nil = every trial).
	Trial *int `json:"trial,omitempty"`
	// Attempts fires the rule only while the job's attempt counter is
	// below it: 1 = first attempt only (so one retry recovers),
	// 0 = every attempt (a permanent fault even when marked transient).
	Attempts int `json:"attempts,omitempty"`
	// P injects with this probability per matched site, decided by the
	// seeded deterministic coin (0 or >= 1 = always).
	P float64 `json:"p,omitempty"`
	// DelayMS is the sleep for KindTrialDelay.
	DelayMS int `json:"delay_ms,omitempty"`
	// Transient marks injected errors and panics retryable.
	Transient bool `json:"transient,omitempty"`
	// Message overrides the injected error text.
	Message string `json:"message,omitempty"`
}

// Spec is a fault-injection configuration: a seed for the deterministic
// coins plus the rule list.
type Spec struct {
	Seed  uint64 `json:"seed,omitempty"`
	Rules []Rule `json:"rules"`
}

// Injector evaluates a Spec's rules at the service's fault points. It is
// immutable and safe for concurrent use.
type Injector struct {
	spec Spec
}

// New validates the spec and returns an injector over it.
func New(spec Spec) (*Injector, error) {
	for i, r := range spec.Rules {
		switch r.Kind {
		case KindTrialError, KindTrialPanic, KindTrialDelay, KindStoreError:
		default:
			return nil, fmt.Errorf("faultinject: rule %d: unknown kind %q", i, r.Kind)
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("faultinject: rule %d: p=%v out of [0, 1]", i, r.P)
		}
		if r.DelayMS < 0 {
			return nil, fmt.Errorf("faultinject: rule %d: negative delay_ms", i)
		}
		if r.Attempts < 0 {
			return nil, fmt.Errorf("faultinject: rule %d: negative attempts", i)
		}
		if r.Kind == KindTrialDelay && r.DelayMS == 0 {
			return nil, fmt.Errorf("faultinject: rule %d: trial-delay needs delay_ms", i)
		}
	}
	return &Injector{spec: spec}, nil
}

// Parse decodes a JSON fault spec, rejecting unknown fields.
func Parse(data []byte) (*Injector, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("faultinject: parse spec: %w", err)
	}
	return New(spec)
}

// Load reads and parses a fault spec file.
func Load(path string) (*Injector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return Parse(data)
}

// Rules returns the number of configured rules.
func (in *Injector) Rules() int { return len(in.spec.Rules) }

// transientError marks an injected error retryable. It matches the
// scenario package's transient classification through the Transient()
// method, so faultinject needs no import of the execution layer.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// InjectedError is the error type of injected faults that are not marked
// transient.
type InjectedError struct{ msg string }

func (e *InjectedError) Error() string { return e.msg }

func (r *Rule) newError(site string) error {
	msg := r.Message
	if msg == "" {
		msg = fmt.Sprintf("faultinject: injected %s at %s", r.Kind, site)
	}
	if r.Transient {
		return &transientError{msg: msg}
	}
	return &InjectedError{msg: msg}
}

// coin decides a probabilistic injection deterministically: an FNV-64 hash
// of (seed, rule index, site key) mapped to [0, 1) and compared against p.
func (in *Injector) coin(rule int, p float64, site string) bool {
	if p <= 0 || p >= 1 {
		return true
	}
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], in.spec.Seed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(rule))
	h.Write(buf[:])
	h.Write([]byte(site))
	u := float64(h.Sum64()>>11) / float64(1<<53) // 53 uniform mantissa bits
	return u < p
}

func (r *Rule) matches(hash string, trial, attempt int) bool {
	if r.HashPrefix != "" && (len(hash) < len(r.HashPrefix) || hash[:len(r.HashPrefix)] != r.HashPrefix) {
		return false
	}
	if r.Trial != nil && trial >= 0 && *r.Trial != trial {
		return false
	}
	if r.Attempts > 0 && attempt >= r.Attempts {
		return false
	}
	return true
}

// Trial evaluates the trial-scoped rules for (workload hash, trial,
// attempt): delays sleep in order, then the first firing error or panic
// rule wins. A returned error fails the trial; a panic rule panics with
// its error value, exercising the recover boundary.
func (in *Injector) Trial(hash string, trial, attempt int) error {
	site := fmt.Sprintf("trial/%s/%d/%d", hash, trial, attempt)
	for i, r := range in.spec.Rules {
		if r.Kind != KindTrialDelay || !r.matches(hash, trial, attempt) || !in.coin(i, r.P, site) {
			continue
		}
		time.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
	}
	for i, r := range in.spec.Rules {
		if (r.Kind != KindTrialError && r.Kind != KindTrialPanic) ||
			!r.matches(hash, trial, attempt) || !in.coin(i, r.P, site) {
			continue
		}
		err := r.newError(site)
		if r.Kind == KindTrialPanic {
			panic(err)
		}
		return err
	}
	return nil
}

// StorePut evaluates the store-scoped rules for a result write under
// hash, returning the injected write error if one fires.
func (in *Injector) StorePut(hash string) error {
	site := "store/" + hash
	for i, r := range in.spec.Rules {
		if r.Kind != KindStoreError || !r.matches(hash, -1, 0) || !in.coin(i, r.P, site) {
			continue
		}
		return r.newError(site)
	}
	return nil
}
