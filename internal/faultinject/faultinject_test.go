package faultinject

import (
	"errors"
	"strings"
	"testing"
)

func intp(i int) *int { return &i }

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown kind", Spec{Rules: []Rule{{Kind: "meteor-strike"}}}},
		{"p above 1", Spec{Rules: []Rule{{Kind: KindTrialError, P: 1.5}}}},
		{"negative p", Spec{Rules: []Rule{{Kind: KindTrialError, P: -0.1}}}},
		{"negative delay", Spec{Rules: []Rule{{Kind: KindTrialDelay, DelayMS: -5}}}},
		{"delay without ms", Spec{Rules: []Rule{{Kind: KindTrialDelay}}}},
		{"negative attempts", Spec{Rules: []Rule{{Kind: KindTrialError, Attempts: -1}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Parse([]byte(`{"rules":[{"kind":"trial-error","typo":1}]}`)); err == nil {
		t.Error("Parse accepted an unknown field")
	}
}

func TestTrialErrorMatchingAndAttemptGate(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{{
		Kind:      KindTrialError,
		Trial:     intp(3),
		Attempts:  1,
		Transient: true,
		Message:   "injected flake",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const hash = "deadbeefdeadbeef"
	// Fires exactly on (trial 3, attempt 0).
	if err := in.Trial(hash, 3, 0); err == nil || err.Error() != "injected flake" {
		t.Fatalf("trial 3 attempt 0: err = %v", err)
	}
	// Marked transient via the Transient() method contract.
	var tr interface{ Transient() bool }
	if err := in.Trial(hash, 3, 0); !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("injected transient error lacks Transient(): %v", err)
	}
	// The attempt gate lets the retry through.
	if err := in.Trial(hash, 3, 1); err != nil {
		t.Fatalf("trial 3 attempt 1: unexpected %v", err)
	}
	// Other trials are untouched.
	if err := in.Trial(hash, 2, 0); err != nil {
		t.Fatalf("trial 2: unexpected %v", err)
	}
}

func TestHashPrefixScoping(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{{Kind: KindTrialError, HashPrefix: "abcd"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Trial("abcd1234", 0, 0); err == nil {
		t.Fatal("matching hash prefix did not fire")
	}
	if err := in.Trial("ffff1234", 0, 0); err != nil {
		t.Fatalf("non-matching hash prefix fired: %v", err)
	}
}

func TestTrialPanicPanicsWithError(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{{Kind: KindTrialPanic, Transient: true}}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("trial-panic rule did not panic")
		}
		perr, ok := p.(error)
		if !ok {
			t.Fatalf("panicked with %T, want error", p)
		}
		var tr interface{ Transient() bool }
		if !errors.As(perr, &tr) || !tr.Transient() {
			t.Fatalf("panic error not transient: %v", perr)
		}
	}()
	_ = in.Trial("deadbeef", 0, 0)
}

// The probability coin is a pure function of (seed, rule, site): the same
// spec injects the same faults in every run, and different seeds decorrelate.
func TestProbabilisticInjectionIsDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Rules: []Rule{{Kind: KindTrialError, P: 0.5}}}
	a, _ := New(spec)
	b, _ := New(spec)
	fired, differs := 0, false
	for trial := 0; trial < 200; trial++ {
		ea := a.Trial("cafe0123", trial, 0)
		eb := b.Trial("cafe0123", trial, 0)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("trial %d: nondeterministic injection", trial)
		}
		if ea != nil {
			fired++
		}
		other, _ := New(Spec{Seed: 43, Rules: spec.Rules})
		if (other.Trial("cafe0123", trial, 0) == nil) != (ea == nil) {
			differs = true
		}
	}
	// p=0.5 over 200 deterministic coins: expect a balanced-ish split.
	if fired < 50 || fired > 150 {
		t.Errorf("p=0.5 fired %d/200 times", fired)
	}
	if !differs {
		t.Error("seeds 42 and 43 injected identically across 200 sites")
	}
}

func TestStorePut(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{
		{Kind: KindStoreError, HashPrefix: "aa", Message: "disk on fire"},
		{Kind: KindTrialError}, // trial rules must not leak into store writes
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.StorePut("aa00"); err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("store error not injected: %v", err)
	}
	if err := in.StorePut("bb00"); err != nil {
		t.Fatalf("unscoped store write failed: %v", err)
	}
}

func TestTrialDelaySleepsWithoutError(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{{Kind: KindTrialDelay, DelayMS: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Trial("deadbeef", 0, 0); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
}
