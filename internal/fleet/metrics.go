package fleet

import (
	"dualradio/internal/metrics"
)

// instruments holds the coordinator's per-worker metric families. A nil
// *instruments makes every record call a no-op, so coordinators that were
// never Instrument-ed (tests, embedded fakes) pay nothing.
type instruments struct {
	granted      metrics.CounterVec
	completed    metrics.CounterVec
	failed       metrics.CounterVec
	redispatched metrics.CounterVec
	rpcs         metrics.CounterVec
}

// Instrument registers the coordinator's per-worker series on r:
//
//	radiod_fleet_worker_leases_granted_total{worker}
//	radiod_fleet_worker_completed_total{worker}
//	radiod_fleet_worker_failed_total{worker}
//	radiod_fleet_worker_redispatched_total{worker}
//	radiod_fleet_worker_rpc_total{worker,rpc}
//	radiod_fleet_worker_heartbeat_age_seconds{worker}
//
// Series are labeled by worker name (not registration id), so a worker
// that re-registers after a partition keeps accumulating on its series;
// the registry's cardinality cap bounds unbounded name churn. The
// heartbeat-age gauge is refreshed at scrape time for live workers only —
// a dead worker's series disappears rather than aging forever. Call before
// Start and before serving scrapes; Instrument is not safe to race with
// coordinator traffic.
func (c *Coordinator) Instrument(r *metrics.Registry) {
	c.m = &instruments{
		granted:      r.CounterVec("radiod_fleet_worker_leases_granted_total", "Work-unit leases granted, by worker.", "worker"),
		completed:    r.CounterVec("radiod_fleet_worker_completed_total", "Leased jobs completed, by worker.", "worker"),
		failed:       r.CounterVec("radiod_fleet_worker_failed_total", "Leased jobs failed, by worker.", "worker"),
		redispatched: r.CounterVec("radiod_fleet_worker_redispatched_total", "Leases returned to the queue, by worker.", "worker"),
		rpcs:         r.CounterVec("radiod_fleet_worker_rpc_total", "Fleet RPCs served, by worker and endpoint.", "worker", "rpc"),
	}
	hbAge := r.GaugeVec("radiod_fleet_worker_heartbeat_age_seconds", "Seconds since each live worker's last heartbeat.", "worker")
	r.OnCollect(func() {
		hbAge.Reset()
		now := c.now()
		c.mu.Lock()
		for _, id := range c.order {
			w := c.workers[id]
			if w.live {
				hbAge.With(w.name).Set(now.Sub(w.lastBeat).Seconds())
			}
		}
		c.mu.Unlock()
	})
}

func (m *instruments) leaseGranted(worker string) {
	if m != nil {
		m.granted.With(worker).Inc()
	}
}

func (m *instruments) jobCompleted(worker string) {
	if m != nil {
		m.completed.With(worker).Inc()
	}
}

func (m *instruments) jobFailed(worker string) {
	if m != nil {
		m.failed.With(worker).Inc()
	}
}

func (m *instruments) leaseRedispatched(worker string) {
	if m != nil {
		m.redispatched.With(worker).Inc()
	}
}

func (m *instruments) rpc(worker, endpoint string) {
	if m != nil {
		m.rpcs.With(worker, endpoint).Inc()
	}
}

// workerName resolves a worker id to its registered name for metric
// labels ("unknown" for ids this coordinator never registered — e.g. a
// pre-restart worker reporting a late completion). Dead workers keep
// their names, so their redispatches still attribute correctly.
func (c *Coordinator) workerName(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok {
		return w.name
	}
	return "unknown"
}
