package fleet

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"dualradio/internal/scenario"
)

// fakeBackend is an in-memory Backend: a queue of job ids, a job table
// tracking each job's state, and a write-once "store" keyed by job id that
// mirrors the real content-addressed store's dedup semantics.
type fakeBackend struct {
	mu      sync.Mutex
	queue   []string
	state   map[string]string // queued | running | done | failed
	leases  map[string]string // job → active lease id
	store   map[string][]byte // first write wins
	puts    map[string]int    // completion deliveries per job
	records []Record
	spec    json.RawMessage // unit spec served by Next (placeholder if nil)
}

func newFakeBackend(jobs ...string) *fakeBackend {
	b := &fakeBackend{
		state:  make(map[string]string),
		leases: make(map[string]string),
		store:  make(map[string][]byte),
		puts:   make(map[string]int),
	}
	for _, j := range jobs {
		b.queue = append(b.queue, j)
		b.state[j] = "queued"
	}
	return b
}

func (b *fakeBackend) Next(worker, lease string) *scenario.WorkUnit {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return nil
	}
	job := b.queue[0]
	b.queue = b.queue[1:]
	b.state[job] = "running"
	b.leases[job] = lease
	spec := b.spec
	if spec == nil {
		spec, _ = json.Marshal(map[string]any{"algorithm": "mis"})
	}
	return &scenario.WorkUnit{Job: job, Lease: lease, Spec: spec}
}

func (b *fakeBackend) Complete(job string, result []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.state[job]; !ok {
		return fmt.Errorf("unknown job %s", job)
	}
	b.puts[job]++
	if _, dup := b.store[job]; !dup {
		b.store[job] = result // write-once, like the content-addressed store
	}
	if b.state[job] != "done" && b.state[job] != "failed" {
		b.state[job] = "done"
		delete(b.leases, job)
	}
	return nil
}

func (b *fakeBackend) Fail(job, msg string, transient bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state[job] == "running" {
		b.state[job] = "failed"
		delete(b.leases, job)
	}
}

func (b *fakeBackend) Requeue(job, lease, worker, reason string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state[job] != "running" || b.leases[job] != lease {
		return false
	}
	b.state[job] = "queued"
	delete(b.leases, job)
	b.queue = append(b.queue, job)
	b.records = append(b.records, Record{Op: OpRedispatch, Job: job, Lease: lease, Worker: worker, Reason: reason})
	return true
}

func (b *fakeBackend) WorkerEvent(op, worker, name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.records = append(b.records, Record{Op: op, Worker: worker, Name: name})
}

func (b *fakeBackend) jobState(job string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state[job]
}

func (b *fakeBackend) ops() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.records))
	for i, r := range b.records {
		out[i] = r.Op
	}
	return out
}

// fakeClock drives the coordinator's failure detector without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testCoordinator(be Backend, cfg Config) (*Coordinator, *fakeClock) {
	c := New(be, cfg)
	clk := newFakeClock()
	c.now = clk.now
	return c, clk
}

func TestLeaseLifecycle(t *testing.T) {
	be := newFakeBackend("j1", "j2")
	c, _ := testCoordinator(be, Config{})

	id, err := c.Register("w1", 2)
	if err != nil {
		t.Fatal(err)
	}
	units, err := c.Lease(id, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("leased %d units, want 2 (slot-bounded)", len(units))
	}
	if units[0].Job != "j1" || units[0].Lease == "" {
		t.Fatalf("unexpected first unit %+v", units[0])
	}
	// Slots exhausted: further leases grant nothing.
	if more, _ := c.Lease(id, 1); len(more) != 0 {
		t.Fatalf("over-slot lease granted %d units", len(more))
	}
	if err := c.Complete(id, units[0].Lease, "j1", []byte(`{"ok":1}`), "", false); err != nil {
		t.Fatal(err)
	}
	if got := be.jobState("j1"); got != "done" {
		t.Fatalf("j1 state %q after completion", got)
	}
	snap := c.Snapshot()
	if snap.Counters.LeasesGranted != 2 || snap.Counters.Completed != 1 || snap.Counters.LeasesActive != 1 {
		t.Fatalf("counters %+v", snap.Counters)
	}
}

// TestHeartbeatTimeoutRedispatch is the robustness core: a worker leases a
// job, stops heartbeating, is declared dead, and the job is re-dispatched;
// the dead worker's late result is still adopted, and the survivor's
// duplicate completion dedups via the write-once store.
func TestHeartbeatTimeoutRedispatch(t *testing.T) {
	be := newFakeBackend("j1")
	c, clk := testCoordinator(be, Config{Heartbeat: time.Second})

	w1, _ := c.Register("w1", 1)
	units, _ := c.Lease(w1, 1)
	if len(units) != 1 {
		t.Fatalf("leased %d units", len(units))
	}

	// Silence past DeadAfter (3×heartbeat): the reaper declares w1 dead
	// and requeues its lease.
	clk.advance(4 * time.Second)
	c.reap()
	if err := c.Heartbeat(w1); err != ErrGone {
		t.Fatalf("dead worker heartbeat: %v, want ErrGone", err)
	}
	if got := be.jobState("j1"); got != "queued" {
		t.Fatalf("j1 state %q after worker death, want queued", got)
	}
	ops := be.ops()
	if len(ops) < 3 || ops[len(ops)-2] != OpWorkerDead || ops[len(ops)-1] != OpRedispatch {
		t.Fatalf("journal ops %v, want ...worker-dead, redispatch", ops)
	}

	// A survivor picks the job up under a fresh lease.
	w2, _ := c.Register("w2", 1)
	units2, _ := c.Lease(w2, 1)
	if len(units2) != 1 || units2[0].Job != "j1" {
		t.Fatalf("survivor leased %+v, want j1", units2)
	}
	if units2[0].Lease == units[0].Lease {
		t.Fatal("re-dispatch reused the dead lease id")
	}

	// The "dead" worker was merely partitioned: its late result arrives
	// under the void lease and is adopted.
	if err := c.Complete(w1, units[0].Lease, "j1", []byte(`{"from":"w1"}`), "", false); err != nil {
		t.Fatal(err)
	}
	if got := be.jobState("j1"); got != "done" {
		t.Fatalf("j1 state %q after adopted completion", got)
	}
	// The survivor finishes too; the duplicate merges via the store's
	// write-once Put — first result wins, second delivery no-ops.
	if err := c.Complete(w2, units2[0].Lease, "j1", []byte(`{"from":"w2"}`), "", false); err != nil {
		t.Fatal(err)
	}
	be.mu.Lock()
	stored, puts := string(be.store["j1"]), be.puts["j1"]
	be.mu.Unlock()
	if puts != 2 || stored != `{"from":"w1"}` {
		t.Fatalf("store saw %d puts, kept %q; want 2 puts, first write kept", puts, stored)
	}
	snap := c.Snapshot()
	if snap.Counters.Redispatched != 1 || snap.Counters.Adopted != 1 || snap.Counters.WorkersDead != 1 {
		t.Fatalf("counters %+v", snap.Counters)
	}
}

func TestLeaseTTLExpiry(t *testing.T) {
	be := newFakeBackend("j1")
	c, clk := testCoordinator(be, Config{Heartbeat: time.Second, LeaseTTL: 10 * time.Second})

	w1, _ := c.Register("w1", 1)
	units, _ := c.Lease(w1, 1)
	if len(units) != 1 {
		t.Fatal("no lease granted")
	}
	// Keep heartbeating — the worker is live but wedged on the job.
	for i := 0; i < 11; i++ {
		clk.advance(time.Second)
		if err := c.Heartbeat(w1); err != nil {
			t.Fatal(err)
		}
		c.reap()
	}
	if got := be.jobState("j1"); got != "queued" {
		t.Fatalf("j1 state %q after TTL expiry, want queued", got)
	}
	if err := c.Heartbeat(w1); err != nil {
		t.Fatalf("live worker evicted with its lease: %v", err)
	}
	if c.Snapshot().Counters.LeasesExpired != 1 {
		t.Fatalf("counters %+v", c.Snapshot().Counters)
	}
}

func TestStaleFailureReportDropped(t *testing.T) {
	be := newFakeBackend("j1")
	c, clk := testCoordinator(be, Config{Heartbeat: time.Second})

	w1, _ := c.Register("w1", 1)
	units, _ := c.Lease(w1, 1)
	clk.advance(4 * time.Second)
	c.reap() // w1 dead, j1 requeued

	// w1's late failure report must not disturb the re-dispatched job.
	if err := c.Complete(w1, units[0].Lease, "j1", nil, "boom", true); err != nil {
		t.Fatal(err)
	}
	if got := be.jobState("j1"); got != "queued" {
		t.Fatalf("stale failure moved j1 to %q", got)
	}
	// A current lease holder's failure is honored.
	w2, _ := c.Register("w2", 1)
	units2, _ := c.Lease(w2, 1)
	if err := c.Complete(w2, units2[0].Lease, "j1", nil, "boom", false); err != nil {
		t.Fatal(err)
	}
	if got := be.jobState("j1"); got != "failed" {
		t.Fatalf("current failure left j1 in %q", got)
	}
}

func TestCloseRequeuesLeases(t *testing.T) {
	be := newFakeBackend("j1", "j2")
	c, _ := testCoordinator(be, Config{})
	w1, _ := c.Register("w1", 2)
	if units, _ := c.Lease(w1, 2); len(units) != 2 {
		t.Fatalf("leased %d units", len(units))
	}
	c.Close()
	if got := be.jobState("j1"); got != "queued" {
		t.Fatalf("j1 state %q after Close, want queued", got)
	}
	if _, err := c.Register("w2", 1); err == nil {
		t.Fatal("register succeeded on a closed coordinator")
	}
}

func TestRegisterCapsSlots(t *testing.T) {
	be := newFakeBackend()
	c, _ := testCoordinator(be, Config{MaxSlots: 2})
	id, _ := c.Register("greedy", 100)
	c.mu.Lock()
	slots := c.workers[id].slots
	c.mu.Unlock()
	if slots != 2 {
		t.Fatalf("slots %d, want capped at 2", slots)
	}
}
