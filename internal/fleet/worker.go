package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/scenario"
)

// WorkerConfig configures a fleet worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// Name identifies the worker in views and journal records.
	Name string
	// Slots is the number of work units executed concurrently
	// (default GOMAXPROCS).
	Slots int
	// TrialWorkers is the per-unit trial fan-out (default 1).
	TrialWorkers int
	// Poll is the idle wait between lease attempts when the coordinator
	// has no work (default 250ms).
	Poll time.Duration
	// Fault, when non-nil, injects deterministic faults: trial-scoped
	// rules at execution, rpc-scoped rules (drop/delay/duplicate,
	// heartbeat blackouts) at every coordinator RPC.
	Fault *faultinject.Injector
	// Logf, when non-nil, receives progress lines (log.Printf-shaped).
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Slots <= 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.TrialWorkers <= 0 {
		c.TrialWorkers = 1
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker is a fleet worker: it registers with the coordinator, heartbeats,
// pulls leased work units, executes them with the same deterministic
// engine the coordinator would use locally, and reports results. On a 410
// from the coordinator — it was declared dead during a partition, or the
// coordinator restarted — it re-registers and carries on; executions
// already in flight finish and report under their old lease, which the
// coordinator adopts by job id.
type Worker struct {
	cfg WorkerConfig
	hc  *http.Client

	// seq counts RPCs per path for deterministic fault-injection windows.
	seqMu sync.Mutex
	seq   map[string]int
}

// NewWorker builds a worker; Run drives it.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{
		cfg: cfg.withDefaults(),
		hc:  &http.Client{Timeout: 30 * time.Second},
		seq: make(map[string]int),
	}
}

// Run executes the worker loop until ctx is cancelled: register (retrying
// until the coordinator answers), then heartbeat and lease/execute until
// the registration dies, then re-register. It returns nil on ctx
// cancellation.
func (w *Worker) Run(ctx context.Context) error {
	slots := make(chan struct{}, w.cfg.Slots)
	for i := 0; i < w.cfg.Slots; i++ {
		slots <- struct{}{}
	}
	for {
		reg, err := w.register(ctx)
		if err != nil {
			return err // only ctx cancellation ends registration retries
		}
		w.cfg.Logf("fleet worker %s: registered as %s (heartbeat %dms)", w.cfg.Name, reg.WorkerID, reg.HeartbeatMS)
		w.session(ctx, reg, slots)
		if ctx.Err() != nil {
			return nil
		}
		w.cfg.Logf("fleet worker %s: registration %s gone; re-registering", w.cfg.Name, reg.WorkerID)
	}
}

// register retries until the coordinator admits the worker or ctx ends.
func (w *Worker) register(ctx context.Context) (registerResponse, error) {
	backoff := 100 * time.Millisecond
	for {
		var resp registerResponse
		err := w.post(ctx, faultinject.PathRegister, registerRequest{Name: w.cfg.Name, Slots: w.cfg.Slots}, &resp)
		if err == nil {
			return resp, nil
		}
		w.cfg.Logf("fleet worker %s: register: %v (retrying in %v)", w.cfg.Name, err, backoff)
		select {
		case <-ctx.Done():
			return registerResponse{}, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// session runs one registration's heartbeat and lease loops until the
// coordinator answers 410 or ctx ends.
func (w *Worker) session(ctx context.Context, reg registerResponse, slots chan struct{}) {
	sctx, gone := context.WithCancel(ctx)
	defer gone()

	heartbeat := time.Duration(reg.HeartbeatMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = 2 * time.Second
	}
	go func() {
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
				err := w.post(sctx, faultinject.PathHeartbeat, heartbeatRequest{WorkerID: reg.WorkerID}, nil)
				if errors.Is(err, ErrGone) {
					gone()
					return
				}
				// Other errors (drops, timeouts) are tolerable: liveness
				// only lapses after DeadAfter of consecutive silence.
			}
		}
	}()

	for {
		// Take a slot before asking for work so a grant never waits on a
		// busy executor while its lease clock runs.
		select {
		case <-sctx.Done():
			return
		case <-slots:
		}
		var resp leaseResponse
		err := w.post(sctx, faultinject.PathLease, leaseRequest{WorkerID: reg.WorkerID, Max: 1}, &resp)
		switch {
		case errors.Is(err, ErrGone):
			slots <- struct{}{}
			gone()
			return
		case err != nil || len(resp.Units) == 0:
			slots <- struct{}{}
			select {
			case <-sctx.Done():
				return
			case <-time.After(w.cfg.Poll):
			}
			continue
		}
		unit := resp.Units[0]
		go func() {
			defer func() { slots <- struct{}{} }()
			// Execution rides the outer ctx: a lost registration does not
			// abort work already leased — the result is still valid and
			// the coordinator adopts it by job id.
			w.runUnit(ctx, reg.WorkerID, unit)
		}()
	}
}

// runUnit executes one leased work unit and reports the outcome.
func (w *Worker) runUnit(ctx context.Context, workerID string, unit scenario.WorkUnit) {
	req := w.execute(ctx, unit)
	if req == nil {
		return // shutdown mid-run; the coordinator will re-dispatch
	}
	req.WorkerID = workerID
	req.Lease = unit.Lease
	req.Job = unit.Job
	w.complete(ctx, *req)
}

// execute compiles and runs the unit, classifying the outcome the same way
// the server does locally. Transient failures are reported, not retried
// here: the retry budget and its backoff live with the coordinator, which
// owns the job's attempt counter. A nil return means ctx was cancelled
// mid-run and nothing should be reported.
func (w *Worker) execute(ctx context.Context, unit scenario.WorkUnit) *completeRequest {
	comp, err := unit.Compile()
	if err != nil {
		return &completeRequest{Error: err.Error()}
	}
	runCtx := ctx
	deadline := comp.Spec().TimeoutMS
	if deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, time.Duration(deadline)*time.Millisecond)
		defer cancel()
	}
	opts := scenario.RunOptions{Workers: w.cfg.TrialWorkers, Attempt: unit.Attempt}
	if w.cfg.Fault != nil {
		hash := comp.Hash()
		opts.Fault = func(trial, at int) error { return w.cfg.Fault.Trial(hash, trial, at) }
	}
	res, err := comp.RunWithOptions(runCtx, opts)
	switch {
	case err == nil:
		data, merr := json.Marshal(res)
		if merr != nil {
			return &completeRequest{Error: fmt.Sprintf("marshal result: %v", merr)}
		}
		return &completeRequest{Result: data}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(runCtx.Err(), context.DeadlineExceeded):
		// Deterministic workload: a rerun would time out identically.
		return &completeRequest{Error: fmt.Sprintf("run exceeded %dms deadline", deadline)}
	case ctx.Err() != nil:
		return nil // worker shutting down
	default:
		return &completeRequest{Error: err.Error(), Transient: scenario.IsTransient(err)}
	}
}

// complete reports a finished unit with bounded retries. Giving up is
// safe: the lease's heartbeat timeout or TTL re-dispatches the job.
func (w *Worker) complete(ctx context.Context, req completeRequest) {
	for attempt := 0; attempt < 5; attempt++ {
		err := w.post(ctx, faultinject.PathComplete, req, nil)
		if err == nil || errors.Is(err, ErrGone) {
			return
		}
		w.cfg.Logf("fleet worker %s: complete %s: %v", w.cfg.Name, req.Job, err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
		}
	}
}

// post sends one coordinator RPC, applying rpc-scoped fault rules on the
// client side: an injected drop fails the call without sending (a lost
// request), a delay sleeps first, a dup sends the request twice — the
// coordinator must (and does) tolerate the duplicate.
func (w *Worker) post(ctx context.Context, path string, body any, out any) error {
	if w.cfg.Fault != nil {
		w.seqMu.Lock()
		seq := w.seq[path]
		w.seq[path] = seq + 1
		w.seqMu.Unlock()
		drop, delay, dup := w.cfg.Fault.RPC(path, seq)
		if delay > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		if drop {
			return fmt.Errorf("fleet: injected drop of %s rpc", path)
		}
		if dup {
			_ = w.doPost(ctx, path, body, nil) // best-effort duplicate
		}
	}
	return w.doPost(ctx, path, body, out)
}

func (w *Worker) doPost(ctx context.Context, path string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("fleet: marshal %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+"/v1/fleet/"+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("fleet: %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s rpc: %w", path, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusGone:
		return ErrGone
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("fleet: %s rpc: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	case out != nil:
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("fleet: decode %s response: %w", path, err)
		}
	}
	return nil
}
