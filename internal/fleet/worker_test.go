package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dualradio/internal/faultinject"
	"dualradio/internal/scenario"
)

// testSpec returns a compiled tiny scenario plus its canonical raw form —
// the shape a coordinator serializes into work units.
func testSpec(t *testing.T, trials int, seed uint64) (*scenario.Compiled, json.RawMessage) {
	t.Helper()
	comp, err := scenario.Compile(scenario.Spec{
		Algorithm:       scenario.AlgoMIS,
		Network:         scenario.NetworkSpec{N: 24},
		Trials:          trials,
		Seed:            seed,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(comp.Spec())
	if err != nil {
		t.Fatal(err)
	}
	return comp, raw
}

// startFleet serves the coordinator over HTTP and runs a worker against
// it, returning the backend for inspection.
func startFleet(t *testing.T, be *fakeBackend, cfg Config, wcfg WorkerConfig) (*Coordinator, context.CancelFunc) {
	t.Helper()
	c := New(be, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	c.Start(ctx)
	mux := http.NewServeMux()
	c.Mount(mux)
	ts := httptest.NewServer(mux)
	wcfg.Coordinator = ts.URL
	if wcfg.Poll == 0 {
		wcfg.Poll = 10 * time.Millisecond
	}
	w := NewWorker(wcfg)
	go func() { _ = w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		c.Close()
		ts.Close()
	})
	return c, cancel
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerExecutesUnit drives the full remote path: register → lease →
// execute the real deterministic engine → complete. The reported result
// must verify against the spec the coordinator serialized.
func TestWorkerExecutesUnit(t *testing.T) {
	comp, raw := testSpec(t, 2, 7)
	be := newFakeBackend("j1")
	be.spec = raw
	startFleet(t, be, Config{Heartbeat: 50 * time.Millisecond},
		WorkerConfig{Name: "w1", Slots: 1})

	waitFor(t, "j1 completion", func() bool { return be.jobState("j1") == "done" })
	be.mu.Lock()
	stored := be.store["j1"]
	be.mu.Unlock()
	var res scenario.Result
	if err := json.Unmarshal(stored, &res); err != nil {
		t.Fatalf("worker result does not decode: %v", err)
	}
	if res.SpecHash != comp.Hash() {
		t.Fatalf("result hash %s, want %s", res.SpecHash, comp.Hash())
	}
	if res.Aggregate.Trials != comp.Trials() {
		t.Fatalf("result covers %d trials, want %d", res.Aggregate.Trials, comp.Trials())
	}
}

// TestWorkerReregistersAfterBlackout simulates a network partition with
// deterministic rpc faults: every heartbeat is dropped and, after the
// first grant, leases are dropped too. The coordinator declares the worker
// dead; when the lease window heals the worker learns it is gone (410) and
// re-registers.
func TestWorkerReregistersAfterBlackout(t *testing.T) {
	_, raw := testSpec(t, 1, 11)
	be := newFakeBackend("j1")
	be.spec = raw
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{
		{Kind: faultinject.KindRPCDrop, Path: faultinject.PathHeartbeat},
		{Kind: faultinject.KindRPCDrop, Path: faultinject.PathLease, After: 1, Count: 40},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFleet(t, be,
		Config{Heartbeat: 25 * time.Millisecond, DeadAfter: 100 * time.Millisecond},
		WorkerConfig{Name: "w1", Slots: 1, Fault: inj})

	waitFor(t, "death and re-registration", func() bool {
		snap := c.Snapshot()
		return snap.Counters.WorkersDead >= 1 && snap.Counters.WorkersLive >= 1 && len(snap.Workers) >= 2
	})
	// The first grant's job completed before (or despite) the blackout.
	waitFor(t, "j1 completion", func() bool { return be.jobState("j1") == "done" })
}

// TestDuplicateCompletionRPC exercises coordinator-side idempotency: an
// rpc-dup rule delivers every completion twice, and the write-once store
// keeps exactly one result.
func TestDuplicateCompletionRPC(t *testing.T) {
	_, raw := testSpec(t, 1, 13)
	be := newFakeBackend("j1")
	be.spec = raw
	inj, err := faultinject.New(faultinject.Spec{Rules: []faultinject.Rule{
		{Kind: faultinject.KindRPCDup, Path: faultinject.PathComplete},
	}})
	if err != nil {
		t.Fatal(err)
	}
	startFleet(t, be, Config{Heartbeat: 50 * time.Millisecond},
		WorkerConfig{Name: "w1", Slots: 1, Fault: inj})

	waitFor(t, "j1 completion", func() bool { return be.jobState("j1") == "done" })
	waitFor(t, "duplicate delivery", func() bool {
		be.mu.Lock()
		defer be.mu.Unlock()
		return be.puts["j1"] >= 2
	})
	be.mu.Lock()
	defer be.mu.Unlock()
	if len(be.store) != 1 {
		t.Fatalf("store holds %d entries, want 1", len(be.store))
	}
}
