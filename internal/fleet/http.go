package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dualradio/internal/scenario"
)

// ErrGone tells a worker the coordinator no longer recognizes it — it was
// declared dead, or the coordinator restarted and lost the registry — and
// it must re-register before doing anything else. Served as 410 Gone.
var ErrGone = errors.New("fleet: worker gone; re-register")

var errClosed = errors.New("fleet: coordinator closed")

func workerID(n int) string { return fmt.Sprintf("w%06d", n) }
func leaseIDf(n int) string { return fmt.Sprintf("l%06d", n) }

// The wire protocol. Every request is a small JSON POST; the worker is
// the only client, so bodies are bounded tightly.
const maxRPCBytes = 8 << 20 // a complete Result with per-trial payloads

type registerRequest struct {
	Name  string `json:"name"`
	Slots int    `json:"slots,omitempty"`
}

type registerResponse struct {
	WorkerID    string `json:"worker_id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	DeadAfterMS int64  `json:"dead_after_ms"`
}

type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

type leaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max,omitempty"`
}

type leaseResponse struct {
	Units []scenario.WorkUnit `json:"units"`
}

// completeRequest reports one finished work unit: exactly one of Result
// (the marshaled scenario.Result) or Error is set.
type completeRequest struct {
	WorkerID  string          `json:"worker_id"`
	Lease     string          `json:"lease"`
	Job       string          `json:"job"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Transient bool            `json:"transient,omitempty"`
}

// Mount registers the coordinator's endpoints on mux:
//
//	POST /v1/fleet/register   admit a worker → id + heartbeat contract
//	POST /v1/fleet/heartbeat  refresh liveness (410 = re-register)
//	POST /v1/fleet/lease      pull leased work units (410 = re-register)
//	POST /v1/fleet/complete   report a unit's result or failure
//	GET  /v1/fleet            fleet view: workers, leases, counters
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/register", c.handleRegister)
	mux.HandleFunc("POST /v1/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/fleet/lease", c.handleLease)
	mux.HandleFunc("POST /v1/fleet/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/fleet", c.handleView)
}

func rpcError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ErrGone) || errors.Is(err, errClosed) {
		status = http.StatusGone
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func rpcJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeRPC(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRPCBytes))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		rpcError(w, fmt.Errorf("fleet: bad request body: %w", err))
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	c.m.rpc(req.Name, "register")
	id, err := c.Register(req.Name, req.Slots)
	if err != nil {
		rpcError(w, err)
		return
	}
	rpcJSON(w, registerResponse{
		WorkerID:    id,
		HeartbeatMS: c.cfg.Heartbeat.Milliseconds(),
		DeadAfterMS: c.cfg.DeadAfter.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	c.m.rpc(c.workerName(req.WorkerID), "heartbeat")
	if err := c.Heartbeat(req.WorkerID); err != nil {
		rpcError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	c.m.rpc(c.workerName(req.WorkerID), "lease")
	units, err := c.Lease(req.WorkerID, req.Max)
	if err != nil {
		rpcError(w, err)
		return
	}
	if units == nil {
		units = []scenario.WorkUnit{}
	}
	rpcJSON(w, leaseResponse{Units: units})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	c.m.rpc(c.workerName(req.WorkerID), "complete")
	if req.Job == "" || (req.Result == nil && req.Error == "") {
		rpcError(w, errors.New("fleet: completion needs a job and a result or error"))
		return
	}
	if err := c.Complete(req.WorkerID, req.Lease, req.Job, req.Result, req.Error, req.Transient); err != nil {
		rpcError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleView(w http.ResponseWriter, r *http.Request) {
	rpcJSON(w, c.Snapshot())
}
