// Package fleet distributes a radiod's job queue across remote worker
// processes: workers register with the coordinator over HTTP, send
// periodic heartbeats, pull leased work units, and report results; the
// coordinator tracks which worker holds which lease and — the robustness
// core — declares a worker dead once its heartbeats stop, expires its
// leases, and returns the in-flight jobs to the queue for survivors (or
// the local worker pool) to pick up.
//
// The design leans on two properties the rest of the service already
// guarantees. Execution is deterministic in the canonical spec, so a job
// produces the same Result no matter which node runs it or how many times
// it is re-dispatched. And the result store is content-addressed and
// write-once, so duplicate completions — a "dead" worker that was merely
// partitioned and reports late, a duplicated RPC — merge byte-exactly
// instead of conflicting. Re-dispatch therefore only ever costs wasted
// work, never correctness, and a sweep's final report is byte-identical
// whether it ran on 0, 1, or N workers with mid-sweep kills.
//
// Crash safety: lease grants, re-dispatches, and worker lifecycle
// transitions are journaled (through the Backend) as observability
// records. Replay deliberately ignores them — after a coordinator crash
// every pre-crash lease is void because the lease table died with the
// process, so replay re-admits the leased jobs as queued (their accept
// records are the source of truth) and the assignment is rebuilt from
// scratch, which is trivially consistent. Late completions against void
// leases are adopted by job id and deduplicated by the store.
package fleet

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dualradio/internal/scenario"
)

// Journal record ops for fleet transitions. They are written through
// Backend and ignored by crash replay (see the package comment); their
// value is forensic: the journal shows exactly which worker held which
// job and why it moved.
const (
	// OpWorkerLive records a worker registration.
	OpWorkerLive = "worker-live"
	// OpWorkerDead records a worker declared dead after missed heartbeats.
	OpWorkerDead = "worker-dead"
	// OpLease records a work-unit grant to a worker.
	OpLease = "lease"
	// OpRedispatch records a leased job returned to the queue.
	OpRedispatch = "redispatch"
)

// Record is one fleet journal line.
type Record struct {
	Op     string `json:"op"`
	Worker string `json:"worker,omitempty"`
	Name   string `json:"name,omitempty"`
	Job    string `json:"job,omitempty"`
	Lease  string `json:"lease,omitempty"`
	Reason string `json:"reason,omitempty"`
	// TS is the wallclock append time, stamped by the journal writer for
	// forensics and ignored by replay.
	TS time.Time `json:"ts"`
}

// Backend is the coordinator's view of the job queue — implemented by the
// server, faked in tests. Its methods are called with no coordinator lock
// held, so implementations may take their own locks freely.
type Backend interface {
	// Next leases the next runnable job to worker under the given lease
	// id, returning its serialized work unit, or nil when no work is
	// available. Implementations journal the grant.
	Next(worker, lease string) *scenario.WorkUnit
	// Complete finishes a job with a worker's marshaled scenario.Result.
	// It must be idempotent (late and duplicate deliveries no-op) and must
	// accept results whose lease has expired — a re-dispatched job's first
	// result to arrive wins, whoever ran it.
	Complete(job string, result []byte) error
	// Fail reports a remote execution failure; transient failures may be
	// retried by the backend's own policy.
	Fail(job, msg string, transient bool)
	// Requeue returns a leased job to the queue after its worker died, its
	// lease expired, or the coordinator shut down. It reports whether the
	// job was actually requeued (false when the job already completed or
	// moved on — the lease id scopes the request to this grant).
	// Implementations journal successful re-dispatches.
	Requeue(job, lease, worker, reason string) bool
	// WorkerEvent journals a worker lifecycle transition (OpWorkerLive or
	// OpWorkerDead).
	WorkerEvent(op, worker, name string)
}

// Config tunes the coordinator's failure detector.
type Config struct {
	// Heartbeat is the interval workers are told to beat at (default 2s).
	Heartbeat time.Duration
	// DeadAfter declares a worker dead after this much heartbeat silence
	// (default 3×Heartbeat). Dead workers' leases are re-dispatched; a
	// dead worker that comes back must re-register.
	DeadAfter time.Duration
	// LeaseTTL is the absolute cap on one lease's lifetime regardless of
	// heartbeats — a safety net against a live worker wedged on one job
	// (default 10m; 0 disables).
	LeaseTTL time.Duration
	// MaxSlots caps the concurrent leases any single worker may hold,
	// whatever it asks for (default 64).
	MaxSlots int
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.Heartbeat
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 10 * time.Minute
	} else if c.LeaseTTL < 0 {
		c.LeaseTTL = 0
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = 64
	}
	return c
}

type workerState struct {
	id       string
	name     string
	slots    int
	live     bool
	lastBeat time.Time
	leases   map[string]*lease
}

type lease struct {
	id      string
	job     string
	worker  string
	granted time.Time
}

// Coordinator tracks the worker fleet and its leases. Construct with New,
// start the failure detector with Start, stop with Close. A coordinator
// with no registered workers is inert — the embedding server behaves
// exactly as if the fleet layer did not exist.
type Coordinator struct {
	cfg Config
	be  Backend
	now func() time.Time // injectable clock for tests
	m   *instruments     // nil until Instrument; set before any traffic

	stopReaper context.CancelFunc
	reaperDone chan struct{}

	mu        sync.Mutex
	workers   map[string]*workerState
	order     []string // registration order, for stable views
	leases    map[string]*lease
	nextW     int
	nextL     int
	closed    bool
	closeOnce sync.Once

	granted      atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	redispatched atomic.Int64
	expired      atomic.Int64
	adopted      atomic.Int64
	deadWorkers  atomic.Int64
}

// New builds a coordinator over the backend. Call Start to arm the
// heartbeat failure detector.
func New(be Backend, cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		be:      be,
		now:     time.Now, //detvet:wallclock injectable liveness clock; heartbeat ages never touch results or hashes
		workers: make(map[string]*workerState),
		leases:  make(map[string]*lease),
	}
}

// Start launches the reaper that expires dead workers and overripe leases.
// It runs until ctx is cancelled or Close is called.
func (c *Coordinator) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	c.stopReaper = cancel
	c.reaperDone = make(chan struct{})
	interval := c.cfg.DeadAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		defer close(c.reaperDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.reap()
			}
		}
	}()
}

// Close stops the reaper and requeues every outstanding lease so the
// embedding server can settle the jobs (cancel on shutdown). Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		if c.stopReaper != nil {
			c.stopReaper()
			<-c.reaperDone
		}
		c.mu.Lock()
		c.closed = true
		var acts []*lease
		for _, l := range c.leases {
			acts = append(acts, l)
		}
		c.leases = make(map[string]*lease)
		for _, w := range c.workers {
			w.leases = make(map[string]*lease)
		}
		c.mu.Unlock()
		// Requeue in lease-id order: the map walk above is randomized, and
		// the requeue order decides both journal record order and the queue
		// order jobs settle in.
		sort.Slice(acts, func(i, j int) bool { return acts[i].id < acts[j].id })
		for _, l := range acts {
			c.be.Requeue(l.job, l.id, l.worker, "coordinator shutdown")
		}
	})
}

// Register admits a worker and returns its id. slots bounds its concurrent
// leases (values < 1 mean 1; capped at MaxSlots).
func (c *Coordinator) Register(name string, slots int) (string, error) {
	if slots < 1 {
		slots = 1
	}
	if slots > c.cfg.MaxSlots {
		slots = c.cfg.MaxSlots
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", errClosed
	}
	c.nextW++
	w := &workerState{
		id:       workerID(c.nextW),
		name:     name,
		slots:    slots,
		live:     true,
		lastBeat: c.now(),
		leases:   make(map[string]*lease),
	}
	c.workers[w.id] = w
	c.order = append(c.order, w.id)
	c.mu.Unlock()
	c.be.WorkerEvent(OpWorkerLive, w.id, name)
	return w.id, nil
}

// Heartbeat refreshes a worker's liveness. ErrGone means the coordinator
// no longer recognizes the worker (it was declared dead, or the
// coordinator restarted) and the worker must re-register.
func (c *Coordinator) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok || !w.live || c.closed {
		return ErrGone
	}
	w.lastBeat = c.now()
	return nil
}

// Lease grants up to max work units to the worker, bounded by its free
// slots. An empty grant means the queue had nothing runnable. ErrGone
// follows the same re-register contract as Heartbeat.
func (c *Coordinator) Lease(workerID string, max int) ([]scenario.WorkUnit, error) {
	if max < 1 {
		max = 1
	}
	var units []scenario.WorkUnit
	for len(units) < max {
		c.mu.Lock()
		w, ok := c.workers[workerID]
		if !ok || !w.live || c.closed {
			c.mu.Unlock()
			// The worker died (or the coordinator is closing) mid-grant:
			// hand everything already pulled straight back.
			name := c.workerName(workerID)
			for _, u := range units {
				if c.be.Requeue(u.Job, u.Lease, workerID, "worker gone during grant") {
					c.redispatched.Add(1)
					c.m.leaseRedispatched(name)
				}
			}
			return nil, ErrGone
		}
		if len(w.leases) >= w.slots {
			c.mu.Unlock()
			break
		}
		w.lastBeat = c.now() // pulling work proves liveness
		c.nextL++
		leaseID := leaseIDf(c.nextL)
		c.mu.Unlock()

		// Backend calls happen outside c.mu (they take the server's own
		// locks); liveness is re-checked before the lease is recorded.
		unit := c.be.Next(workerID, leaseID)
		if unit == nil {
			break
		}
		c.mu.Lock()
		if !w.live || c.closed {
			c.mu.Unlock()
			if c.be.Requeue(unit.Job, leaseID, workerID, "worker gone during grant") {
				c.redispatched.Add(1)
				c.m.leaseRedispatched(w.name)
			}
			continue
		}
		l := &lease{id: leaseID, job: unit.Job, worker: workerID, granted: c.now()}
		w.leases[leaseID] = l
		c.leases[leaseID] = l
		c.mu.Unlock()
		c.granted.Add(1)
		c.m.leaseGranted(w.name)
		units = append(units, *unit)
	}
	return units, nil
}

// Complete settles a worker's report for one leased job. A result payload
// is always applied — even when the lease is unknown (expired, or granted
// by a pre-crash coordinator), because a deterministic job's result is
// valid whoever produced it; the store's write-once semantics deduplicate
// the copies. An error report is only honored from the current lease
// holder: a stale worker's failure says nothing about the re-dispatched
// run now in flight.
func (c *Coordinator) Complete(workerID, leaseID, job string, result []byte, errMsg string, transient bool) error {
	c.mu.Lock()
	if w, ok := c.workers[workerID]; ok && w.live {
		w.lastBeat = c.now()
	}
	current := false
	if l, ok := c.leases[leaseID]; ok && l.job == job {
		current = true
		delete(c.leases, leaseID)
		if w, ok := c.workers[l.worker]; ok {
			delete(w.leases, leaseID)
		}
	}
	c.mu.Unlock()

	switch {
	case result != nil:
		if !current {
			c.adopted.Add(1)
		}
		if err := c.be.Complete(job, result); err != nil {
			// The lease was already untracked above; without a requeue an
			// unusable payload would leave the job running forever.
			if current && c.be.Requeue(job, leaseID, workerID, "unusable result: "+err.Error()) {
				c.redispatched.Add(1)
				c.m.leaseRedispatched(c.workerName(workerID))
			}
			return err
		}
		c.completed.Add(1)
		c.m.jobCompleted(c.workerName(workerID))
		return nil
	case current:
		c.failed.Add(1)
		c.m.jobFailed(c.workerName(workerID))
		c.be.Fail(job, errMsg, transient)
		return nil
	default:
		return nil // stale failure report: the job has moved on
	}
}

// reap runs one failure-detector pass: workers past DeadAfter silence are
// declared dead and their leases re-dispatched; leases past LeaseTTL are
// expired regardless of worker liveness.
func (c *Coordinator) reap() {
	now := c.now()
	type action struct {
		l      *lease
		reason string
	}
	var acts []action
	var dead []*workerState
	c.mu.Lock()
	for _, id := range c.order {
		w := c.workers[id]
		if !w.live || now.Sub(w.lastBeat) <= c.cfg.DeadAfter {
			continue
		}
		w.live = false
		dead = append(dead, w)
		for lid, l := range w.leases {
			delete(c.leases, lid)
			delete(w.leases, lid)
			acts = append(acts, action{l, "worker " + w.name + " missed heartbeats"})
		}
	}
	if c.cfg.LeaseTTL > 0 {
		for lid, l := range c.leases {
			if now.Sub(l.granted) <= c.cfg.LeaseTTL {
				continue
			}
			delete(c.leases, lid)
			if w, ok := c.workers[l.worker]; ok {
				delete(w.leases, lid)
			}
			c.expired.Add(1)
			acts = append(acts, action{l, "lease TTL expired"})
		}
	}
	c.mu.Unlock()
	for _, w := range dead {
		c.deadWorkers.Add(1)
		c.be.WorkerEvent(OpWorkerDead, w.id, w.name)
	}
	// acts was collected from two map walks (per-worker leases, then
	// TTL-expired coordinator leases); sort so redispatch journal records
	// and requeue order are stable for identical failure histories.
	sort.Slice(acts, func(i, j int) bool { return acts[i].l.id < acts[j].l.id })
	for _, a := range acts {
		if c.be.Requeue(a.l.job, a.l.id, a.l.worker, a.reason) {
			c.redispatched.Add(1)
			c.m.leaseRedispatched(c.workerName(a.l.worker))
		}
	}
}

// Counters is the coordinator's cumulative gauge set, exposed via
// /healthz, /metrics, and GET /v1/fleet.
type Counters struct {
	WorkersLive   int   `json:"workers_live"`
	WorkersDead   int64 `json:"workers_dead"`
	LeasesActive  int   `json:"leases_active"`
	LeasesGranted int64 `json:"leases_granted"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Redispatched  int64 `json:"redispatched"`
	LeasesExpired int64 `json:"leases_expired"`
	Adopted       int64 `json:"adopted"`
}

// WorkerView is one worker row of the fleet view.
type WorkerView struct {
	ID           string   `json:"id"`
	Name         string   `json:"name"`
	Live         bool     `json:"live"`
	ActiveLeases int      `json:"active_leases"`
	Jobs         []string `json:"jobs,omitempty"`
}

// View is the GET /v1/fleet response.
type View struct {
	Workers  []WorkerView `json:"workers"`
	Counters Counters     `json:"counters"`
}

// Snapshot returns the current fleet view.
func (c *Coordinator) Snapshot() View {
	c.mu.Lock()
	v := View{Workers: make([]WorkerView, 0, len(c.order))}
	active := 0
	for _, id := range c.order {
		w := c.workers[id]
		wv := WorkerView{ID: w.id, Name: w.name, Live: w.live, ActiveLeases: len(w.leases)}
		for _, l := range w.leases {
			wv.Jobs = append(wv.Jobs, l.job)
		}
		if w.live {
			v.Counters.WorkersLive++
			active += len(w.leases)
		}
		v.Workers = append(v.Workers, wv)
	}
	v.Counters.LeasesActive = active
	c.mu.Unlock()
	v.Counters.WorkersDead = c.deadWorkers.Load()
	v.Counters.LeasesGranted = c.granted.Load()
	v.Counters.Completed = c.completed.Load()
	v.Counters.Failed = c.failed.Load()
	v.Counters.Redispatched = c.redispatched.Load()
	v.Counters.LeasesExpired = c.expired.Load()
	v.Counters.Adopted = c.adopted.Load()
	return v
}

// HeartbeatInterval returns the cadence workers are told to beat at.
func (c *Coordinator) HeartbeatInterval() time.Duration { return c.cfg.Heartbeat }

// DeadAfter returns the silence threshold after which a worker is dead.
func (c *Coordinator) DeadAfter() time.Duration { return c.cfg.DeadAfter }
