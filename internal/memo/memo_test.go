package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU[int, *int](2)
	var builds atomic.Int32
	get := func(k int) *int {
		v, err := c.Get(k, func() (*int, error) {
			builds.Add(1)
			x := k * 10
			return &x, nil
		})
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		return v
	}
	a := get(1)
	get(2)
	if get(1) != a {
		t.Fatalf("key 1 rebuilt while within capacity")
	}
	// 2 is now the coldest entry; inserting 3 must evict it, not 1.
	get(3)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if get(1) != a {
		t.Fatalf("hot key 1 was evicted")
	}
	if get(2) == nil {
		t.Fatalf("Get(2) after eviction returned nil")
	}
	// Builds: 1, 2, 3, then 2 again after its eviction.
	if n := builds.Load(); n != 4 {
		t.Fatalf("build ran %d times, want 4", n)
	}
}

func TestLRUCachesErrorsUntilEvicted(t *testing.T) {
	c := NewLRU[string, *int](1)
	var builds atomic.Int32
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.Get("k", func() (*int, error) {
			builds.Add(1)
			return nil, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("Get err = %v, want boom", err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failed build ran %d times, want 1", n)
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatalf("Peek returned ok for a memoized error")
	}
}

func TestLRUPeekAndAdd(t *testing.T) {
	c := NewLRU[string, *int](2)
	if _, ok := c.Peek("absent"); ok {
		t.Fatalf("Peek hit an absent key")
	}
	x := 7
	c.Add("a", &x)
	if v, ok := c.Peek("a"); !ok || v != &x {
		t.Fatalf("Peek(a) = (%v, %v), want (&x, true)", v, ok)
	}
	// Get must not rebuild an Added entry.
	v, err := c.Get("a", func() (*int, error) {
		t.Fatalf("build ran for an Added key")
		return nil, nil
	})
	if err != nil || v != &x {
		t.Fatalf("Get(a) = (%v, %v), want (&x, nil)", v, err)
	}
	// Re-Adding keeps the resident value (first wins).
	y := 8
	c.Add("a", &y)
	if v, _ := c.Peek("a"); v != &x {
		t.Fatalf("re-Add replaced the resident value")
	}
	// Peek refreshes recency: after peeking "a", adding two more evicts "b".
	c.Add("b", &y)
	c.Peek("a")
	c.Add("c", &y)
	if _, ok := c.Peek("b"); ok {
		t.Fatalf("cold key b survived eviction")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatalf("peeked key a was evicted")
	}
}

func TestLRUSingleflightUnderConcurrency(t *testing.T) {
	c := NewLRU[int, *int](8)
	var builds atomic.Int32
	const goroutines = 32
	ptrs := make([]*int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Get(7, func() (*int, error) {
				builds.Add(1)
				x := 42
				return &x, nil
			})
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			ptrs[g] = v
		}(g)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times under concurrency, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if ptrs[g] != ptrs[0] {
			t.Fatalf("goroutine %d saw a different pointer", g)
		}
	}
}

func TestLRUPinsBuildingEntries(t *testing.T) {
	c := NewLRU[int, *int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan *int)
	go func() {
		v, _ := c.Get(1, func() (*int, error) {
			close(started)
			<-release
			x := 1
			return &x, nil
		})
		done <- v
	}()
	<-started
	// Capacity 1 with key 1 still building: inserting key 2 may not evict it.
	if _, err := c.Get(2, func() (*int, error) { x := 2; return &x, nil }); err != nil {
		t.Fatalf("Get(2): %v", err)
	}
	close(release)
	first := <-done
	// Key 1 finished building while pinned; it must still be resident.
	v, err := c.Get(1, func() (*int, error) {
		t.Fatalf("pinned entry was evicted and rebuilt")
		return nil, nil
	})
	if err != nil || v != first {
		t.Fatalf("Get(1) = (%v, %v), want the pinned build %v", v, err, first)
	}
}
