package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOncePerKey(t *testing.T) {
	var c Cache[int, *int]
	var builds atomic.Int32
	get := func(k int) *int {
		v, err := c.Get(k, func() (*int, error) {
			builds.Add(1)
			x := k * 10
			return &x, nil
		})
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		return v
	}
	a, b := get(1), get(1)
	if a != b {
		t.Fatalf("Get(1) returned distinct pointers %p, %p", a, b)
	}
	if get(2) == a {
		t.Fatalf("distinct keys share a value")
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("build ran %d times, want 2", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestGetCachesErrors(t *testing.T) {
	var c Cache[string, *int]
	var builds atomic.Int32
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", func() (*int, error) {
			builds.Add(1)
			return nil, boom
		})
		if v != nil || !errors.Is(err, boom) {
			t.Fatalf("Get = (%v, %v), want (nil, boom)", v, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failed build ran %d times, want 1", n)
	}
}

func TestGetSingleflightUnderConcurrency(t *testing.T) {
	var c Cache[int, *int]
	var builds atomic.Int32
	const goroutines = 32
	ptrs := make([]*int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Get(7, func() (*int, error) {
				builds.Add(1)
				x := 42
				return &x, nil
			})
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			ptrs[g] = v
		}(g)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times under concurrency, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if ptrs[g] != ptrs[0] {
			t.Fatalf("goroutine %d saw a different pointer", g)
		}
	}
}
