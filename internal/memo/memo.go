// Package memo provides a small concurrency-safe, singleflight memoization
// cache. It backs the setup path's shared immutable state: the experiment
// layer's (network, assignment, detector) instances and the core layer's
// per-(n, params) protocol schedule tables. Values are built exactly once
// per key — concurrent getters of the same key block on the single build —
// and are shared by pointer afterwards, so cached values must be immutable.
package memo

import "sync"

// Cache memoizes values by comparable key with singleflight semantics: the
// first Get for a key runs build; concurrent and later Gets for the same key
// return the identical (pointer-equal, for pointer types) value. Errors are
// cached too: a deterministic build that fails once fails the same way for
// every caller, exactly as rebuilding would. The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*entry[V]
}

type entry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Get returns the memoized value for key, building it on first use. build
// runs outside the cache lock, so slow builds of distinct keys proceed in
// parallel; only callers of the same key wait on each other.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*entry[V])
	}
	e := c.m[key]
	if e == nil {
		e = &entry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Len returns the number of keys resident in the cache (built or building).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
