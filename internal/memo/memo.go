// Package memo provides a small concurrency-safe, singleflight, bounded
// memoization cache. It backs the setup path's shared immutable state —
// the experiment layer's (network, assignment, detector) instances and the
// core layer's per-(n, params) protocol schedule tables — and the
// simulation service's per-spec result cache. Values are built exactly
// once per resident key: concurrent getters of the same key block on the
// single build and share the value by pointer afterwards, so cached values
// must be immutable. Capacity is bounded because the service sweeps
// arbitrarily many distinct scenario specs per process; cold entries are
// evicted least-recently-used and deterministically rebuilt on next use.
package memo

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is a bounded memoization cache: singleflight Get semantics plus
// least-recently-used eviction. Once more than cap distinct keys are
// resident, the coldest built entries are dropped and a later Get for
// their key rebuilds from scratch. Entries whose build is still in flight
// are pinned (concurrent getters hold references to them), so the cache
// may transiently exceed its capacity while builds overlap.
type LRU[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key   K
	once  sync.Once
	built atomic.Bool // set after once completes; publishes val/err to Peek
	val   V
	err   error
}

// NewLRU returns an LRU retaining at most capacity entries (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{cap: capacity, ll: list.New(), m: make(map[K]*list.Element)}
}

// Get returns the memoized value for key, building it on first use (or
// again after an eviction) and marking the key most recently used. Like
// Cache.Get, build runs outside the cache lock, concurrent getters of one
// key share a single build, and errors are memoized alongside values.
func (c *LRU[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	el := c.m[key]
	if el != nil {
		c.ll.MoveToFront(el)
	} else {
		el = c.ll.PushFront(&lruEntry[K, V]{key: key})
		c.m[key] = el
		c.evictLocked()
	}
	e := el.Value.(*lruEntry[K, V])
	c.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = build()
		e.built.Store(true)
	})
	return e.val, e.err
}

// Peek returns the memoized value for key without building: ok is false for
// absent keys, entries still building, and memoized errors. A hit marks the
// key most recently used.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[key]
	if el == nil {
		var zero V
		return zero, false
	}
	e := el.Value.(*lruEntry[K, V])
	if !e.built.Load() || e.err != nil {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// Add stores val for key as if a build had produced it, marking the key
// most recently used. If the key is already resident the existing entry
// wins — deterministic builds make the two values interchangeable, and
// keeping the first preserves pointer identity for existing holders.
func (c *LRU[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[key]; el != nil {
		c.ll.MoveToFront(el)
		return
	}
	e := &lruEntry[K, V]{key: key, val: val}
	e.once.Do(func() {}) // consume the once so Get never rebuilds
	e.built.Store(true)
	c.m[key] = c.ll.PushFront(e)
	c.evictLocked()
}

// evictLocked drops least-recently-used built entries until at most cap
// remain, skipping entries still building.
func (c *LRU[K, V]) evictLocked() {
	for el := c.ll.Back(); el != nil && c.ll.Len() > c.cap; {
		prev := el.Prev()
		e := el.Value.(*lruEntry[K, V])
		if e.built.Load() {
			c.ll.Remove(el)
			delete(c.m, e.key)
		}
		el = prev
	}
}

// Len returns the number of keys resident in the cache (built or building).
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the cache's capacity.
func (c *LRU[K, V]) Cap() int { return c.cap }
