// Package verify checks executions against the problem definitions of
// Section 3 of the paper: the Maximal Independent Set conditions
// (termination, independence, maximality) and the Constant-Bounded Connected
// Dominating Set conditions (termination, connectivity, domination,
// constant-bounded). Independence is defined over the reliable graph G;
// maximality, connectivity and domination over the graph H induced by mutual
// link detector membership.
package verify

import (
	"fmt"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// Violation is a single broken condition.
type Violation struct {
	Condition string
	Detail    string
}

// Report collects the violations of one check; an empty report means the
// execution solved the problem.
type Report struct {
	Violations []Violation
}

// OK reports whether no condition was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, and an error summarizing the
// first violations otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	max := len(r.Violations)
	if max > 3 {
		max = 3
	}
	msg := fmt.Sprintf("%d violations:", len(r.Violations))
	for _, v := range r.Violations[:max] {
		msg += fmt.Sprintf(" [%s] %s;", v.Condition, v.Detail)
	}
	return fmt.Errorf("verify: %s", msg)
}

func (r *Report) add(cond, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Condition: cond,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// MIS checks the Section 3 MIS conditions. outputs is indexed by node and
// holds 0, 1, or a negative value for undecided; h is the detector-induced
// graph H used for maximality. Independence is judged over the reliable
// graph G, as the paper defines it.
func MIS(net *dualgraph.Network, h *graph.Graph, outputs []int) *Report {
	return MISOver(net.G(), h, outputs)
}

// MISOver checks the MIS conditions with independence judged over ind and
// maximality over h. The paper's definition uses ind = G; for detectors that
// misclassify reliable links as unreliable (footnote 1), independence can
// only be guaranteed over the mutually retained reliable edges, since a
// process must discard messages from links its detector disavows.
func MISOver(ind, h *graph.Graph, outputs []int) *Report {
	rep := &Report{}
	for v, out := range outputs {
		if out != 0 && out != 1 {
			rep.add("termination", "node %d undecided", v)
		}
	}
	members := memberBits(outputs)
	// Independence fast path: a member with no member neighbor (one
	// word-parallel row scan) needs no per-edge pair search. Only conflicted
	// members fall into the edge walk that names the violating pair.
	indRows := ind.BitrowsIfDense()
	for v, out := range outputs {
		if out != 1 {
			continue
		}
		if indRows != nil && !indRows.IntersectsSet(v, members) {
			continue
		}
		for _, w := range ind.Neighbors(v) {
			if int(w) > v && outputs[w] == 1 {
				rep.add("independence", "neighbors %d and %d both joined", v, w)
			}
		}
	}
	hRows := h.BitrowsIfDense()
	for v, out := range outputs {
		if out != 0 {
			continue
		}
		if !coveredBy(h, hRows, members, outputs, v) {
			rep.add("maximality", "node %d output 0 with no MIS H-neighbor", v)
		}
	}
	return rep
}

// memberBits packs outputs==1 into a vertex bitset for word-parallel scans.
func memberBits(outputs []int) []uint64 {
	set := graph.NewBitset(len(outputs))
	for v, out := range outputs {
		if out == 1 {
			graph.SetBit(set, v)
		}
	}
	return set
}

// coveredBy reports whether v has an h-neighbor with output 1, using the
// packed rows when h is dense enough and the CSR walk otherwise.
func coveredBy(h *graph.Graph, rows *graph.Bitrows, members []uint64, outputs []int, v int) bool {
	if rows != nil {
		return rows.IntersectsSet(v, members)
	}
	for _, w := range h.Neighbors(v) {
		if outputs[w] == 1 {
			return true
		}
	}
	return false
}

// CCDS checks the Section 3 CCDS conditions. degreeBound is the constant δ
// of the constant-bounded condition: no process may have more than
// degreeBound CCDS members among its G' neighbors; pass 0 to skip the check
// and read the realized maximum from the returned report via MaxCCDSDegree.
func CCDS(net *dualgraph.Network, h *graph.Graph, outputs []int, degreeBound int) *Report {
	rep := &Report{}
	for v, out := range outputs {
		if out != 0 && out != 1 {
			rep.add("termination", "node %d undecided", v)
		}
	}
	member := make([]bool, len(outputs))
	count := 0
	for v, out := range outputs {
		if out == 1 {
			member[v] = true
			count++
		}
	}
	if count == 0 {
		rep.add("connectivity", "empty CCDS")
		return rep
	}
	if !h.ConnectedSubset(member) {
		rep.add("connectivity", "CCDS is not connected in H")
	}
	members := memberBits(outputs)
	hRows := h.BitrowsIfDense()
	for v, out := range outputs {
		if out != 0 {
			continue
		}
		if !coveredBy(h, hRows, members, outputs, v) {
			rep.add("domination", "node %d output 0 with no CCDS H-neighbor", v)
		}
	}
	if degreeBound > 0 {
		if got := MaxCCDSDegree(net, outputs); got > degreeBound {
			rep.add("constant-bounded", "a node has %d CCDS G'-neighbors > bound %d", got, degreeBound)
		}
	}
	return rep
}

// MaxCCDSDegree returns the largest number of CCDS members adjacent to any
// single node in G' — the quantity the constant-bounded condition limits.
func MaxCCDSDegree(net *dualgraph.Network, outputs []int) int {
	maxDeg := 0
	gp := net.GPrime()
	if rows := gp.BitrowsIfDense(); rows != nil {
		members := memberBits(outputs)
		for v := 0; v < net.N(); v++ {
			if c := rows.CountSet(v, members); c > maxDeg {
				maxDeg = c
			}
		}
		return maxDeg
	}
	for v := 0; v < net.N(); v++ {
		c := 0
		for _, w := range gp.Neighbors(v) {
			if outputs[w] == 1 {
				c++
			}
		}
		if c > maxDeg {
			maxDeg = c
		}
	}
	return maxDeg
}

// CCDSSize returns the number of CCDS members.
func CCDSSize(outputs []int) int {
	c := 0
	for _, out := range outputs {
		if out == 1 {
			c++
		}
	}
	return c
}

// MISDensity returns the maximum number of MIS members within Euclidean
// distance r of any node — Corollary 4.7 bounds this by I_r.
func MISDensity(net *dualgraph.Network, outputs []int, r float64) int {
	maxCount := 0
	for v := 0; v < net.N(); v++ {
		c := 0
		for w := 0; w < net.N(); w++ {
			if outputs[w] == 1 && net.Coord(v).Dist(net.Coord(w)) <= r {
				c++
			}
		}
		if c > maxCount {
			maxCount = c
		}
	}
	return maxCount
}

// OverlayBound returns I_r for the paper's hexagonal overlay, the analytical
// counterpart of MISDensity.
func OverlayBound(r float64) int {
	return geom.NewOverlay().IntersectCount(r)
}

// MISPairwiseMinDist returns the smallest distance between two distinct MIS
// members, or -1 when fewer than two joined. Independence over the unit-disk
// portion of G implies this exceeds 1 whenever the embedding forces edges at
// distance <= 1.
func MISPairwiseMinDist(net *dualgraph.Network, outputs []int) float64 {
	best := -1.0
	for u := 0; u < net.N(); u++ {
		if outputs[u] != 1 {
			continue
		}
		for v := u + 1; v < net.N(); v++ {
			if outputs[v] != 1 {
				continue
			}
			d := net.Coord(u).Dist(net.Coord(v))
			if best < 0 || d < best {
				best = d
			}
		}
	}
	return best
}
