package verify_test

import (
	"testing"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
	"dualradio/internal/verify"
)

// pathNet builds a 5-node unit line (G = G' = path).
func pathNet(t *testing.T) *dualgraph.Network {
	t.Helper()
	n := 5
	b := graph.NewBuilder(n)
	coords := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		coords[i] = geom.Point{X: float64(i)}
	}
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	return dualgraph.New(g, g, coords, 2)
}

func TestMISAcceptsValid(t *testing.T) {
	net := pathNet(t)
	// 1-0-1-0-1 is a valid MIS on a path of 5.
	rep := verify.MIS(net, net.G(), []int{1, 0, 1, 0, 1})
	if !rep.OK() {
		t.Errorf("valid MIS rejected: %v", rep.Err())
	}
	if rep.Err() != nil {
		t.Error("clean report should have nil Err")
	}
}

func TestMISDetectsUndecided(t *testing.T) {
	net := pathNet(t)
	rep := verify.MIS(net, net.G(), []int{1, 0, -1, 0, 1})
	if rep.OK() {
		t.Fatal("undecided output accepted")
	}
	if rep.Violations[0].Condition != "termination" {
		t.Errorf("condition = %s", rep.Violations[0].Condition)
	}
}

func TestMISDetectsIndependenceViolation(t *testing.T) {
	net := pathNet(t)
	rep := verify.MIS(net, net.G(), []int{1, 1, 0, 0, 1})
	found := false
	for _, v := range rep.Violations {
		if v.Condition == "independence" {
			found = true
		}
	}
	if !found {
		t.Error("adjacent members not detected")
	}
}

func TestMISDetectsMaximalityViolation(t *testing.T) {
	net := pathNet(t)
	// Node 2 outputs 0 with no member neighbor.
	rep := verify.MIS(net, net.G(), []int{1, 0, 0, 0, 1})
	found := false
	for _, v := range rep.Violations {
		if v.Condition == "maximality" {
			found = true
		}
	}
	if !found {
		t.Error("uncovered zero not detected")
	}
}

func TestCCDSAcceptsValid(t *testing.T) {
	net := pathNet(t)
	// Middle three nodes: connected, dominating, small degree.
	rep := verify.CCDS(net, net.G(), []int{0, 1, 1, 1, 0}, 3)
	if !rep.OK() {
		t.Errorf("valid CCDS rejected: %v", rep.Err())
	}
}

func TestCCDSDetectsDisconnected(t *testing.T) {
	net := pathNet(t)
	rep := verify.CCDS(net, net.G(), []int{1, 0, 1, 0, 1}, 0)
	found := false
	for _, v := range rep.Violations {
		if v.Condition == "connectivity" {
			found = true
		}
	}
	if !found {
		t.Error("disconnected CCDS not detected")
	}
}

func TestCCDSDetectsEmpty(t *testing.T) {
	net := pathNet(t)
	rep := verify.CCDS(net, net.G(), []int{0, 0, 0, 0, 0}, 0)
	if rep.OK() {
		t.Error("empty CCDS accepted")
	}
}

func TestCCDSDetectsDominationViolation(t *testing.T) {
	net := pathNet(t)
	// Nodes 0,1 in the set: node 3 and 4... node 4's only neighbor is 3
	// (not in set) -> domination violated.
	rep := verify.CCDS(net, net.G(), []int{1, 1, 0, 0, 0}, 0)
	found := false
	for _, v := range rep.Violations {
		if v.Condition == "domination" {
			found = true
		}
	}
	if !found {
		t.Error("undominated node not detected")
	}
}

func TestCCDSDetectsDegreeViolation(t *testing.T) {
	net := pathNet(t)
	rep := verify.CCDS(net, net.G(), []int{1, 1, 1, 1, 1}, 1)
	found := false
	for _, v := range rep.Violations {
		if v.Condition == "constant-bounded" {
			found = true
		}
	}
	if !found {
		t.Error("degree bound violation not detected")
	}
	if got := verify.MaxCCDSDegree(net, []int{1, 1, 1, 1, 1}); got != 2 {
		t.Errorf("max CCDS degree on full path = %d, want 2", got)
	}
}

func TestCCDSSize(t *testing.T) {
	if got := verify.CCDSSize([]int{1, 0, 1, -1, 1}); got != 3 {
		t.Errorf("size = %d", got)
	}
}

func TestMISDensityAndOverlayBound(t *testing.T) {
	net := pathNet(t)
	outputs := []int{1, 0, 1, 0, 1}
	// Within distance 2 of node 2: members at 0, 2, 4.
	if got := verify.MISDensity(net, outputs, 2); got != 3 {
		t.Errorf("density = %d", got)
	}
	if got := verify.MISDensity(net, outputs, 0.5); got != 1 {
		t.Errorf("density r=0.5 = %d", got)
	}
	if b1, b3 := verify.OverlayBound(1), verify.OverlayBound(3); b1 >= b3 {
		t.Errorf("overlay bound should grow: I_1=%d I_3=%d", b1, b3)
	}
}

func TestMISPairwiseMinDist(t *testing.T) {
	net := pathNet(t)
	if got := verify.MISPairwiseMinDist(net, []int{1, 0, 1, 0, 0}); got != 2 {
		t.Errorf("min dist = %v", got)
	}
	if got := verify.MISPairwiseMinDist(net, []int{1, 0, 0, 0, 0}); got != -1 {
		t.Errorf("single member min dist = %v", got)
	}
}

func TestReportErrTruncates(t *testing.T) {
	net := pathNet(t)
	rep := verify.CCDS(net, net.G(), []int{-1, -1, -1, -1, -1}, 0)
	if rep.Err() == nil {
		t.Fatal("expected violations")
	}
	if len(rep.Violations) < 5 {
		t.Errorf("expected one violation per node, got %d", len(rep.Violations))
	}
}
