package expr_test

import (
	"testing"

	"dualradio/internal/expr"
)

// TestAllExperimentsRun executes the complete reproduction suite at quick
// scale: every experiment must complete without error and carry a table and
// at least one metric. This is the end-to-end guard behind cmd/experiments.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	results, err := expr.All(expr.QuickConfig())
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	if len(results) < 15 {
		t.Fatalf("only %d experiments ran", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: no metrics", r.ID)
		}
		if r.Claim == "" {
			t.Errorf("%s: missing claim", r.ID)
		}
	}
}

func TestConfigs(t *testing.T) {
	def := expr.DefaultConfig()
	if def.Quick || def.Seeds < 3 {
		t.Errorf("default config = %+v", def)
	}
	q := expr.QuickConfig()
	if !q.Quick || q.Seeds < 1 {
		t.Errorf("quick config = %+v", q)
	}
}
