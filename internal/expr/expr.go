// Package expr defines the reproduction experiments E1–E15 that map the
// paper's theorems to measurable quantities (see DESIGN.md for the index).
// Each experiment returns a Result with a plain-text table — the analogue of
// the tables/figures an empirical paper would print — plus headline metrics
// that the test suite asserts and EXPERIMENTS.md records.
package expr

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Seeds is the number of independent runs per parameter point.
	Seeds int
	// Quick trims the parameter sweeps for fast regression runs.
	Quick bool
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Seeds: 5} }

// QuickConfig returns a configuration suitable for unit tests and smoke
// benchmarks.
func QuickConfig() Config { return Config{Seeds: 3, Quick: true} }

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Claim restates the paper claim under test.
	Claim string
	// Table is the regenerated table.
	Table *stats.Table
	// Metrics holds headline numbers for assertions and EXPERIMENTS.md.
	Metrics map[string]float64
}

func newResult(id, claim string, cols ...string) *Result {
	return &Result{
		ID:      id,
		Claim:   claim,
		Table:   &stats.Table{Title: id + ": " + claim, Columns: cols},
		Metrics: make(map[string]float64),
	}
}

// scenarioSpec parameterizes scenario construction.
type scenarioSpec struct {
	n         int
	targetDeg float64
	grayProb  float64
	tau       int
	b         int
	seed      uint64
	params    core.Params
}

// buildScenario generates a network, assignment, detector and adversary.
func buildScenario(sp scenarioSpec) (*harness.Scenario, error) {
	rng := rand.New(rand.NewPCG(sp.seed, 0x5EED))
	net, err := gen.RandomGeometric(gen.GeometricConfig{
		N:            sp.n,
		TargetDegree: sp.targetDeg,
		GrayProb:     sp.grayProb,
	}, rng)
	if err != nil {
		return nil, err
	}
	asg := dualgraph.RandomAssignment(sp.n, rng)
	var det *detector.Detector
	if sp.tau == 0 {
		det = detector.Complete(net, asg)
	} else {
		det = detector.TauComplete(net, asg, sp.tau, detector.PlaceGrayFirst, rng)
	}
	params := sp.params
	if params == (core.Params{}) {
		params = core.DefaultParams()
	}
	return &harness.Scenario{
		Net:    net,
		Asg:    asg,
		Det:    det,
		Adv:    adversary.NewCollisionSeeking(net),
		Params: params,
		Seed:   sp.seed,
		B:      sp.b,
	}, nil
}

// log2f returns log₂ n as a float.
func log2f(n int) float64 { return math.Log2(float64(n)) }

func fmtInt(x int) string { return fmt.Sprintf("%d", x) }
