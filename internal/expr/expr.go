// Package expr defines the reproduction experiments E1–E15 that map the
// paper's theorems to measurable quantities (see DESIGN.md for the index).
// Each experiment returns a Result with a plain-text table — the analogue of
// the tables/figures an empirical paper would print — plus headline metrics
// that the test suite asserts and EXPERIMENTS.md records.
package expr

import (
	"fmt"
	"math"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/harness"
	"dualradio/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Seeds is the number of independent runs per parameter point.
	Seeds int
	// Quick trims the parameter sweeps for fast regression runs.
	Quick bool
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Seeds: 5} }

// QuickConfig returns a configuration suitable for unit tests and smoke
// benchmarks.
func QuickConfig() Config { return Config{Seeds: 3, Quick: true} }

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Claim restates the paper claim under test.
	Claim string
	// Table is the regenerated table.
	Table *stats.Table
	// Metrics holds headline numbers for assertions and EXPERIMENTS.md.
	Metrics map[string]float64
}

func newResult(id, claim string, cols ...string) *Result {
	return &Result{
		ID:      id,
		Claim:   claim,
		Table:   &stats.Table{Title: id + ": " + claim, Columns: cols},
		Metrics: make(map[string]float64),
	}
}

// scenarioSpec parameterizes scenario construction.
type scenarioSpec struct {
	n         int
	targetDeg float64
	grayProb  float64
	tau       int
	b         int
	seed      uint64
	params    core.Params
}

// instanceSpec projects out the topology-determining subset of the spec —
// the harness instance cache's key. b and params only affect execution, so
// sweeps over them (E3's b sweep, parameter ablations) reuse one instance.
func (sp scenarioSpec) instanceSpec() harness.InstanceSpec {
	return harness.InstanceSpec{
		N:            sp.n,
		TargetDegree: sp.targetDeg,
		GrayProb:     sp.grayProb,
		Tau:          sp.tau,
		Seed:         sp.seed,
	}
}

// buildScenario assembles a trial scenario around the memoized immutable
// instance (network, assignment, detector): only the mutable per-trial
// pieces — the collision-seeking adversary and the scenario struct itself —
// are constructed fresh.
func buildScenario(sp scenarioSpec) (*harness.Scenario, error) {
	inst, err := harness.SharedInstance(sp.instanceSpec())
	if err != nil {
		return nil, err
	}
	params := sp.params
	if params == (core.Params{}) {
		params = core.DefaultParams()
	}
	return &harness.Scenario{
		Net:    inst.Net,
		Asg:    inst.Asg,
		Det:    inst.Det,
		Adv:    adversary.NewCollisionSeeking(inst.Net),
		Params: params,
		Seed:   sp.seed,
		B:      sp.b,
		Shared: inst,
	}, nil
}

// log2f returns log₂ n as a float.
func log2f(n int) float64 { return math.Log2(float64(n)) }

func fmtInt(x int) string { return fmt.Sprintf("%d", x) }
