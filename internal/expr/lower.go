package expr

import (
	"math/rand/v2"

	"dualradio/internal/core"
	"dualradio/internal/harness"
	"dualradio/internal/hitting"
)

// E5LowerBound reproduces the Theorem 7.1 separation on the two-clique
// bridge network: with 1-complete detectors and the clique-isolating
// adversary, the first cross-bridge information transfer — the hitting
// event — takes Ω(Δ) = Ω(β) rounds; with 0-complete detectors the
// banned-list algorithm's round count stays polylogarithmic in β for
// large b.
func E5LowerBound(cfg Config) (*Result, error) {
	res := newResult("E5", "1-complete detectors force Ω(Δ) rounds (Thm 7.1)",
		"β (=Δ)", "τ=1 crossing", "τ=1 rounds", "τ=0 rounds", "τ=1 solved", "τ=0 solved")
	betas := []int{8, 16, 32, 64}
	if cfg.Quick {
		betas = []int{8, 16, 32}
	}
	params := core.DefaultParams()
	type trial struct {
		slow hitting.BridgeResult
		fast hitting.BridgeResult
	}
	outs, err := harness.Trials(len(betas)*cfg.Seeds, func(i int) (trial, error) {
		beta := betas[i/cfg.Seeds]
		seed := i % cfg.Seeds
		slow, err := hitting.RunBridgeCCDS(beta, uint64(seed+1), params, 1<<16)
		if err != nil {
			return trial{}, err
		}
		fast, err := hitting.RunBridgeFastCCDS(beta, uint64(seed+1), params, 1<<16)
		if err != nil {
			return trial{}, err
		}
		return trial{slow: *slow, fast: *fast}, nil
	})
	if err != nil {
		return nil, err
	}
	var betaPts, crossPts, fastPts []float64
	for bi, beta := range betas {
		var crossings, slowRounds, fastRounds []float64
		slowSolved, fastSolved := 0, 0
		for _, t := range outs[bi*cfg.Seeds : (bi+1)*cfg.Seeds] {
			if t.slow.FirstCrossing >= 0 {
				crossings = append(crossings, float64(t.slow.FirstCrossing))
			}
			slowRounds = append(slowRounds, float64(t.slow.Rounds))
			if t.slow.Solved {
				slowSolved++
			}
			fastRounds = append(fastRounds, float64(t.fast.Rounds))
			if t.fast.Solved {
				fastSolved++
			}
		}
		cs := statsOf(crossings)
		res.Table.AddRow(fmtInt(beta), f(cs.Mean), f(statsOf(slowRounds).Mean),
			f(statsOf(fastRounds).Mean), ratio(slowSolved, cfg.Seeds), ratio(fastSolved, cfg.Seeds))
		betaPts = append(betaPts, float64(beta))
		crossPts = append(crossPts, cs.Mean)
		fastPts = append(fastPts, statsOf(fastRounds).Mean)
		res.Metrics["solved_tau1_b"+fmtInt(beta)] = float64(slowSolved) / float64(cfg.Seeds)
		res.Metrics["solved_tau0_b"+fmtInt(beta)] = float64(fastSolved) / float64(cfg.Seeds)
	}
	expCross, r2c := powerLaw(betaPts, crossPts)
	expFast, r2f := powerLaw(betaPts, fastPts)
	res.Metrics["crossing_exponent_vs_beta"] = expCross
	res.Metrics["fast_exponent_vs_beta"] = expFast
	res.Table.AddRow("fit", "crossing ~ β^"+f(expCross), "R2="+f(r2c),
		"τ=0 rounds ~ β^"+f(expFast), "R2="+f(r2f), "")
	return res, nil
}

// E6HittingGame measures the abstract games of Section 7 directly: the
// β-single hitting game requires Θ(β) rounds for both the uniform random
// player and the optimal deterministic sweep, and the Lemma 7.3 reduction
// turns a pair of double-hitting players into a working single-hitting
// player with only a constant-factor loss.
func E6HittingGame(cfg Config) (*Result, error) {
	res := newResult("E6", "β-single hitting needs Ω(β) rounds (Sec 7 games)",
		"β", "random mean", "random/β", "sweep worst", "reduced mean", "reduced ok")
	betas := []int{16, 64, 256}
	if cfg.Quick {
		betas = []int{16, 64}
	}
	trialsPerTarget := 16
	type betaOut struct {
		randRounds  []float64
		sweepWorst  int
		reducedMean float64
		reducedOK   string
	}
	// The RNG is shared across a β's hitting-game trials (they are one
	// sequential experiment), but each β owns an independent stream, so
	// the sweep parallelizes over β.
	outs, err := harness.Trials(len(betas), func(bi int) (betaOut, error) {
		beta := betas[bi]
		rng := rand.New(rand.NewPCG(uint64(beta), 0x6A3E))
		var bo betaOut
		for t := 0; t < trialsPerTarget*cfg.Seeds; t++ {
			target := 1 + rng.IntN(beta)
			p := &hitting.RandomSingle{Beta: beta, Rng: rng}
			r, ok := hitting.PlaySingle(p, target, beta*64)
			if ok {
				bo.randRounds = append(bo.randRounds, float64(r))
			}
		}
		for target := 1; target <= beta; target++ {
			r, _ := hitting.PlaySingle(&hitting.SweepSingle{Beta: beta}, target, beta)
			if r > bo.sweepWorst {
				bo.sweepWorst = r
			}
		}
		// Lemma 7.3 reduction from the offset-sweep double players.
		bo.reducedMean, bo.reducedOK = runReduction(beta, rng)
		return bo, nil
	})
	if err != nil {
		return nil, err
	}
	for bi, beta := range betas {
		bo := outs[bi]
		rs := statsOf(bo.randRounds)
		res.Table.AddRow(fmtInt(beta), f(rs.Mean), f(rs.Mean/float64(beta)),
			fmtInt(bo.sweepWorst), f(bo.reducedMean), bo.reducedOK)
		res.Metrics["random_over_beta_"+fmtInt(beta)] = rs.Mean / float64(beta)
		res.Metrics["sweep_worst_"+fmtInt(beta)] = float64(bo.sweepWorst)
	}
	return res, nil
}

// runReduction exercises BuildReduction for a small β and reports the mean
// rounds of the reduced player over all targets.
func runReduction(beta int, rng *rand.Rand) (float64, string) {
	if beta > 64 {
		// The table construction is quadratic in β; keep it small.
		beta = 64
	}
	newPlayer := func() hitting.DoublePlayer { return &hitting.OffsetDouble{} }
	single, err := hitting.BuildReduction(newPlayer, newPlayer, 2*beta, 2*beta, 3, rng.Uint64())
	if err != nil {
		return 0, "err"
	}
	var rounds []float64
	solved := true
	for target := 1; target <= beta; target++ {
		// Drive the simulated double game toward the value ψ maps to the
		// target.
		r, ok := hitting.PlaySingle(single, target, 4*beta)
		if !ok {
			solved = false
			continue
		}
		rounds = append(rounds, float64(r))
	}
	status := "yes"
	if !solved {
		status = "partial"
	}
	return statsOf(rounds).Mean, status
}
