package expr

import (
	"math"
	"math/rand/v2"

	"dualradio/internal/core"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// E1MISScaling measures the Section 4 MIS round complexity against
// Theorem 4.6's O(log³ n) bound: for each network size the mean
// rounds-until-all-decided is reported alongside rounds/log³n, which should
// be roughly flat, and a power-law fit of rounds against log n whose
// exponent should not exceed 3 by a meaningful margin.
func E1MISScaling(cfg Config) (*Result, error) {
	res := newResult("E1", "MIS solves in O(log^3 n) rounds w.h.p. (Thm 4.6)",
		"n", "runs", "mean rounds", "p90 rounds", "rounds/log^3 n", "valid")
	sizes := []int{64, 128, 256, 512}
	if cfg.Quick {
		sizes = []int{64, 128, 256}
	}
	type trial struct {
		decided int
		valid   bool
	}
	// All (size, seed) pairs are independent trials; the scheduler fans
	// them out and the reduction below walks them in the original loop
	// order, so the table is identical to the sequential sweep.
	outs, err := harness.Trials(len(sizes)*cfg.Seeds, func(i int) (trial, error) {
		n := sizes[i/cfg.Seeds]
		seed := i % cfg.Seeds
		s, err := buildScenario(scenarioSpec{n: n, seed: uint64(seed + 1)})
		if err != nil {
			return trial{}, err
		}
		// E1 consumes only DecidedRound and the outputs, both frozen
		// once every process decides.
		s.StopWhenDecided = true
		out, err := s.RunMIS()
		if err != nil {
			return trial{}, err
		}
		h := s.H()
		return trial{
			decided: out.DecidedRound,
			valid:   verify.MIS(s.Net, h, out.Outputs).OK(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var logNs, rounds []float64
	for si, n := range sizes {
		var sample []float64
		valid := 0
		for _, t := range outs[si*cfg.Seeds : (si+1)*cfg.Seeds] {
			if t.decided > 0 {
				sample = append(sample, float64(t.decided))
			}
			if t.valid {
				valid++
			}
		}
		sum := statsOf(sample)
		l3 := math.Pow(log2f(n), 3)
		res.Table.AddRow(fmtInt(n), fmtInt(cfg.Seeds), f(sum.Mean), f(sum.P90),
			f(sum.Mean/l3), ratio(valid, cfg.Seeds))
		logNs = append(logNs, log2f(n))
		rounds = append(rounds, sum.Mean)
		res.Metrics["valid_"+fmtInt(n)] = float64(valid) / float64(cfg.Seeds)
	}
	exp, r2 := powerLaw(logNs, rounds)
	res.Metrics["exponent_vs_logn"] = exp
	res.Metrics["fit_r2"] = r2
	res.Table.AddRow("fit", "", "", "", "rounds ~ (log n)^"+f(exp), "R2="+f(r2))
	return res, nil
}

// E2MISDensity checks Corollary 4.7: within any distance r there are at most
// I_r MIS processes, where I_r is the hexagonal-overlay intersection bound.
func E2MISDensity(cfg Config) (*Result, error) {
	res := newResult("E2", "at most I_r MIS processes within distance r (Cor 4.7)",
		"r", "max observed", "overlay bound I_r", "within bound")
	n := 256
	if cfg.Quick {
		n = 128
	}
	radii := []float64{1, 2, 3}
	outs, err := harness.Trials(cfg.Seeds, func(seed int) (map[float64]int, error) {
		s, err := buildScenario(scenarioSpec{n: n, seed: uint64(seed + 1)})
		if err != nil {
			return nil, err
		}
		// E2 consumes only the outputs, frozen once all decide.
		s.StopWhenDecided = true
		out, err := s.RunMIS()
		if err != nil {
			return nil, err
		}
		densities := make(map[float64]int, len(radii))
		for _, r := range radii {
			densities[r] = verify.MISDensity(s.Net, out.Outputs, r)
		}
		return densities, nil
	})
	if err != nil {
		return nil, err
	}
	maxSeen := map[float64]int{}
	for _, densities := range outs {
		for _, r := range radii {
			if d := densities[r]; d > maxSeen[r] {
				maxSeen[r] = d
			}
		}
	}
	for _, r := range radii {
		bound := verify.OverlayBound(r)
		ok := "yes"
		if maxSeen[r] > bound {
			ok = "NO"
		}
		res.Table.AddRow(f(r), fmtInt(maxSeen[r]), fmtInt(bound), ok)
		res.Metrics["max_density_r"+f(r)] = float64(maxSeen[r])
		res.Metrics["bound_r"+f(r)] = float64(bound)
	}
	return res, nil
}

// E8AsyncMIS measures the Section 9 asynchronous-start variant in the
// classic radio model (G = G', no topology knowledge): each process must
// output within O(log³ n) local rounds of waking (Theorem 9.4).
func E8AsyncMIS(cfg Config) (*Result, error) {
	res := newResult("E8", "async-start MIS decides within O(log^3 n) of waking (Thm 9.4)",
		"n", "runs", "mean latency", "p90 latency", "latency/log^3 n", "valid")
	sizes := []int{64, 128, 256}
	if cfg.Quick {
		sizes = []int{64, 128}
	}
	type trial struct {
		latencies []float64
		valid     bool
	}
	outs, err := harness.Trials(len(sizes)*cfg.Seeds, func(i int) (trial, error) {
		n := sizes[i/cfg.Seeds]
		seed := i % cfg.Seeds
		s, err := buildScenario(scenarioSpec{n: n, seed: uint64(seed + 1), grayProb: -1})
		if err != nil {
			return trial{}, err
		}
		// Classic model: no unreliable edges, no detector filtering.
		s.Det = nil
		s.Adv = nil
		s.MaxRounds = 1 << 19
		wake := make([]int, n)
		wrng := rand.New(rand.NewPCG(uint64(seed+1), 0x3A3E))
		for v := range wake {
			wake[v] = wrng.IntN(1000)
		}
		out, err := s.RunAsyncMIS(wake, core.FilterNone)
		if err != nil {
			return trial{}, err
		}
		t := trial{valid: verify.MIS(s.Net, s.Net.G(), out.Outputs).OK()}
		for _, l := range out.Latency {
			if l >= 0 {
				t.latencies = append(t.latencies, float64(l))
			}
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	var logNs, lats []float64
	for si, n := range sizes {
		var sample []float64
		valid := 0
		for _, t := range outs[si*cfg.Seeds : (si+1)*cfg.Seeds] {
			sample = append(sample, t.latencies...)
			if t.valid {
				valid++
			}
		}
		sum := statsOf(sample)
		l3 := math.Pow(log2f(n), 3)
		res.Table.AddRow(fmtInt(n), fmtInt(cfg.Seeds), f(sum.Mean), f(sum.P90),
			f(sum.P90/l3), ratio(valid, cfg.Seeds))
		logNs = append(logNs, log2f(n))
		lats = append(lats, sum.P90)
		res.Metrics["valid_"+fmtInt(n)] = float64(valid) / float64(cfg.Seeds)
	}
	exp, r2 := powerLaw(logNs, lats)
	res.Metrics["exponent_vs_logn"] = exp
	res.Table.AddRow("fit", "", "", "", "latency ~ (log n)^"+f(exp), "R2="+f(r2))
	return res, nil
}
