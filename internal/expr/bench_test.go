package expr

import (
	"fmt"
	"testing"

	"dualradio/internal/harness"
)

// BenchmarkBuildScenario measures the from-scratch setup path — geometric
// network generation (grid-bucketed), assignment, detector — across network
// sizes. With the spatial grid the per-size cost should grow roughly like
// n·Δ, not n²; the tracked snapshots keep the setup path on the perf
// trajectory alongside the round loop.
func BenchmarkBuildScenario(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := harness.BuildInstance(harness.InstanceSpec{
					N: n, Seed: uint64(i%8) + 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildScenarioCached measures the steady-state setup path the
// experiments actually see: a shared-instance hit plus the per-trial
// mutable pieces (adversary, scenario).
func BenchmarkBuildScenarioCached(b *testing.B) {
	b.ReportAllocs()
	// Prime the cache, then measure hits.
	if _, err := buildScenario(scenarioSpec{n: 256, seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildScenario(scenarioSpec{n: 256, seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
