package expr_test

import (
	"testing"

	"dualradio/internal/expr"
)

// quick runs an experiment at quick scale and fails the test on error.
func quick(t *testing.T, run func(expr.Config) (*expr.Result, error)) *expr.Result {
	t.Helper()
	res, err := run(expr.QuickConfig())
	if err != nil {
		t.Fatalf("experiment: %v", err)
	}
	t.Logf("\n%s", res.Table.String())
	return res
}

func TestE1MISScaling(t *testing.T) {
	res := quick(t, expr.E1MISScaling)
	if exp := res.Metrics["exponent_vs_logn"]; exp > 3.8 {
		t.Errorf("MIS rounds grow as log^%.2f n, want ≲ 3", exp)
	}
	for _, n := range []int{64, 128, 256} {
		if v := res.Metrics["valid_"+itoa(n)]; v < 1 {
			t.Errorf("n=%d: only %.0f%% of runs valid", n, v*100)
		}
	}
}

func TestE2MISDensity(t *testing.T) {
	res := quick(t, expr.E2MISDensity)
	for _, r := range []string{"1", "2", "3"} {
		if res.Metrics["max_density_r"+r] > res.Metrics["bound_r"+r] {
			t.Errorf("density at r=%s exceeds overlay bound I_r", r)
		}
	}
}

func TestE3CCDSRounds(t *testing.T) {
	res := quick(t, expr.E3CCDSRounds)
	small, large := res.Metrics["growth_small_b"], res.Metrics["growth_large_b"]
	if small <= large {
		t.Errorf("expected stronger Δ-growth for small b: small=%.2f large=%.2f", small, large)
	}
	if large > 1.8 {
		t.Errorf("large-b CCDS rounds should be nearly flat in Δ, grew x%.2f", large)
	}
}

func TestE5LowerBound(t *testing.T) {
	res := quick(t, expr.E5LowerBound)
	if exp := res.Metrics["crossing_exponent_vs_beta"]; exp < 0.5 {
		t.Errorf("crossing time grows as β^%.2f, want ≳ 1 (Ω(Δ))", exp)
	}
	if exp := res.Metrics["fast_exponent_vs_beta"]; exp > 0.9 {
		t.Errorf("τ=0 rounds grow as β^%.2f, want sublinear for large b", exp)
	}
}

func TestE6HittingGame(t *testing.T) {
	res := quick(t, expr.E6HittingGame)
	for _, beta := range []int{16, 64} {
		r := res.Metrics["random_over_beta_"+itoa(beta)]
		if r < 0.5 || r > 2.0 {
			t.Errorf("β=%d: random player mean/β = %.2f, want ≈ 1", beta, r)
		}
		if res.Metrics["sweep_worst_"+itoa(beta)] != float64(beta) {
			t.Errorf("β=%d: sweep worst-case should be exactly β", beta)
		}
	}
}

func TestE7DynamicCCDS(t *testing.T) {
	res := quick(t, expr.E7DynamicCCDS)
	if v := res.Metrics["valid_fraction"]; v < 1 {
		t.Errorf("continuous CCDS valid at r+2δ in only %.0f%% of runs", v*100)
	}
}

func TestE9BannedListAblation(t *testing.T) {
	res := quick(t, expr.E9BannedListAblation)
	if sp := res.Metrics["speedup_delta2048"]; sp < 2 {
		t.Errorf("banned list speedup x%.2f over naive at Δ=2048, want > 2", sp)
	}
	if v := res.Metrics["sim_valid_fraction"]; v < 1 {
		t.Errorf("only %.0f%% of simulated ablation runs valid", v*100)
	}
}

func TestE10Subroutines(t *testing.T) {
	res := quick(t, expr.E10Subroutines)
	if r := res.Metrics["delivery_k1"]; r < 0.95 {
		t.Errorf("lone bounded-broadcast delivery rate %.2f, want ≈ 1", r)
	}
	if r1, r16 := res.Metrics["delivery_k1"], res.Metrics["delivery_k16"]; r16 > r1 {
		t.Errorf("delivery should degrade with contention: k=1 %.2f vs k=16 %.2f", r1, r16)
	}
}

func TestE10DirectedDecay(t *testing.T) {
	res := quick(t, expr.E10DirectedDecay)
	for _, k := range []int{2, 16, 63} {
		if r := res.Metrics["delivery_k"+itoa(k)]; r < 0.9 {
			t.Errorf("covered set %d: delivery rate %.2f, want ≳ 1", k, r)
		}
	}
}

func TestE11Backbone(t *testing.T) {
	res := quick(t, expr.E11Backbone)
	if s := res.Metrics["tx_saving_96"]; s < 0.15 {
		t.Errorf("backbone saves only %.0f%% transmissions, want > 15%%", s*100)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
