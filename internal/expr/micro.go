package expr

import (
	"math"
	"math/rand/v2"

	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/sim"
)

// bbProbe is a minimal process for the bounded-broadcast microbenchmark:
// senders broadcast a tagged message with probability 1/2 for a fixed window
// while every process records which senders it heard.
type bbProbe struct {
	id     int
	n      int
	sender bool
	window int
	rng    *rand.Rand
	heard  map[int]bool
	done   bool
}

var _ sim.Process = (*bbProbe)(nil)

type probeMsg struct {
	from int
	bits int
}

func (m probeMsg) From() int    { return m.from }
func (m probeMsg) BitSize() int { return m.bits }

func (p *bbProbe) Broadcast(round int) sim.Message {
	if round >= p.window {
		p.done = true
		return nil
	}
	if p.sender && p.rng.Float64() < 0.5 {
		return probeMsg{from: p.id, bits: 32}
	}
	return nil
}

func (p *bbProbe) Receive(_ int, msg sim.Message) {
	if msg != nil && msg.From() != p.id {
		p.heard[msg.From()] = true
	}
}

func (p *bbProbe) Output() int { return 0 }
func (p *bbProbe) Done() bool  { return p.done }

// E10Subroutines measures Lemma 5.1 directly: on a clique (worst-case mutual
// interference), k concurrent bounded-broadcast callers each succeed in
// delivering to every neighbor w.h.p. as long as the window is sized for
// contention bound δ >= k-1; with more callers than the window's δ, success
// degrades — the quantitative content of the lemma's precondition.
func E10Subroutines(cfg Config) (*Result, error) {
	res := newResult("E10", "bounded-broadcast delivers under contention ≤ δ (Lem 5.1)",
		"clique n", "senders k", "window (δ=3)", "full-delivery rate", "mean heard")
	n := 24
	senderCounts := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		senderCounts = []int{1, 4, 16}
	}
	logN := math.Log2(float64(n))
	window := int(math.Ceil(2 * 8 * logN)) // ℓ_BB(δ=3) with BB factor 2
	for _, k := range senderCounts {
		type trial struct {
			success, totalHeard, trials int
		}
		outs, err := harness.Trials(cfg.Seeds*4, func(seed int) (trial, error) {
			rng := rand.New(rand.NewPCG(uint64(seed+1), uint64(k)))
			net, err := gen.Clique(n)
			if err != nil {
				return trial{}, err
			}
			procs := make([]sim.Process, n)
			for v := 0; v < n; v++ {
				procs[v] = &bbProbe{
					id: v + 1, n: n, sender: v < k, window: window,
					rng:   rand.New(rand.NewPCG(rng.Uint64(), uint64(v))),
					heard: make(map[int]bool),
				}
			}
			runner, err := sim.NewRunner(sim.Config{Net: net, Processes: procs})
			if err != nil {
				return trial{}, err
			}
			if _, err := runner.Run(); err != nil {
				return trial{}, err
			}
			var t trial
			// A sender succeeds when every other node heard it.
			for s := 0; s < k; s++ {
				t.trials++
				ok := true
				for v := 0; v < n; v++ {
					if v == s {
						continue
					}
					if !procs[v].(*bbProbe).heard[s+1] {
						ok = false
						break
					}
				}
				if ok {
					t.success++
				}
			}
			for v := k; v < n; v++ {
				t.totalHeard += len(procs[v].(*bbProbe).heard)
			}
			return t, nil
		})
		if err != nil {
			return nil, err
		}
		success, totalHeard, trials := 0, 0, 0
		for _, t := range outs {
			success += t.success
			totalHeard += t.totalHeard
			trials += t.trials
		}
		rate := float64(success) / float64(trials)
		meanHeard := float64(totalHeard) / float64((n-k)*cfg.Seeds*4)
		res.Table.AddRow(fmtInt(n), fmtInt(k), fmtInt(window), f(rate), f(meanHeard))
		res.Metrics["delivery_k"+fmtInt(k)] = rate
	}
	return res, nil
}

// decayProbe implements a standalone directed-decay sender: it broadcasts
// with exponentially increasing probability, one phase per ceil(log₂ n)
// rounds, mimicking the covered processes of Lemma 5.2. The center (a lone
// MIS process) records its first reception.
type decayProbe struct {
	id       int
	n        int
	center   bool
	phaseLen int
	phases   int
	rng      *rand.Rand
	firstRx  int
	done     bool
}

var _ sim.Process = (*decayProbe)(nil)

func (p *decayProbe) Broadcast(round int) sim.Message {
	total := p.phases * p.phaseLen
	if round >= total {
		p.done = true
		return nil
	}
	if p.center {
		return nil
	}
	phase := round / p.phaseLen
	prob := math.Ldexp(1/float64(p.n), phase)
	if prob > 0.5 {
		prob = 0.5
	}
	if p.rng.Float64() < prob {
		return probeMsg{from: p.id, bits: 32}
	}
	return nil
}

func (p *decayProbe) Receive(round int, msg sim.Message) {
	if p.center && msg != nil && msg.From() != p.id && p.firstRx < 0 {
		p.firstRx = round
	}
}

func (p *decayProbe) Output() int { return 0 }
func (p *decayProbe) Done() bool  { return p.done }

// E10DirectedDecay measures the Lemma 5.2 delivery dynamics: a lone MIS
// process with a covered set of size k receives at least one message w.h.p.,
// and the first delivery lands once the decaying probability reaches ~1/k —
// later for smaller covered sets, which is the point of the exponential
// schedule.
func E10DirectedDecay(cfg Config) (*Result, error) {
	res := newResult("E10b", "directed-decay delivers to each MIS process (Lem 5.2)",
		"covered k", "delivery rate", "mean first-delivery round", "phase reached")
	nBase := 64
	ks := []int{2, 4, 16, 63}
	if cfg.Quick {
		ks = []int{2, 16, 63}
	}
	logN := int(math.Ceil(math.Log2(float64(nBase))))
	phaseLen := 4 * logN
	for _, k := range ks {
		frs, err := harness.Trials(cfg.Seeds*4, func(seed int) (int, error) {
			net, err := gen.Clique(k + 1)
			if err != nil {
				return 0, err
			}
			procs := make([]sim.Process, k+1)
			for v := 0; v <= k; v++ {
				procs[v] = &decayProbe{
					id: v + 1, n: nBase, center: v == 0,
					phaseLen: phaseLen, phases: logN,
					rng:     rand.New(rand.NewPCG(uint64(seed+1), uint64(v*977+k))),
					firstRx: -1,
				}
			}
			runner, err := sim.NewRunner(sim.Config{Net: net, Processes: procs})
			if err != nil {
				return 0, err
			}
			if _, err := runner.Run(); err != nil {
				return 0, err
			}
			return procs[0].(*decayProbe).firstRx, nil
		})
		if err != nil {
			return nil, err
		}
		success := 0
		var firstRounds []float64
		for _, fr := range frs {
			if fr >= 0 {
				success++
				firstRounds = append(firstRounds, float64(fr))
			}
		}
		trials := cfg.Seeds * 4
		sum := statsOf(firstRounds)
		res.Table.AddRow(fmtInt(k), ratio(success, trials), f(sum.Mean),
			f(sum.Mean/float64(phaseLen)))
		res.Metrics["delivery_k"+fmtInt(k)] = float64(success) / float64(trials)
	}
	return res, nil
}
