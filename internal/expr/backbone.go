package expr

import (
	"dualradio/internal/harness"
	"dualradio/internal/routing"
	"dualradio/internal/verify"
)

// E11Backbone quantifies the paper's Section 1 motivation: the CCDS serves
// as a routing backbone. Broadcasting over the backbone needs roughly
// |CCDS|+1 transmissions instead of n for flooding, at a modest latency
// cost, and the constant-bounded condition keeps per-node backbone load
// constant.
func E11Backbone(cfg Config) (*Result, error) {
	res := newResult("E11", "CCDS as routing backbone (Sec 1 motivation)",
		"n", "CCDS size", "flood tx", "backbone tx", "tx saving", "latency flood", "latency backbone")
	sizes := []int{96, 192}
	if cfg.Quick {
		sizes = []int{96}
	}
	for _, n := range sizes {
		type trial struct {
			ok                          bool
			floodTx, backTx             float64
			floodLat, backLat, ccdsSize float64
		}
		outs, err := harness.Trials(cfg.Seeds, func(seed int) (trial, error) {
			s, err := buildScenario(scenarioSpec{n: n, b: 1024, seed: uint64(seed + 1)})
			if err != nil {
				return trial{}, err
			}
			out, err := s.RunCCDS()
			if err != nil {
				return trial{}, err
			}
			h := s.H()
			if !verify.CCDS(s.Net, h, out.Outputs, 0).OK() {
				return trial{}, nil
			}
			member := make([]bool, n)
			for v, o := range out.Outputs {
				member[v] = o == 1
			}
			src := 0
			flood, back, err := routing.Compare(h, member, src)
			if err != nil {
				return trial{}, err
			}
			return trial{
				ok:       true,
				floodTx:  float64(flood.Transmissions),
				backTx:   float64(back.Transmissions),
				floodLat: float64(flood.Latency),
				backLat:  float64(back.Latency),
				ccdsSize: float64(verify.CCDSSize(out.Outputs)),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var floodTx, backTx, floodLat, backLat, ccdsSize []float64
		for _, t := range outs {
			if !t.ok {
				continue
			}
			floodTx = append(floodTx, t.floodTx)
			backTx = append(backTx, t.backTx)
			floodLat = append(floodLat, t.floodLat)
			backLat = append(backLat, t.backLat)
			ccdsSize = append(ccdsSize, t.ccdsSize)
		}
		ft, bt := statsOf(floodTx).Mean, statsOf(backTx).Mean
		saving := 0.0
		if ft > 0 {
			saving = 1 - bt/ft
		}
		res.Table.AddRow(fmtInt(n), f(statsOf(ccdsSize).Mean), f(ft), f(bt),
			f(saving*100)+"%", f(statsOf(floodLat).Mean), f(statsOf(backLat).Mean))
		res.Metrics["tx_saving_"+fmtInt(n)] = saving
	}
	return res, nil
}

// All runs every experiment in order and returns their results.
func All(cfg Config) ([]*Result, error) {
	runs := []func(Config) (*Result, error){
		E1MISScaling,
		E2MISDensity,
		E3CCDSRounds,
		E4TauCCDS,
		E5LowerBound,
		E6HittingGame,
		E7DynamicCCDS,
		E8AsyncMIS,
		E9BannedListAblation,
		E10Subroutines,
		E10DirectedDecay,
		E11Backbone,
		E12ReannounceAblation,
		E13IncompleteDetectors,
		E14RadioBroadcast,
		E15TauSweep,
	}
	out := make([]*Result, 0, len(runs))
	for _, run := range runs {
		r, err := run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
