package expr

import (
	"dualradio/internal/core"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// E15TauSweep probes the paper's open problem ("it is also interesting to
// consider whether there exist CCDS algorithms for non-constant τ",
// Section 10, with the footnote-3 intuition that the problem should become
// impossible once τ exceeds the constant-bounded degree budget): the
// Section 6 algorithm is run with growing mistake budgets. Each extra τ adds
// one MIS iteration — linear slowdown — and the dominating structure
// thickens (τ+1 dominators per disk), pushing the realized CCDS degree
// toward the constant-bounded condition's ceiling.
func E15TauSweep(cfg Config) (*Result, error) {
	res := newResult("E15", "growing τ: linear slowdown, thickening structure (Sec 10 open problem)",
		"τ", "mean rounds", "mean dominators", "max CCDS degree", "valid")
	n := 96
	taus := []int{0, 1, 2, 4}
	if cfg.Quick {
		n = 64
		taus = []int{0, 2, 4}
	}
	type trial struct {
		rounds, doms, maxDeg float64
		valid                bool
	}
	outs, err := harness.Trials(len(taus)*cfg.Seeds, func(i int) (trial, error) {
		tau := taus[i/cfg.Seeds]
		seed := i % cfg.Seeds
		s, err := buildScenario(scenarioSpec{
			n: n, b: 1 << 16, tau: tau, seed: uint64(seed + 1),
		})
		if err != nil {
			return trial{}, err
		}
		out, err := s.RunTauCCDS(tau)
		if err != nil {
			return trial{}, err
		}
		d := 0
		for _, m := range out.InMIS {
			if m {
				d++
			}
		}
		h := s.H()
		return trial{
			rounds: float64(out.Rounds),
			doms:   float64(d),
			maxDeg: float64(verify.MaxCCDSDegree(s.Net, out.Outputs)),
			valid:  verify.CCDS(s.Net, h, out.Outputs, 0).OK(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var prevRounds float64
	for ti, tau := range taus {
		var rounds, doms, maxDeg []float64
		valid := 0
		for _, t := range outs[ti*cfg.Seeds : (ti+1)*cfg.Seeds] {
			rounds = append(rounds, t.rounds)
			doms = append(doms, t.doms)
			maxDeg = append(maxDeg, t.maxDeg)
			if t.valid {
				valid++
			}
		}
		mr := statsOf(rounds).Mean
		res.Table.AddRow(fmtInt(tau), f(mr), f(statsOf(doms).Mean),
			f(statsOf(maxDeg).Mean), ratio(valid, cfg.Seeds))
		res.Metrics["valid_tau"+fmtInt(tau)] = float64(valid) / float64(cfg.Seeds)
		res.Metrics["rounds_tau"+fmtInt(tau)] = mr
		res.Metrics["maxdeg_tau"+fmtInt(tau)] = statsOf(maxDeg).Mean
		if prevRounds > 0 && mr < prevRounds {
			res.Metrics["nonmonotonic"] = 1
		}
		prevRounds = mr
	}
	// The per-iteration MIS cost, for reference against the slope.
	misRounds := newMISScheduleRounds(n)
	res.Table.AddRow("ref", "one MIS iteration = "+fmtInt(misRounds)+" rounds", "", "", "")
	return res, nil
}

// newMISScheduleRounds exposes the MIS schedule length for the table.
func newMISScheduleRounds(n int) int {
	r, err := core.TauCCDSRounds(n, 8, 1<<16, core.DefaultParams(), 1)
	if err != nil {
		return 0
	}
	r0, err := core.TauCCDSRounds(n, 8, 1<<16, core.DefaultParams(), 0)
	if err != nil {
		return 0
	}
	return r - r0
}
