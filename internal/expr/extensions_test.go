package expr_test

import (
	"testing"

	"dualradio/internal/expr"
)

func TestE12ReannounceAblation(t *testing.T) {
	res := quick(t, expr.E12ReannounceAblation)
	if v := res.Metrics["valid_reannounce"]; v < 1 {
		t.Errorf("re-announce variant failed %.0f%% of runs", (1-v)*100)
	}
	if v := res.Metrics["valid_oneshot"]; v >= res.Metrics["valid_reannounce"] {
		t.Logf("note: one-shot variant did not fail at this scale (%.2f)", v)
	}
}

func TestE13IncompleteDetectors(t *testing.T) {
	res := quick(t, expr.E13IncompleteDetectors)
	for _, p := range []string{"0.100", "0.300"} {
		if v := res.Metrics["mis_valid_p"+p]; v < 1 {
			t.Errorf("MIS with drop prob %s valid in only %.0f%%", p, v*100)
		}
		if v := res.Metrics["ccds_valid_p"+p]; v < 1 {
			t.Errorf("CCDS with drop prob %s valid in only %.0f%%", p, v*100)
		}
	}
}

func TestE14RadioBroadcast(t *testing.T) {
	res := quick(t, expr.E14RadioBroadcast)
	if s := res.Metrics["tx_saving"]; s < 0.1 {
		t.Errorf("backbone saved only %.0f%% transmissions in-model", s*100)
	}
}

func TestE15TauSweep(t *testing.T) {
	res := quick(t, expr.E15TauSweep)
	for _, tau := range []int{0, 2, 4} {
		if v := res.Metrics["valid_tau"+itoa(tau)]; v < 1 {
			t.Errorf("tau=%d valid in only %.0f%%", tau, v*100)
		}
	}
	if res.Metrics["rounds_tau4"] <= res.Metrics["rounds_tau0"] {
		t.Error("rounds should grow with tau")
	}
	if res.Metrics["maxdeg_tau4"] < res.Metrics["maxdeg_tau0"] {
		t.Log("note: structure did not thicken at this scale")
	}
}
