package expr

import (
	"math/rand/v2"

	"dualradio/internal/adversary"
	"dualradio/internal/bcast"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/sim"
	"dualradio/internal/verify"
)

// E12ReannounceAblation quantifies the Section 4 remark that unreliable
// edges "thwart standard contention reduction techniques": the one-shot
// reading of the MIS algorithm (members never speak after their joining
// epoch's announcement) fails regularly under the collision-seeking
// adversary, while member re-announcement — the Section 9 rule this library
// adopts — drives the failure rate to zero.
func E12ReannounceAblation(cfg Config) (*Result, error) {
	res := newResult("E12", "member re-announcement is load-bearing under adversarial links (Sec 4/9)",
		"variant", "n", "runs", "valid runs", "violations")
	n := 128
	runs := cfg.Seeds * 4
	if cfg.Quick {
		n = 96
		runs = cfg.Seeds * 3
	}
	for _, variant := range []struct {
		name    string
		disable bool
	}{
		{"re-announce (ours)", false},
		{"one-shot announce", true},
	} {
		type trial struct {
			valid      bool
			violations int
		}
		outs, err := harness.Trials(runs, func(seed int) (trial, error) {
			rng := rand.New(rand.NewPCG(uint64(seed+1), 0xAB1A))
			net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
			if err != nil {
				return trial{}, err
			}
			asg := dualgraph.RandomAssignment(n, rng)
			det := detector.Complete(net, asg)
			procs := make([]sim.Process, n)
			for v := 0; v < n; v++ {
				p, err := core.NewMISProcess(core.MISConfig{
					ID:                asg.ID(v),
					N:                 n,
					Detector:          det.Set(v),
					Filter:            core.FilterDetector,
					DisableReannounce: variant.disable,
					Params:            core.DefaultParams(),
					Rng:               rand.New(rand.NewPCG(uint64(seed+1), uint64(v)+7)),
				})
				if err != nil {
					return trial{}, err
				}
				procs[v] = p
			}
			runner, err := sim.NewRunner(sim.Config{
				Net:       net,
				Adversary: adversary.NewCollisionSeeking(net),
				Processes: procs,
			})
			if err != nil {
				return trial{}, err
			}
			if _, err := runner.Run(); err != nil {
				return trial{}, err
			}
			outputs := make([]int, n)
			for v, p := range procs {
				outputs[v] = p.Output()
			}
			rep := verify.MIS(net, net.G(), outputs)
			return trial{valid: rep.OK(), violations: len(rep.Violations)}, nil
		})
		if err != nil {
			return nil, err
		}
		valid, violations := 0, 0
		for _, t := range outs {
			if t.valid {
				valid++
			} else {
				violations += t.violations
			}
		}
		res.Table.AddRow(variant.name, fmtInt(n), fmtInt(runs),
			ratio(valid, runs), fmtInt(violations))
		key := "valid_reannounce"
		if variant.disable {
			key = "valid_oneshot"
		}
		res.Metrics[key] = float64(valid) / float64(runs)
	}
	return res, nil
}

// E13IncompleteDetectors tests footnote 1 of the paper: detectors that
// misclassify some reliable links as unreliable (dropping them from the
// sets) should not break correctness as long as the retained reliable edges
// stay connected. Maximality/domination are judged over H, which shrinks
// with the detector; independence is judged over the mutually retained
// reliable edges — with a dropped link, both endpoints discard each other's
// messages, so no algorithm can coordinate across it (the footnote's
// implicit reading of "correctness").
func E13IncompleteDetectors(cfg Config) (*Result, error) {
	res := newResult("E13", "dropping reliable links keeps MIS/CCDS correct while connected (footnote 1)",
		"drop prob", "runs", "MIS valid", "CCDS valid", "retained connected")
	n := 96
	if cfg.Quick {
		n = 64
	}
	for _, drop := range []float64{0.1, 0.3} {
		type trial struct {
			misValid, ccdsValid, connected bool
		}
		outs, err := harness.Trials(cfg.Seeds, func(seed int) (trial, error) {
			rng := rand.New(rand.NewPCG(uint64(seed+1), 0x1C0))
			net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
			if err != nil {
				return trial{}, err
			}
			asg := dualgraph.RandomAssignment(n, rng)
			det := detector.Incomplete(net, asg, drop, rng)
			var t trial
			t.connected = detector.RetainedReliableGraph(net, asg, det).Connected()
			s := &harness.Scenario{
				Net: net, Asg: asg, Det: det,
				Adv:  adversary.NewCollisionSeeking(net),
				Seed: uint64(seed + 1),
				B:    1024,
			}
			h := detector.BuildH(net, asg, det)
			retained := detector.RetainedReliableGraph(net, asg, det)
			// Mutual filtering (the Section 6 labeling technique) keeps
			// maximality well-defined over H when drops are asymmetric.
			outMIS, err := s.RunMISFiltered(core.FilterMutual)
			if err != nil {
				return trial{}, err
			}
			t.misValid = verify.MISOver(retained, h, outMIS.Outputs).OK()
			outCCDS, err := s.RunCCDS()
			if err != nil {
				return trial{}, err
			}
			t.ccdsValid = verify.CCDS(net, h, outCCDS.Outputs, 0).OK()
			return t, nil
		})
		if err != nil {
			return nil, err
		}
		misValid, ccdsValid, connected := 0, 0, 0
		for _, t := range outs {
			if t.misValid {
				misValid++
			}
			if t.ccdsValid {
				ccdsValid++
			}
			if t.connected {
				connected++
			}
		}
		res.Table.AddRow(f(drop), fmtInt(cfg.Seeds), ratio(misValid, cfg.Seeds),
			ratio(ccdsValid, cfg.Seeds), ratio(connected, cfg.Seeds))
		res.Metrics["mis_valid_p"+f(drop)] = float64(misValid) / float64(cfg.Seeds)
		res.Metrics["ccds_valid_p"+f(drop)] = float64(ccdsValid) / float64(cfg.Seeds)
	}
	return res, nil
}

// E14RadioBroadcast runs the multihop broadcast workload inside the radio
// model (not just on the graph): decay-flooding with every node relaying
// versus relaying restricted to a prebuilt CCDS backbone, under the
// collision-seeking adversary. The backbone cuts transmissions sharply; its
// constant degree also caps contention, keeping latency comparable.
func E14RadioBroadcast(cfg Config) (*Result, error) {
	res := newResult("E14", "in-model broadcast: CCDS backbone vs full decay flooding",
		"n", "strategy", "rounds", "transmissions", "covered")
	n := 96
	if cfg.Quick {
		n = 64
	}
	type trial struct {
		flood, back bcast.Result
	}
	outs, err := harness.Trials(cfg.Seeds, func(seed int) (trial, error) {
		s, err := buildScenario(scenarioSpec{n: n, b: 1024, seed: uint64(seed + 1)})
		if err != nil {
			return trial{}, err
		}
		out, err := s.RunCCDS()
		if err != nil {
			return trial{}, err
		}
		relay := make([]bool, n)
		for v, o := range out.Outputs {
			relay[v] = o == 1
		}
		engine := sim.Config{Adversary: adversary.NewCollisionSeeking(s.Net)}
		maxRounds := 400 * log2Ceilf(n)
		flood, err := bcast.Run(bcast.Config{
			Net: s.Net, Source: 0, Seed: uint64(seed + 1),
		}, engine, maxRounds)
		if err != nil {
			return trial{}, err
		}
		back, err := bcast.Run(bcast.Config{
			Net: s.Net, Source: 0, Relay: relay, Seed: uint64(seed + 1),
		}, engine, maxRounds)
		if err != nil {
			return trial{}, err
		}
		return trial{flood: *flood, back: *back}, nil
	})
	if err != nil {
		return nil, err
	}
	var floodTx, backTx []float64
	for seed, t := range outs {
		floodTx = append(floodTx, float64(t.flood.Transmissions))
		backTx = append(backTx, float64(t.back.Transmissions))
		if seed == 0 {
			res.Table.AddRow(fmtInt(n), "decay flood", fmtInt(t.flood.Rounds),
				fmtInt(t.flood.Transmissions), ratio(t.flood.Covered, n))
			res.Table.AddRow(fmtInt(n), "CCDS backbone", fmtInt(t.back.Rounds),
				fmtInt(t.back.Transmissions), ratio(t.back.Covered, n))
		}
	}
	mf, mb := statsOf(floodTx).Mean, statsOf(backTx).Mean
	saving := 0.0
	if mf > 0 {
		saving = 1 - mb/mf
	}
	res.Table.AddRow("mean", "", "", f(mf)+" vs "+f(mb), f(saving*100)+"% saved")
	res.Metrics["tx_saving"] = saving
	return res, nil
}

func log2Ceilf(n int) int {
	l := 1
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}
