package expr

import (
	"fmt"

	"dualradio/internal/stats"
)

// f formats a float for table cells.
func f(x float64) string { return stats.F(x) }

// ratio renders "k/n" for success-rate columns.
func ratio(k, n int) string { return fmt.Sprintf("%d/%d", k, n) }

// statsOf summarizes a sample.
func statsOf(xs []float64) stats.Summary { return stats.Summarize(xs) }

// powerLaw fits y ~ c·x^e and returns (e, R²).
func powerLaw(x, y []float64) (float64, float64) {
	return stats.PowerLawExponent(x, y)
}
