package expr

import (
	"fmt"

	"dualradio/internal/stats"
)

// f formats a float for table cells.
func f(x float64) string { return stats.F(x) }

// ratio renders "k/n" for success-rate columns.
func ratio(k, n int) string { return fmt.Sprintf("%d/%d", k, n) }

// statsOf summarizes a sample through the streaming accumulator, sized to
// the sample so quantiles stay on the exact path: Mean and P90 — the only
// fields the experiment tables consume — are bit-identical to the batch
// Summarize, so the table output is unchanged.
func statsOf(xs []float64) stats.Summary {
	acc := stats.NewAccumulatorSize(len(xs))
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Summary()
}

// powerLaw fits y ~ c·x^e and returns (e, R²).
func powerLaw(x, y []float64) (float64, float64) {
	return stats.PowerLawExponent(x, y)
}
