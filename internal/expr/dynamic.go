package expr

import (
	"math/rand/v2"

	"dualradio/internal/detector"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// E7DynamicCCDS reproduces Theorem 8.1: rerunning the CCDS algorithm every
// δ_CDS rounds with a dynamic link detector solves the CCDS problem by round
// r + 2·δ_CDS, where r is the detector's stabilization round. The dynamic
// detector starts with a corrupted view (extra gray-zone ids, modelling
// links that later degrade) and stabilizes to the 0-complete detector midway
// through the second period.
func E7DynamicCCDS(cfg Config) (*Result, error) {
	res := newResult("E7", "continuous CCDS solves by r + 2·δ_CDS (Thm 8.1)",
		"n", "δ_CDS", "stabilize r", "checkpoint", "valid at r+2δ", "valid runs")
	n := 96
	if cfg.Quick {
		n = 64
	}
	type trial struct {
		period, stab, checkpoint int
		valid                    bool
	}
	outs, err := harness.Trials(cfg.Seeds, func(seed int) (trial, error) {
		s, err := buildScenario(scenarioSpec{n: n, b: 512, seed: uint64(seed + 1)})
		if err != nil {
			return trial{}, err
		}
		// Pre-stabilization detector: 2 mistakes per node (a link detector
		// still being fooled by bursty gray-zone links).
		drng := rand.New(rand.NewPCG(uint64(seed+1), 0xD15C0))
		noisy := detector.TauComplete(s.Net, s.Asg, 2, detector.PlaceGrayFirst, drng)
		clean := s.Det
		// δ_CDS is the fixed CCDS schedule length; compute it via a probe
		// run configuration (period depends only on n, Δ, b, params).
		probe, err := s.RunCCDS()
		if err != nil {
			return trial{}, err
		}
		t := trial{period: probe.Rounds}
		t.stab = t.period + t.period/2 // stabilizes mid-second-period
		dyn := detector.NewSchedule(
			detector.ScheduleStep{Round: 0, Detector: noisy},
			detector.ScheduleStep{Round: t.stab, Detector: clean},
		)
		t.checkpoint = t.stab + 2*t.period
		out, err := s.RunContinuousCCDS(dyn, 5, []int{t.checkpoint})
		if err != nil {
			return trial{}, err
		}
		outputs, ok := out.Checkpoints[t.checkpoint]
		if !ok {
			outputs = out.Final
		}
		h := s.H() // clean is s.Det: the stabilized detector
		t.valid = verify.CCDS(s.Net, h, outputs, 0).OK()
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	valid := 0
	var period, stab, checkpoint int
	for _, t := range outs {
		if t.valid {
			valid++
		}
		// The table reports the last seed's schedule, as the sequential
		// loop did.
		period, stab, checkpoint = t.period, t.stab, t.checkpoint
	}
	okStr := "NO"
	if valid == cfg.Seeds {
		okStr = "yes"
	}
	res.Table.AddRow(fmtInt(n), fmtInt(period), fmtInt(stab), fmtInt(checkpoint),
		okStr, ratio(valid, cfg.Seeds))
	res.Metrics["valid_fraction"] = float64(valid) / float64(cfg.Seeds)
	res.Metrics["period"] = float64(period)
	return res, nil
}
