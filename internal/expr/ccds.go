package expr

import (
	"math"

	"dualradio/internal/core"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// coreParams returns the default constant factors used by the experiments.
func coreParams() core.Params { return core.DefaultParams() }

// E3CCDSRounds reproduces the Theorem 5.3 running time
// O(Δ·log²n/b + log³n): for fixed n the round count is swept over Δ and the
// message bound b. For large b the Δ·log²n/b term vanishes and the time is
// flat in Δ (polylogarithmic); for small b it grows linearly in Δ. The
// crossover falls where Δ·log²n/b ≈ log³n, i.e. b ≈ Δ/log n. Every run is
// also validated against the CCDS conditions.
func E3CCDSRounds(cfg Config) (*Result, error) {
	res := newResult("E3", "CCDS in O(Δ·log²n/b + log³n) rounds (Thm 5.3)",
		"n", "Δ target", "b bits", "mean rounds", "rounds/log^3 n", "valid")
	n := 192
	degs := []float64{12, 24, 48}
	bs := []int{160, 512, 4096}
	if cfg.Quick {
		n = 96
		degs = []float64{12, 24}
		bs = []int{160, 2048}
	}
	l3 := math.Pow(log2f(n), 3)
	type point struct{ deg, b, rounds float64 }
	type trial struct {
		rounds float64
		valid  bool
	}
	// Flatten the (Δ, b, seed) sweep into independent trials; the grouped
	// reduction below visits them in the sequential sweep's order.
	outs, err := harness.Trials(len(degs)*len(bs)*cfg.Seeds, func(i int) (trial, error) {
		deg := degs[i/(len(bs)*cfg.Seeds)]
		b := bs[i/cfg.Seeds%len(bs)]
		seed := i % cfg.Seeds
		s, err := buildScenario(scenarioSpec{
			n: n, targetDeg: deg, b: b, seed: uint64(seed + 1),
		})
		if err != nil {
			return trial{}, err
		}
		out, err := s.RunCCDS()
		if err != nil {
			return trial{}, err
		}
		h := s.H()
		return trial{
			rounds: float64(out.Rounds),
			valid:  verify.CCDS(s.Net, h, out.Outputs, 0).OK(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var pts []point
	for di, deg := range degs {
		for bi, b := range bs {
			var sample []float64
			valid := 0
			base := (di*len(bs) + bi) * cfg.Seeds
			for _, t := range outs[base : base+cfg.Seeds] {
				sample = append(sample, t.rounds)
				if t.valid {
					valid++
				}
			}
			sum := statsOf(sample)
			res.Table.AddRow(fmtInt(n), f(deg), fmtInt(b), f(sum.Mean),
				f(sum.Mean/l3), ratio(valid, cfg.Seeds))
			pts = append(pts, point{deg, float64(b), sum.Mean})
			res.Metrics["valid_d"+f(deg)+"_b"+fmtInt(b)] = float64(valid) / float64(cfg.Seeds)
		}
	}
	// Headline separation: rounds growth from smallest to largest Δ, for
	// the smallest and largest b.
	growth := func(b float64) float64 {
		var lo, hi float64
		for _, p := range pts {
			if p.b != b {
				continue
			}
			if p.deg == degs[0] {
				lo = p.rounds
			}
			if p.deg == degs[len(degs)-1] {
				hi = p.rounds
			}
		}
		if lo == 0 {
			return 0
		}
		return hi / lo
	}
	res.Metrics["growth_small_b"] = growth(float64(bs[0]))
	res.Metrics["growth_large_b"] = growth(float64(bs[len(bs)-1]))
	res.Table.AddRow("growth", "Δ x"+f(degs[len(degs)-1]/degs[0]), "small b",
		"x"+f(res.Metrics["growth_small_b"]), "", "")
	res.Table.AddRow("growth", "Δ x"+f(degs[len(degs)-1]/degs[0]), "large b",
		"x"+f(res.Metrics["growth_large_b"]), "", "")
	return res, nil
}

// E4TauCCDS reproduces Theorem 6.2: with τ-complete detectors (τ = O(1))
// the Section 6 algorithm solves CCDS in O(Δ·polylog n) rounds — linear in
// Δ regardless of message size.
func E4TauCCDS(cfg Config) (*Result, error) {
	res := newResult("E4", "τ-CCDS in O(Δ·polylog n) rounds (Thm 6.2)",
		"n", "Δ target", "τ", "mean rounds", "rounds/(Δ·log²n)", "valid")
	n := 128
	degs := []float64{12, 24, 48}
	taus := []int{1, 2}
	if cfg.Quick {
		n = 96
		degs = []float64{12, 24}
		taus = []int{1}
	}
	l2 := math.Pow(log2f(n), 2)
	type trial struct {
		rounds float64
		delta  float64
		valid  bool
	}
	outs, err := harness.Trials(len(taus)*len(degs)*cfg.Seeds, func(i int) (trial, error) {
		tau := taus[i/(len(degs)*cfg.Seeds)]
		deg := degs[i/cfg.Seeds%len(degs)]
		seed := i % cfg.Seeds
		s, err := buildScenario(scenarioSpec{
			n: n, targetDeg: deg, b: 1 << 16, tau: tau, seed: uint64(seed + 1),
		})
		if err != nil {
			return trial{}, err
		}
		out, err := s.RunTauCCDS(tau)
		if err != nil {
			return trial{}, err
		}
		h := s.H()
		return trial{
			rounds: float64(out.Rounds),
			delta:  float64(s.Net.Delta()),
			valid:  verify.CCDS(s.Net, h, out.Outputs, 0).OK(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var degPts, roundPts []float64
	for ti, tau := range taus {
		for di, deg := range degs {
			var sample []float64
			valid := 0
			var realizedDelta float64
			base := (ti*len(degs) + di) * cfg.Seeds
			for _, t := range outs[base : base+cfg.Seeds] {
				sample = append(sample, t.rounds)
				realizedDelta += t.delta
				if t.valid {
					valid++
				}
			}
			sum := statsOf(sample)
			realizedDelta /= float64(cfg.Seeds)
			res.Table.AddRow(fmtInt(n), f(deg), fmtInt(tau), f(sum.Mean),
				f(sum.Mean/(realizedDelta*l2)), ratio(valid, cfg.Seeds))
			if tau == taus[0] {
				degPts = append(degPts, realizedDelta)
				roundPts = append(roundPts, sum.Mean)
			}
			res.Metrics["valid_tau"+fmtInt(tau)+"_d"+f(deg)] = float64(valid) / float64(cfg.Seeds)
		}
	}
	exp, r2 := powerLaw(degPts, roundPts)
	res.Metrics["exponent_vs_delta"] = exp
	res.Table.AddRow("fit", "rounds ~ Δ^"+f(exp), "R2="+f(r2), "", "", "")
	return res, nil
}

// E9BannedListAblation reproduces the Section 5 design claim: the banned
// list reduces the work per MIS node from Θ(Δ) explorations (the naive
// baseline, which enumerates every neighbor) to O(1) explorations. Both
// algorithms run on fixed global schedules, so their round counts are
// deterministic functions of (n, Δ, b); the table sweeps Δ to expose the
// crossover, and a simulated run at moderate scale confirms both algorithms
// still produce valid CCDS structures.
func E9BannedListAblation(cfg Config) (*Result, error) {
	res := newResult("E9", "banned list: O(1) explorations vs O(Δ) naive (Sec 5)",
		"n", "Δ", "b bits", "banned rounds", "naive rounds", "speedup")
	n := 1024
	deltas := []int{32, 128, 512, 2048}
	b := 4096
	if cfg.Quick {
		deltas = []int{32, 256, 2048}
	}
	params := coreParams()
	for _, delta := range deltas {
		banned, err := core.CCDSRounds(n, delta, b, params)
		if err != nil {
			return nil, err
		}
		naive, err := core.BaselineCCDSRounds(n, delta, b, params)
		if err != nil {
			return nil, err
		}
		speed := float64(naive) / float64(banned)
		res.Table.AddRow(fmtInt(n), fmtInt(delta), fmtInt(b),
			fmtInt(banned), fmtInt(naive), "x"+f(speed))
		res.Metrics["speedup_delta"+fmtInt(delta)] = speed
	}
	// Simulated validity check at moderate scale: both algorithms must
	// produce correct structures, not just favorable schedules.
	nSim := 96
	oks, err := harness.Trials(cfg.Seeds, func(seed int) (bool, error) {
		s, err := buildScenario(scenarioSpec{
			n: nSim, targetDeg: 16, b: b, seed: uint64(seed + 1),
		})
		if err != nil {
			return false, err
		}
		outB, err := s.RunCCDS()
		if err != nil {
			return false, err
		}
		outN, err := s.RunBaselineCCDS()
		if err != nil {
			return false, err
		}
		h := s.H()
		return verify.CCDS(s.Net, h, outB.Outputs, 0).OK() &&
			verify.CCDS(s.Net, h, outN.Outputs, 0).OK(), nil
	})
	if err != nil {
		return nil, err
	}
	valid := 0
	for _, ok := range oks {
		if ok {
			valid++
		}
	}
	res.Table.AddRow("sim", fmtInt(nSim), fmtInt(b), "valid",
		ratio(valid, cfg.Seeds), "")
	res.Metrics["sim_valid_fraction"] = float64(valid) / float64(cfg.Seeds)
	return res, nil
}
