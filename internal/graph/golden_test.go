package graph

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// refGraph is a deliberately naive adjacency-map reference implementation
// used as the golden model for the CSR layout.
type refGraph struct {
	n   int
	adj map[int]map[int]bool
}

func newRef(n int) *refGraph {
	return &refGraph{n: n, adj: map[int]map[int]bool{}}
}

func (r *refGraph) add(u, v int) {
	if r.adj[u] == nil {
		r.adj[u] = map[int]bool{}
	}
	if r.adj[v] == nil {
		r.adj[v] = map[int]bool{}
	}
	r.adj[u][v] = true
	r.adj[v][u] = true
}

func (r *refGraph) neighbors(v int) []int {
	out := make([]int, 0, len(r.adj[v]))
	for w := range r.adj[v] {
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}

func (r *refGraph) bfs(start int) []int {
	dist := make([]int, r.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range r.neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TestCSRMatchesReferenceOnRandomGraphs freezes random graphs into CSR form
// and checks every read API — neighbors, degrees, edge queries, edge
// enumeration, BFS distances, connectivity — against the adjacency-map
// reference, i.e. the semantics of the pre-CSR graph type.
func TestCSRMatchesReferenceOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(40)
		b := NewBuilder(n)
		ref := newRef(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v || b.HasEdge(u, v) {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			ref.add(u, v)
		}
		g := b.Build()

		m := 0
		for v := 0; v < n; v++ {
			want := ref.neighbors(v)
			got := g.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("n=%d v=%d: neighbors %v, want %v", n, v, got, want)
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("n=%d v=%d: neighbors %v, want %v", n, v, got, want)
				}
			}
			if g.Degree(v) != len(want) {
				t.Fatalf("degree(%d) = %d, want %d", v, g.Degree(v), len(want))
			}
			m += len(want)
		}
		if g.M() != m/2 {
			t.Fatalf("M = %d, want %d", g.M(), m/2)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) != (u != v && ref.adj[u][v]) {
					t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
				}
			}
		}
		seen := 0
		g.Edges(func(u, v int) {
			if !ref.adj[u][v] || u >= v {
				t.Fatalf("Edges yielded bad edge (%d,%d)", u, v)
			}
			seen++
		})
		if seen != g.M() {
			t.Fatalf("Edges yielded %d, want %d", seen, g.M())
		}
		refDist := ref.bfs(0)
		gotDist := g.BFS(0)
		for v := range refDist {
			if refDist[v] != gotDist[v] {
				t.Fatalf("BFS dist[%d] = %d, want %d", v, gotDist[v], refDist[v])
			}
		}
		refConnected := true
		for _, d := range refDist {
			if d < 0 {
				refConnected = false
			}
		}
		if g.Connected() != refConnected {
			t.Fatalf("Connected() = %v, want %v", g.Connected(), refConnected)
		}
	}
}
