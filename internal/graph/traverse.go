package graph

// Connected reports whether the graph is connected. The empty graph and the
// single-vertex graph are considered connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return g.componentSize(0) == g.n
}

// ConnectedSubset reports whether the vertices marked true in member induce a
// connected subgraph of g. An empty subset is considered connected.
func (g *Graph) ConnectedSubset(member []bool) bool {
	start := -1
	total := 0
	for v, in := range member {
		if in {
			total++
			if start < 0 {
				start = v
			}
		}
	}
	if total <= 1 {
		return true
	}
	visited := make([]bool, g.n)
	stack := []int{start}
	visited[start] = true
	seen := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.nbr[g.off[v]:g.off[v+1]] {
			wi := int(w)
			if member[wi] && !visited[wi] {
				visited[wi] = true
				seen++
				stack = append(stack, wi)
			}
		}
	}
	return seen == total
}

func (g *Graph) componentSize(start int) int {
	visited := make([]bool, g.n)
	stack := []int{start}
	visited[start] = true
	size := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.nbr[g.off[v]:g.off[v+1]] {
			if !visited[w] {
				visited[w] = true
				size++
				stack = append(stack, int(w))
			}
		}
	}
	return size
}

// Components returns the connected components of g as slices of vertex
// indices, each sorted ascending, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.nbr[g.off[v]:g.off[v+1]] {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, int(w))
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// BFS returns the hop distance from start to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(start int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if start < 0 || start >= g.n {
		return dist
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.nbr[g.off[v]:g.off[v+1]] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return dist
}

// HopDistance returns the number of hops between u and v, or -1 when v is
// unreachable from u.
func (g *Graph) HopDistance(u, v int) int {
	if u == v {
		return 0
	}
	dist := g.BFS(u)
	if v < 0 || v >= g.n {
		return -1
	}
	return dist[v]
}

// Diameter returns the largest finite hop distance in the graph, or -1 when
// the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		dist := g.BFS(v)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// WithinHops returns the set of vertices within h hops of start (including
// start itself), as a sorted slice.
func (g *Graph) WithinHops(start, h int) []int {
	dist := g.BFS(start)
	var out []int
	for v, d := range dist {
		if d >= 0 && d <= h {
			out = append(out, v)
		}
	}
	return out
}

// ShortestPath returns one shortest path from u to v inclusive of both
// endpoints, or nil when unreachable.
func (g *Graph) ShortestPath(u, v int) []int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return nil
	}
	if u == v {
		return []int{u}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.nbr[g.off[x]:g.off[x+1]] {
			wi := int(w)
			if prev[wi] < 0 {
				prev[wi] = x
				if wi == v {
					queue = nil
					break
				}
				queue = append(queue, wi)
			}
		}
	}
	if prev[v] < 0 {
		return nil
	}
	var rev []int
	for x := v; x != u; x = prev[x] {
		rev = append(rev, x)
	}
	rev = append(rev, u)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
