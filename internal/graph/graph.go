// Package graph implements the undirected graph substrate shared by the
// dual graph radio network model. Vertices are dense integer indices
// 0..n-1 (node indices, not process ids), and adjacency is stored as sorted
// neighbor slices for cache-friendly iteration during simulation rounds.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrVertexRange is returned when an edge endpoint is outside [0, n).
var ErrVertexRange = errors.New("graph: vertex index out of range")

// Graph is an undirected simple graph over vertices 0..N-1.
//
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	n   int
	adj [][]int32
	m   int
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v, nb := range g.adj {
		c.adj[v] = append([]int32(nil), nb...)
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate edges
// are rejected with an error; duplicates are detected via binary search, so
// insertion is O(deg).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.insert(u, int32(v))
	g.insert(v, int32(u))
	g.m++
	return nil
}

func (g *Graph) insert(u int, v int32) {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	nb = append(nb, 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = v
	g.adj[u] = nb
}

// RemoveEdge deletes the undirected edge (u, v) if present and reports
// whether it was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.remove(u, int32(v))
	g.remove(v, int32(u))
	g.m--
	return true
}

func (g *Graph) remove(u int, v int32) {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	copy(nb[i:], nb[i+1:])
	g.adj[u] = nb[:len(nb)-1]
}

// HasEdge reports whether the undirected edge (u, v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Neighbors returns the sorted neighbor slice of v. The slice is owned by
// the graph and must not be modified by callers.
func (g *Graph) Neighbors(v int) []int32 {
	if v < 0 || v >= g.n {
		return nil
	}
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= g.n {
		return 0
	}
	return len(g.adj[v])
}

// MaxDegree returns the maximum degree over all vertices (0 for an empty
// graph). This is the paper's Δ when applied to the reliable graph G, and Δ'
// when applied to G'.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, nb := range g.adj {
		if len(nb) > maxDeg {
			maxDeg = len(nb)
		}
	}
	return maxDeg
}

// MinDegree returns the minimum degree over all vertices (0 for an empty
// graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	minDeg := len(g.adj[0])
	for _, nb := range g.adj[1:] {
		if len(nb) < minDeg {
			minDeg = len(nb)
		}
	}
	return minDeg
}

// AvgDegree returns the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Edges calls fn for every undirected edge exactly once, with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u, nb := range g.adj {
		for _, v := range nb {
			if int(v) > u {
				fn(u, int(v))
			}
		}
	}
}

// IsSubgraphOf reports whether every edge of g is also an edge of h and the
// vertex counts match. This checks the dual graph invariant E ⊆ E'.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	ok := true
	g.Edges(func(u, v int) {
		if !h.HasEdge(u, v) {
			ok = false
		}
	})
	return ok
}
