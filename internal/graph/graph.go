// Package graph implements the undirected graph substrate shared by the
// dual graph radio network model. Vertices are dense integer indices
// 0..n-1 (node indices, not process ids), and adjacency is stored in
// compressed sparse row (CSR) form: one flat neighbor arena plus an offset
// table, so a round's neighbor iterations walk contiguous memory with no
// per-vertex slice headers.
//
// Graph is immutable. Construction and mutation happen on a Builder, which
// is frozen into a Graph with Build. This split keeps the simulation hot
// path free of bounds rechecks and lets networks share graphs (G = G')
// without defensive copies.
package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrVertexRange is returned when an edge endpoint is outside [0, n).
var ErrVertexRange = errors.New("graph: vertex index out of range")

// Graph is an immutable undirected simple graph over vertices 0..N-1 in CSR
// layout. The zero value is an empty graph with no vertices; use New for an
// edgeless graph with a fixed vertex count and Builder to construct graphs
// with edges.
type Graph struct {
	n   int
	m   int
	off []int32 // len n+1; neighbor arena bounds per vertex
	nbr []int32 // len 2m; sorted neighbors, vertex after vertex

	// Lazily built packed-row adjacency (see Bitrows); the graph is
	// immutable, so the cache never goes stale.
	bitOnce sync.Once
	bit     atomic.Pointer[Bitrows]
}

// New returns an edgeless immutable graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, off: make([]int32, n+1)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// HasEdge reports whether the undirected edge (u, v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, found := insertPos(g.nbr[g.off[u]:g.off[u+1]], int32(v))
	return found
}

// Neighbors returns the sorted neighbor slice of v. The slice aliases the
// graph's arena and must not be modified by callers.
func (g *Graph) Neighbors(v int) []int32 {
	if v < 0 || v >= g.n {
		return nil
	}
	return g.nbr[g.off[v]:g.off[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= g.n {
		return 0
	}
	return int(g.off[v+1] - g.off[v])
}

// MaxDegree returns the maximum degree over all vertices (0 for an empty
// graph). This is the paper's Δ when applied to the reliable graph G, and Δ'
// when applied to G'.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.n; v++ {
		if d := int(g.off[v+1] - g.off[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// MinDegree returns the minimum degree over all vertices (0 for an empty
// graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	minDeg := int(g.off[1])
	for v := 1; v < g.n; v++ {
		if d := int(g.off[v+1] - g.off[v]); d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}

// AvgDegree returns the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Edges calls fn for every undirected edge exactly once, with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.nbr[g.off[u]:g.off[u+1]] {
			if int(v) > u {
				fn(u, int(v))
			}
		}
	}
}

// IsSubgraphOf reports whether every edge of g is also an edge of h and the
// vertex counts match. This checks the dual graph invariant E ⊆ E'.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	ok := true
	g.Edges(func(u, v int) {
		if !h.HasEdge(u, v) {
			ok = false
		}
	})
	return ok
}

// Builder is a mutable graph under construction. It supports edge insertion
// and removal with the same validation the old mutable Graph offered, and
// freezes into an immutable CSR Graph with Build. The zero value is unusable;
// use NewBuilder or BuilderFrom.
type Builder struct {
	n   int
	m   int
	adj [][]int32
}

// NewBuilder returns a builder for a graph with n vertices and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, adj: make([][]int32, n)}
}

// BuilderFrom returns a builder seeded with a copy of g's edges, for
// derived-subgraph construction (the immutable g is not touched).
func BuilderFrom(g *Graph) *Builder {
	b := NewBuilder(g.n)
	b.m = g.m
	for v := 0; v < g.n; v++ {
		nb := g.nbr[g.off[v]:g.off[v+1]]
		if len(nb) > 0 {
			b.adj[v] = append([]int32(nil), nb...)
		}
	}
	return b
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// M returns the number of edges inserted so far.
func (b *Builder) M() int { return b.m }

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate edges
// are rejected with an error. Each endpoint costs one binary search (with an
// O(1) fast path when neighbors arrive in ascending order, as generators
// produce them).
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	iu, dup := insertPos(b.adj[u], int32(v))
	if dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	iv, _ := insertPos(b.adj[v], int32(u))
	b.adj[u] = insertAt(b.adj[u], iu, int32(v))
	b.adj[v] = insertAt(b.adj[v], iv, int32(u))
	b.m++
	return nil
}

// insertPos returns the insertion index for v in the sorted slice nb and
// whether v is already present. Appending in ascending order hits the O(1)
// tail check.
func insertPos(nb []int32, v int32) (int, bool) {
	if len(nb) == 0 || nb[len(nb)-1] < v {
		return len(nb), false
	}
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nb[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(nb) && nb[lo] == v
}

func insertAt(nb []int32, i int, v int32) []int32 {
	nb = append(nb, 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = v
	return nb
}

// RemoveEdge deletes the undirected edge (u, v) if present and reports
// whether it was removed.
func (b *Builder) RemoveEdge(u, v int) bool {
	if !b.HasEdge(u, v) {
		return false
	}
	b.remove(u, int32(v))
	b.remove(v, int32(u))
	b.m--
	return true
}

func (b *Builder) remove(u int, v int32) {
	nb := b.adj[u]
	i, _ := insertPos(nb, v)
	copy(nb[i:], nb[i+1:])
	b.adj[u] = nb[:len(nb)-1]
}

// HasEdge reports whether the undirected edge (u, v) is present.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || u == v {
		return false
	}
	_, dup := insertPos(b.adj[u], int32(v))
	return dup
}

// Degree returns the degree of v in the builder.
func (b *Builder) Degree(v int) int {
	if v < 0 || v >= b.n {
		return 0
	}
	return len(b.adj[v])
}

// Connected reports whether the graph under construction is connected,
// without freezing it. The empty and single-vertex graphs are connected.
// Subgraph derivations (detector misclassification, dynamic topologies) use
// this to gate removals on the connectivity proviso.
func (b *Builder) Connected() bool {
	if b.n <= 1 {
		return true
	}
	visited := make([]bool, b.n)
	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	visited[0] = true
	seen := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range b.adj[v] {
			if !visited[w] {
				visited[w] = true
				seen++
				stack = append(stack, w)
			}
		}
	}
	return seen == b.n
}

// Build freezes the builder into an immutable CSR graph. The builder remains
// valid and may keep mutating; later Builds snapshot later states.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, m: b.m, off: make([]int32, b.n+1)}
	total := 0
	for v, nb := range b.adj {
		total += len(nb)
		g.off[v+1] = int32(total)
	}
	g.nbr = make([]int32, total)
	for v, nb := range b.adj {
		copy(g.nbr[g.off[v]:], nb)
	}
	return g
}
