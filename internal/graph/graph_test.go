package graph

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
	if New(-1).N() != 0 {
		t.Error("negative size should clamp to 0")
	}
}

func TestAddEdgeAndHasEdge(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Error("builder edge should be undirected")
	}
	g := b.Build()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be undirected")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.M() != 2 || b.M() != 2 {
		t.Errorf("M = %d / %d", g.M(), b.M())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out of range: %v", err)
	}
	if err := b.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative: %v", err)
	}
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	b := NewBuilder(4)
	mustEdges(t, b, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if !b.RemoveEdge(1, 2) {
		t.Error("remove existing edge failed")
	}
	if b.RemoveEdge(1, 2) {
		t.Error("removing absent edge reported true")
	}
	g := b.Build()
	if g.HasEdge(1, 2) || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Error("edges wrong after removal")
	}
	if g.M() != 2 {
		t.Errorf("M = %d", g.M())
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	for _, v := range []int{5, 2, 4, 1} {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
	if g.Neighbors(-1) != nil || g.Neighbors(6) != nil {
		t.Error("out-of-range neighbors should be nil")
	}
}

func TestDegreeStats(t *testing.T) {
	b := NewBuilder(4)
	mustEdges(t, b, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	g := b.Build()
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Errorf("max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("avg=%v", got)
	}
	if g.Degree(0) != 3 || g.Degree(9) != 0 {
		t.Error("degree wrong")
	}
	empty := New(0)
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 || empty.AvgDegree() != 0 {
		t.Error("empty graph stats should be zero")
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	b := NewBuilder(5)
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}
	mustEdges(t, b, want)
	g := b.Build()
	seen := map[[2]int]int{}
	g.Edges(func(u, v int) {
		if u >= v {
			t.Errorf("edge (%d,%d) not ordered", u, v)
		}
		seen[[2]int{u, v}]++
	})
	if len(seen) != len(want) {
		t.Errorf("saw %d edges, want %d", len(seen), len(want))
	}
	for e, c := range seen {
		if c != 1 {
			t.Errorf("edge %v visited %d times", e, c)
		}
	}
}

func TestIsSubgraphOf(t *testing.T) {
	gb := NewBuilder(4)
	hb := NewBuilder(4)
	mustEdges(t, gb, [][2]int{{0, 1}})
	mustEdges(t, hb, [][2]int{{0, 1}, {1, 2}})
	g, h := gb.Build(), hb.Build()
	if !g.IsSubgraphOf(h) {
		t.Error("g should be subgraph of h")
	}
	if h.IsSubgraphOf(g) {
		t.Error("h is not a subgraph of g")
	}
	if g.IsSubgraphOf(New(5)) {
		t.Error("different vertex counts")
	}
}

func TestBuilderFromDoesNotAliasOriginal(t *testing.T) {
	b := NewBuilder(3)
	mustEdges(t, b, [][2]int{{0, 1}})
	g := b.Build()
	c := BuilderFrom(g)
	if err := c.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) {
		t.Error("derived builder aliases frozen graph")
	}
	g2 := c.Build()
	if !g2.HasEdge(0, 1) || !g2.HasEdge(1, 2) {
		t.Error("derived builder lost edges")
	}
}

func TestBuildSnapshotsBuilderState(t *testing.T) {
	b := NewBuilder(3)
	mustEdges(t, b, [][2]int{{0, 1}})
	g1 := b.Build()
	mustEdges(t, b, [][2]int{{1, 2}})
	g2 := b.Build()
	if g1.HasEdge(1, 2) {
		t.Error("earlier snapshot sees later mutation")
	}
	if !g2.HasEdge(1, 2) || g2.M() != 2 {
		t.Error("later snapshot missing edge")
	}
}

func TestBuilderConnected(t *testing.T) {
	b := NewBuilder(4)
	mustEdges(t, b, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if !b.Connected() {
		t.Error("path should be connected")
	}
	b.RemoveEdge(1, 2)
	if b.Connected() {
		t.Error("split path should be disconnected")
	}
	if !NewBuilder(1).Connected() || !NewBuilder(0).Connected() {
		t.Error("trivial graphs are connected")
	}
}

// TestHasEdgeMatchesModel cross-checks HasEdge against an adjacency-map
// model under random edge insertions and removals, on both the builder and
// the frozen CSR graph.
func TestHasEdgeMatchesModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(20)
		b := NewBuilder(n)
		model := map[[2]int]bool{}
		for i := 0; i < 4*n; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			switch {
			case !model[[2]int{u, v}]:
				if err := b.AddEdge(u, v); err != nil {
					return false
				}
				model[[2]int{u, v}] = true
			case rng.Float64() < 0.5:
				if !b.RemoveEdge(u, v) {
					return false
				}
				delete(model, [2]int{u, v})
			}
		}
		g := b.Build()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if g.HasEdge(u, v) != model[[2]int{u, v}] {
					return false
				}
				if b.HasEdge(u, v) != model[[2]int{u, v}] {
					return false
				}
			}
		}
		return g.M() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustEdges(t *testing.T, b *Builder, edges [][2]int) {
	t.Helper()
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("add edge %v: %v", e, err)
		}
	}
}
