package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// build freezes the listed edges into a graph.
func build(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	mustEdges(t, b, edges)
	return b.Build()
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs are connected")
	}
	g := path(t, 5)
	if !g.Connected() {
		t.Error("path should be connected")
	}
	d := build(t, 4, [][2]int{{0, 1}, {2, 3}})
	if d.Connected() {
		t.Error("two components reported connected")
	}
}

func TestConnectedSubset(t *testing.T) {
	g := path(t, 6)
	if !g.ConnectedSubset([]bool{true, true, true, false, false, false}) {
		t.Error("prefix of a path is connected")
	}
	if g.ConnectedSubset([]bool{true, false, true, false, false, false}) {
		t.Error("gap should disconnect the subset")
	}
	if !g.ConnectedSubset(make([]bool, 6)) {
		t.Error("empty subset is connected")
	}
	if !g.ConnectedSubset([]bool{false, false, true, false, false, false}) {
		t.Error("singleton subset is connected")
	}
}

func TestComponents(t *testing.T) {
	g := build(t, 6, [][2]int{{0, 1}, {1, 2}, {4, 5}})
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Errorf("singleton component = %v", comps[1])
	}
}

func TestBFSAndHopDistance(t *testing.T) {
	g := path(t, 5)
	dist := g.BFS(0)
	for v, d := range dist {
		if d != v {
			t.Errorf("dist[%d] = %d", v, d)
		}
	}
	if g.HopDistance(0, 4) != 4 || g.HopDistance(2, 2) != 0 {
		t.Error("hop distances wrong")
	}
	d := build(t, 3, [][2]int{{0, 1}})
	if d.HopDistance(0, 2) != -1 {
		t.Error("unreachable should be -1")
	}
}

func TestDiameter(t *testing.T) {
	if got := path(t, 5).Diameter(); got != 4 {
		t.Errorf("path diameter = %d", got)
	}
	d := build(t, 4, [][2]int{{0, 1}})
	if d.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
	if New(0).Diameter() != -1 {
		t.Error("empty diameter should be -1")
	}
}

func TestWithinHops(t *testing.T) {
	g := path(t, 7)
	got := g.WithinHops(3, 2)
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("within 2 hops of 3: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("within hops = %v, want %v", got, want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := build(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 5}, {0, 3}, {3, 4}, {4, 5}})
	p := g.ShortestPath(0, 5)
	if len(p) != 4 || p[0] != 0 || p[len(p)-1] != 5 {
		t.Errorf("path = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Errorf("path uses missing edge (%d,%d)", p[i-1], p[i])
		}
	}
	if g.ShortestPath(0, 0)[0] != 0 {
		t.Error("trivial path")
	}
	d := New(3)
	if d.ShortestPath(0, 2) != nil {
		t.Error("unreachable path should be nil")
	}
}

// TestShortestPathMatchesBFS verifies path lengths equal BFS distances on
// random graphs.
func TestShortestPathMatchesBFS(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 3 + rng.IntN(15)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v && !b.HasEdge(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		g := b.Build()
		dist := g.BFS(0)
		for v := 0; v < n; v++ {
			p := g.ShortestPath(0, v)
			switch {
			case dist[v] < 0 && p != nil:
				return false
			case dist[v] >= 0 && len(p) != dist[v]+1:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestComponentsPartition verifies components partition the vertex set.
func TestComponentsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 1 + rng.IntN(20)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v && !b.HasEdge(u, v) {
				_ = b.AddEdge(u, v)
			}
		}
		g := b.Build()
		seen := make([]bool, n)
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
