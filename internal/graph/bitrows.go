package graph

import "math/bits"

// Bitrows is a packed bitset adjacency view of an immutable Graph: one row
// of ⌈n/64⌉ words per vertex, bit w of row v set iff (v, w) is an edge.
// Neighbor scans against a vertex set become word-parallel AND+popcount
// loops instead of per-neighbor lookups, which pays off on dense graphs —
// detector-induced graphs H and gray graphs G' at high connectivity — where
// a CSR row walk touches a large fraction of n anyway.
//
// A row costs ⌈n/64⌉ words regardless of degree, so for sparse graphs the
// CSR walk stays faster; BitrowsIfDense applies that judgment for callers.
type Bitrows struct {
	n      int
	stride int // words per row
	rows   []uint64
}

// NewBitrows builds the packed adjacency rows of g.
func NewBitrows(g *Graph) *Bitrows {
	stride := (g.n + 63) / 64
	b := &Bitrows{n: g.n, stride: stride, rows: make([]uint64, g.n*stride)}
	for v := 0; v < g.n; v++ {
		row := b.rows[v*stride : (v+1)*stride]
		for _, w := range g.nbr[g.off[v]:g.off[v+1]] {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}
	return b
}

// N returns the number of vertices.
func (b *Bitrows) N() int { return b.n }

// Row returns vertex v's packed neighbor row. The slice aliases the
// Bitrows arena and must not be modified by callers.
func (b *Bitrows) Row(v int) []uint64 {
	return b.rows[v*b.stride : (v+1)*b.stride]
}

// Has reports whether the edge (u, v) is present.
func (b *Bitrows) Has(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false
	}
	return b.rows[u*b.stride+(v>>6)]&(1<<(uint(v)&63)) != 0
}

// IntersectsSet reports whether any neighbor of v is in the bitset set
// (packed like a row: bit w of word w/64). set must hold at least
// ⌈n/64⌉ words.
func (b *Bitrows) IntersectsSet(v int, set []uint64) bool {
	row := b.rows[v*b.stride : (v+1)*b.stride]
	for i, w := range row {
		if w&set[i] != 0 {
			return true
		}
	}
	return false
}

// CountSet returns the number of neighbors of v in the bitset set.
func (b *Bitrows) CountSet(v int, set []uint64) int {
	row := b.rows[v*b.stride : (v+1)*b.stride]
	c := 0
	for i, w := range row {
		c += bits.OnesCount64(w & set[i])
	}
	return c
}

// NewBitset returns an empty vertex bitset sized for n vertices, compatible
// with IntersectsSet and CountSet.
func NewBitset(n int) []uint64 { return make([]uint64, (n+63)/64) }

// SetBit adds vertex v to the bitset.
func SetBit(set []uint64, v int) { set[v>>6] |= 1 << (uint(v) & 63) }

// TestBit reports whether vertex v is in the bitset.
func TestBit(set []uint64, v int) bool { return set[v>>6]&(1<<(uint(v)&63)) != 0 }

// bitrowsDenseThreshold gates BitrowsIfDense: rows are built only when the
// average degree reaches n divided by this factor, the regime where a
// word-parallel row scan (⌈n/64⌉ word ops) beats the CSR neighbor walk
// (degree element ops) by enough to cover the n²/8-bit build cost over
// repeated queries.
const bitrowsDenseThreshold = 128

// Bitrows returns the packed adjacency view of g, building it on first use
// and caching it on the graph (g is immutable, so the rows never go stale).
// Safe for concurrent use.
func (g *Graph) Bitrows() *Bitrows {
	g.bitOnce.Do(func() { g.bit.Store(NewBitrows(g)) })
	return g.bit.Load()
}

// BitrowsIfDense returns the cached packed adjacency view when the graph is
// dense enough for word-parallel scans to win (average degree at least
// n/bitrowsDenseThreshold), and nil otherwise. Callers fall back to CSR
// neighbor walks on nil. A graph already carrying built rows returns them
// regardless of density — the build cost is already sunk.
func (g *Graph) BitrowsIfDense() *Bitrows {
	if b := g.bit.Load(); b != nil {
		return b
	}
	if g.n == 0 || 2*g.m*bitrowsDenseThreshold < g.n*g.n {
		return nil
	}
	return g.Bitrows()
}
