package graph

import (
	"math/rand/v2"
	"testing"
)

// randomGraph builds an Erdős–Rényi graph with edge probability p.
func randomGraph(t *testing.T, n int, p float64, seed uint64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xB17))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
				}
			}
		}
	}
	return b.Build()
}

func TestBitrowsMatchesCSR(t *testing.T) {
	for _, p := range []float64{0, 0.05, 0.5, 1} {
		g := randomGraph(t, 131, p, uint64(p*100)+1) // n deliberately not a multiple of 64
		rows := NewBitrows(g)
		if rows.N() != g.N() {
			t.Fatalf("p=%v: Bitrows.N()=%d want %d", p, rows.N(), g.N())
		}
		for u := 0; u < g.N(); u++ {
			deg := 0
			for _, w := range rows.Row(u) {
				for ; w != 0; w &= w - 1 {
					deg++
				}
			}
			if deg != g.Degree(u) {
				t.Fatalf("p=%v: row %d popcount=%d want degree %d", p, u, deg, g.Degree(u))
			}
			for v := 0; v < g.N(); v++ {
				if rows.Has(u, v) != g.HasEdge(u, v) {
					t.Fatalf("p=%v: Has(%d,%d)=%v disagrees with CSR", p, u, v, rows.Has(u, v))
				}
			}
		}
	}
}

func TestBitsetScans(t *testing.T) {
	g := randomGraph(t, 100, 0.3, 7)
	rows := NewBitrows(g)
	rng := rand.New(rand.NewPCG(7, 0x5E7))
	for trial := 0; trial < 20; trial++ {
		set := NewBitset(g.N())
		in := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.2 {
				SetBit(set, v)
				in[v] = true
			}
		}
		for v := 0; v < g.N(); v++ {
			if TestBit(set, v) != in[v] {
				t.Fatalf("TestBit(%d) disagrees with membership", v)
			}
			want := 0
			for _, w := range g.Neighbors(v) {
				if in[w] {
					want++
				}
			}
			if got := rows.CountSet(v, set); got != want {
				t.Fatalf("CountSet(%d)=%d want %d", v, got, want)
			}
			if got := rows.IntersectsSet(v, set); got != (want > 0) {
				t.Fatalf("IntersectsSet(%d)=%v want %v", v, got, want > 0)
			}
		}
	}
}

func TestBitrowsDensityGate(t *testing.T) {
	sparse := randomGraph(t, 512, 0.001, 3)
	if b := sparse.BitrowsIfDense(); b != nil {
		t.Fatalf("sparse graph (avg degree %.2f) built bitrows", sparse.AvgDegree())
	}
	// Once explicitly built, the sunk rows are returned regardless of density.
	built := sparse.Bitrows()
	if built == nil {
		t.Fatal("Bitrows() returned nil")
	}
	if b := sparse.BitrowsIfDense(); b != built {
		t.Fatal("BitrowsIfDense did not return the already-built rows")
	}

	dense := randomGraph(t, 128, 0.5, 4)
	if b := dense.BitrowsIfDense(); b == nil {
		t.Fatalf("dense graph (avg degree %.2f) refused bitrows", dense.AvgDegree())
	}
	if dense.Bitrows() != dense.Bitrows() {
		t.Fatal("Bitrows cache returned distinct views")
	}
}
