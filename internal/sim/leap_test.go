package sim_test

import (
	"testing"

	"dualradio/internal/sim"
)

// calendarProc implements both sleep contracts: it broadcasts at a fixed
// set of scripted rounds and sleeps in between, recording which entry point
// the engine drove. It lets the leap tests observe engine dispatch without
// any protocol randomness.
type calendarProc struct {
	id        int
	total     int
	script    map[int]sim.Message
	leapCalls int
	slowCalls int
	driven    []int
	recv      map[int]sim.Message
}

func newCalendarProc(id, total int, rounds ...int) *calendarProc {
	p := &calendarProc{
		id:     id,
		total:  total,
		script: map[int]sim.Message{},
		recv:   map[int]sim.Message{},
	}
	for _, r := range rounds {
		p.script[r] = testMsg{from: id, bits: 8}
	}
	return p
}

// next returns this round's message and the earliest future scripted round
// (or the schedule end).
func (p *calendarProc) next(round int) (sim.Message, int) {
	p.driven = append(p.driven, round)
	m := p.script[round]
	for r := round + 1; r < p.total; r++ {
		if p.script[r] != nil {
			return m, r
		}
	}
	return m, p.total
}

func (p *calendarProc) Broadcast(round int) sim.Message {
	m, _ := p.next(round)
	return m
}

func (p *calendarProc) BroadcastSleep(round int) (sim.Message, int) {
	p.slowCalls++
	return p.next(round)
}

func (p *calendarProc) BroadcastLeap(round int) (sim.Message, int) {
	p.leapCalls++
	return p.next(round)
}

func (p *calendarProc) Receive(round int, msg sim.Message) {
	if msg != nil {
		p.recv[round] = msg
	}
}
func (p *calendarProc) Output() int     { return 0 }
func (p *calendarProc) Done() bool      { return false }
func (p *calendarProc) Rounds() int     { return p.total }
func (p *calendarProc) PassiveReceive() {}

var (
	_ sim.SleepBroadcaster = (*calendarProc)(nil)
	_ sim.LeapBroadcaster  = (*calendarProc)(nil)
)

// roundLog records which rounds the engine actually executed.
type roundLog struct{ rounds []int }

func (l *roundLog) OnRound(round int, _ []int, _ []sim.Delivery) {
	l.rounds = append(l.rounds, round)
}

// skipLog is an adversary recording per-round Reach calls and leap Skip
// calls.
type skipLog struct {
	reach []int
	skips [][2]int
}

func (a *skipLog) Reach(round int, _ []bool) []int { a.reach = append(a.reach, round); return nil }
func (a *skipLog) Skip(round, rounds int)          { a.skips = append(a.skips, [2]int{round, rounds}) }

// TestLeapPrefersBroadcastLeap: with Config.Leap the engine drives
// BroadcastLeap; without it, BroadcastSleep — on the same dual-contract
// process.
func TestLeapPrefersBroadcastLeap(t *testing.T) {
	for _, leap := range []bool{false, true} {
		net := lineNet(t)
		procs := make([]sim.Process, net.N())
		cps := make([]*calendarProc, net.N())
		for v := range procs {
			cps[v] = newCalendarProc(v+1, 10, v*2)
			procs[v] = cps[v]
		}
		r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MaxRounds: 10, Leap: leap})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		for v, p := range cps {
			if leap && (p.leapCalls == 0 || p.slowCalls != 0) {
				t.Errorf("leap: node %d drove leap=%d slow=%d, want leap only", v, p.leapCalls, p.slowCalls)
			}
			if !leap && (p.slowCalls == 0 || p.leapCalls != 0) {
				t.Errorf("exact: node %d drove leap=%d slow=%d, want sleep only", v, p.leapCalls, p.slowCalls)
			}
		}
	}
}

// TestLeapJumpsQuietStretch: when every process is parked, the clock jumps
// to the earliest wake. Executed rounds are exactly the scripted ones plus
// their successors (the engine re-drives a broadcaster's next round), while
// Stats.Rounds still counts the whole horizon.
func TestLeapJumpsQuietStretch(t *testing.T) {
	net := lineNet(t)
	const total = 1000
	procs := make([]sim.Process, net.N())
	cps := make([]*calendarProc, net.N())
	for v := range procs {
		// Only node 0 ever broadcasts; simultaneous broadcasters would
		// collide at their common neighbors and deliver nothing.
		if v == 0 {
			cps[v] = newCalendarProc(v+1, total, 100, 600)
		} else {
			cps[v] = newCalendarProc(v+1, total)
		}
		procs[v] = cps[v]
	}
	log := &roundLog{}
	r, err := sim.NewRunner(sim.Config{
		Net: net, Processes: procs, MaxRounds: total, Observer: log, Leap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != total {
		t.Errorf("Stats.Rounds=%d want %d (skipped rounds must still count)", st.Rounds, total)
	}
	if len(log.rounds) >= total/2 {
		t.Errorf("executed %d rounds of %d; quiet stretches were not skipped", len(log.rounds), total)
	}
	seen := map[int]bool{}
	for _, r := range log.rounds {
		seen[r] = true
	}
	for _, want := range []int{0, 100, 600} {
		if !seen[want] {
			t.Errorf("scripted round %d was never executed (executed %v)", want, log.rounds)
		}
	}
	// Both scripted broadcasts must have been delivered to a G-neighbor.
	for _, want := range []int{100, 600} {
		if cps[1].recv[want] == nil {
			t.Errorf("node 1 missed the round-%d broadcast (recv %v)", want, cps[1].recv)
		}
	}
}

// TestLeapSkipperInvocation: a Skipper adversary sees one Skip call per
// jumped stretch, and Reach calls plus skipped rounds account for every
// round of the horizon. The exact engine must never call Skip.
func TestLeapSkipperInvocation(t *testing.T) {
	for _, leap := range []bool{false, true} {
		net := lineNet(t)
		const total = 500
		procs := make([]sim.Process, net.N())
		for v := range procs {
			procs[v] = newCalendarProc(v+1, total, 50, 300)
		}
		adv := &skipLog{}
		r, err := sim.NewRunner(sim.Config{
			Net: net, Adversary: adv, Processes: procs, MaxRounds: total, Leap: leap,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !leap {
			if len(adv.skips) != 0 {
				t.Fatalf("exact engine called Skip: %v", adv.skips)
			}
			continue
		}
		if len(adv.skips) == 0 {
			t.Fatal("leap engine never called Skip on a quiet-calendar run")
		}
		skipped := 0
		for _, s := range adv.skips {
			if s[1] <= 0 {
				t.Errorf("Skip called with non-positive stretch %v", s)
			}
			skipped += s[1]
		}
		if got := len(adv.reach) + skipped; got != st.Rounds {
			t.Errorf("reach calls (%d) + skipped rounds (%d) = %d, want Stats.Rounds %d",
				len(adv.reach), skipped, got, st.Rounds)
		}
	}
}
