package sim_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// benchmarkMISRun measures raw engine throughput: full MIS executions per
// second on a mid-size network, with the given worker count.
func benchmarkMISRun(b *testing.B, n, workers int) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		b.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(n)
	det := detector.Complete(net, asg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs := make([]sim.Process, n)
		for v := 0; v < n; v++ {
			p, err := core.NewMISProcess(core.MISConfig{
				ID:       asg.ID(v),
				N:        n,
				Detector: det.Set(v),
				Filter:   core.FilterDetector,
				Params:   core.DefaultParams(),
				Rng:      rand.New(rand.NewPCG(uint64(i), uint64(v))),
			})
			if err != nil {
				b.Fatal(err)
			}
			procs[v] = p
		}
		r, err := sim.NewRunner(sim.Config{
			Net:       net,
			Adversary: adversary.NewCollisionSeeking(net),
			Processes: procs,
			Workers:   workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Rounds), "rounds")
	}
}

// BenchmarkEngineMIS256 measures sequential engine throughput.
func BenchmarkEngineMIS256(b *testing.B) { benchmarkMISRun(b, 256, 1) }

// BenchmarkEngineMIS256Parallel measures the goroutine-fanned engine.
func BenchmarkEngineMIS256Parallel(b *testing.B) { benchmarkMISRun(b, 256, 8) }

// BenchmarkEngineMIS1024 measures a larger instance.
func BenchmarkEngineMIS1024(b *testing.B) { benchmarkMISRun(b, 1024, 1) }
