package sim_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// buildMISProcs constructs identical MIS process arrays for the equivalence
// test.
func buildMISProcs(t *testing.T, n int, det *detector.Detector,
	asg *dualgraph.Assignment, seed uint64) []sim.Process {
	t.Helper()
	procs := make([]sim.Process, n)
	for v := 0; v < n; v++ {
		id := uint64(asg.ID(v))
		p, err := core.NewMISProcess(core.MISConfig{
			ID:       asg.ID(v),
			N:        n,
			Detector: det.Set(v),
			Filter:   core.FilterDetector,
			Params:   core.DefaultParams(),
			Rng:      rand.New(rand.NewPCG(seed, id)),
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[v] = p
	}
	return procs
}

// TestParallelMatchesSequential verifies that the goroutine-fanned engine
// produces exactly the same execution as the sequential loop: identical
// outputs, rounds, and delivery counters.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	n := 128
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(n)
	det := detector.Complete(net, asg)

	run := func(workers int) ([]int, sim.Stats) {
		procs := buildMISProcs(t, n, det, asg, 99)
		r, err := sim.NewRunner(sim.Config{
			Net:       net,
			Processes: procs,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		outs := make([]int, n)
		for v, p := range procs {
			outs[v] = p.Output()
		}
		return outs, st
	}

	seqOut, seqStats := run(1)
	parOut, parStats := run(8)
	for v := range seqOut {
		if seqOut[v] != parOut[v] {
			t.Fatalf("node %d: sequential output %d, parallel %d", v, seqOut[v], parOut[v])
		}
	}
	if seqStats != parStats {
		t.Errorf("stats diverge: seq %+v par %+v", seqStats, parStats)
	}
}

// TestDeterministicAcrossRuns verifies two identically-seeded sequential
// executions are byte-identical.
func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	n := 64
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(n)
	det := detector.Complete(net, asg)
	var prev []int
	for trial := 0; trial < 2; trial++ {
		procs := buildMISProcs(t, n, det, asg, 13)
		r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		outs := make([]int, n)
		for v, p := range procs {
			outs[v] = p.Output()
		}
		if prev != nil {
			for v := range outs {
				if outs[v] != prev[v] {
					t.Fatalf("node %d differs across identically seeded runs", v)
				}
			}
		}
		prev = outs
	}
}
