package sim_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// buildAsyncProcs constructs an identically-seeded async MIS fleet with
// staggered wake rounds.
func buildAsyncProcs(t *testing.T, n int, asg *dualgraph.Assignment, seed uint64) []sim.Process {
	t.Helper()
	wrng := rand.New(rand.NewPCG(seed, 0xA5))
	procs := make([]sim.Process, n)
	for v := 0; v < n; v++ {
		p, err := core.NewAsyncMISProcess(core.MISConfig{
			ID:     asg.ID(v),
			N:      n,
			Filter: core.FilterNone,
			Params: core.DefaultParams(),
			Rng:    rand.New(rand.NewPCG(seed, uint64(asg.ID(v)))),
		}, wrng.IntN(400))
		if err != nil {
			t.Fatal(err)
		}
		procs[v] = p
	}
	return procs
}

// runMIS executes one seeded MIS fleet and returns outputs plus stats.
func runMIS(t *testing.T, net *dualgraph.Network, det *detector.Detector,
	asg *dualgraph.Assignment, n, workers int) ([]int, sim.Stats) {
	t.Helper()
	procs := buildMISProcs(t, n, det, asg, 4242)
	r, err := sim.NewRunner(sim.Config{
		Net:       net,
		Adversary: adversary.NewCollisionSeeking(net),
		Processes: procs,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs := make([]int, n)
	for v, p := range procs {
		outs[v] = p.Output()
	}
	return outs, r.Stats()
}

// TestParallelEquivalenceAtThreshold pins the engine's parallel fan-out at
// the activation threshold boundary (the engine stays sequential below 64
// active processes) and at degenerate worker counts: for n in {63, 64, 65}
// and workers in {1, 2, n-1, n, n+1}, every execution must be identical to
// the sequential one — outputs and all engine counters.
func TestParallelEquivalenceAtThreshold(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		rng := rand.New(rand.NewPCG(uint64(n), 17))
		net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
		if err != nil {
			t.Fatal(err)
		}
		asg := dualgraph.IdentityAssignment(n)
		det := detector.Complete(net, asg)
		refOut, refStats := runMIS(t, net, det, asg, n, 1)
		for _, workers := range []int{2, n - 1, n, n + 1} {
			t.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(t *testing.T) {
				out, stats := runMIS(t, net, det, asg, n, workers)
				for v := range refOut {
					if out[v] != refOut[v] {
						t.Fatalf("node %d: sequential output %d, %d workers -> %d",
							v, refOut[v], workers, out[v])
					}
				}
				if stats != refStats {
					t.Errorf("stats diverge: seq %+v, workers=%d %+v", refStats, workers, stats)
				}
			})
		}
	}
}

// TestAsyncActiveSetEquivalence drives the heterogeneous-completion path
// (async processes finish individually, exercising the generic active-set
// sweep and the wake calendar) across worker counts.
func TestAsyncActiveSetEquivalence(t *testing.T) {
	n := 80
	rng := rand.New(rand.NewPCG(99, 3))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n, GrayProb: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(n)

	run := func(workers int) []int {
		procs := buildAsyncProcs(t, n, asg, 7)
		r, err := sim.NewRunner(sim.Config{
			Net:       net,
			Processes: procs,
			MaxRounds: 1 << 18,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunUntil(r.AllDecided); err != nil {
			t.Fatal(err)
		}
		outs := make([]int, n)
		for v, p := range procs {
			outs[v] = p.Output()
		}
		return outs
	}

	ref := run(1)
	for _, workers := range []int{2, n} {
		got := run(workers)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("workers=%d node %d: %d != %d", workers, v, got[v], ref[v])
			}
		}
	}
}
