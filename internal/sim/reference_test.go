package sim_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualradio/internal/adversary"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// refReception computes the Section 2 reception rule naively: for each node,
// enumerate every broadcaster reachable through G or an active gray edge and
// apply the collision rule. This is the specification the optimized engine
// must match.
func refReception(net *dualgraph.Network, bcast []bool, activeGray map[int]bool) []int {
	n := net.N()
	gray := net.GrayEdges()
	out := make([]int, n) // 0 = ⊥, otherwise 1-based index of the sender node
	for v := 0; v < n; v++ {
		if bcast[v] {
			out[v] = v + 1 // broadcasters hear themselves
			continue
		}
		count, sender := 0, 0
		for u := 0; u < n; u++ {
			if !bcast[u] || u == v {
				continue
			}
			reach := net.G().HasEdge(u, v)
			if !reach {
				for idx, e := range gray {
					if activeGray[idx] && ((e[0] == u && e[1] == v) || (e[0] == v && e[1] == u)) {
						reach = true
						break
					}
				}
			}
			if reach {
				count++
				sender = u + 1
			}
		}
		if count == 1 {
			out[v] = sender
		}
	}
	return out
}

// recordingProc broadcasts per a random script and records the sender node
// of each reception.
type recordingProc struct {
	node   int
	script []bool
	heard  []int
	limit  int
	round  int
}

func (p *recordingProc) Broadcast(round int) sim.Message {
	if round < len(p.script) && p.script[round] {
		return refMsg{from: p.node + 1}
	}
	return nil
}

type refMsg struct{ from int }

func (m refMsg) From() int    { return m.from }
func (m refMsg) BitSize() int { return 16 }

func (p *recordingProc) Receive(round int, msg sim.Message) {
	got := 0
	if msg != nil {
		got = msg.From()
	}
	p.heard = append(p.heard, got)
	p.round++
}
func (p *recordingProc) Output() int { return 0 }
func (p *recordingProc) Done() bool  { return p.round >= p.limit }

// capturingAdversary wraps an inner adversary and records its choices so the
// reference model can replay them.
type capturingAdversary struct {
	inner adversary.Adversary
	log   []map[int]bool
}

func (c *capturingAdversary) Reach(round int, bcast []bool) []int {
	got := c.inner.Reach(round, bcast)
	m := make(map[int]bool, len(got))
	for _, idx := range got {
		m[idx] = true
	}
	c.log = append(c.log, m)
	return got
}

// TestEngineMatchesReferenceModel drives the engine with random broadcast
// scripts and a random adversary, then replays every round through the
// naive specification and compares receptions exactly.
func TestEngineMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xEF))
		n := 8 + rng.IntN(24)
		net, err := gen.RandomGeometric(gen.GeometricConfig{N: n, TargetDegree: 6}, rng)
		if err != nil {
			// Tiny sparse instances occasionally fail to connect.
			return true
		}
		rounds := 12
		procs := make([]sim.Process, n)
		recs := make([]*recordingProc, n)
		for v := 0; v < n; v++ {
			script := make([]bool, rounds)
			for r := range script {
				script[r] = rng.Float64() < 0.3
			}
			recs[v] = &recordingProc{node: v, script: script, limit: rounds}
			procs[v] = recs[v]
		}
		adv := &capturingAdversary{
			inner: adversary.NewUniformP(net, 0.5, rand.New(rand.NewPCG(seed, 2))),
		}
		runner, err := sim.NewRunner(sim.Config{
			Net:       net,
			Adversary: adv,
			Processes: procs,
			MaxRounds: rounds,
		})
		if err != nil {
			return false
		}
		if _, err := runner.Run(); err != nil {
			return false
		}
		// Replay.
		for r := 0; r < rounds; r++ {
			bcast := make([]bool, n)
			for v := 0; v < n; v++ {
				bcast[v] = recs[v].script[r]
			}
			want := refReception(net, bcast, adv.log[r])
			for v := 0; v < n; v++ {
				if recs[v].heard[r] != want[v] {
					t.Logf("seed=%d round=%d node=%d: engine heard %d, reference says %d",
						seed, r, v, recs[v].heard[r], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
