package sim

import (
	"fmt"
	"sync"
)

// collectBroadcasts invokes Broadcast on every process, sequentially or on a
// worker pool depending on Config.Workers, and validates message sizes.
func (r *Runner) collectBroadcasts() {
	n := len(r.cfg.Processes)
	if r.cfg.Workers <= 1 || n < 64 {
		for v, p := range r.cfg.Processes {
			r.msgs[v] = p.Broadcast(r.round)
			r.bcast[v] = r.msgs[v] != nil
		}
	} else {
		r.parallelEach(func(v int) {
			r.msgs[v] = r.cfg.Processes[v].Broadcast(r.round)
			r.bcast[v] = r.msgs[v] != nil
		})
	}
	if r.cfg.MessageBits > 0 {
		for v, m := range r.msgs {
			if m != nil && m.BitSize() > r.cfg.MessageBits {
				r.fatalErr = &SizeError{Node: v, Bits: m.BitSize(), Bound: r.cfg.MessageBits}
				return
			}
		}
	}
}

// deliver dispatches the round outcome to every process according to the
// model's reception rule, recording stats and trace deliveries.
func (r *Runner) deliver() {
	n := len(r.cfg.Processes)
	// Stats and the delivery list are computed sequentially so the trace is
	// deterministic; the Receive callbacks may then fan out.
	for v := 0; v < n; v++ {
		if !r.bcast[v] {
			switch {
			case r.cnt[v] == 1:
				r.stats.Deliveries++
				if r.cfg.Observer != nil {
					r.dList = append(r.dList, Delivery{To: v, Msg: r.msgs[r.from[v]]})
				}
			case r.cnt[v] > 1:
				r.stats.Collisions++
			}
		}
	}
	recv := func(v int) {
		p := r.cfg.Processes[v]
		if r.bcast[v] {
			p.Receive(r.round, r.msgs[v])
			return
		}
		if r.cnt[v] == 1 {
			p.Receive(r.round, r.msgs[r.from[v]])
			return
		}
		p.Receive(r.round, nil)
	}
	if r.cfg.Workers <= 1 || n < 64 {
		for v := 0; v < n; v++ {
			recv(v)
		}
	} else {
		r.parallelEach(recv)
	}
}

// parallelEach applies fn to every node index using Config.Workers
// goroutines. Each worker owns a contiguous stripe, so per-process state is
// touched by exactly one goroutine per phase and the result is identical to
// the sequential loop.
func (r *Runner) parallelEach(fn func(v int)) {
	n := len(r.cfg.Processes)
	workers := r.cfg.Workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				fn(v)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// SizeError reports a message exceeding the configured bit bound.
type SizeError struct {
	Node  int
	Bits  int
	Bound int
}

// Error implements error.
func (e *SizeError) Error() string {
	return fmt.Sprintf("sim: node %d sent %d bits, bound is %d", e.Node, e.Bits, e.Bound)
}

// Is reports whether target is ErrMessageTooLarge.
func (e *SizeError) Is(target error) bool { return target == ErrMessageTooLarge }
