package sim

import (
	"fmt"
	"sync"
)

// parallelThreshold is the minimum active-set size at which Workers > 1
// actually fans callbacks out; below it the goroutine overhead dominates and
// the engine stays sequential. The execution is identical either way.
const parallelThreshold = 64

// collectBroadcasts invokes Broadcast on every active process, sequentially
// or on a worker pool depending on Config.Workers, builds the broadcaster
// list, and validates message sizes. Done processes are skipped entirely:
// by contract they never broadcast again.
func (r *Runner) collectBroadcasts() {
	// msgs[v] is written only for broadcasters: the slot is read solely
	// under bcast[v] (self-reception) or via from[v] (which always names a
	// current broadcaster), so stale entries are unreachable and the
	// common silent round costs no interface stores or write barriers.
	r.bList = r.bList[:0]
	if r.cfg.Workers <= 1 || len(r.active) < parallelThreshold {
		// Sequential path: walk only the awake processes, parking the
		// ones that declare a sleep in the wake calendar.
		nr := r.runnable[:0]
		for _, v := range r.runnable {
			if !r.isActive[v] {
				continue
			}
			if w := r.sleepUntil[v]; w > r.round {
				r.heapPush(int64(w)<<20 | int64(v))
				continue
			}
			nr = append(nr, v)
			if m := r.broadcast(int(v)); m != nil {
				r.msgs[v] = m
				r.bcast[v] = true
				r.bList = append(r.bList, int(v))
			} else if r.bcast[v] {
				r.bcast[v] = false
			}
		}
		r.runnable = nr
	} else {
		r.parallelEach(func(v int) {
			if m := r.broadcast(v); m != nil {
				r.msgs[v] = m
				r.bcast[v] = true
			} else if r.bcast[v] {
				r.bcast[v] = false
			}
		})
		for _, v := range r.active {
			if r.bcast[v] {
				r.bList = append(r.bList, int(v))
			}
		}
	}
	if r.cfg.MessageBits > 0 {
		// Only broadcasters carry messages, so the bound is checked on
		// the (usually short) broadcaster list instead of all n slots.
		for _, v := range r.bList {
			if m := r.msgs[v]; m.BitSize() > r.cfg.MessageBits {
				r.fatalErr = &SizeError{Node: v, Bits: m.BitSize(), Bound: r.cfg.MessageBits}
				return
			}
		}
	}
}

// broadcast asks the process at node v for its round message, letting
// SleepBroadcasters declare a wake round: while asleep the process is
// guaranteed silent and randomness-free, so the call is skipped outright.
func (r *Runner) broadcast(v int) Message {
	if r.sleepUntil[v] > r.round {
		return nil
	}
	if s := r.sleepers[v]; s != nil {
		m, wake := s.BroadcastSleep(r.round)
		if m == nil && wake > r.round+1 {
			// Never sleep past a fixed-length process's final round:
			// driving it there flips Done for outside observers.
			if d := r.deadline[v]; d >= 0 && wake > d {
				wake = d
			}
			r.sleepUntil[v] = wake
		}
		return m
	}
	return r.cfg.Processes[v].Broadcast(r.round)
}

// deliver dispatches the round outcome to every active process according to
// the model's reception rule. Stats were already recorded sequentially (see
// recordReceptions), so the callbacks may fan out.
//
// When every process is a PassiveReceiver, nil and self receptions are
// no-ops by contract, so only genuine deliveries are dispatched: the loop
// walks the hit nodes instead of the whole active set.
func (r *Runner) deliver() {
	if r.allPassive {
		for _, v := range r.touched {
			if !r.bcast[v] && r.cnt[v] == 1 && r.isActive[v] {
				r.cfg.Processes[v].Receive(r.round, r.msgs[r.from[v]])
			}
		}
		return
	}
	if r.cfg.Workers <= 1 || len(r.active) < parallelThreshold {
		for _, v := range r.active {
			r.receive(int(v))
		}
	} else {
		r.parallelEach(r.receive)
	}
}

// receive delivers the round outcome to the process at node v: its own
// message if it broadcast, the unique reaching message if exactly one
// broadcaster reached it, and ⊥ otherwise.
func (r *Runner) receive(v int) {
	p := r.cfg.Processes[v]
	if r.bcast[v] {
		if !r.passive[v] {
			p.Receive(r.round, r.msgs[v])
		}
		return
	}
	if r.cnt[v] == 1 {
		p.Receive(r.round, r.msgs[r.from[v]])
		return
	}
	if !r.passive[v] {
		p.Receive(r.round, nil)
	}
}

// parallelEach applies fn to every active node index using Config.Workers
// goroutines. Each worker owns a contiguous stripe of the active set, so
// per-process state is touched by exactly one goroutine per phase and the
// result is identical to the sequential loop.
func (r *Runner) parallelEach(fn func(v int)) {
	active := r.active
	workers := r.cfg.Workers
	if workers > len(active) {
		workers = len(active)
	}
	var wg sync.WaitGroup
	chunk := (len(active) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(active))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(stripe []int32) {
			defer wg.Done()
			for _, v := range stripe {
				fn(int(v))
			}
		}(active[lo:hi])
	}
	wg.Wait()
}

// SizeError reports a message exceeding the configured bit bound.
type SizeError struct {
	Node  int
	Bits  int
	Bound int
}

// Error implements error.
func (e *SizeError) Error() string {
	return fmt.Sprintf("sim: node %d sent %d bits, bound is %d", e.Node, e.Bits, e.Bound)
}

// Is reports whether target is ErrMessageTooLarge.
func (e *SizeError) Is(target error) bool { return target == ErrMessageTooLarge }
