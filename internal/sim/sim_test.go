package sim_test

import (
	"errors"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
	"dualradio/internal/sim"
)

// testMsg is a minimal message.
type testMsg struct {
	from int
	bits int
}

func (m testMsg) From() int    { return m.from }
func (m testMsg) BitSize() int { return m.bits }

// scriptProc broadcasts according to a per-round script and records
// receptions.
type scriptProc struct {
	id     int
	script map[int]sim.Message // round -> message
	recv   map[int]sim.Message // round -> received (nil entries recorded too)
	rounds int
	limit  int
}

var _ sim.Process = (*scriptProc)(nil)

func newScriptProc(id, limit int) *scriptProc {
	return &scriptProc{
		id:     id,
		script: map[int]sim.Message{},
		recv:   map[int]sim.Message{},
		limit:  limit,
	}
}

func (p *scriptProc) Broadcast(round int) sim.Message { return p.script[round] }
func (p *scriptProc) Receive(round int, msg sim.Message) {
	p.recv[round] = msg
	p.rounds++
}
func (p *scriptProc) Output() int { return 0 }
func (p *scriptProc) Done() bool  { return p.rounds >= p.limit }

// lineNet builds a 4-node unit line: G = consecutive, G' adds skip-one gray
// edges.
func lineNet(t *testing.T) *dualgraph.Network {
	t.Helper()
	n := 4
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	coords := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		coords[i] = geom.Point{X: float64(i)}
	}
	add := func(gr *graph.Builder, u, v int) {
		t.Helper()
		if err := gr.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		add(g, i, i+1)
		add(gp, i, i+1)
	}
	for i := 0; i+2 < n; i++ {
		add(gp, i, i+2)
	}
	return dualgraph.New(g.Build(), gp.Build(), coords, 2)
}

func runScripted(t *testing.T, net *dualgraph.Network, procs []*scriptProc,
	adv adversary.Adversary, bits int) (*sim.Runner, sim.Stats) {
	t.Helper()
	ps := make([]sim.Process, len(procs))
	for i, p := range procs {
		ps[i] = p
	}
	r, err := sim.NewRunner(sim.Config{
		Net:         net,
		Adversary:   adv,
		Processes:   ps,
		MessageBits: bits,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil && !errors.Is(err, sim.ErrMessageTooLarge) {
		t.Fatal(err)
	}
	return r, st
}

// TestSoloDelivery: a single broadcaster reaches exactly its G neighbors.
func TestSoloDelivery(t *testing.T) {
	net := lineNet(t)
	procs := make([]*scriptProc, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1)
	}
	msg := testMsg{from: 2, bits: 8}
	procs[1].script[0] = msg
	_, st := runScripted(t, net, procs, nil, 0)
	if procs[0].recv[0] != msg || procs[2].recv[0] != msg {
		t.Error("G neighbors of node 1 should receive")
	}
	if procs[3].recv[0] != nil {
		t.Error("node 3 is not a G neighbor and gray edges are inactive")
	}
	if procs[1].recv[0] != msg {
		t.Error("broadcaster receives its own message")
	}
	if st.Deliveries != 2 || st.Broadcasts != 1 || st.Collisions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCollision: two broadcasters reaching the same node produce ⊥.
func TestCollision(t *testing.T) {
	net := lineNet(t)
	procs := make([]*scriptProc, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1)
	}
	procs[0].script[0] = testMsg{from: 1, bits: 8}
	procs[2].script[0] = testMsg{from: 3, bits: 8}
	_, st := runScripted(t, net, procs, nil, 0)
	if procs[1].recv[0] != nil {
		t.Error("node 1 hears both broadcasters: collision expected")
	}
	// Node 3 hears only node 2 -> delivery.
	if procs[3].recv[0] == nil || procs[3].recv[0].From() != 3 {
		t.Error("node 3 should receive from node 2 (id 3)")
	}
	if st.Collisions != 1 {
		t.Errorf("collisions = %d", st.Collisions)
	}
}

// TestBroadcasterDeaf: a broadcaster hears itself even when a neighbor also
// broadcasts.
func TestBroadcasterDeaf(t *testing.T) {
	net := lineNet(t)
	procs := make([]*scriptProc, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1)
	}
	m0 := testMsg{from: 1, bits: 8}
	m1 := testMsg{from: 2, bits: 8}
	procs[0].script[0] = m0
	procs[1].script[0] = m1
	runScripted(t, net, procs, nil, 0)
	if procs[0].recv[0] != m0 || procs[1].recv[0] != m1 {
		t.Error("broadcasters must receive their own messages")
	}
}

// TestGrayActivation: with the Full adversary a gray edge delivers (or
// collides).
func TestGrayActivation(t *testing.T) {
	net := lineNet(t)
	procs := make([]*scriptProc, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1)
	}
	msg := testMsg{from: 2, bits: 8}
	procs[1].script[0] = msg
	_, st := runScripted(t, net, procs, adversary.NewFull(net), 0)
	// Gray edge (1,3) now delivers node 1's broadcast to node 3.
	if procs[3].recv[0] != msg {
		t.Error("gray edge should deliver under Full adversary")
	}
	if st.GrayActivations == 0 {
		t.Error("gray activations not counted")
	}
}

// TestGrayCausesCollision: the adversary can turn a G delivery into ⊥.
func TestGrayCausesCollision(t *testing.T) {
	net := lineNet(t)
	procs := make([]*scriptProc, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1)
	}
	procs[1].script[0] = testMsg{from: 2, bits: 8} // node 1 -> reaches node 0 reliably
	procs[2].script[0] = testMsg{from: 3, bits: 8} // node 2: gray edge (0,2)
	_, _ = runScripted(t, net, procs, adversary.NewFull(net), 0)
	if procs[0].recv[0] != nil {
		t.Error("gray edge (0,2) active: node 0 must hear a collision")
	}
}

// TestMessageSizeEnforced: exceeding b aborts with ErrMessageTooLarge.
func TestMessageSizeEnforced(t *testing.T) {
	net := lineNet(t)
	procs := make([]*scriptProc, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 2)
	}
	procs[0].script[0] = testMsg{from: 1, bits: 100}
	r, _ := runScripted(t, net, procs, nil, 64)
	if !errors.Is(r.Err(), sim.ErrMessageTooLarge) {
		t.Errorf("want ErrMessageTooLarge, got %v", r.Err())
	}
	var se *sim.SizeError
	if !errors.As(r.Err(), &se) || se.Bits != 100 || se.Bound != 64 {
		t.Errorf("size error detail = %+v", se)
	}
}

// TestMaxRoundsCap: executions stop at the round cap.
func TestMaxRoundsCap(t *testing.T) {
	net := lineNet(t)
	procs := make([]sim.Process, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1<<30) // never done
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MaxRounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 7 || st.AllDone {
		t.Errorf("stats = %+v", st)
	}
}

// TestRunUntil stops when the condition fires.
func TestRunUntil(t *testing.T) {
	net := lineNet(t)
	procs := make([]sim.Process, 4)
	for v := range procs {
		procs[v] = newScriptProc(v+1, 1<<30)
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntil(func() bool { return r.Round() >= 3 }); err != nil {
		t.Fatal(err)
	}
	if r.Round() != 3 {
		t.Errorf("stopped at round %d", r.Round())
	}
}

// TestConfigValidation rejects broken configurations.
func TestConfigValidation(t *testing.T) {
	net := lineNet(t)
	if _, err := sim.NewRunner(sim.Config{Net: nil}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := sim.NewRunner(sim.Config{Net: net, Processes: make([]sim.Process, 2)}); err == nil {
		t.Error("process count mismatch accepted")
	}
}
