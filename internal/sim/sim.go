// Package sim executes algorithms in the dual graph radio network model
// (Section 2 of Censor-Hillel et al., PODC 2011). Executions proceed in
// synchronous rounds. Each round every process decides whether to broadcast;
// the adversary then fixes a reach set consisting of all reliable edges plus
// a chosen subset of unreliable edges; finally each node receives according
// to the model's collision rule:
//
//   - a broadcaster receives only its own message;
//   - a silent node with exactly one broadcasting reach-neighbor receives
//     that neighbor's message;
//   - otherwise the node receives ⊥ (there is no collision detection).
//
// The engine is deterministic for a fixed seed and offers both a sequential
// round loop and a parallel loop that fans process callbacks out over
// goroutines with barrier synchronization; both produce identical executions.
//
// Performance: the runner maintains an active set of processes that are not
// yet Done and an incremental undecided counter, so each round costs
// O(active + hits) engine work rather than O(n); per-round buffers (hit
// counters, broadcaster and delivery lists, adversary reach slices) are
// reused across rounds.
package sim

import (
	"errors"
	"fmt"
	"slices"

	"dualradio/internal/adversary"
	"dualradio/internal/dualgraph"
)

// Message is a broadcast payload. Concrete message types are defined by the
// algorithms; the engine needs only the sender id (for tracing) and the
// encoded size in bits (to enforce the model's b-bit message bound).
type Message interface {
	// From returns the sender's process id.
	From() int
	// BitSize returns the encoded message size in bits.
	BitSize() int
}

// Process is a per-node protocol automaton driven by the engine. All methods
// are invoked from a single goroutine at a time; a process never observes
// concurrent calls.
//
// Once Done reports true the engine stops driving the process: neither
// Broadcast nor Receive is called again (a done process never broadcasts by
// contract, and its outputs are frozen).
//
// A process whose protocol has a fixed total length may additionally expose
// a `Rounds() int` method. The engine then treats the process as done once
// Broadcast has been driven past round Rounds()-1, without querying Done
// every round. Such a process must become done exactly there: Done must not
// report true earlier and must not flip inside Receive.
type Process interface {
	// Broadcast is called at the start of each round and returns the
	// message to transmit, or nil to stay silent.
	Broadcast(round int) Message
	// Receive reports the round's outcome to the process: the received
	// message, or nil for ⊥ (silence or collision — indistinguishable).
	// A broadcaster always receives its own message.
	Receive(round int, msg Message)
	// Output returns the process's current output: Undecided, 0, or 1.
	Output() int
	// Done reports whether the process has completed its protocol and
	// will never broadcast again.
	Done() bool
}

// Undecided is the Output value of a process that has not yet output 0 or 1.
const Undecided = -1

// ErrMessageTooLarge is returned when a process emits a message exceeding
// the configured b-bit bound.
var ErrMessageTooLarge = errors.New("sim: message exceeds size bound")

// Stats aggregates execution counters.
type Stats struct {
	Rounds          int // rounds executed
	Broadcasts      int // total broadcast attempts
	Deliveries      int // successful unique receptions (excluding self)
	Collisions      int // receiver-rounds with 2+ reachable broadcasters
	DecidedRound    int // first round after which every output != Undecided, or -1
	AllDone         bool
	GrayActivations int // unreliable edges activated by the adversary
}

// Observer receives a callback after every executed round. Slices passed to
// OnRound are reused between rounds and must not be retained.
type Observer interface {
	OnRound(round int, broadcasters []int, delivered []Delivery)
}

// Delivery records one successful reception.
type Delivery struct {
	To  int // receiving node index
	Msg Message
}

// Config assembles an execution.
type Config struct {
	Net       *dualgraph.Network
	Adversary adversary.Adversary // nil means adversary.None
	Processes []Process           // indexed by node
	// MessageBits is the model's b bound on message size in bits;
	// 0 disables enforcement.
	MessageBits int
	// MaxRounds caps the execution length.
	MaxRounds int
	// Observer, if non-nil, is invoked after every round.
	Observer Observer
	// Workers > 1 fans the Broadcast and Receive callbacks out over this
	// many goroutines per round. The execution is identical to the
	// sequential one because processes own disjoint state and RNG streams.
	Workers int
	// Leap enables the leap-ahead event engine: processes implementing
	// LeapBroadcaster are driven through BroadcastLeap (which samples the
	// next broadcast round geometrically instead of flipping a coin per
	// round), and whenever every awake process is parked in the wake
	// calendar the round clock jumps straight to the earliest scheduled
	// wake. Skipped rounds execute trivially (no broadcasters, no
	// deliveries) and still count in Stats.Rounds, but the Observer is not
	// invoked for them and stateful adversaries see one Skip call (see
	// adversary.Skipper) instead of per-round Reach calls. The execution is
	// statistically equivalent to the exact engine — identical in
	// distribution, NOT bit-identical, because the PCG streams are consumed
	// in a different order.
	Leap bool
}

// Runner executes a configured execution round by round.
type Runner struct {
	cfg   Config
	adv   adversary.Adversary
	ladv  adversary.ListAdversary    // non-nil when adv accepts broadcaster lists
	cadv  adversary.CountedAdversary // non-nil when adv reuses engine hit counts
	gray  [][2]int
	round int
	stats Stats
	msgs  []Message
	bcast []bool
	cnt   []int32
	from  []int32
	// Reusable per-round buffers.
	touched []int32
	bList   []int
	dList   []Delivery
	// Active-set bookkeeping: the not-yet-Done processes in ascending node
	// order. deadline[v] >= 0 caches a fixed-length process's total round
	// count, so completion is an integer compare instead of an interface
	// call; -1 falls back to querying Done each round. firstUndecided is
	// the monotone scan pointer behind AllDecided.
	active         []int32
	isActive       []bool
	deadline       []int
	firstUndecided int
	// Sleep bookkeeping: sleepers[v] is non-nil for SleepBroadcaster
	// processes; sleepUntil[v] is the round before which Broadcast calls
	// are skipped. passive[v] marks PassiveReceiver processes; when every
	// process is passive the delivery phase walks only the hit nodes.
	sleepers   []SleepBroadcaster
	sleepUntil []int
	passive    []bool
	allPassive bool
	// Wake calendar: runnable is the awake subset of active (ascending);
	// sleeping processes sit in a min-heap of (wakeRound, node) pairs and
	// are merged back when their round arrives, so a round's broadcast
	// loop costs O(runnable) rather than O(active). Maintained by the
	// sequential path only; the parallel path falls back to per-process
	// sleep checks over the full active set.
	runnable []int32
	wakeHeap []int64
	scratch  []int32
	// uniformDeadline >= 0 when every process shares one fixed schedule
	// length: the whole fleet completes in the same round, so the
	// per-round sweep is a single comparison. -1 = heterogeneous.
	uniformDeadline int
	fatalErr        error
}

// fixedLength is the optional Process extension for protocols with a fixed
// total round count (see the Process contract).
type fixedLength interface {
	Rounds() int
}

// SleepBroadcaster is an optional Process extension for protocols that can
// tell the engine, whenever they stay silent, the earliest future round in
// which they might broadcast again (or consume randomness deciding to). The
// engine then skips their Broadcast calls for the intervening rounds — a
// knocked-out MIS competitor sleeps to its next epoch, a covered CCDS node
// sleeps through the banned-list phase, an unwoken asynchronous process
// sleeps to its wake-up round.
//
// BroadcastSleep must behave exactly like Broadcast, additionally returning
// a wake round w with the guarantee that skipping the Broadcast calls for
// every round in (round, w) leaves the execution bit-identical: the process
// would have returned nil and changed no observable state in each of them.
//
// The coin pre-consumption rule. Bit-identity constrains how randomness may
// be handled while silent, and the exact engine's correctness hangs on it.
// Protocols satisfy it in exactly one of two ways:
//
//   - No randomness while silent: the skipped rounds would not have touched
//     the process's RNG at all, so the stream position is trivially
//     preserved (the MIS and banned-list CCDS schedules).
//   - Pre-consuming the skipped draws: when every round — silent or not —
//     costs a fixed number of draws, BroadcastSleep burns the skipped
//     rounds' draws before declaring the sleep, leaving the stream exactly
//     where a per-round drive would have left it (the enumeration-connect
//     schedule, whose every round costs one coin).
//
// This rule is load-bearing for the exact engine only. The leap engine
// (Config.Leap) drives LeapBroadcaster processes instead, whose contract
// abandons bit-identity and therefore owes nothing for skipped rounds.
//
// Receive delivery is unaffected by sleeping; a reception may postpone the
// process's next broadcast but must never move it earlier than the declared
// wake round.
type SleepBroadcaster interface {
	Process
	BroadcastSleep(round int) (Message, int)
}

// LeapBroadcaster is the optional Process extension the leap engine
// (Config.Leap) drives in place of Broadcast/BroadcastSleep. Like
// BroadcastSleep it returns the round's message together with a wake round w
// such that the process is guaranteed silent for every round in (round, w) —
// but the guarantee is distributional, not bit-identical: BroadcastLeap may
// sample its next broadcast round directly from the geometric distribution
// of the per-round coin's first success instead of flipping the coin each
// round, so skipped rounds owe no randomness at all (no draws, no
// pre-consumption). The law of the execution must equal the exact engine's;
// the realized trajectory for a fixed seed generally differs.
//
// A pre-sampled broadcast round may be invalidated by a reception that
// changes the process's state before the round arrives (a knockout, a stop
// order). Discarding the stale sample and re-deciding from the current state
// at the wake round preserves the law: the discarded coins correspond to
// stream positions the exact schedule would never have consumed after the
// same state change, and the geometric distribution is memoryless. As with
// BroadcastSleep, a reception may postpone the next broadcast but never move
// it earlier than the declared wake round.
type LeapBroadcaster interface {
	Process
	BroadcastLeap(round int) (Message, int)
}

// leapAdapter plugs a LeapBroadcaster into the engine's sleep-calendar
// machinery, which dispatches through the SleepBroadcaster shape.
type leapAdapter struct{ LeapBroadcaster }

func (a leapAdapter) BroadcastSleep(round int) (Message, int) {
	return a.BroadcastLeap(round)
}

// PassiveReceiver is an optional marker for processes whose Receive is a
// no-op for nil messages (silence/collision) and for their own broadcast
// echo: no state change, no randomness. The engine then dispatches Receive
// only for genuine foreign deliveries, making the delivery phase cost
// O(deliveries) instead of O(active).
type PassiveReceiver interface {
	Process
	// PassiveReceive is never called; it only marks the contract.
	PassiveReceive()
}

// NewRunner validates the configuration and returns a ready Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Net == nil {
		return nil, errors.New("sim: nil network")
	}
	n := cfg.Net.N()
	if len(cfg.Processes) != n {
		return nil, fmt.Errorf("sim: %d processes for %d nodes", len(cfg.Processes), n)
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = adversary.None{}
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 22
	}
	r := &Runner{
		cfg:        cfg,
		adv:        adv,
		gray:       cfg.Net.GrayEdges(),
		msgs:       make([]Message, n),
		bcast:      make([]bool, n),
		cnt:        make([]int32, n),
		from:       make([]int32, n),
		active:     make([]int32, 0, n),
		isActive:   make([]bool, n),
		deadline:   make([]int, n),
		sleepers:   make([]SleepBroadcaster, n),
		sleepUntil: make([]int, n),
		passive:    make([]bool, n),
	}
	if la, ok := adv.(adversary.ListAdversary); ok {
		r.ladv = la
	}
	if ca, ok := adv.(adversary.CountedAdversary); ok {
		r.cadv = ca
	}
	r.allPassive = true
	r.uniformDeadline = -1
	for v, p := range cfg.Processes {
		r.deadline[v] = -1
		if fl, ok := p.(fixedLength); ok {
			r.deadline[v] = fl.Rounds()
		}
		switch {
		case v == 0:
			r.uniformDeadline = r.deadline[v]
		case r.uniformDeadline != r.deadline[v]:
			r.uniformDeadline = -1
		}
		if cfg.Leap {
			// Leap mode prefers the distribution-preserving fast path;
			// processes without one keep their exact sleep behavior.
			if lb, ok := p.(LeapBroadcaster); ok {
				r.sleepers[v] = leapAdapter{lb}
			} else if sb, ok := p.(SleepBroadcaster); ok {
				r.sleepers[v] = sb
			}
		} else if sb, ok := p.(SleepBroadcaster); ok {
			r.sleepers[v] = sb
		}
		if _, ok := p.(PassiveReceiver); ok {
			r.passive[v] = true
		} else {
			r.allPassive = false
		}
		if !p.Done() {
			r.active = append(r.active, int32(v))
			r.isActive[v] = true
		}
	}
	r.runnable = append(r.runnable, r.active...)
	if n > wakeNodeMask {
		// Node ids beyond the heap key width cannot use the wake
		// calendar; disable sleeping rather than corrupt keys.
		for i := range r.sleepers {
			r.sleepers[i] = nil
		}
	}
	r.stats.DecidedRound = -1
	return r, nil
}

// wakeRunnable merges every process whose wake round has arrived back into
// the runnable list, preserving ascending node order.
func (r *Runner) wakeRunnable() {
	if len(r.wakeHeap) == 0 || int(r.wakeHeap[0]>>20) > r.round {
		return
	}
	woken := r.scratch[:0]
	for len(r.wakeHeap) > 0 && int(r.wakeHeap[0]>>20) <= r.round {
		v := int32(r.wakeHeap[0] & wakeNodeMask)
		r.heapPop()
		if r.isActive[v] {
			woken = append(woken, v)
		}
	}
	if len(woken) == 0 {
		r.scratch = woken[:0]
		return
	}
	slices.Sort(woken)
	// Merge the sorted woken nodes into the (ascending) runnable list.
	merged := woken[len(woken):]
	i, j := 0, 0
	for i < len(r.runnable) && j < len(woken) {
		if r.runnable[i] < woken[j] {
			merged = append(merged, r.runnable[i])
			i++
		} else {
			merged = append(merged, woken[j])
			j++
		}
	}
	merged = append(merged, r.runnable[i:]...)
	merged = append(merged, woken[j:]...)
	r.runnable = append(r.runnable[:0], merged...)
	r.scratch = woken[:0]
}

// wakeNodeMask packs (wakeRound<<20 | node) into one heap key; 20 bits cover
// the engine's million-node ceiling while leaving 43 bits for rounds.
const wakeNodeMask = 1<<20 - 1

func (r *Runner) heapPush(key int64) {
	h := append(r.wakeHeap, key)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	r.wakeHeap = h
}

func (r *Runner) heapPop() {
	h := r.wakeHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && h[l] < h[small] {
			small = l
		}
		if rr < n && h[rr] < h[small] {
			small = rr
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	r.wakeHeap = h
}

// Round returns the number of rounds executed so far.
func (r *Runner) Round() int { return r.round }

// Stats returns a copy of the execution counters.
func (r *Runner) Stats() Stats { return r.stats }

// Err returns the first fatal error encountered (for example a message-size
// violation), or nil.
func (r *Runner) Err() error { return r.fatalErr }

// AllDecided reports whether every process has output 0 or 1. Decisions are
// permanent for every algorithm in this library (outputs never revert to
// Undecided), so a monotone scan pointer makes the check O(1) amortized:
// each process is queried only until it first reports a decision.
func (r *Runner) AllDecided() bool {
	procs := r.cfg.Processes
	for r.firstUndecided < len(procs) && procs[r.firstUndecided].Output() != Undecided {
		r.firstUndecided++
	}
	return r.firstUndecided == len(procs)
}

// ActiveCount returns the number of processes that are not yet Done.
func (r *Runner) ActiveCount() int { return len(r.active) }

// Step executes one round. It reports false when the execution has finished
// (all processes done, the round cap was reached, or a fatal error occurred).
func (r *Runner) Step() bool {
	if r.fatalErr != nil || r.round >= r.cfg.MaxRounds {
		return false
	}

	// Leap mode: when every awake process is parked in the wake calendar,
	// the intervening rounds are provably broadcast-free — jump the clock
	// straight to the earliest scheduled wake. (The runnable list is
	// maintained by the sequential collect path; when it is stale — the
	// parallel path leaves it at the full initial set — it is non-empty and
	// the jump simply never fires.)
	if r.cfg.Leap && len(r.runnable) == 0 && len(r.wakeHeap) > 0 {
		if next := int(r.wakeHeap[0] >> 20); next > r.round {
			target := min(next, r.cfg.MaxRounds)
			if skipped := target - r.round; skipped > 0 {
				if sk, ok := r.adv.(adversary.Skipper); ok {
					sk.Skip(r.round, skipped)
				}
				r.round = target
				r.stats.Rounds = r.round
			}
			if r.round >= r.cfg.MaxRounds {
				return false
			}
		}
	}

	// Phase 1: collect broadcast decisions from the runnable processes
	// and enforce the b-bit bound on the broadcasters (everyone else is
	// nil). Processes whose declared wake round has arrived rejoin first.
	r.wakeRunnable()
	r.collectBroadcasts()
	if r.fatalErr != nil {
		return false
	}
	r.stats.Broadcasts += len(r.bList)

	// Phase 2+3: reliable receptions are counted first, so a counting
	// adversary can reuse them instead of re-walking every broadcaster's
	// neighborhood; then the adversary fixes the reach set, and finally
	// the activated gray edges are folded into the same hit counters.
	g := r.cfg.Net.G()
	for _, u := range r.bList {
		for _, v := range g.Neighbors(u) {
			r.hit(int(v), u)
		}
	}
	var reach []int
	switch {
	case r.cadv != nil:
		reach = r.cadv.ReachCounted(r.round, r.bcast, r.bList, r.cnt, r.touched)
	case r.ladv != nil:
		reach = r.ladv.ReachList(r.round, r.bcast, r.bList)
	default:
		reach = r.adv.Reach(r.round, r.bcast)
	}
	r.stats.GrayActivations += len(reach)
	for _, idx := range reach {
		e := r.gray[idx]
		if r.bcast[e[0]] {
			r.hit(e[1], e[0])
		}
		if r.bcast[e[1]] {
			r.hit(e[0], e[1])
		}
	}

	// Phase 4: record stats over the hit nodes, then deliver the outcome
	// to every active process.
	r.recordReceptions()
	r.deliver()

	if r.cfg.Observer != nil {
		r.cfg.Observer.OnRound(r.round, r.bList, r.dList)
	}

	// Bookkeeping: reset hit counters, advance the clock, then sweep the
	// active set for new decisions and completed processes.
	for _, v := range r.touched {
		r.cnt[v] = 0
	}
	r.touched = r.touched[:0]
	r.round++
	r.stats.Rounds = r.round

	if r.uniformDeadline >= 0 {
		// Homogeneous fixed-length fleet: nobody completes before the
		// shared final round, and everybody completes at it.
		if r.round > r.uniformDeadline {
			for _, v := range r.active {
				r.bcast[v] = false
				r.msgs[v] = nil
				r.isActive[v] = false
			}
			r.active = r.active[:0]
		}
	} else {
		na := r.active[:0]
		for _, v := range r.active {
			if d := r.deadline[v]; d >= 0 {
				// Fixed-length protocol: done exactly once round
				// d has been driven (r.round already points past
				// it).
				if r.round <= d {
					na = append(na, v)
					continue
				}
			} else if !r.cfg.Processes[v].Done() {
				na = append(na, v)
				continue
			}
			// Clear per-node state so stale flags cannot leak into
			// later rounds' reach or delivery computations.
			r.bcast[v] = false
			r.msgs[v] = nil
			r.isActive[v] = false
		}
		r.active = na
	}

	if r.stats.DecidedRound < 0 && r.AllDecided() {
		r.stats.DecidedRound = r.round
	}
	if len(r.active) == 0 {
		r.stats.AllDone = true
		return false
	}
	return true
}

func (r *Runner) hit(v, from int) {
	if r.cnt[v] == 0 {
		r.touched = append(r.touched, int32(v))
	}
	r.cnt[v]++
	r.from[v] = int32(from)
}

// recordReceptions updates the delivery/collision counters and, when an
// observer is attached, the delivery list. Only nodes hit this round are
// visited; the list is sorted so observers see deliveries in node order,
// exactly as the previous full-scan engine produced them.
func (r *Runner) recordReceptions() {
	r.dList = r.dList[:0]
	if len(r.touched) == 0 {
		return
	}
	if r.cfg.Observer != nil {
		slices.Sort(r.touched)
	}
	for _, v := range r.touched {
		if r.bcast[v] {
			continue
		}
		switch {
		case r.cnt[v] == 1:
			r.stats.Deliveries++
			if r.cfg.Observer != nil {
				r.dList = append(r.dList, Delivery{To: int(v), Msg: r.msgs[r.from[v]]})
			}
		case r.cnt[v] > 1:
			r.stats.Collisions++
		}
	}
}

// Run executes rounds until the execution finishes and returns the stats.
func (r *Runner) Run() (Stats, error) {
	for r.Step() {
	}
	return r.stats, r.fatalErr
}

// RunUntil executes rounds until cond returns true (checked after each
// round) or the execution finishes.
func (r *Runner) RunUntil(cond func() bool) (Stats, error) {
	for {
		if cond() {
			return r.stats, r.fatalErr
		}
		if !r.Step() {
			return r.stats, r.fatalErr
		}
	}
}

// Processes returns the configured processes (indexed by node).
func (r *Runner) Processes() []Process { return r.cfg.Processes }
