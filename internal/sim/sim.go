// Package sim executes algorithms in the dual graph radio network model
// (Section 2 of Censor-Hillel et al., PODC 2011). Executions proceed in
// synchronous rounds. Each round every process decides whether to broadcast;
// the adversary then fixes a reach set consisting of all reliable edges plus
// a chosen subset of unreliable edges; finally each node receives according
// to the model's collision rule:
//
//   - a broadcaster receives only its own message;
//   - a silent node with exactly one broadcasting reach-neighbor receives
//     that neighbor's message;
//   - otherwise the node receives ⊥ (there is no collision detection).
//
// The engine is deterministic for a fixed seed and offers both a sequential
// round loop and a parallel loop that fans process callbacks out over
// goroutines with barrier synchronization; both produce identical executions.
package sim

import (
	"errors"
	"fmt"

	"dualradio/internal/adversary"
	"dualradio/internal/dualgraph"
)

// Message is a broadcast payload. Concrete message types are defined by the
// algorithms; the engine needs only the sender id (for tracing) and the
// encoded size in bits (to enforce the model's b-bit message bound).
type Message interface {
	// From returns the sender's process id.
	From() int
	// BitSize returns the encoded message size in bits.
	BitSize() int
}

// Process is a per-node protocol automaton driven by the engine. All methods
// are invoked from a single goroutine at a time; a process never observes
// concurrent calls.
type Process interface {
	// Broadcast is called at the start of each round and returns the
	// message to transmit, or nil to stay silent.
	Broadcast(round int) Message
	// Receive reports the round's outcome to the process: the received
	// message, or nil for ⊥ (silence or collision — indistinguishable).
	// A broadcaster always receives its own message.
	Receive(round int, msg Message)
	// Output returns the process's current output: Undecided, 0, or 1.
	Output() int
	// Done reports whether the process has completed its protocol and
	// will never broadcast again.
	Done() bool
}

// Undecided is the Output value of a process that has not yet output 0 or 1.
const Undecided = -1

// ErrMessageTooLarge is returned when a process emits a message exceeding
// the configured b-bit bound.
var ErrMessageTooLarge = errors.New("sim: message exceeds size bound")

// Stats aggregates execution counters.
type Stats struct {
	Rounds          int // rounds executed
	Broadcasts      int // total broadcast attempts
	Deliveries      int // successful unique receptions (excluding self)
	Collisions      int // receiver-rounds with 2+ reachable broadcasters
	DecidedRound    int // first round after which every output != Undecided, or -1
	AllDone         bool
	GrayActivations int // unreliable edges activated by the adversary
}

// Observer receives a callback after every executed round. Slices passed to
// OnRound are reused between rounds and must not be retained.
type Observer interface {
	OnRound(round int, broadcasters []int, delivered []Delivery)
}

// Delivery records one successful reception.
type Delivery struct {
	To  int // receiving node index
	Msg Message
}

// Config assembles an execution.
type Config struct {
	Net       *dualgraph.Network
	Adversary adversary.Adversary // nil means adversary.None
	Processes []Process           // indexed by node
	// MessageBits is the model's b bound on message size in bits;
	// 0 disables enforcement.
	MessageBits int
	// MaxRounds caps the execution length.
	MaxRounds int
	// Observer, if non-nil, is invoked after every round.
	Observer Observer
	// Workers > 1 fans the Broadcast and Receive callbacks out over this
	// many goroutines per round. The execution is identical to the
	// sequential one because processes own disjoint state and RNG streams.
	Workers int
}

// Runner executes a configured execution round by round.
type Runner struct {
	cfg      Config
	adv      adversary.Adversary
	gray     [][2]int
	round    int
	stats    Stats
	msgs     []Message
	bcast    []bool
	cnt      []int32
	from     []int32
	touched  []int32
	bList    []int
	dList    []Delivery
	fatalErr error
}

// NewRunner validates the configuration and returns a ready Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Net == nil {
		return nil, errors.New("sim: nil network")
	}
	n := cfg.Net.N()
	if len(cfg.Processes) != n {
		return nil, fmt.Errorf("sim: %d processes for %d nodes", len(cfg.Processes), n)
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = adversary.None{}
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 22
	}
	r := &Runner{
		cfg:   cfg,
		adv:   adv,
		gray:  cfg.Net.GrayEdges(),
		msgs:  make([]Message, n),
		bcast: make([]bool, n),
		cnt:   make([]int32, n),
		from:  make([]int32, n),
	}
	r.stats.DecidedRound = -1
	return r, nil
}

// Round returns the number of rounds executed so far.
func (r *Runner) Round() int { return r.round }

// Stats returns a copy of the execution counters.
func (r *Runner) Stats() Stats { return r.stats }

// Err returns the first fatal error encountered (for example a message-size
// violation), or nil.
func (r *Runner) Err() error { return r.fatalErr }

// Step executes one round. It reports false when the execution has finished
// (all processes done, the round cap was reached, or a fatal error occurred).
func (r *Runner) Step() bool {
	if r.fatalErr != nil || r.round >= r.cfg.MaxRounds {
		return false
	}
	n := r.cfg.Net.N()

	// Phase 1: collect broadcast decisions.
	r.bList = r.bList[:0]
	r.collectBroadcasts()
	if r.fatalErr != nil {
		return false
	}
	for v := 0; v < n; v++ {
		if r.bcast[v] {
			r.bList = append(r.bList, v)
			r.stats.Broadcasts++
		}
	}

	// Phase 2: the adversary fixes the reach set.
	active := r.adv.Reach(r.round, r.bcast)
	r.stats.GrayActivations += len(active)

	// Phase 3: compute receptions.
	g := r.cfg.Net.G()
	for _, u := range r.bList {
		for _, v := range g.Neighbors(u) {
			r.hit(int(v), u)
		}
	}
	for _, idx := range active {
		e := r.gray[idx]
		if r.bcast[e[0]] {
			r.hit(e[1], e[0])
		}
		if r.bcast[e[1]] {
			r.hit(e[0], e[1])
		}
	}

	// Phase 4: deliver.
	r.dList = r.dList[:0]
	r.deliver()

	if r.cfg.Observer != nil {
		r.cfg.Observer.OnRound(r.round, r.bList, r.dList)
	}

	// Bookkeeping: reset hit counters, track decisions.
	for _, v := range r.touched {
		r.cnt[v] = 0
	}
	r.touched = r.touched[:0]
	r.round++
	r.stats.Rounds = r.round

	if r.stats.DecidedRound < 0 && r.allDecided() {
		r.stats.DecidedRound = r.round
	}
	if r.allDone() {
		r.stats.AllDone = true
		return false
	}
	return true
}

func (r *Runner) hit(v, from int) {
	if r.cnt[v] == 0 {
		r.touched = append(r.touched, int32(v))
	}
	r.cnt[v]++
	r.from[v] = int32(from)
}

// Run executes rounds until the execution finishes and returns the stats.
func (r *Runner) Run() (Stats, error) {
	for r.Step() {
	}
	return r.stats, r.fatalErr
}

// RunUntil executes rounds until cond returns true (checked after each
// round) or the execution finishes.
func (r *Runner) RunUntil(cond func() bool) (Stats, error) {
	for {
		if cond() {
			return r.stats, r.fatalErr
		}
		if !r.Step() {
			return r.stats, r.fatalErr
		}
	}
}

// Processes returns the configured processes (indexed by node).
func (r *Runner) Processes() []Process { return r.cfg.Processes }

func (r *Runner) allDecided() bool {
	for _, p := range r.cfg.Processes {
		if p.Output() == Undecided {
			return false
		}
	}
	return true
}

func (r *Runner) allDone() bool {
	for _, p := range r.cfg.Processes {
		if !p.Done() {
			return false
		}
	}
	return true
}
