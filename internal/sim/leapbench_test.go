package sim_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// benchmarkLeapMIS measures full MIS executions with either engine. The
// interesting regime is the quiet phase: in the late competition phases
// each process broadcasts with probability 2^-Θ(log n) per round, so the
// exact engine spends almost every round drawing coins that come up tails
// while the leap engine samples the next heads round geometrically and
// jumps. params lets the quiet variant stretch those phases; quiet mode
// additionally disables member re-announcements (the documented ablation
// switch), leaving late epochs globally broadcast-free — the regime where
// round-skipping turns O(rounds) into O(events).
//
// Single-core-CI caveat: the ratio reported here is per-core work, with
// Workers=1 on both sides. A parallel exact run can hide some per-round
// overhead behind goroutines; the leap engine removes the rounds instead,
// so the advantage persists — but absolute ns/op on shared CI runners is
// noisy and only the exact/leap ratio on one machine is meaningful.
func benchmarkLeapMIS(b *testing.B, n int, leap, quiet bool, params core.Params) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		b.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(n)
	det := detector.Complete(net, asg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs := make([]sim.Process, n)
		for v := 0; v < n; v++ {
			p, err := core.NewMISProcess(core.MISConfig{
				ID:                asg.ID(v),
				N:                 n,
				Detector:          det.Set(v),
				Filter:            core.FilterDetector,
				DisableReannounce: quiet,
				Params:            params,
				Rng:               rand.New(rand.NewPCG(uint64(i), uint64(v))),
			})
			if err != nil {
				b.Fatal(err)
			}
			procs[v] = p
		}
		r, err := sim.NewRunner(sim.Config{
			Net:       net,
			Adversary: adversary.NewCollisionSeeking(net),
			Processes: procs,
			Leap:      leap,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Rounds), "rounds")
	}
}

// quietParams stretches the competition phases, the regime the leap engine
// exists for: long stretches where every awake process holds a coin with
// success probability far below one per round.
func quietParams() core.Params {
	p := core.DefaultParams()
	p.Phase = 16
	return p
}

// bernoulliProc is the quiet-phase microcosm: the decay-style broadcast
// primitive every competition phase of the paper reduces to. Each round it
// broadcasts with probability p — under the exact contract that means one
// coin per round whether or not it transmits (so BroadcastSleep can never
// sleep: the next round needs the next draw), while the leap contract
// samples the round of the next success geometrically and parks in the
// wake calendar.
type bernoulliProc struct {
	id    int
	p     float64
	total int
	rng   *rand.Rand
	sent  int
	next  int // pre-sampled round of the next success; 0 = not sampled yet
}

func (b *bernoulliProc) flip(round int) sim.Message {
	if b.rng.Float64() < b.p {
		b.sent++
		return testMsg{from: b.id, bits: 8}
	}
	return nil
}

func (b *bernoulliProc) Broadcast(round int) sim.Message { return b.flip(round) }

func (b *bernoulliProc) BroadcastSleep(round int) (sim.Message, int) {
	// Every round costs a coin, so the earliest possibly-broadcasting
	// round is always the next one: the exact engine gets no skipping help.
	return b.flip(round), round + 1
}

// geom samples the number of failures before the first success of iid
// Bernoulli(p) trials: floor(ln U / ln(1-p)) with U uniform on (0, 1].
func (b *bernoulliProc) geom() int {
	return int(math.Log(1-b.rng.Float64()) / math.Log1p(-b.p))
}

func (b *bernoulliProc) BroadcastLeap(round int) (sim.Message, int) {
	if b.next < round {
		b.next = round + b.geom()
	}
	if round < b.next {
		return nil, b.next
	}
	// The pre-sampled success round: broadcast with certainty, then sample
	// the following success afresh (the geometric gap restarts after one).
	b.sent++
	b.next = round + 1 + b.geom()
	return testMsg{from: b.id, bits: 8}, b.next
}

func (b *bernoulliProc) Receive(int, sim.Message) {}
func (b *bernoulliProc) Output() int              { return 0 }
func (b *bernoulliProc) Done() bool               { return false }
func (b *bernoulliProc) Rounds() int              { return b.total }
func (b *bernoulliProc) PassiveReceive()          {}

var (
	_ sim.SleepBroadcaster = (*bernoulliProc)(nil)
	_ sim.LeapBroadcaster  = (*bernoulliProc)(nil)
)

// benchmarkQuietPhase is the headline quiet-phase measurement: n broadcast
// processes with per-round probability p over a long horizon. The exact
// engine owes one RNG draw per process per round (the bit-identity
// contract), so its cost is Θ(n·T); the leap engine's cost is Θ(events) —
// the broadcasts themselves plus the executed wake rounds.
func benchmarkQuietPhase(b *testing.B, leap bool, n, total int, p float64) {
	b.Helper()
	rng := rand.New(rand.NewPCG(9, 9))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs := make([]sim.Process, n)
		for v := 0; v < n; v++ {
			procs[v] = &bernoulliProc{
				id: v + 1, p: p, total: total,
				rng: rand.New(rand.NewPCG(uint64(i)+17, uint64(v))),
			}
		}
		r, err := sim.NewRunner(sim.Config{
			Net: net, Processes: procs, MaxRounds: total, Leap: leap,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Broadcasts), "broadcasts")
	}
}

// BenchmarkLeapVsExact is the headline engine comparison. The quiet pair is
// the E1-class quiet-phase regime distilled: 64 decay-primitive processes
// (exactly the MIS competition-phase broadcaster) with per-round probability
// 2^-10 over a 100k-round horizon — the exact engine owes 6.4M coin draws,
// the leap engine owes ~6k events. The mis pairs run the full MIS protocol
// end to end; there the competition resolves within a few epochs and the
// exact engine's own wake calendar already sleeps decided processes, so the
// end-to-end gap is modest — the quiet pair isolates what leap adds on top.
func BenchmarkLeapVsExact(b *testing.B) {
	b.Run("quiet-exact-64", func(b *testing.B) { benchmarkQuietPhase(b, false, 64, 100_000, 1.0/1024) })
	b.Run("quiet-leap-64", func(b *testing.B) { benchmarkQuietPhase(b, true, 64, 100_000, 1.0/1024) })
	b.Run("mis-exact-256", func(b *testing.B) { benchmarkLeapMIS(b, 256, false, false, core.DefaultParams()) })
	b.Run("mis-leap-256", func(b *testing.B) { benchmarkLeapMIS(b, 256, true, false, core.DefaultParams()) })
	b.Run("mis-quiet-exact-256", func(b *testing.B) { benchmarkLeapMIS(b, 256, false, true, quietParams()) })
	b.Run("mis-quiet-leap-256", func(b *testing.B) { benchmarkLeapMIS(b, 256, true, true, quietParams()) })
}
