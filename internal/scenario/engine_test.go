package scenario

import (
	"strings"
	"testing"
)

// TestEngineCanonicalDefault: "exact" is the canonical default — spelled
// out or omitted, the spec hashes identically to one that predates the
// engine field, so no stored result is orphaned by the field's existence.
func TestEngineCanonicalDefault(t *testing.T) {
	base := Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}}
	spelled := base
	spelled.Engine = EngineExact
	hBase := mustHash(t, base)
	if got := mustHash(t, spelled); got != hBase {
		t.Errorf("engine:\"exact\" hashes differently from the defaulted field:\n got %s\nwant %s", got, hBase)
	}
	if c := spelled.Canonical(); c.Engine != "" {
		t.Errorf("canonical spelling of exact engine is %q, want empty", c.Engine)
	}
	leap := base
	leap.Engine = EngineLeap
	if got := mustHash(t, leap); got == hBase {
		t.Error("leap engine hashes identically to exact; the engines are not bit-identical and must not share cache entries")
	}
	if err := leap.Validate(); err != nil {
		t.Errorf("leap engine rejected: %v", err)
	}
	bad := base
	bad.Engine = "warp"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Errorf("unknown engine validated: %v", err)
	}
}

// TestEngineCompileThreadsLeap: the compiled trial scenario carries the
// leap flag exactly when the spec selects the leap engine.
func TestEngineCompileThreadsLeap(t *testing.T) {
	for _, engine := range []string{"", EngineExact, EngineLeap} {
		comp, err := Compile(Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 16}, Engine: engine})
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		s, err := comp.Scenario(0)
		if err != nil {
			t.Fatal(err)
		}
		if want := engine == EngineLeap; s.Leap != want {
			t.Errorf("engine %q: scenario Leap=%v want %v", engine, s.Leap, want)
		}
	}
}

// TestSweepEngineAxis: the engine axis expands deterministically, children
// hash distinctly across engines, and exact/leap pairs of one workload sit
// adjacently (engine is the innermost axis).
func TestSweepEngineAxis(t *testing.T) {
	sw := SweepSpec{
		Name: "engine-sweep",
		Base: Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}},
		Axes: SweepAxes{
			N:      &Axis{Values: []float64{32, 64}},
			Engine: []string{EngineExact, EngineLeap},
		},
	}
	exp1, err := ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	exp2, err := ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if exp1.Hash() != exp2.Hash() {
		t.Error("sweep expansion not deterministic")
	}
	if len(exp1.Children) != 4 {
		t.Fatalf("expanded to %d children, want 4 (2 sizes × 2 engines)", len(exp1.Children))
	}
	seen := map[string]bool{}
	for _, c := range exp1.Children {
		if seen[c.Hash()] {
			t.Errorf("duplicate child hash %s; exact and leap must hash distinctly", c.Hash())
		}
		seen[c.Hash()] = true
	}
	// Engine is the innermost axis: children alternate exact, leap within
	// each size, and the spelled-out exact canonicalizes to the empty string.
	for i, c := range exp1.Children {
		wantLeap := i%2 == 1
		sp := c.Spec()
		if wantLeap && sp.Engine != EngineLeap {
			t.Errorf("child %d: engine %q, want leap in odd slots", i, sp.Engine)
		}
		if !wantLeap && sp.Engine != "" {
			t.Errorf("child %d: engine %q, want canonical exact (empty) in even slots", i, sp.Engine)
		}
		if !strings.Contains(sp.Name, "engine=") {
			t.Errorf("child %d name %q lacks the engine coordinate", i, sp.Name)
		}
	}
	// A sweep spelling the default engine explicitly expands to the same
	// children as one omitting the axis value's spelling.
	swDefault := sw
	swDefault.Axes.Engine = []string{"", EngineLeap}
	expD, err := ExpandSweep(swDefault)
	if err != nil {
		t.Fatal(err)
	}
	if expD.Hash() != exp1.Hash() {
		t.Error("engine axis spelling (\"\" vs \"exact\") changed the sweep hash")
	}
}
