package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecCanonicalization fuzzes the spec identity pipeline: parse →
// canonicalize → hash. The invariants it holds are the ones the whole
// durability story rests on (results are cached, persisted, and deduped
// across a fleet under the canonical hash):
//
//   - no input makes ParseSpec, Canonical, Validate, or CanonicalHash panic;
//   - hashing is deterministic: two CanonicalHash calls on the same spec
//     agree byte-for-byte;
//   - Canonical is idempotent: Canonical(Canonical(s)) == Canonical(s);
//   - hashing is canonicalization-invariant: a spec and its canonical form
//     hash identically, and so does the canonical form re-decoded from its
//     own JSON (the round trip a spec takes through the store).
//
// The seed corpus is every shipped preset plus hostile hand-written JSON
// (empty objects, zero values, non-finite floats, deep pointers set).
func FuzzSpecCanonicalization(f *testing.F) {
	for _, p := range Presets() {
		b, err := json.Marshal(p.Spec)
		if err != nil {
			f.Fatalf("marshal preset %s: %v", p.Name, err)
		}
		f.Add(b)
	}
	for _, hostile := range []string{
		`{}`,
		`null`,
		`{"algorithm":"mis","network":{"n":0}}`,
		`{"algorithm":"async_mis","network":{"n":3},"wake":{"max_delay":0}}`,
		`{"algorithm":"continuous_ccds","network":{"n":4},"dynamic":{"mistakes":0,"periods":0}}`,
		`{"algorithm":"ccds","network":{"n":8,"target_degree":1e308},"b":-1}`,
		`{"algorithm":"mis","network":{"n":5,"gray_prob":-0.5},"adversary":{"kind":"uniform","p":2}}`,
		`{"version":99,"algorithm":"tau_ccds","network":{"n":6,"tau":-3},"trial_retention":"bogus"}`,
		`{"algorithm":"mis","network":{"n":2},"seed":18446744073709551615,"timeout_ms":-1}`,
		`{"algorithm":"mis","network":{"n":8},"engine":"leap"}`,
		`{"algorithm":"ccds","network":{"n":8},"b":512,"engine":"exact"}`,
		`{"algorithm":"mis","network":{"n":8},"engine":"EXACT"}`,
		`{"algorithm":"tau-ccds","network":{"n":8,"tau":1},"b":512,"engine":""}`,
	} {
		f.Add([]byte(hostile))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		_ = s.Validate() // must not panic, even on garbage

		h1, err1 := s.CanonicalHash()
		h2, err2 := s.CanonicalHash()
		if (err1 == nil) != (err2 == nil) || h1 != h2 {
			t.Fatalf("CanonicalHash not deterministic: (%q, %v) vs (%q, %v)", h1, err1, h2, err2)
		}

		c := s.Canonical()
		if cc := c.Canonical(); !reflect.DeepEqual(c, cc) {
			t.Fatalf("Canonical not idempotent:\n first: %+v\nsecond: %+v", c, cc)
		}
		if err1 != nil {
			return // unhashable (e.g. non-finite floats); nothing left to hold
		}
		hc, err := c.CanonicalHash()
		if err != nil || hc != h1 {
			t.Fatalf("hash not canonicalization-invariant: spec %q vs canonical %q (err %v)", h1, hc, err)
		}

		// The store round trip: encode the canonical form, re-decode, re-hash.
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal canonical form: %v", err)
		}
		rt, err := ParseSpec(b)
		if err != nil {
			t.Fatalf("re-parse canonical form: %v", err)
		}
		hrt, err := rt.CanonicalHash()
		if err != nil || hrt != h1 {
			t.Fatalf("hash not round-trip stable: %q vs %q (err %v)", h1, hrt, err)
		}
	})
}
