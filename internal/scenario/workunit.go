package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// WorkUnit is one serializable child dispatch in a distributed fleet: the
// coordinator's job id, the lease that authorizes the execution, the retry
// attempt the dispatch represents, and the canonical spec to run. It is the
// wire format between a coordinator and its workers — a worker that parses
// a unit, compiles its spec, and runs it produces exactly the result the
// coordinator would have produced locally, because the spec is canonical
// and execution is deterministic in the canonical spec.
type WorkUnit struct {
	// Job is the coordinator-side job id the unit executes.
	Job string `json:"job"`
	// Lease identifies the grant; completions echo it so the coordinator
	// can match results to outstanding leases (and adopt results whose
	// lease has since expired).
	Lease string `json:"lease"`
	// Attempt is the retry attempt this dispatch represents (0 = first).
	// It is threaded to the worker's fault hook exactly like a local run's
	// attempt counter; it never affects the trials themselves.
	Attempt int `json:"attempt,omitempty"`
	// Spec is the canonical scenario spec to execute.
	Spec json.RawMessage `json:"spec"`
}

// ParseWorkUnit decodes a JSON work unit, rejecting unknown fields so a
// protocol mismatch between coordinator and worker surfaces as an error
// instead of silently running the wrong workload.
func ParseWorkUnit(data []byte) (WorkUnit, error) {
	var u WorkUnit
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		return WorkUnit{}, fmt.Errorf("scenario: parse work unit: %w", err)
	}
	if u.Job == "" || u.Lease == "" {
		return WorkUnit{}, fmt.Errorf("scenario: work unit missing job or lease id")
	}
	if len(u.Spec) == 0 {
		return WorkUnit{}, fmt.Errorf("scenario: work unit %s has no spec", u.Job)
	}
	return u, nil
}

// Compile parses and compiles the unit's spec. The resulting Compiled
// carries the same canonical hash the coordinator computed when it admitted
// the job, so the worker's result is verifiable by hash on arrival.
func (u WorkUnit) Compile() (*Compiled, error) {
	spec, err := ParseSpec(u.Spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: work unit %s: %w", u.Job, err)
	}
	comp, err := Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: work unit %s: %w", u.Job, err)
	}
	return comp, nil
}
