package scenario

// Preset is a named, documented spec shipped with the engine. Presets cover
// the experiment suite's scenario shapes (so a service can reproduce the
// E1–E15 workloads without hand-written Go) plus the extension scenarios
// from examples/: lossy links, bursty links, adaptive adversaries, and
// dynamic detectors.
type Preset struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Spec        Spec   `json:"spec"`
}

// presets is the registry, in display order. Every entry must Compile; the
// test suite enforces it.
var presets = []Preset{
	{
		Name:        "mis-quick",
		Description: "Section 4 MIS at the E1 quick scale (n=64, 3 seeds); reproduces the E1 n=64 row bit-for-bit",
		Spec: Spec{
			Algorithm:       AlgoMIS,
			Network:         NetworkSpec{N: 64},
			Trials:          3,
			StopWhenDecided: true,
		},
	},
	{
		Name:        "mis-midsize",
		Description: "Section 4 MIS at the E1 full-scale midpoint (n=256, 5 seeds)",
		Spec: Spec{
			Algorithm:       AlgoMIS,
			Network:         NetworkSpec{N: 256},
			Trials:          5,
			StopWhenDecided: true,
		},
	},
	{
		Name:        "mis-classic",
		Description: "MIS with classic-model reception in a reliable-only network (G = G')",
		Spec: Spec{
			Algorithm:       AlgoMISClassic,
			Network:         NetworkSpec{N: 128, GrayProb: -1},
			Adversary:       AdversarySpec{Kind: AdvNone},
			Trials:          3,
			StopWhenDecided: true,
		},
	},
	{
		Name:        "mis-full-adversary",
		Description: "MIS against the maximal adversary: every unreliable edge active every round",
		Spec: Spec{
			Algorithm:       AlgoMIS,
			Network:         NetworkSpec{N: 128},
			Adversary:       AdversarySpec{Kind: AdvFull},
			Trials:          3,
			StopWhenDecided: true,
		},
	},
	{
		Name:        "ccds-quick",
		Description: "Section 5 banned-list CCDS at the E3 quick scale (n=64, b=512)",
		Spec: Spec{
			Algorithm: AlgoCCDS,
			Network:   NetworkSpec{N: 64},
			B:         512,
			Trials:    3,
		},
	},
	{
		Name:        "ccds-wideband",
		Description: "Section 5 CCDS with wide messages (n=96, b=4096): the large-b regime of Theorem 5.3",
		Spec: Spec{
			Algorithm: AlgoCCDS,
			Network:   NetworkSpec{N: 96},
			B:         4096,
			Trials:    3,
		},
	},
	{
		Name:        "baseline-ccds",
		Description: "naive enumeration CCDS comparison point (n=64, b=512)",
		Spec: Spec{
			Algorithm: AlgoBaselineCCDS,
			Network:   NetworkSpec{N: 64},
			B:         512,
			Trials:    3,
		},
	},
	{
		Name:        "tau-ccds",
		Description: "Section 6 CCDS under a 1-complete detector at the E4 quick shape (n=96, Δ target 12, b=64Ki)",
		Spec: Spec{
			Algorithm: AlgoTauCCDS,
			Network:   NetworkSpec{N: 96, TargetDegree: 12, Tau: 1},
			B:         1 << 16,
			Trials:    3,
		},
	},
	{
		Name:        "async-mis",
		Description: "Section 9 asynchronous-start MIS in the classic model at the E8 shape (n=128, wake < 1000)",
		Spec: Spec{
			Algorithm: AlgoAsyncMIS,
			Network:   NetworkSpec{N: 128, GrayProb: -1},
			Adversary: AdversarySpec{Kind: AdvNone},
			Wake:      &WakeSpec{MaxDelay: 1000},
			Trials:    3,
		},
	},
	{
		Name:        "lossy-uniform",
		Description: "CCDS over lossy links: each unreliable edge fires independently with p=0.3 per round",
		Spec: Spec{
			Algorithm: AlgoCCDS,
			Network:   NetworkSpec{N: 96},
			B:         512,
			Adversary: AdversarySpec{Kind: AdvUniform, P: 0.3},
			Trials:    3,
		},
	},
	{
		Name:        "bursty-links",
		Description: "MIS under bursty gray-zone links (geometric bursts, mean 8 rounds up / 8 down)",
		Spec: Spec{
			Algorithm:       AlgoMIS,
			Network:         NetworkSpec{N: 128},
			Adversary:       AdversarySpec{Kind: AdvBursty, MeanUp: 8, MeanDown: 8},
			Trials:          3,
			StopWhenDecided: true,
		},
	},
	{
		Name:        "dynamic-ccds",
		Description: "Section 8 continuous CCDS with a detector that stabilizes mid-run (the E7 / examples/dynamic shape)",
		Spec: Spec{
			Algorithm: AlgoContinuousCCDS,
			Network:   NetworkSpec{N: 64},
			B:         512,
			Dynamic:   &DynamicSpec{Mistakes: 2, Periods: 5},
			Trials:    2,
		},
	},
}

// Presets returns the registry in display order. The slice and its specs
// are fresh copies; callers may mutate them freely.
func Presets() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	for i := range out {
		out[i].Spec = out[i].Spec.withName(out[i].Name)
	}
	return out
}

// PresetByName returns the named preset's spec (with Name filled in) and
// whether it exists.
func PresetByName(name string) (Spec, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p.Spec.withName(name), true
		}
	}
	return Spec{}, false
}

// withName returns a copy of the spec labeled name. Pointer-valued sections
// are deep-copied so callers can't mutate the registry through them.
func (s Spec) withName(name string) Spec {
	c := s
	c.Name = name
	if c.Params != nil {
		p := *c.Params
		c.Params = &p
	}
	if c.Wake != nil {
		w := *c.Wake
		c.Wake = &w
	}
	if c.Dynamic != nil {
		d := *c.Dynamic
		c.Dynamic = &d
	}
	return c
}
