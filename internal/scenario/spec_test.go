package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"dualradio/internal/core"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, p := range Presets() {
		data, err := json.Marshal(p.Spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", p.Name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		if mustHash(t, back) != mustHash(t, p.Spec) {
			t.Errorf("%s: hash changed across a JSON round trip", p.Name)
		}
		c1, err := Compile(p.Spec)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		c2, err := Compile(back)
		if err != nil {
			t.Fatalf("%s: compile round-tripped: %v", p.Name, err)
		}
		if c1.Hash() != c2.Hash() {
			t.Errorf("%s: compiled hash changed across a JSON round trip", p.Name)
		}
		// Canonicalization is idempotent: compiling the canonical spec
		// reproduces it exactly.
		c3, err := Compile(c1.Spec())
		if err != nil {
			t.Fatalf("%s: recompile canonical: %v", p.Name, err)
		}
		if j1, j3 := mustJSON(t, c1.Spec()), mustJSON(t, c3.Spec()); j1 != j3 {
			t.Errorf("%s: canonical form not idempotent:\n%s\n%s", p.Name, j1, j3)
		}
	}
}

func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	h, err := s.CanonicalHash()
	if err != nil {
		t.Fatalf("canonical hash: %v", err)
	}
	return h
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestHashIgnoresFieldOrderNameAndSpelledOutDefaults(t *testing.T) {
	base, err := ParseSpec([]byte(`{"algorithm":"mis","network":{"n":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	variants := []string{
		// Reordered fields.
		`{"network":{"n":64},"algorithm":"mis"}`,
		// Cosmetic name.
		`{"algorithm":"mis","network":{"n":64},"name":"my workload"}`,
		// Defaults spelled out.
		`{"algorithm":"mis","network":{"n":64},"trials":1,"seed":1,
		  "adversary":{"kind":"collision"},"version":1}`,
		// Irrelevant adversary parameters are cleared by canonicalization.
		`{"algorithm":"mis","network":{"n":64},"adversary":{"kind":"collision","p":0.5}}`,
	}
	for _, v := range variants {
		s, err := ParseSpec([]byte(v))
		if err != nil {
			t.Fatalf("parse %s: %v", v, err)
		}
		if mustHash(t, s) != mustHash(t, base) {
			t.Errorf("hash of %s differs from the base spec", v)
		}
	}
	// Params equal to the defaults hash like no params at all.
	p := core.DefaultParams()
	withDefaults := base
	withDefaults.Params = &p
	if mustHash(t, withDefaults) != mustHash(t, base) {
		t.Errorf("explicit default params changed the hash")
	}
	// timeout_ms is execution policy, not workload identity: a deadline must
	// not split the result cache.
	withDeadline := base
	withDeadline.TimeoutMS = 5000
	if mustHash(t, withDeadline) != mustHash(t, base) {
		t.Errorf("timeout_ms changed the canonical hash")
	}
}

func TestHashSeparatesWorkloads(t *testing.T) {
	specs := []Spec{
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 128}},
		{Algorithm: AlgoMISClassic, Network: NetworkSpec{N: 64}},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, Trials: 2},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, Seed: 7},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, StopWhenDecided: true},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, Adversary: AdversarySpec{Kind: AdvFull}},
		{Algorithm: AlgoCCDS, Network: NetworkSpec{N: 64}},
		{Algorithm: AlgoCCDS, Network: NetworkSpec{N: 64}, B: 1024},
	}
	seen := map[string]int{}
	for i, s := range specs {
		h := mustHash(t, s)
		if j, dup := seen[h]; dup {
			t.Errorf("specs %d and %d hash identically", i, j)
		}
		seen[h] = i
	}
}

func TestHashGolden(t *testing.T) {
	// The canonical encoding is part of the cache-key contract: changing it
	// invalidates every stored result, so it must not change silently. If a
	// deliberate schema change lands, bump SpecVersion and update this hash.
	s := Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}}
	// sha256 of the canonical form
	// {"version":1,"algorithm":"mis","network":{"n":64},
	//  "adversary":{"kind":"collision"},"trials":1,"seed":1}.
	const want = "85c80ff24c3911fe8a8b514086277940a3b32645d7027c6f2d1e250793748ead"
	if got := mustHash(t, s); got != want {
		t.Fatalf("canonical hash changed:\n got %s\nwant %s\ncanonical form: %s",
			got, want, mustJSON(t, s.Canonical()))
	}
}

// TestPresetHashesGolden pins the canonical hash of every registry preset.
// These hashes key the persistent result store: an accidental
// canonicalization or encoding change would silently split the store
// (every stored result orphaned under its old hash, every spec
// re-simulated), so any diff here must be deliberate — bump SpecVersion,
// update the hashes, and accept the store invalidation knowingly.
func TestPresetHashesGolden(t *testing.T) {
	want := map[string]string{
		"mis-quick":          "84b779594d35741027f5b25700351bcbc0b12fc123dfccfa41f7189306b492d4",
		"mis-midsize":        "3b6e01f350f45c21a7b7089a3bf6171f93faef8139468b51be43776e7e421415",
		"mis-classic":        "e3e989ea1a878714b5e1fe941262b5f2417ff02891aca394db610b7dde90108b",
		"mis-full-adversary": "648f197cfbcb5d0a3d2384624cee1e2ab8ab5715376adfcca1f00174882817d8",
		"ccds-quick":         "86d128b274738656b6899fadc222c6927765d2da40e58540998c4b956f0398c6",
		"ccds-wideband":      "0ae1907e0b6a88b76dd9ddb0e50d9b99f1cd4751beb9304612858bf7325261b9",
		"baseline-ccds":      "c3ffeba0b0c69d1625527c24f067abe6ebf49356c8ec0f96e8e453088fe179a8",
		"tau-ccds":           "baddd9ebe8dc5064c114678f8d0c1b1c05d504b071b098fdc24aaae37214a939",
		"async-mis":          "8925bfc7b9baf3e3c3b21ba94d93a152f76d1491d4ae2fae2ef21198c3189fc3",
		"lossy-uniform":      "b71d8f436d13da91aabdb7b7b78ffd419d7c821ded1dd3125be8079bbdee5963",
		"bursty-links":       "a57e367dbf97740d943fd8adff85fa96fc08d8efe6d8b5026531f133b54fb197",
		"dynamic-ccds":       "5c0a54d754f7a30a8bb7a3b85ce97ee3e5e836ee3f09e50393b7dcc6910b03e9",
	}
	presets := Presets()
	if len(presets) != len(want) {
		t.Errorf("registry has %d presets, golden map has %d — add the new preset's hash", len(presets), len(want))
	}
	for _, p := range presets {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("preset %q has no golden hash; add %q", p.Name, mustHash(t, p.Spec))
			continue
		}
		if got := mustHash(t, p.Spec); got != w {
			t.Errorf("preset %q canonical hash changed:\n got %s\nwant %s\ncanonical form: %s",
				p.Name, got, w, mustJSON(t, p.Spec.Canonical()))
		}
	}
}

func TestValidateRejections(t *testing.T) {
	valid := func() Spec {
		return Spec{Algorithm: AlgoCCDS, Network: NetworkSpec{N: 64}, B: 512}
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"missing algorithm", func(s *Spec) { s.Algorithm = "" }, "missing algorithm"},
		{"unknown algorithm", func(s *Spec) { s.Algorithm = "steiner-tree" }, "unknown algorithm"},
		{"future version", func(s *Spec) { s.Version = 99 }, "unsupported spec version"},
		{"n too small", func(s *Spec) { s.Network.N = 1 }, "out of range"},
		{"n too large", func(s *Spec) { s.Network.N = MaxN + 1 }, "out of range"},
		{"negative degree", func(s *Spec) { s.Network.TargetDegree = -3 }, "target_degree"},
		{"gray_prob above 1", func(s *Spec) { s.Network.GrayProb = 1.5 }, "gray_prob"},
		{"negative tau", func(s *Spec) { s.Network.Tau = -1 }, "tau"},
		{"negative b", func(s *Spec) { s.B = -1 }, "message bound"},
		{"unknown adversary", func(s *Spec) { s.Adversary.Kind = "byzantine" }, "adversary"},
		{"uniform without p", func(s *Spec) { s.Adversary = AdversarySpec{Kind: AdvUniform} }, "uniform adversary"},
		{"uniform p above 1", func(s *Spec) { s.Adversary = AdversarySpec{Kind: AdvUniform, P: 1.5} }, "uniform adversary"},
		{"bursty negative mean", func(s *Spec) { s.Adversary = AdversarySpec{Kind: AdvBursty, MeanUp: -1} }, "bursty"},
		{"negative trials", func(s *Spec) { s.Trials = -1 }, "trials"},
		{"too many trials", func(s *Spec) { s.Trials = MaxTrials + 1 }, "trials"},
		{"negative max_rounds", func(s *Spec) { s.MaxRounds = -5 }, "max_rounds"},
		{"wake on ccds", func(s *Spec) { s.Wake = &WakeSpec{MaxDelay: 10} }, "wake"},
		{"dynamic on ccds", func(s *Spec) { s.Dynamic = &DynamicSpec{} }, "dynamic"},
		{"zero params", func(s *Spec) { s.Params = &core.Params{} }, "params"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mutate(&s)
		_, err := Compile(s)
		if err == nil {
			t.Errorf("%s: Compile accepted an invalid spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	// The base spec must of course compile.
	if _, err := Compile(valid()); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
	// A CCDS spec without b gets the 512 default rather than a rejection.
	s := valid()
	s.B = 0
	comp, err := Compile(s)
	if err != nil {
		t.Fatalf("b-less CCDS spec rejected: %v", err)
	}
	if comp.Spec().B != 512 {
		t.Fatalf("b defaulted to %d, want 512", comp.Spec().B)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"algorithm":"mis","network":{"n":64},"trails":5}`)); err == nil {
		t.Fatal("ParseSpec accepted a misspelled field")
	}
}

func TestPresetsCompileAndAreUnique(t *testing.T) {
	names := map[string]bool{}
	hashes := map[string]string{}
	for _, p := range Presets() {
		if names[p.Name] {
			t.Errorf("duplicate preset name %q", p.Name)
		}
		names[p.Name] = true
		if p.Description == "" {
			t.Errorf("preset %q has no description", p.Name)
		}
		comp, err := Compile(p.Spec)
		if err != nil {
			t.Errorf("preset %q does not compile: %v", p.Name, err)
			continue
		}
		if prev, dup := hashes[comp.Hash()]; dup {
			t.Errorf("presets %q and %q describe the same workload", p.Name, prev)
		}
		hashes[comp.Hash()] = p.Name
	}
	if _, ok := PresetByName("mis-quick"); !ok {
		t.Fatal("PresetByName(mis-quick) not found")
	}
	if _, ok := PresetByName("nope"); ok {
		t.Fatal("PresetByName invented a preset")
	}
}

// TestAlgorithmCoverageSmoke runs one tiny trial of every algorithm kind so
// the whole compile-to-run path stays exercised. Kept at minimal scale; the
// golden test covers fidelity.
func TestAlgorithmCoverageSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke in -short mode")
	}
	specs := []Spec{
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}, StopWhenDecided: true},
		{Algorithm: AlgoMISClassic, Network: NetworkSpec{N: 32, GrayProb: -1}, Adversary: AdversarySpec{Kind: AdvNone}, StopWhenDecided: true},
		{Algorithm: AlgoCCDS, Network: NetworkSpec{N: 32}, B: 512},
		{Algorithm: AlgoBaselineCCDS, Network: NetworkSpec{N: 32}, B: 512},
		{Algorithm: AlgoTauCCDS, Network: NetworkSpec{N: 48, Tau: 1}, B: 1 << 15},
		{Algorithm: AlgoAsyncMIS, Network: NetworkSpec{N: 32, GrayProb: -1}, Adversary: AdversarySpec{Kind: AdvNone}, Wake: &WakeSpec{MaxDelay: 64}},
		{Algorithm: AlgoContinuousCCDS, Network: NetworkSpec{N: 32}, B: 512},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}, Adversary: AdversarySpec{Kind: AdvUniform, P: 0.3}, StopWhenDecided: true},
		{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}, Adversary: AdversarySpec{Kind: AdvBursty, MeanUp: 4, MeanDown: 4}, StopWhenDecided: true},
	}
	for _, s := range specs {
		comp, err := Compile(s)
		if err != nil {
			t.Fatalf("%s: compile: %v", s.Algorithm, err)
		}
		res, err := comp.Run(nil, 1, nil)
		if err != nil {
			t.Fatalf("%s: run: %v", s.Algorithm, err)
		}
		if len(res.Trials) != comp.Trials() {
			t.Fatalf("%s: %d trial results, want %d", s.Algorithm, len(res.Trials), comp.Trials())
		}
		if res.Trials[0].Rounds <= 0 {
			t.Errorf("%s: trial ran %d rounds", s.Algorithm, res.Trials[0].Rounds)
		}
	}
}
