package scenario

import (
	"fmt"
	"math/rand/v2"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// PCG stream ids for the per-trial auxiliary randomness. wakeStream and
// dynStream match the experiment suite (E8's wake draw, E7's noisy detector
// placement), so specs that mirror those experiments reproduce them
// bit-for-bit; advStream is new with this layer.
const (
	advStream  = 0xAD5E
	wakeStream = 0x3A3E
	dynStream  = 0xD15C0
)

// Compiled is a validated, canonicalized spec lowered onto the harness
// layer, ready to build per-trial scenarios. It is immutable and safe for
// concurrent use — trials share the memoized instance behind the harness
// cache but construct their own mutable state.
type Compiled struct {
	spec Spec
	hash string
}

// Compile canonicalizes and validates spec. The returned Compiled carries
// the canonical form (Spec) and the canonical hash (Hash).
func Compile(spec Spec) (*Compiled, error) {
	// Validate the original spec: canonicalization rewrites Version (and
	// clears junk), which must not mask a rejection.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := spec.Canonical()
	h, err := c.CanonicalHash()
	if err != nil {
		return nil, err
	}
	return &Compiled{spec: c, hash: h}, nil
}

// Spec returns the canonical spec.
func (c *Compiled) Spec() Spec { return c.spec }

// Hash returns the canonical spec hash.
func (c *Compiled) Hash() string { return c.hash }

// Trials returns the trial count.
func (c *Compiled) Trials() int { return c.spec.Trials }

// TrialSeed returns the seed of trial i: Seed+i, the experiment suite's
// seed derivation (seed s runs with seed value s+1 when Seed is the default
// 1).
func (c *Compiled) TrialSeed(trial int) uint64 { return c.spec.Seed + uint64(trial) }

// Scenario assembles the harness scenario for one trial around the shared
// memoized instance: only the mutable per-trial pieces — the adversary and
// the scenario struct itself — are constructed fresh, exactly as the
// experiment layer does.
func (c *Compiled) Scenario(trial int) (*harness.Scenario, error) {
	sp := c.spec
	seed := c.TrialSeed(trial)
	inst, err := harness.SharedInstance(harness.InstanceSpec{
		N:            sp.Network.N,
		TargetDegree: sp.Network.TargetDegree,
		GrayProb:     sp.Network.GrayProb,
		Tau:          sp.Network.Tau,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	adv, err := buildAdversary(sp.Adversary, inst, seed)
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	if sp.Params != nil {
		params = *sp.Params
	}
	s := &harness.Scenario{
		Net:             inst.Net,
		Asg:             inst.Asg,
		Det:             inst.Det,
		Adv:             adv,
		Params:          params,
		Seed:            seed,
		B:               sp.B,
		MaxRounds:       sp.MaxRounds,
		StopWhenDecided: sp.StopWhenDecided,
		Leap:            sp.Engine == EngineLeap,
		Shared:          inst,
	}
	if sp.Algorithm == AlgoAsyncMIS {
		// The Section 9 variant runs in the classic model: no detector
		// filtering, so the detector plays no role in the execution.
		s.Det = nil
	}
	return s, nil
}

func buildAdversary(a AdversarySpec, inst *harness.Instance, seed uint64) (adversary.Adversary, error) {
	switch a.Kind {
	case AdvNone:
		return nil, nil
	case AdvCollision:
		return adversary.NewCollisionSeeking(inst.Net), nil
	case AdvFull:
		return adversary.NewFull(inst.Net), nil
	case AdvUniform:
		return adversary.NewUniformP(inst.Net, a.P, rand.New(rand.NewPCG(seed, advStream))), nil
	case AdvBursty:
		return adversary.NewBursty(inst.Net, a.MeanUp, a.MeanDown, rand.New(rand.NewPCG(seed, advStream))), nil
	}
	return nil, fmt.Errorf("scenario: unknown adversary kind %q", a.Kind)
}

// TrialResult is one trial's outcome, reduced to the quantities the
// experiment suite reports. It is deterministic in (spec, trial): reruns,
// worker counts, and cache state never change it.
type TrialResult struct {
	// Trial is the trial index and Seed its derived seed.
	Trial int    `json:"trial"`
	Seed  uint64 `json:"seed"`
	// Rounds is the number of rounds executed.
	Rounds int `json:"rounds"`
	// DecidedRound is the first round by which every process had decided
	// (-1 if some never did, or for executions without that notion).
	DecidedRound int `json:"decided_round"`
	// Size is the number of processes in the output structure (MIS members
	// or CCDS dominators).
	Size int `json:"size"`
	// Valid reports whether the paper's correctness conditions hold for
	// the trial's outputs.
	Valid bool `json:"valid"`
	// MeanLatency is the mean local decision latency (AlgoAsyncMIS only).
	MeanLatency float64 `json:"mean_latency,omitempty"`
	// Checkpoint is the Theorem 8.1 deadline round at which validity was
	// checked (AlgoContinuousCCDS only).
	Checkpoint int `json:"checkpoint,omitempty"`
}

// RunTrial executes one trial and reduces its outcome.
func (c *Compiled) RunTrial(trial int) (TrialResult, error) {
	s, err := c.Scenario(trial)
	if err != nil {
		return TrialResult{}, err
	}
	res := TrialResult{Trial: trial, Seed: c.TrialSeed(trial), DecidedRound: -1}
	switch c.spec.Algorithm {
	case AlgoMIS, AlgoMISClassic:
		filter := core.FilterDetector
		if c.spec.Algorithm == AlgoMISClassic {
			filter = core.FilterNone
		}
		out, err := s.RunMISFiltered(filter)
		if err != nil {
			return res, err
		}
		fillOutcome(&res, out.InMIS, out.Rounds, out.DecidedRound)
		res.Valid = verify.MIS(s.Net, s.H(), out.Outputs).OK()
	case AlgoCCDS:
		out, err := s.RunCCDS()
		if err != nil {
			return res, err
		}
		fillOutcome(&res, out.InMIS, out.Rounds, out.DecidedRound)
		res.Valid = verify.CCDS(s.Net, s.H(), out.Outputs, 0).OK()
	case AlgoBaselineCCDS:
		out, err := s.RunBaselineCCDS()
		if err != nil {
			return res, err
		}
		fillOutcome(&res, out.InMIS, out.Rounds, out.DecidedRound)
		res.Valid = verify.CCDS(s.Net, s.H(), out.Outputs, 0).OK()
	case AlgoTauCCDS:
		out, err := s.RunTauCCDS(c.spec.Network.Tau)
		if err != nil {
			return res, err
		}
		fillOutcome(&res, out.InMIS, out.Rounds, out.DecidedRound)
		res.Valid = verify.CCDS(s.Net, s.H(), out.Outputs, 0).OK()
	case AlgoAsyncMIS:
		return c.runAsyncTrial(s, res)
	case AlgoContinuousCCDS:
		return c.runContinuousTrial(s, res)
	default:
		return res, fmt.Errorf("scenario: unknown algorithm %q", c.spec.Algorithm)
	}
	return res, nil
}

func fillOutcome(res *TrialResult, inMIS []bool, rounds, decided int) {
	res.Rounds = rounds
	res.DecidedRound = decided
	for _, in := range inMIS {
		if in {
			res.Size++
		}
	}
}

// runAsyncTrial mirrors experiment E8: wake rounds drawn uniformly from the
// trial's wake stream, classic-model reception, validity against the
// reliable graph G.
func (c *Compiled) runAsyncTrial(s *harness.Scenario, res TrialResult) (TrialResult, error) {
	n := s.Net.N()
	wake := make([]int, n)
	wrng := rand.New(rand.NewPCG(res.Seed, wakeStream))
	maxDelay := c.spec.Wake.MaxDelay
	if maxDelay > 0 {
		for v := range wake {
			wake[v] = wrng.IntN(maxDelay)
		}
	}
	out, err := s.RunAsyncMIS(wake, core.FilterNone)
	if err != nil {
		return res, err
	}
	fillOutcome(&res, out.InMIS, out.Rounds, out.DecidedRound)
	res.Valid = verify.MIS(s.Net, s.Net.G(), out.Outputs).OK()
	var sum float64
	cnt := 0
	for _, l := range out.Latency {
		if l >= 0 {
			sum += float64(l)
			cnt++
		}
	}
	if cnt > 0 {
		res.MeanLatency = sum / float64(cnt)
	}
	return res, nil
}

// runContinuousTrial mirrors experiment E7 and examples/dynamic: the
// detector starts with Mistakes misclassified links per node, stabilizes to
// the clean detector mid-second-period, and the committed outputs must
// solve CCDS by the Theorem 8.1 deadline (stabilization + 2·δ_CDS). δ_CDS
// is the analytic schedule length, so no probe execution is needed.
func (c *Compiled) runContinuousTrial(s *harness.Scenario, res TrialResult) (TrialResult, error) {
	sp := c.spec
	// s.Params is the resolved parameter set Scenario() installed; using it
	// keeps the deadline computation and the execution on one source.
	period, err := core.CCDSRounds(s.Net.N(), s.Net.Delta(), sp.B, s.Params)
	if err != nil {
		return res, err
	}
	stabilize := period + period/2
	checkpoint := stabilize + 2*period
	drng := rand.New(rand.NewPCG(res.Seed, dynStream))
	noisy := detector.TauComplete(s.Net, s.Asg, sp.Dynamic.Mistakes, detector.PlaceGrayFirst, drng)
	dyn := detector.NewSchedule(
		detector.ScheduleStep{Round: 0, Detector: noisy},
		detector.ScheduleStep{Round: stabilize, Detector: s.Det},
	)
	out, err := s.RunContinuousCCDS(dyn, sp.Dynamic.Periods, []int{checkpoint})
	if err != nil {
		return res, err
	}
	outputs, ok := out.Checkpoints[checkpoint]
	if !ok {
		// The run was shorter than the deadline; judge the final state.
		outputs = out.Final
	}
	res.Rounds = out.Rounds
	res.Checkpoint = checkpoint
	res.Size = verify.CCDSSize(outputs)
	res.Valid = verify.CCDS(s.Net, s.H(), outputs, 0).OK()
	return res, nil
}
