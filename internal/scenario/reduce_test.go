package scenario

import (
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"testing"

	"dualradio/internal/stats"
)

// legacyAggregate is the pre-streaming batch computation, kept verbatim as
// the reference the one reducer implementation is locked against.
func legacyAggregate(trials []TrialResult) Aggregate {
	agg := Aggregate{Trials: len(trials)}
	if len(trials) == 0 {
		return agg
	}
	var decided, latencies []float64
	var rounds, size float64
	valid := 0
	for _, t := range trials {
		rounds += float64(t.Rounds)
		size += float64(t.Size)
		if t.Valid {
			valid++
		}
		if t.DecidedRound > 0 {
			decided = append(decided, float64(t.DecidedRound))
		}
		if t.MeanLatency > 0 {
			latencies = append(latencies, t.MeanLatency)
		}
	}
	n := float64(len(trials))
	agg.ValidFraction = float64(valid) / n
	agg.MeanRounds = rounds / n
	agg.MeanSize = size / n
	if len(decided) > 0 {
		sum := stats.Summarize(decided)
		agg.MeanDecidedRound = sum.Mean
		agg.P90DecidedRound = sum.P90
	}
	if len(latencies) > 0 {
		agg.MeanLatency = stats.Mean(latencies)
	}
	return agg
}

func aggJSON(t *testing.T, a Aggregate) string {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReducerMatchesLegacyAggregateProperty: on random trial sets of every
// size the streaming reducer's aggregate must serialize byte-identically
// to the legacy batch computation.
func TestReducerMatchesLegacyAggregateProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	for round := 0; round < 200; round++ {
		n := rng.IntN(300) // includes the empty set
		trials := make([]TrialResult, n)
		for i := range trials {
			trials[i] = TrialResult{
				Trial:        i,
				Seed:         uint64(i + 1),
				Rounds:       rng.IntN(100000),
				DecidedRound: rng.IntN(2000) - 500, // mix of <=0 and >0
				Size:         rng.IntN(500),
				Valid:        rng.IntN(3) > 0,
			}
			if rng.IntN(2) == 0 {
				trials[i].MeanLatency = rng.Float64() * 1000
			}
		}
		got := aggJSON(t, AggregateTrials(trials))
		want := aggJSON(t, legacyAggregate(trials))
		if got != want {
			t.Fatalf("round %d (n=%d): streaming %s != legacy %s", round, n, got, want)
		}
	}
}

// TestReducerPartialPrefixes: the reducer may be queried after any prefix
// (the live NDJSON aggregate stream does) and must match the legacy batch
// computation over exactly that prefix.
func TestReducerPartialPrefixes(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	trials := make([]TrialResult, 64)
	for i := range trials {
		trials[i] = TrialResult{
			Rounds:       rng.IntN(5000),
			DecidedRound: rng.IntN(300) - 100,
			Size:         rng.IntN(64),
			Valid:        rng.IntN(2) == 0,
			MeanLatency:  float64(rng.IntN(3)) * rng.Float64(),
		}
	}
	red := NewReducer()
	for i, tr := range trials {
		red.Add(tr)
		got := aggJSON(t, red.Aggregate())
		want := aggJSON(t, legacyAggregate(trials[:i+1]))
		if got != want {
			t.Fatalf("prefix %d: streaming %s != legacy %s", i+1, got, want)
		}
	}
}

// TestEveryPresetAggregateByteIdentical is the acceptance golden: for every
// shipped preset, the streaming reducer folded over the preset's real trial
// outcomes serializes byte-identically to the legacy batch computation.
func TestEveryPresetAggregateByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every preset's full trial set")
	}
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			comp, err := Compile(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			trials := make([]TrialResult, comp.Trials())
			for i := range trials {
				if trials[i], err = comp.RunTrial(i); err != nil {
					t.Fatal(err)
				}
			}
			got := aggJSON(t, AggregateTrials(trials))
			want := aggJSON(t, legacyAggregate(trials))
			if got != want {
				t.Fatalf("streaming %s != legacy %s", got, want)
			}
			// And the full Run pipeline reports that same aggregate.
			res, err := comp.Run(nil, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if run := aggJSON(t, res.Aggregate); run != want {
				t.Fatalf("Run aggregate %s != legacy %s", run, want)
			}
		})
	}
}

// TestTrialRetentionPolicies: the policy bounds Result.Trials without
// touching the aggregate, and the canonical hash separates policies while
// keeping the default's hash unchanged.
func TestTrialRetentionPolicies(t *testing.T) {
	base := Spec{
		Algorithm:       AlgoMIS,
		Network:         NetworkSpec{N: 24},
		Trials:          3,
		StopWhenDecided: true,
	}
	run := func(retention string) *Result {
		s := base
		s.TrialRetention = retention
		comp, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := comp.Run(nil, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	all := run("")
	spelled := run(RetainAll)
	errsOnly := run(RetainErrors)
	none := run(RetainNone)

	if len(all.Trials) != 3 || all.TrialRetention != "" {
		t.Fatalf("default retention: %d trials, echo %q", len(all.Trials), all.TrialRetention)
	}
	if !reflect.DeepEqual(all, spelled) {
		t.Fatal("spelled-out \"all\" diverges from the default")
	}
	if all.SpecHash != spelled.SpecHash {
		t.Fatal("retention \"all\" changed the spec hash")
	}
	if none.TrialRetention != RetainNone || len(none.Trials) != 0 {
		t.Fatalf("retention none kept %d trials", len(none.Trials))
	}
	if errsOnly.TrialRetention != RetainErrors {
		t.Fatalf("retention echo %q", errsOnly.TrialRetention)
	}
	for _, tr := range errsOnly.Trials {
		if tr.Valid {
			t.Fatal("retention errors kept a valid trial")
		}
	}
	if none.SpecHash == all.SpecHash || errsOnly.SpecHash == all.SpecHash {
		t.Fatal("non-default retention must hash distinctly (it changes the Result)")
	}
	// The aggregate is retention-independent.
	if none.Aggregate != all.Aggregate || errsOnly.Aggregate != all.Aggregate {
		t.Fatal("retention changed the aggregate")
	}
	// Result JSON for the retention-none run omits the trials array.
	b, err := json.Marshal(none)
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); !json.Valid(b) || reflect.DeepEqual(s, "") {
		t.Fatal("bad result JSON")
	} else if containsTrials := jsonHasKey(t, b, "trials"); containsTrials {
		t.Fatalf("retention none still serializes trials: %s", s)
	}
}

func jsonHasKey(t *testing.T, b []byte, key string) bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}

// TestProgressStreamsFoldedPrefix: the Progress callback reports a strictly
// advancing fold whose final aggregate equals the result's, regardless of
// worker count.
func TestProgressStreamsFoldedPrefix(t *testing.T) {
	spec := Spec{
		Algorithm:       AlgoMIS,
		Network:         NetworkSpec{N: 24},
		Trials:          6,
		StopWhenDecided: true,
	}
	comp, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		lastFolded := 0
		var lastAgg Aggregate
		res, err := comp.Run(nil, workers, func(p Progress) {
			if p.Folded < lastFolded {
				t.Fatalf("workers=%d: fold went backwards: %d after %d", workers, p.Folded, lastFolded)
			}
			if p.Aggregate.Trials != p.Folded {
				t.Fatalf("workers=%d: aggregate covers %d trials, folded %d", workers, p.Aggregate.Trials, p.Folded)
			}
			lastFolded = p.Folded
			lastAgg = p.Aggregate
		})
		if err != nil {
			t.Fatal(err)
		}
		if lastFolded != comp.Trials() {
			t.Fatalf("workers=%d: final fold %d, want %d", workers, lastFolded, comp.Trials())
		}
		if lastAgg != res.Aggregate {
			t.Fatalf("workers=%d: final streamed aggregate %+v != result %+v", workers, lastAgg, res.Aggregate)
		}
	}
}

// BenchmarkReducer folds a max-size trial set (the MaxTrials cap) through
// the streaming reducer, aggregate included.
func BenchmarkReducer(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	trials := make([]TrialResult, MaxTrials)
	for i := range trials {
		trials[i] = TrialResult{
			Trial:        i,
			Rounds:       rng.IntN(100000),
			DecidedRound: rng.IntN(2000) - 500,
			Size:         rng.IntN(500),
			Valid:        rng.IntN(3) > 0,
			MeanLatency:  float64(rng.IntN(2)) * rng.Float64(),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := AggregateTrials(trials)
		if agg.Trials != MaxTrials {
			b.Fatal("bad fold")
		}
	}
}
