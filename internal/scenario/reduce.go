package scenario

import "dualradio/internal/stats"

// Trial retention policies (Spec.TrialRetention). The policy bounds what a
// Result carries and therefore what the service caches and persists: "all"
// keeps every per-trial outcome (the default, and the only policy that
// reproduces the historical Result payload), "errors" keeps only trials
// that failed verification, "none" keeps aggregates alone.
const (
	RetainAll    = "all"
	RetainErrors = "errors"
	RetainNone   = "none"
)

// retainTrial reports whether a trial outcome is kept under the policy.
// The empty policy is the canonical spelling of RetainAll.
func retainTrial(policy string, t TrialResult) bool {
	switch policy {
	case RetainErrors:
		return !t.Valid
	case RetainNone:
		return false
	}
	return true
}

// Reducer folds TrialResults incrementally into the run Aggregate. It is
// the single aggregate implementation: Compiled.Run streams trials through
// it (emitting live partial aggregates), and batch consumers fold a slice.
//
// Folding trials in trial-index order produces an Aggregate bit-identical
// to the historical batch computation: sums accumulate in the same order
// with the same operations, and the decided-round quantiles ride
// stats.Accumulator's exact path (the sketch capacity matches MaxTrials,
// so a single run can never push it into approximation).
//
// A Reducer is not safe for concurrent use; Run serializes folds.
type Reducer struct {
	trials  int
	valid   int
	rounds  *stats.Accumulator
	size    *stats.Accumulator
	decided *stats.Accumulator
	latency *stats.Accumulator
}

// NewReducer returns an empty reducer.
func NewReducer() *Reducer {
	return &Reducer{
		rounds:  stats.NewAccumulator(),
		size:    stats.NewAccumulator(),
		decided: stats.NewAccumulator(),
		latency: stats.NewAccumulator(),
	}
}

// Add folds one trial.
func (r *Reducer) Add(t TrialResult) {
	r.trials++
	if t.Valid {
		r.valid++
	}
	r.rounds.Add(float64(t.Rounds))
	r.size.Add(float64(t.Size))
	if t.DecidedRound > 0 {
		r.decided.Add(float64(t.DecidedRound))
	}
	if t.MeanLatency > 0 {
		r.latency.Add(t.MeanLatency)
	}
}

// Count returns the number of trials folded.
func (r *Reducer) Count() int { return r.trials }

// Aggregate materializes the current aggregate. It may be called after any
// prefix of trials — Run uses that to stream partial aggregates — and the
// full-run call matches the legacy batch computation byte-for-byte.
func (r *Reducer) Aggregate() Aggregate {
	agg := Aggregate{Trials: r.trials}
	if r.trials == 0 {
		return agg
	}
	n := float64(r.trials)
	agg.ValidFraction = float64(r.valid) / n
	agg.MeanRounds = r.rounds.Sum() / n
	agg.MeanSize = r.size.Sum() / n
	if r.decided.Count() > 0 {
		agg.MeanDecidedRound = r.decided.Mean()
		agg.P90DecidedRound = r.decided.Quantile(90)
	}
	if r.latency.Count() > 0 {
		agg.MeanLatency = r.latency.Mean()
	}
	return agg
}

// AggregateTrials reduces a trial slice in order — the batch convenience
// wrapper over the streaming reducer.
func AggregateTrials(trials []TrialResult) Aggregate {
	r := NewReducer()
	for _, t := range trials {
		r.Add(t)
	}
	return r.Aggregate()
}
