package scenario

import (
	"math"

	"dualradio/internal/core"
)

// CostEstimate approximates the simulation work a spec admits to the
// service, in round-process units: n · trials · analytic schedule rounds.
// The schedule lengths come from the same closed forms the algorithms run
// on (core.MISRounds, core.CCDSRounds, ...), with the maximum degree Δ
// approximated by the generator's target degree (3·log₂ n when defaulted) —
// the estimate sizes admission budgets, not billing, so a constant-factor
// error is fine. It never fails: specs whose schedule would reject (e.g. a
// message bound too small to carry an id) fall back to the MIS term, and
// the run itself surfaces the real error.
func (c *Compiled) CostEstimate() int64 {
	sp := c.spec
	n := sp.Network.N
	params := core.DefaultParams()
	if sp.Params != nil {
		params = *sp.Params
	}
	// Δ estimate: the generator steers the reliable degree toward
	// TargetDegree (default 3·log₂ n); round up for the tail.
	td := sp.Network.TargetDegree
	if td == 0 {
		td = 3 * math.Log2(float64(max(n, 2)))
	}
	delta := int(math.Ceil(td)) + 1

	misRounds := core.MISRounds(n, params)
	rounds := misRounds
	switch sp.Algorithm {
	case AlgoMIS, AlgoMISClassic:
	case AlgoAsyncMIS:
		rounds = misRounds
		if sp.Wake != nil {
			rounds += sp.Wake.MaxDelay
		}
		if sp.MaxRounds > 0 && rounds > sp.MaxRounds {
			rounds = sp.MaxRounds
		}
	case AlgoCCDS:
		if r, err := core.CCDSRounds(n, delta, sp.B, params); err == nil {
			rounds = r
		}
	case AlgoBaselineCCDS:
		if r, err := core.BaselineCCDSRounds(n, delta, sp.B, params); err == nil {
			rounds = r
		}
	case AlgoTauCCDS:
		if r, err := core.TauCCDSRounds(n, delta, sp.B, params, sp.Network.Tau); err == nil {
			rounds = r
		}
	case AlgoContinuousCCDS:
		if period, err := core.CCDSRounds(n, delta, sp.B, params); err == nil {
			periods := 1
			if sp.Dynamic != nil {
				periods = sp.Dynamic.Periods
			}
			// Stabilization prelude (1.5 periods) plus the rerun periods.
			rounds = period + period/2 + periods*period
		}
	}
	return int64(n) * int64(sp.Trials) * int64(rounds)
}
