package scenario

import (
	"encoding/json"
	"testing"
)

func unitJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseWorkUnitStrict(t *testing.T) {
	comp, err := Compile(Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 16}, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := unitJSON(t, comp.Spec())

	good := unitJSON(t, map[string]any{
		"job": "j1", "lease": "l1", "attempt": 2, "spec": json.RawMessage(spec),
	})
	u, err := ParseWorkUnit(good)
	if err != nil {
		t.Fatal(err)
	}
	if u.Job != "j1" || u.Lease != "l1" || u.Attempt != 2 {
		t.Fatalf("parsed %+v", u)
	}

	bad := map[string][]byte{
		"unknown field": unitJSON(t, map[string]any{"job": "j", "lease": "l", "spec": json.RawMessage(spec), "bogus": 1}),
		"missing job":   unitJSON(t, map[string]any{"lease": "l", "spec": json.RawMessage(spec)}),
		"missing lease": unitJSON(t, map[string]any{"job": "j", "spec": json.RawMessage(spec)}),
		"missing spec":  unitJSON(t, map[string]any{"job": "j", "lease": "l"}),
	}
	for name, raw := range bad {
		if _, err := ParseWorkUnit(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestWorkUnitCompileRoundTrip: a unit built from a compiled spec's
// canonical form must compile back to the same hash — the property that
// lets a remote worker's result be verified against the coordinator's job.
func TestWorkUnitCompileRoundTrip(t *testing.T) {
	comp, err := Compile(Spec{
		Algorithm: AlgoMIS, Network: NetworkSpec{N: 40}, Trials: 3, Seed: 9,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := WorkUnit{Job: "j1", Lease: "l1", Spec: unitJSON(t, comp.Spec())}
	back, err := u.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != comp.Hash() {
		t.Fatalf("round-trip hash %s, want %s", back.Hash(), comp.Hash())
	}
	if _, err := (WorkUnit{Job: "j", Lease: "l", Spec: []byte(`{"algorithm":"warp"}`)}).Compile(); err == nil {
		t.Fatal("invalid spec compiled")
	}
}
