package scenario

import (
	"reflect"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/expr"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// TestPresetReproducesExprE1 is the fidelity contract of the spec engine:
// the "mis-quick" preset must reproduce the n=64 slice of experiment E1's
// quick configuration byte-for-byte — same instances, same executions, same
// outputs — because both lower onto the identical harness construction with
// the identical seed derivation. If this test fails, a spec submitted to
// the service no longer means what the experiment suite measured.
func TestPresetReproducesExprE1(t *testing.T) {
	spec, ok := PresetByName("mis-quick")
	if !ok {
		t.Fatal("preset mis-quick missing")
	}
	comp, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Trials() != 3 {
		t.Fatalf("mis-quick has %d trials, want 3 (the quick seed count)", comp.Trials())
	}
	for trial := 0; trial < comp.Trials(); trial++ {
		// The expr-side construction, replicated verbatim: experiment E1
		// builds a scenario from the shared instance for (n=64, seed s+1),
		// attaches the collision-seeking adversary, stops when decided, and
		// consumes DecidedRound and the verified outputs.
		inst, err := harness.SharedInstance(harness.InstanceSpec{N: 64, Seed: uint64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		want := &harness.Scenario{
			Net:             inst.Net,
			Asg:             inst.Asg,
			Det:             inst.Det,
			Adv:             adversary.NewCollisionSeeking(inst.Net),
			Seed:            uint64(trial + 1),
			StopWhenDecided: true,
			Shared:          inst,
		}
		wantOut, err := want.RunMIS()
		if err != nil {
			t.Fatal(err)
		}

		// The compiled scenario must share the identical cached instance...
		got, err := comp.Scenario(trial)
		if err != nil {
			t.Fatal(err)
		}
		if got.Net != inst.Net || got.Asg != inst.Asg || got.Det != inst.Det {
			t.Fatalf("trial %d: compiled scenario does not share the cached instance", trial)
		}
		// ...and replay the identical execution.
		gotOut, err := got.RunMIS()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotOut.Outputs, wantOut.Outputs) {
			t.Fatalf("trial %d: outputs diverge from the expr construction", trial)
		}
		if gotOut.DecidedRound != wantOut.DecidedRound || gotOut.Rounds != wantOut.Rounds {
			t.Fatalf("trial %d: rounds diverge: got (%d, %d), want (%d, %d)", trial,
				gotOut.Rounds, gotOut.DecidedRound, wantOut.Rounds, wantOut.DecidedRound)
		}

		// The reduced TrialResult reports the same quantities E1 does.
		tr, err := comp.RunTrial(trial)
		if err != nil {
			t.Fatal(err)
		}
		if tr.DecidedRound != wantOut.DecidedRound {
			t.Fatalf("trial %d: TrialResult.DecidedRound = %d, want %d",
				trial, tr.DecidedRound, wantOut.DecidedRound)
		}
		if wantValid := verify.MIS(want.Net, want.H(), wantOut.Outputs).OK(); tr.Valid != wantValid {
			t.Fatalf("trial %d: TrialResult.Valid = %v, want %v", trial, tr.Valid, wantValid)
		}
	}
}

// TestPresetAggregateMatchesExprMetrics closes the loop through the real
// experiment code: E1's published valid_64 metric and the preset run's
// aggregate valid fraction are computed from the same executions, so they
// must agree exactly. The run is repeated through the parallel path to pin
// schedule-independence.
func TestPresetAggregateMatchesExprMetrics(t *testing.T) {
	e1, err := expr.E1MISScaling(expr.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantValid, ok := e1.Metrics["valid_64"]
	if !ok {
		t.Fatal("E1 metrics lack valid_64")
	}
	spec, _ := PresetByName("mis-quick")
	comp, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := comp.Run(nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Aggregate.ValidFraction != wantValid {
		t.Fatalf("preset valid fraction %v, expr E1 valid_64 %v",
			seq.Aggregate.ValidFraction, wantValid)
	}
	par, err := comp.Run(nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel run diverges from sequential run")
	}
}
