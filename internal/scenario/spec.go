// Package scenario turns declarative JSON scenario specifications into
// executable simulation runs. A Spec names everything a workload needs —
// network shape, detector quality, algorithm, adversary, trial count,
// seeds, stop conditions — in a versioned, validated, canonicalizable form,
// so new dual-graph scenarios are data instead of hand-coded Go experiments.
// Compile lowers a spec onto the harness layer (sharing the memoized
// instance and schedule caches with the experiment suite, so a spec that
// mirrors an experiment reproduces it bit-for-bit), and the canonical hash
// gives services a stable cache key: two specs that describe the same
// workload hash identically regardless of JSON field order, cosmetic
// naming, or spelled-out defaults.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"dualradio/internal/core"
)

// SpecVersion is the current scenario spec schema version. Specs with
// version 0 are treated as current; any other mismatch is rejected so a
// future incompatible schema can bump the constant.
const SpecVersion = 1

// Guard rails for the service path: a single spec may not demand more work
// than one process can reasonably serve.
const (
	// MaxN caps the network size of a single spec.
	MaxN = 1 << 14
	// MaxTrials caps the trial count of a single spec.
	MaxTrials = 4096
)

// Algorithm names accepted by Spec.Algorithm.
const (
	// AlgoMIS is the Section 4 MIS algorithm with detector filtering.
	AlgoMIS = "mis"
	// AlgoMISClassic is the MIS algorithm with no detector filtering (the
	// classic-model reception rule).
	AlgoMISClassic = "mis-classic"
	// AlgoCCDS is the Section 5 banned-list CCDS algorithm.
	AlgoCCDS = "ccds"
	// AlgoBaselineCCDS is the naive enumeration CCDS comparison point.
	AlgoBaselineCCDS = "baseline-ccds"
	// AlgoTauCCDS is the Section 6 CCDS for τ-complete detectors; the τ is
	// the network spec's Tau.
	AlgoTauCCDS = "tau-ccds"
	// AlgoAsyncMIS is the Section 9 asynchronous-start MIS in the classic
	// radio model (no detector filtering; wake rounds drawn per trial).
	AlgoAsyncMIS = "async-mis"
	// AlgoContinuousCCDS is the Section 8 continuous CCDS under a dynamic
	// link detector that starts corrupted and stabilizes mid-execution.
	AlgoContinuousCCDS = "continuous-ccds"
)

// Execution engines accepted by Spec.Engine.
const (
	// EngineExact is the round-by-round engine: every round is executed
	// and every process draws its coins in round order, so results are
	// bit-identical to the pre-engine-field scenario layer.
	EngineExact = "exact"
	// EngineLeap is the leap-ahead engine: broadcast-free stretches are
	// skipped via geometric sampling. Statistically equivalent to exact
	// but not bit-identical, so it hashes as a distinct workload.
	EngineLeap = "leap"
)

// Adversary kinds accepted by AdversarySpec.Kind.
const (
	// AdvCollision is the greedy adaptive collision-seeking adversary (the
	// default: the strongest general-purpose strategy the model permits).
	AdvCollision = "collision"
	// AdvNone never activates unreliable edges.
	AdvNone = "none"
	// AdvFull activates every unreliable edge every round.
	AdvFull = "full"
	// AdvUniform activates each unreliable edge independently with
	// probability P per round (lossy links).
	AdvUniform = "uniform"
	// AdvBursty alternates each unreliable edge between geometric up-bursts
	// (mean MeanUp rounds) and down-gaps (mean MeanDown rounds).
	AdvBursty = "bursty"
)

// NetworkSpec describes the generated dual-graph network and its link
// detector. It mirrors harness.InstanceSpec, so equal network specs share
// one memoized (network, assignment, detector) instance per trial seed.
type NetworkSpec struct {
	// N is the network size (2..MaxN).
	N int `json:"n"` //detvet:hashneutral required identity field, present in every canonical encoding since v0
	// TargetDegree steers the reliable-graph degree (0 = generator default,
	// 3·log₂ n).
	TargetDegree float64 `json:"target_degree,omitempty"`
	// GrayProb is the gray-zone edge probability (0 = generator default,
	// negative = no unreliable edges, i.e. the classic model G = G').
	GrayProb float64 `json:"gray_prob,omitempty"`
	// Tau selects the detector: 0 is the perfect 0-complete detector,
	// positive values a τ-complete detector with τ mistakes per node.
	Tau int `json:"tau,omitempty"`
}

// AdversarySpec selects the reach-set strategy for unreliable edges.
type AdversarySpec struct {
	// Kind is one of the Adv* constants; empty defaults to AdvCollision.
	Kind string `json:"kind,omitempty"`
	// P is the per-round activation probability (AdvUniform only).
	P float64 `json:"p,omitempty"`
	// MeanUp and MeanDown are the mean burst and gap lengths in rounds
	// (AdvBursty only; values below 1 are clamped to 1 by the adversary).
	MeanUp   float64 `json:"mean_up,omitempty"`
	MeanDown float64 `json:"mean_down,omitempty"`
}

// WakeSpec configures asynchronous starts (AlgoAsyncMIS only).
type WakeSpec struct {
	// MaxDelay is the exclusive upper bound on the uniform wake-up round
	// drawn per node (0 defaults to 1000, the E8 configuration).
	MaxDelay int `json:"max_delay,omitempty"`
}

// DynamicSpec configures the dynamic link detector (AlgoContinuousCCDS
// only): the detector starts with Mistakes misclassified links per node and
// stabilizes to the clean detector mid-second-period, the Theorem 8.1
// experiment shape.
type DynamicSpec struct {
	// Mistakes is the pre-stabilization mistake count per node (0 defaults
	// to 2).
	Mistakes int `json:"mistakes,omitempty"`
	// Periods is the number of δ_CDS rerun periods to simulate (0 defaults
	// to 5, enough to cover the Theorem 8.1 deadline).
	Periods int `json:"periods,omitempty"`
}

// Spec is a complete declarative scenario: one algorithm over one generated
// network shape, run for Trials independent seeded trials. The zero value
// is not valid; Canonical fills defaults and Compile validates.
type Spec struct {
	// Version is the schema version (0 means current).
	Version int `json:"version,omitempty"`
	// Name is a cosmetic label; it is excluded from the canonical hash.
	Name string `json:"name,omitempty"`
	// Algorithm is one of the Algo* constants.
	Algorithm string `json:"algorithm"` //detvet:hashneutral required identity field, present in every canonical encoding since v0
	// Network describes the generated instance.
	Network NetworkSpec `json:"network"`
	// B is the message-size bound in bits (0 defaults to 512 for the CCDS
	// family and unbounded for MIS variants).
	B int `json:"b,omitempty"`
	// Adversary selects the unreliable-edge strategy.
	Adversary AdversarySpec `json:"adversary,omitempty"`
	// Trials is the number of independent trials (0 defaults to 1).
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed; trial i derives its randomness from Seed+i
	// (0 defaults to 1, so trial seeds match the experiment suite's 1..k).
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds caps executions that have no fixed length (0 = algorithm
	// default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// StopWhenDecided ends fixed-schedule executions once every process has
	// decided (see harness.Scenario.StopWhenDecided for the caveats).
	StopWhenDecided bool `json:"stop_when_decided,omitempty"`
	// TrialRetention bounds the per-trial payload the Result keeps:
	// RetainAll (the default), RetainErrors (only verification failures),
	// or RetainNone (aggregate only). The canonical spelling of RetainAll
	// is the empty string, so specs predating the policy keep their hashes;
	// the other policies hash distinctly because they change the Result.
	TrialRetention string `json:"trial_retention,omitempty"`
	// Engine selects the execution engine: EngineExact (the default) or
	// EngineLeap. The canonical spelling of EngineExact is the empty
	// string, so every spec predating the field keeps its hash; EngineLeap
	// hashes distinctly because leap trials are statistically equivalent
	// but not bit-identical.
	Engine string `json:"engine,omitempty"`
	// TimeoutMS caps the run's wallclock in milliseconds (0 = no
	// deadline). It is an execution policy, not part of the workload: the
	// result of a run that finishes is independent of any deadline, so
	// TimeoutMS is excluded from the canonical hash entirely and two specs
	// differing only here share one cache entry.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Params overrides the algorithms' constant factors (nil = defaults).
	// core.Params predates the tag discipline: its fields join the hash
	// under their Go names, and retagging now would orphan every stored
	// result for a params-carrying spec, so the encoding is frozen as-is.
	Params *core.Params `json:"params,omitempty"` //detvet:hashneutral legacy v0 encoding under Go field names; retagging would rewrite existing hashes
	// Wake configures asynchronous starts (AlgoAsyncMIS only).
	Wake *WakeSpec `json:"wake,omitempty"`
	// Dynamic configures the dynamic detector (AlgoContinuousCCDS only).
	Dynamic *DynamicSpec `json:"dynamic,omitempty"`
}

// needsB reports whether the algorithm requires a positive message bound.
func needsB(algorithm string) bool {
	switch algorithm {
	case AlgoCCDS, AlgoBaselineCCDS, AlgoTauCCDS, AlgoContinuousCCDS:
		return true
	}
	return false
}

// Canonical returns the spec with every defaulted field spelled out and
// irrelevant adversary parameters cleared, so specs that describe the same
// workload compare — and hash — equal. Canonicalization never rejects;
// Validate reports what Compile would.
func (s Spec) Canonical() Spec {
	c := s
	c.Version = SpecVersion
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.B == 0 && needsB(c.Algorithm) {
		c.B = 512
	}
	if c.Adversary.Kind == "" {
		c.Adversary.Kind = AdvCollision
	}
	if c.TrialRetention == RetainAll {
		c.TrialRetention = "" // canonical spelling of the default (hash stability)
	}
	if c.Engine == EngineExact {
		c.Engine = "" // canonical spelling of the default (hash stability)
	}
	if c.Adversary.Kind != AdvUniform {
		c.Adversary.P = 0
	}
	if c.Adversary.Kind != AdvBursty {
		c.Adversary.MeanUp, c.Adversary.MeanDown = 0, 0
	}
	if c.Algorithm == AlgoAsyncMIS {
		w := WakeSpec{MaxDelay: 1000}
		if c.Wake != nil && c.Wake.MaxDelay != 0 {
			w.MaxDelay = c.Wake.MaxDelay
		}
		c.Wake = &w
		if c.MaxRounds == 0 {
			c.MaxRounds = 1 << 19
		}
	}
	if c.Algorithm == AlgoContinuousCCDS {
		d := DynamicSpec{Mistakes: 2, Periods: 5}
		if c.Dynamic != nil {
			if c.Dynamic.Mistakes != 0 {
				d.Mistakes = c.Dynamic.Mistakes
			}
			if c.Dynamic.Periods != 0 {
				d.Periods = c.Dynamic.Periods
			}
		}
		c.Dynamic = &d
	}
	if c.Params != nil && *c.Params == core.DefaultParams() {
		c.Params = nil
	}
	return c
}

// Validate reports whether the canonicalized spec describes a runnable
// scenario. It is deliberately strict about fields that have no meaning for
// the chosen algorithm, so a typo fails loudly instead of silently running
// a different workload.
func (s Spec) Validate() error {
	c := s.Canonical()
	if s.Version != 0 && s.Version != SpecVersion {
		return fmt.Errorf("scenario: unsupported spec version %d (current %d)", s.Version, SpecVersion)
	}
	switch c.Algorithm {
	case AlgoMIS, AlgoMISClassic, AlgoCCDS, AlgoBaselineCCDS, AlgoTauCCDS,
		AlgoAsyncMIS, AlgoContinuousCCDS:
	case "":
		return fmt.Errorf("scenario: missing algorithm")
	default:
		return fmt.Errorf("scenario: unknown algorithm %q", c.Algorithm)
	}
	// Non-finite floats slip through the range checks below (NaN compares
	// false against everything) and would make the canonical form
	// unencodable; reject them by name instead.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"target_degree", c.Network.TargetDegree},
		{"gray_prob", c.Network.GrayProb},
		{"adversary p", c.Adversary.P},
		{"adversary mean_up", c.Adversary.MeanUp},
		{"adversary mean_down", c.Adversary.MeanDown},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("scenario: non-finite %s %v", f.name, f.v)
		}
	}
	if c.Network.N < 2 || c.Network.N > MaxN {
		return fmt.Errorf("scenario: network n=%d out of range [2, %d]", c.Network.N, MaxN)
	}
	if c.Network.TargetDegree < 0 {
		return fmt.Errorf("scenario: negative target_degree %v", c.Network.TargetDegree)
	}
	if c.Network.GrayProb > 1 {
		return fmt.Errorf("scenario: gray_prob %v exceeds 1", c.Network.GrayProb)
	}
	if c.Network.Tau < 0 {
		return fmt.Errorf("scenario: negative tau %d", c.Network.Tau)
	}
	if c.B < 0 {
		return fmt.Errorf("scenario: negative message bound b=%d", c.B)
	}
	switch c.Adversary.Kind {
	case AdvCollision, AdvNone, AdvFull:
	case AdvUniform:
		if c.Adversary.P <= 0 || c.Adversary.P > 1 {
			return fmt.Errorf("scenario: uniform adversary needs p in (0, 1], got %v", c.Adversary.P)
		}
	case AdvBursty:
		if c.Adversary.MeanUp < 0 || c.Adversary.MeanDown < 0 {
			return fmt.Errorf("scenario: bursty adversary needs non-negative mean_up/mean_down")
		}
	default:
		return fmt.Errorf("scenario: unknown adversary kind %q", c.Adversary.Kind)
	}
	if c.Trials < 1 || c.Trials > MaxTrials {
		return fmt.Errorf("scenario: trials=%d out of range [1, %d]", c.Trials, MaxTrials)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("scenario: negative max_rounds %d", c.MaxRounds)
	}
	if c.TimeoutMS < 0 {
		return fmt.Errorf("scenario: negative timeout_ms %d", c.TimeoutMS)
	}
	switch c.TrialRetention {
	case "", RetainErrors, RetainNone: // "" is canonical RetainAll
	default:
		return fmt.Errorf("scenario: unknown trial_retention %q (want %s|%s|%s)",
			c.TrialRetention, RetainAll, RetainErrors, RetainNone)
	}
	switch c.Engine {
	case "", EngineLeap: // "" is canonical EngineExact
	default:
		return fmt.Errorf("scenario: unknown engine %q (want %s|%s)",
			c.Engine, EngineExact, EngineLeap)
	}
	if s.Wake != nil && s.Algorithm != AlgoAsyncMIS {
		return fmt.Errorf("scenario: wake is only meaningful for algorithm %q", AlgoAsyncMIS)
	}
	if c.Wake != nil && c.Wake.MaxDelay < 0 {
		return fmt.Errorf("scenario: negative wake max_delay %d", c.Wake.MaxDelay)
	}
	if s.Dynamic != nil && s.Algorithm != AlgoContinuousCCDS {
		return fmt.Errorf("scenario: dynamic is only meaningful for algorithm %q", AlgoContinuousCCDS)
	}
	if c.Dynamic != nil && (c.Dynamic.Mistakes < 0 || c.Dynamic.Periods < 1) {
		return fmt.Errorf("scenario: dynamic needs mistakes >= 0 and periods >= 1")
	}
	if p := c.Params; p != nil {
		if p.Epochs <= 0 || p.Phase <= 0 || p.Decay <= 0 || p.BB <= 0 || p.Listen <= 0 {
			return fmt.Errorf("scenario: params phase lengths must be positive")
		}
		if p.DeltaBB < 0 || p.SearchEpochs < 1 || p.MaxMasters < 1 {
			return fmt.Errorf("scenario: params DeltaBB/SearchEpochs/MaxMasters out of range")
		}
	}
	return nil
}

// CanonicalHash returns the canonical spec hash: the hex SHA-256 of the
// canonical form's JSON encoding with the cosmetic Name and the TimeoutMS
// execution policy cleared. Two specs hash equal exactly when they describe
// the same workload, which makes the hash a sound result-cache key. Go's
// encoding/json emits struct fields in declaration order, so the encoding —
// and the hash — is deterministic across processes and platforms.
//
// Marshal failures (e.g. a non-finite float smuggled past validation) are
// propagated instead of panicking: a malformed spec must fail its own
// submission, never crash the process hashing it.
func (s Spec) CanonicalHash() (string, error) {
	c := s.Canonical()
	c.Name = ""
	c.TimeoutMS = 0
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("scenario: marshal canonical spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so typos surface
// as errors instead of silently running a default.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	return s, nil
}
