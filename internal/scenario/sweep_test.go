package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func misSweep() SweepSpec {
	return SweepSpec{
		Name: "grid",
		Base: Spec{
			Algorithm:       AlgoMIS,
			Network:         NetworkSpec{N: 32},
			Trials:          2,
			StopWhenDecided: true,
		},
		Axes: SweepAxes{
			N:        &Axis{Values: []float64{32, 64}},
			GrayProb: &Axis{Values: []float64{0.05, 0.2}},
			Adversary: []AdversarySpec{
				{Kind: AdvCollision},
				{Kind: AdvFull},
			},
		},
	}
}

func TestSweepExpansionDeterministicOrderAndHash(t *testing.T) {
	a, err := ExpandSweep(misSweep())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExpandSweep(misSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Children) != 8 {
		t.Fatalf("2×2×2 sweep expanded to %d children", len(a.Children))
	}
	if a.Hash() != b.Hash() {
		t.Fatal("identical sweeps hash differently")
	}
	for i := range a.Children {
		if a.Children[i].Hash() != b.Children[i].Hash() {
			t.Fatalf("child %d differs across identical expansions", i)
		}
	}
	// Grid order: first axis (n) outermost, adversary fastest.
	wantOrder := []struct {
		n    int
		gray float64
		adv  string
	}{
		{32, 0.05, AdvCollision}, {32, 0.05, AdvFull},
		{32, 0.2, AdvCollision}, {32, 0.2, AdvFull},
		{64, 0.05, AdvCollision}, {64, 0.05, AdvFull},
		{64, 0.2, AdvCollision}, {64, 0.2, AdvFull},
	}
	for i, w := range wantOrder {
		sp := a.Children[i].Spec()
		if sp.Network.N != w.n || sp.Network.GrayProb != w.gray || sp.Adversary.Kind != w.adv {
			t.Errorf("child %d = (n=%d gray=%v adv=%s), want (%d %v %s)",
				i, sp.Network.N, sp.Network.GrayProb, sp.Adversary.Kind, w.n, w.gray, w.adv)
		}
		if !strings.Contains(sp.Name, "grid[") {
			t.Errorf("child %d name %q lacks sweep coordinates", i, sp.Name)
		}
	}
}

func TestSweepHashIgnoresAxisSpelling(t *testing.T) {
	// The same value grid written as a list, an arithmetic range, and a
	// geometric range must expand to the same children and the same sweep
	// hash: the hash covers the expanded workloads, not the spelling.
	asList := misSweep()
	asList.Axes.N = &Axis{Values: []float64{32, 64}}
	asStep := misSweep()
	asStep.Axes.N = &Axis{From: 32, To: 64, Step: 32}
	asFactor := misSweep()
	asFactor.Axes.N = &Axis{From: 32, To: 64, Factor: 2}
	le, err := ExpandSweep(asList)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []SweepSpec{asStep, asFactor} {
		oe, err := ExpandSweep(other)
		if err != nil {
			t.Fatal(err)
		}
		if oe.Hash() != le.Hash() {
			t.Errorf("respelled axis changed the sweep hash")
		}
	}
	// A genuinely different grid must not collide.
	asList.Axes.N = &Axis{Values: []float64{32, 96}}
	de, err := ExpandSweep(asList)
	if err != nil {
		t.Fatal(err)
	}
	if de.Hash() == le.Hash() {
		t.Error("different grids share a sweep hash")
	}
}

func TestSweepRangeExpansion(t *testing.T) {
	vals, err := (&Axis{From: 1, To: 2, Step: 0.25}).expand("x", false)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1, 1.25, 1.5, 1.75, 2}; !reflect.DeepEqual(vals, want) {
		t.Errorf("arithmetic range = %v, want %v", vals, want)
	}
	vals, err = (&Axis{From: 64, To: 1024, Factor: 4}).expand("n", true)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{64, 256, 1024}; !reflect.DeepEqual(vals, want) {
		t.Errorf("geometric range = %v, want %v", vals, want)
	}
}

func TestSweepDeduplicatesEqualChildren(t *testing.T) {
	sw := misSweep()
	// Duplicate grid points (the same n listed twice) canonicalize to the
	// same workload and must collapse to one child.
	sw.Axes.N = &Axis{Values: []float64{32, 32}}
	sw.Axes.GrayProb = nil
	sw.Axes.Adversary = nil
	exp, err := ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Children) != 1 {
		t.Fatalf("duplicate grid points kept: %d children, want 1", len(exp.Children))
	}
}

func TestSweepNoAxesExpandsToBase(t *testing.T) {
	sw := SweepSpec{Base: Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}}}
	exp, err := ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Children) != 1 {
		t.Fatalf("axis-less sweep expanded to %d children", len(exp.Children))
	}
	if exp.Children[0].Hash() != mustHash(t, Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}}) {
		t.Fatal("axis-less child is not the base spec")
	}
}

func TestSweepRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*SweepSpec)
		wantSub string
	}{
		{"future version", func(s *SweepSpec) { s.Version = 99 }, "sweep version"},
		{"values and range", func(s *SweepSpec) { s.Axes.N = &Axis{Values: []float64{32}, Step: 1, To: 64} }, "mixes values"},
		{"step and factor", func(s *SweepSpec) { s.Axes.N = &Axis{From: 32, To: 64, Step: 1, Factor: 2} }, "both step and factor"},
		{"backwards range", func(s *SweepSpec) { s.Axes.N = &Axis{From: 64, To: 32, Step: 8} }, "backwards"},
		{"factor below one", func(s *SweepSpec) { s.Axes.N = &Axis{From: 32, To: 64, Factor: 0.5} }, "factor > 1"},
		{"empty axis", func(s *SweepSpec) { s.Axes.N = &Axis{} }, "needs values or a range"},
		{"fractional n", func(s *SweepSpec) { s.Axes.N = &Axis{Values: []float64{32.5}} }, "integer values"},
		{"too many children", func(s *SweepSpec) {
			s.Axes.N = &Axis{From: 2, To: 2000, Step: 1}
		}, "exceeds"},
		{"invalid child", func(s *SweepSpec) { s.Axes.N = &Axis{Values: []float64{1}} }, "sweep child"},
		{"invalid algorithm axis", func(s *SweepSpec) { s.Axes.Algorithm = []string{"mis", "steiner"} }, "sweep child"},
	}
	for _, tc := range cases {
		sw := misSweep()
		tc.mutate(&sw)
		if _, err := ExpandSweep(sw); err == nil {
			t.Errorf("%s: expansion accepted an invalid sweep", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestParseSweepStrict(t *testing.T) {
	good := []byte(`{"base":{"algorithm":"mis","network":{"n":32}},"axes":{"n":{"values":[32,64]}}}`)
	if _, err := ParseSweep(good); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	bad := [][]byte{
		[]byte(`{"base":{"algorithm":"mis","network":{"n":32}},"axis":{}}`),             // misspelled axes
		[]byte(`{"base":{"algorithm":"mis","network":{"n":32},"trails":3},"axes":{}}`),  // typo inside base
		[]byte(`{"base":{"algorithm":"mis","network":{"n":32}},"axes":{"nn":{}}}`),      // unknown axis
		[]byte(`{"base":{"algorithm":"mis","network":{"n":32}},"axes":{"n":{"go":1}}}`), // unknown axis field
	}
	for _, b := range bad {
		if _, err := ParseSweep(b); err == nil {
			t.Errorf("ParseSweep accepted %s", b)
		}
	}
}

func TestCostEstimateScalesWithWorkload(t *testing.T) {
	cost := func(s Spec) int64 {
		comp, err := Compile(s)
		if err != nil {
			t.Fatalf("compile %+v: %v", s, err)
		}
		c := comp.CostEstimate()
		if c <= 0 {
			t.Fatalf("non-positive cost %d for %+v", c, s)
		}
		return c
	}
	small := cost(Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}})
	big := cost(Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 1024}})
	if big <= small {
		t.Errorf("cost does not grow with n: n=64 → %d, n=1024 → %d", small, big)
	}
	one := cost(Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, Trials: 1})
	ten := cost(Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, Trials: 10})
	if ten != 10*one {
		t.Errorf("cost not linear in trials: 1 → %d, 10 → %d", one, ten)
	}
	// Every algorithm produces a positive estimate (including the CCDS
	// family, whose analytic schedule length depends on b and Δ).
	for _, s := range []Spec{
		{Algorithm: AlgoMISClassic, Network: NetworkSpec{N: 64, GrayProb: -1}, Adversary: AdversarySpec{Kind: AdvNone}},
		{Algorithm: AlgoCCDS, Network: NetworkSpec{N: 64}, B: 512},
		{Algorithm: AlgoBaselineCCDS, Network: NetworkSpec{N: 64}, B: 512},
		{Algorithm: AlgoTauCCDS, Network: NetworkSpec{N: 64, Tau: 1}, B: 1 << 15},
		{Algorithm: AlgoAsyncMIS, Network: NetworkSpec{N: 64, GrayProb: -1}, Adversary: AdversarySpec{Kind: AdvNone}},
		{Algorithm: AlgoContinuousCCDS, Network: NetworkSpec{N: 64}, B: 512},
	} {
		cost(s)
	}
	// The continuous variant reruns δ_CDS periods, so more periods cost more.
	few := cost(Spec{Algorithm: AlgoContinuousCCDS, Network: NetworkSpec{N: 64}, B: 512,
		Dynamic: &DynamicSpec{Periods: 2}})
	many := cost(Spec{Algorithm: AlgoContinuousCCDS, Network: NetworkSpec{N: 64}, B: 512,
		Dynamic: &DynamicSpec{Periods: 20}})
	if many <= few {
		t.Errorf("continuous cost ignores periods: 2 → %d, 20 → %d", few, many)
	}
}

func BenchmarkSweepExpand(b *testing.B) {
	sw := SweepSpec{
		Name: "bench",
		Base: Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 64}, Trials: 3, StopWhenDecided: true},
		Axes: SweepAxes{
			N:        &Axis{From: 64, To: 512, Factor: 2},
			GrayProb: &Axis{Values: []float64{0.05, 0.1, 0.2, 0.4}},
			Adversary: []AdversarySpec{
				{Kind: AdvCollision}, {Kind: AdvFull}, {Kind: AdvUniform, P: 0.3},
			},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		exp, err := ExpandSweep(sw)
		if err != nil {
			b.Fatal(err)
		}
		if len(exp.Children) != 48 {
			b.Fatalf("expanded to %d children", len(exp.Children))
		}
	}
}
