package scenario

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func compileQuick(t *testing.T, trials int) *Compiled {
	t.Helper()
	comp, err := Compile(Spec{
		Algorithm:       AlgoMIS,
		Network:         NetworkSpec{N: 32},
		Trials:          trials,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// A panicking trial must become that trial's error, not a process crash.
func TestRunRecoversTrialPanic(t *testing.T) {
	comp := compileQuick(t, 4)
	_, err := comp.RunWithOptions(nil, RunOptions{
		Workers: 2,
		Fault: func(trial, attempt int) error {
			if trial == 2 {
				panic("poisoned trial")
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("panicking trial did not fail the run")
	}
	if !strings.Contains(err.Error(), "trial 2 panicked") {
		t.Fatalf("panic error lost its trial: %v", err)
	}
	if IsTransient(err) {
		t.Fatalf("non-error panic classified transient: %v", err)
	}
}

// An error-typed panic value is wrapped with %w, so transient marking
// survives the recover boundary and the retry loop can see it.
func TestRunPanicPreservesTransientMarking(t *testing.T) {
	comp := compileQuick(t, 1)
	_, err := comp.RunWithOptions(nil, RunOptions{
		Fault: func(trial, attempt int) error {
			panic(MarkTransient(errors.New("flaky subsystem")))
		},
	})
	if err == nil {
		t.Fatal("panicking trial did not fail the run")
	}
	if !IsTransient(err) {
		t.Fatalf("transient panic value lost its marking: %v", err)
	}
}

// The fault hook sees the configured attempt, so attempt-gated faults can
// clear on retry.
func TestRunThreadsAttemptToFaultHook(t *testing.T) {
	comp := compileQuick(t, 2)
	inject := func(trial, attempt int) error {
		if attempt == 0 {
			return MarkTransient(errors.New("first attempt only"))
		}
		return nil
	}
	if _, err := comp.RunWithOptions(nil, RunOptions{Fault: inject}); !IsTransient(err) {
		t.Fatalf("attempt 0: want transient injected error, got %v", err)
	}
	res, err := comp.RunWithOptions(nil, RunOptions{Attempt: 1, Fault: inject})
	if err != nil {
		t.Fatalf("attempt 1: %v", err)
	}
	if res.Aggregate.Trials != 2 {
		t.Fatalf("attempt 1 aggregated %d trials, want 2", res.Aggregate.Trials)
	}
}

func TestMarkTransient(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
	base := errors.New("boom")
	marked := MarkTransient(base)
	if !IsTransient(marked) {
		t.Fatal("marked error not transient")
	}
	if !errors.Is(marked, base) {
		t.Fatal("marking broke the error chain")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error classified transient")
	}
	if !IsTransient(errors.Join(errors.New("outer"), marked)) {
		t.Fatal("transient marking lost through a join")
	}
}

// A NaN smuggled into a spec must surface as a validation or hashing
// error — historically Hash() panicked on the unencodable canonical form.
func TestNonFiniteSpecFailsCleanly(t *testing.T) {
	s := Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32, GrayProb: math.NaN()}}
	if _, err := Compile(s); err == nil {
		t.Fatal("Compile accepted a NaN gray_prob")
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("Validate on NaN spec: %v", err)
	}
	// CanonicalHash on a never-validated NaN spec returns an error rather
	// than panicking.
	if _, err := s.CanonicalHash(); err == nil {
		t.Fatal("CanonicalHash marshalled a NaN spec")
	}
	inf := Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}, Adversary: AdversarySpec{Kind: AdvUniform, P: math.Inf(1)}}
	if err := inf.Validate(); err == nil {
		t.Fatal("Validate accepted an infinite adversary p")
	}
}

func TestValidateRejectsNegativeTimeout(t *testing.T) {
	s := Spec{Algorithm: AlgoMIS, Network: NetworkSpec{N: 32}, TimeoutMS: -1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "timeout_ms") {
		t.Fatalf("Validate on negative timeout_ms: %v", err)
	}
}
