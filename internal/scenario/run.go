package scenario

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"dualradio/internal/stats"
)

// Result is a complete scenario run: every trial's outcome plus the
// aggregate the service reports. It is deterministic in the canonical spec,
// so results cached under the spec hash are indistinguishable from fresh
// runs.
type Result struct {
	// SpecHash is the canonical spec hash the run was keyed by.
	SpecHash string `json:"spec_hash"`
	// Algorithm and N echo the headline spec fields for readability.
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	// Trials holds the per-trial outcomes in trial order.
	Trials []TrialResult `json:"trials"`
	// Aggregate reduces the trials.
	Aggregate Aggregate `json:"aggregate"`
}

// Aggregate summarizes a run's trials.
type Aggregate struct {
	// Trials is the trial count.
	Trials int `json:"trials"`
	// ValidFraction is the fraction of trials whose outputs verified.
	ValidFraction float64 `json:"valid_fraction"`
	// MeanRounds is the mean executed rounds.
	MeanRounds float64 `json:"mean_rounds"`
	// MeanDecidedRound and P90DecidedRound summarize decision latency over
	// the trials where every process decided (DecidedRound > 0), the same
	// filtering the experiment tables apply.
	MeanDecidedRound float64 `json:"mean_decided_round,omitempty"`
	P90DecidedRound  float64 `json:"p90_decided_round,omitempty"`
	// MeanSize is the mean output-structure size.
	MeanSize float64 `json:"mean_size"`
	// MeanLatency is the mean of the trials' mean local decision latencies
	// (AlgoAsyncMIS only).
	MeanLatency float64 `json:"mean_latency,omitempty"`
}

// Run executes every trial, fanning them across workers goroutines
// (values < 2 run sequentially), and reduces the outcomes. The results —
// per-trial and aggregate — are identical for every worker count.
//
// onTrial, if non-nil, is invoked once per completed trial in completion
// order; calls are serialized, so the callback needs no locking of its own.
//
// Cancellation is observed between trials: once ctx is done no new trial
// starts, in-flight trials finish, and Run returns ctx's error with a nil
// Result. A trial error aborts the same way and is reported in trial order
// (the error a sequential loop would have surfaced first).
func (c *Compiled) Run(ctx context.Context, workers int, onTrial func(TrialResult)) (*Result, error) {
	count := c.spec.Trials
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	results := make([]TrialResult, count)
	errs := make([]error, count)
	var done atomic.Int64
	var failed atomic.Bool
	var next atomic.Int64
	var mu sync.Mutex // serializes onTrial
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || (ctx != nil && ctx.Err() != nil) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				r, err := c.RunTrial(i)
				results[i], errs[i] = r, err
				if err != nil {
					failed.Store(true)
					continue
				}
				done.Add(1)
				if onTrial != nil {
					mu.Lock()
					onTrial(r)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if int(done.Load()) < count {
		// Only cancellation leaves trials unrun without an error.
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, errors.New("scenario: run incomplete")
	}
	res := &Result{
		SpecHash:  c.hash,
		Algorithm: c.spec.Algorithm,
		N:         c.spec.Network.N,
		Trials:    results,
	}
	res.Aggregate = aggregate(results)
	return res, nil
}

func aggregate(trials []TrialResult) Aggregate {
	agg := Aggregate{Trials: len(trials)}
	if len(trials) == 0 {
		return agg
	}
	var decided, latencies []float64
	var rounds, size float64
	valid := 0
	for _, t := range trials {
		rounds += float64(t.Rounds)
		size += float64(t.Size)
		if t.Valid {
			valid++
		}
		if t.DecidedRound > 0 {
			decided = append(decided, float64(t.DecidedRound))
		}
		if t.MeanLatency > 0 {
			latencies = append(latencies, t.MeanLatency)
		}
	}
	n := float64(len(trials))
	agg.ValidFraction = float64(valid) / n
	agg.MeanRounds = rounds / n
	agg.MeanSize = size / n
	if len(decided) > 0 {
		sum := stats.Summarize(decided)
		agg.MeanDecidedRound = sum.Mean
		agg.P90DecidedRound = sum.P90
	}
	if len(latencies) > 0 {
		agg.MeanLatency = stats.Mean(latencies)
	}
	return agg
}
