package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Result is a complete scenario run: the aggregate the service reports plus
// the per-trial outcomes the spec's trial_retention policy kept. It is
// deterministic in the canonical spec, so results cached under the spec
// hash are indistinguishable from fresh runs. The detvet:hashed marker
// holds its JSON encoding (and, recursively, Aggregate's and
// TrialResult's) to the hashneutral field discipline: these bytes are
// persisted write-once and byte-compared across restarts and workers.
//
//detvet:hashed
type Result struct {
	// SpecHash is the canonical spec hash the run was keyed by.
	SpecHash string `json:"spec_hash"`
	// Algorithm and N echo the headline spec fields for readability.
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	// TrialRetention echoes the spec's policy when it is not the default
	// "all" — i.e. when Trials is intentionally partial.
	TrialRetention string `json:"trial_retention,omitempty"`
	// Trials holds the retained per-trial outcomes in trial order: every
	// trial under "all" (the default), only verification failures under
	// "errors", none under "none".
	Trials []TrialResult `json:"trials,omitempty"`
	// Aggregate reduces every executed trial, regardless of retention.
	Aggregate Aggregate `json:"aggregate"`
}

// Aggregate summarizes a run's trials.
type Aggregate struct {
	// Trials is the trial count.
	Trials int `json:"trials"`
	// ValidFraction is the fraction of trials whose outputs verified.
	ValidFraction float64 `json:"valid_fraction"`
	// MeanRounds is the mean executed rounds.
	MeanRounds float64 `json:"mean_rounds"`
	// MeanDecidedRound and P90DecidedRound summarize decision latency over
	// the trials where every process decided (DecidedRound > 0), the same
	// filtering the experiment tables apply.
	MeanDecidedRound float64 `json:"mean_decided_round,omitempty"`
	P90DecidedRound  float64 `json:"p90_decided_round,omitempty"`
	// MeanSize is the mean output-structure size.
	MeanSize float64 `json:"mean_size"`
	// MeanLatency is the mean of the trials' mean local decision latencies
	// (AlgoAsyncMIS only).
	MeanLatency float64 `json:"mean_latency,omitempty"`
}

// Progress reports one completed trial to Run's callback, together with the
// streaming reduction state. Trials complete in scheduling order (which is
// nondeterministic with several workers), but the reducer folds them
// strictly in trial-index order: Folded is the length of the contiguous
// trial prefix reduced so far and Aggregate summarizes exactly that prefix,
// so the streamed aggregates form a deterministic sequence ending in the
// run's final Aggregate.
type Progress struct {
	// Trial is the trial that just completed.
	Trial TrialResult
	// Folded counts the contiguous prefix of trials reduced so far.
	Folded int
	// Aggregate summarizes the folded prefix.
	Aggregate Aggregate
}

// FaultHook, if configured, runs before every trial with (trial, attempt)
// and may inject an error, a delay, or a panic. It exists for deterministic
// fault injection; production runs leave it nil.
type FaultHook func(trial, attempt int) error

// RunOptions configures RunWithOptions beyond the spec itself. The zero
// value runs sequentially with no callback, attempt 0, and no faults.
type RunOptions struct {
	// Workers is the trial fan-out (values < 2 run sequentially).
	Workers int
	// OnProgress, if non-nil, is invoked once per completed trial in
	// completion order; calls are serialized, so the callback needs no
	// locking of its own.
	OnProgress func(Progress)
	// Attempt is the retry attempt this run represents (0 = first). It is
	// threaded to the fault hook so attempt-gated faults can vanish on
	// retry; it never affects the trials themselves.
	Attempt int
	// Fault is the optional fault-injection hook.
	Fault FaultHook
	// ObserveTrial, if non-nil, receives each completed trial's wallclock
	// duration (successful trials only). Calls may be concurrent — one per
	// trial worker — so observers must be safe for concurrent use.
	ObserveTrial func(d time.Duration)
}

// Run executes every trial, fanning them across workers goroutines
// (values < 2 run sequentially), and streams the outcomes through the
// reducer. The results — retained trials and aggregate — are identical for
// every worker count. It is shorthand for RunWithOptions.
func (c *Compiled) Run(ctx context.Context, workers int, onProgress func(Progress)) (*Result, error) {
	return c.RunWithOptions(ctx, RunOptions{Workers: workers, OnProgress: onProgress})
}

// safeTrial runs one trial behind a recover boundary: a panicking trial —
// from a poisoned input, a bug in an algorithm layer, or an injected
// fault — becomes that trial's error instead of crashing the process. An
// error-typed panic value is wrapped (preserving transient marking); any
// other value is rendered with its stack so the report stays debuggable.
func (c *Compiled) safeTrial(trial int, opts RunOptions) (res TrialResult, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if perr, ok := p.(error); ok {
			err = fmt.Errorf("scenario: trial %d panicked: %w", trial, perr)
			return
		}
		err = fmt.Errorf("scenario: trial %d panicked: %v\n%s", trial, p, debug.Stack())
	}()
	if opts.Fault != nil {
		if ferr := opts.Fault(trial, opts.Attempt); ferr != nil {
			return TrialResult{}, ferr
		}
	}
	return c.RunTrial(trial)
}

// RunWithOptions executes every trial per opts.
//
// Cancellation is observed between trials: once ctx is done no new trial
// starts, in-flight trials finish, and the run returns ctx's error with a
// nil Result. A trial error — including a recovered trial panic — aborts
// the same way and is reported in trial order (the error a sequential loop
// would have surfaced first).
func (c *Compiled) RunWithOptions(ctx context.Context, opts RunOptions) (*Result, error) {
	count := c.spec.Trials
	onProgress := opts.OnProgress
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	retention := c.spec.TrialRetention
	buf := make([]TrialResult, count) // reorder buffer for in-order folding
	arrived := make([]bool, count)
	errs := make([]error, count)
	var done atomic.Int64
	var failed atomic.Bool
	var next atomic.Int64
	red := NewReducer()
	var retained []TrialResult
	cursor := 0       // next trial index to fold
	var mu sync.Mutex // serializes folding and onProgress
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || (ctx != nil && ctx.Err() != nil) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				trialStart := time.Now() //detvet:wallclock per-trial latency observation only; never reaches TrialResult or the aggregate
				r, err := c.safeTrial(i, opts)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				if opts.ObserveTrial != nil {
					opts.ObserveTrial(time.Since(trialStart)) //detvet:wallclock feeds the trial_duration histogram, not the result
				}
				done.Add(1)
				mu.Lock()
				buf[i], arrived[i] = r, true
				for cursor < count && arrived[cursor] {
					t := buf[cursor]
					red.Add(t)
					if retainTrial(retention, t) {
						retained = append(retained, t)
					}
					buf[cursor] = TrialResult{} // folded; drop the buffered copy
					cursor++
				}
				if onProgress != nil {
					onProgress(Progress{Trial: r, Folded: cursor, Aggregate: red.Aggregate()})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if int(done.Load()) < count {
		// Only cancellation leaves trials unrun without an error.
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, errors.New("scenario: run incomplete")
	}
	res := &Result{
		SpecHash:  c.hash,
		Algorithm: c.spec.Algorithm,
		N:         c.spec.Network.N,
		Trials:    retained,
		Aggregate: red.Aggregate(),
	}
	if retention != "" && retention != RetainAll {
		res.TrialRetention = retention
	}
	return res, nil
}
