package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxSweepChildren caps how many child specs one sweep may expand into, so
// a mistyped range fails loudly instead of materializing an unbounded grid.
const MaxSweepChildren = 512

// Axis enumerates the values of one numeric sweep dimension: either an
// explicit list ("values") or an inclusive range from From to To, stepped
// arithmetically ("step") or geometrically ("factor"). Exactly one form
// must be given. Range expansion is index-based (From + i·Step, From·Factorⁱ),
// so repeated float addition cannot drift the grid.
type Axis struct {
	Values []float64 `json:"values,omitempty"`
	From   float64   `json:"from,omitempty"`
	To     float64   `json:"to,omitempty"`
	Step   float64   `json:"step,omitempty"`
	Factor float64   `json:"factor,omitempty"`
}

// expand materializes the axis values. integral axes (n, tau, b) reject
// non-integer values.
func (a *Axis) expand(name string, integral bool) ([]float64, error) {
	var vals []float64
	hasRange := a.From != 0 || a.To != 0 || a.Step != 0 || a.Factor != 0
	switch {
	case len(a.Values) > 0:
		if hasRange {
			return nil, fmt.Errorf("scenario: sweep axis %q mixes values with a range", name)
		}
		vals = append(vals, a.Values...)
	case a.Step != 0 && a.Factor != 0:
		return nil, fmt.Errorf("scenario: sweep axis %q gives both step and factor", name)
	case a.Step != 0:
		if a.Step < 0 {
			return nil, fmt.Errorf("scenario: sweep axis %q has negative step", name)
		}
		if a.To < a.From {
			return nil, fmt.Errorf("scenario: sweep axis %q range runs backwards (from=%v to=%v)", name, a.From, a.To)
		}
		for i := 0; ; i++ {
			v := a.From + float64(i)*a.Step
			if v > a.To*(1+1e-12)+1e-12 {
				break
			}
			vals = append(vals, v)
			if len(vals) > MaxSweepChildren {
				return nil, fmt.Errorf("scenario: sweep axis %q exceeds %d values", name, MaxSweepChildren)
			}
		}
	case a.Factor != 0:
		if a.Factor <= 1 {
			return nil, fmt.Errorf("scenario: sweep axis %q needs factor > 1, got %v", name, a.Factor)
		}
		if a.From <= 0 {
			return nil, fmt.Errorf("scenario: sweep axis %q geometric range needs from > 0", name)
		}
		if a.To < a.From {
			return nil, fmt.Errorf("scenario: sweep axis %q range runs backwards (from=%v to=%v)", name, a.From, a.To)
		}
		for i := 0; ; i++ {
			v := a.From * math.Pow(a.Factor, float64(i))
			if v > a.To*(1+1e-12) {
				break
			}
			vals = append(vals, v)
			if len(vals) > MaxSweepChildren {
				return nil, fmt.Errorf("scenario: sweep axis %q exceeds %d values", name, MaxSweepChildren)
			}
		}
	default:
		return nil, fmt.Errorf("scenario: sweep axis %q needs values or a range (step/factor)", name)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("scenario: sweep axis %q expands to no values", name)
	}
	if integral {
		for _, v := range vals {
			if v != math.Round(v) {
				return nil, fmt.Errorf("scenario: sweep axis %q needs integer values, got %v", name, v)
			}
		}
	}
	return vals, nil
}

// SweepAxes names the dimensions a sweep varies over the base spec. An
// absent axis leaves the base field untouched; a present axis overrides it
// for every child. The declaration order here is the expansion order:
// algorithm is the outermost loop, engine the innermost (rightmost
// varies fastest), so exact/leap pairs of one workload expand adjacently.
type SweepAxes struct {
	Algorithm    []string        `json:"algorithm,omitempty"`
	N            *Axis           `json:"n,omitempty"`
	TargetDegree *Axis           `json:"target_degree,omitempty"`
	GrayProb     *Axis           `json:"gray_prob,omitempty"`
	Tau          *Axis           `json:"tau,omitempty"`
	B            *Axis           `json:"b,omitempty"`
	Adversary    []AdversarySpec `json:"adversary,omitempty"`
	Engine       []string        `json:"engine,omitempty"`
}

// SweepSpec is a declarative parameter grid: one base Spec plus axes that
// expand into the cross product of their values. Expansion is
// deterministic — same sweep, same child list, same order — and each child
// is a full Spec with its own canonical hash, so sweep results are cached
// and persisted per child exactly like individually submitted specs.
type SweepSpec struct {
	// Version is the spec schema version shared with Spec (0 = current).
	Version int `json:"version,omitempty"`
	// Name is a cosmetic label, inherited into child names.
	Name string `json:"name,omitempty"`
	// Base is the spec every child starts from.
	Base Spec `json:"base"`
	// Axes are the varied dimensions.
	Axes SweepAxes `json:"axes"`
}

// sweepDim is one expanded axis: display labels plus a setter per value.
type sweepDim struct {
	name   string
	labels []string
	apply  []func(*Spec)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func numericDim(name string, axis *Axis, integral bool, set func(*Spec, float64)) (sweepDim, error) {
	vals, err := axis.expand(name, integral)
	if err != nil {
		return sweepDim{}, err
	}
	d := sweepDim{name: name}
	for _, v := range vals {
		v := v
		d.labels = append(d.labels, formatFloat(v))
		d.apply = append(d.apply, func(s *Spec) { set(s, v) })
	}
	return d, nil
}

// dims expands every present axis in declaration order.
func (a SweepAxes) dims() ([]sweepDim, error) {
	var dims []sweepDim
	if len(a.Algorithm) > 0 {
		d := sweepDim{name: "algorithm"}
		for _, algo := range a.Algorithm {
			algo := algo
			d.labels = append(d.labels, algo)
			d.apply = append(d.apply, func(s *Spec) { s.Algorithm = algo })
		}
		dims = append(dims, d)
	}
	type numAxis struct {
		name     string
		axis     *Axis
		integral bool
		set      func(*Spec, float64)
	}
	for _, na := range []numAxis{
		{"n", a.N, true, func(s *Spec, v float64) { s.Network.N = int(v) }},
		{"target_degree", a.TargetDegree, false, func(s *Spec, v float64) { s.Network.TargetDegree = v }},
		{"gray_prob", a.GrayProb, false, func(s *Spec, v float64) { s.Network.GrayProb = v }},
		{"tau", a.Tau, true, func(s *Spec, v float64) { s.Network.Tau = int(v) }},
		{"b", a.B, true, func(s *Spec, v float64) { s.B = int(v) }},
	} {
		if na.axis == nil {
			continue
		}
		d, err := numericDim(na.name, na.axis, na.integral, na.set)
		if err != nil {
			return nil, err
		}
		dims = append(dims, d)
	}
	if len(a.Adversary) > 0 {
		d := sweepDim{name: "adversary"}
		for _, adv := range a.Adversary {
			adv := adv
			label := adv.Kind
			if label == "" {
				label = AdvCollision
			}
			switch adv.Kind {
			case AdvUniform:
				label += "(p=" + formatFloat(adv.P) + ")"
			case AdvBursty:
				label += "(up=" + formatFloat(adv.MeanUp) + ",down=" + formatFloat(adv.MeanDown) + ")"
			}
			d.labels = append(d.labels, label)
			d.apply = append(d.apply, func(s *Spec) { s.Adversary = adv })
		}
		dims = append(dims, d)
	}
	if len(a.Engine) > 0 {
		d := sweepDim{name: "engine"}
		for _, eng := range a.Engine {
			eng := eng
			label := eng
			if label == "" {
				label = EngineExact
			}
			d.labels = append(d.labels, label)
			d.apply = append(d.apply, func(s *Spec) { s.Engine = eng })
		}
		dims = append(dims, d)
	}
	return dims, nil
}

// Dim is one expanded sweep axis: its name and its ordered value labels.
// The labels are the same strings the child names embed (n=64, tau=2, ...).
type Dim struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels"`
}

// Expansion is a sweep expanded into compiled children: the deterministic
// grid order, each child's canonical hash, and the stable sweep hash.
type Expansion struct {
	// Spec is the sweep as given.
	Spec SweepSpec
	// Children are the compiled child specs in grid order (first axis
	// outermost, last axis fastest), deduplicated by canonical hash: two
	// grid points that canonicalize to the same workload keep only the
	// first occurrence.
	Children []*Compiled
	// Dims are the expanded axes in declaration order (empty for an
	// axis-free sweep of one child).
	Dims []Dim
	// Grid maps every grid point — odometer order over Dims, last axis
	// fastest — to its index in Children. Deduplicated grid points share a
	// child, so len(Grid) is the full axis product while len(Children) may
	// be smaller.
	Grid []int
	hash string
}

// ExpandSweep expands a sweep into its compiled children. Expansion is
// deterministic: identical sweeps — including differently spelled axes that
// produce the same value grid — yield the same child list, order, and hash.
// Every child must validate; the first invalid grid point aborts the whole
// sweep with its coordinates in the error.
func ExpandSweep(sw SweepSpec) (*Expansion, error) {
	if sw.Version != 0 && sw.Version != SpecVersion {
		return nil, fmt.Errorf("scenario: unsupported sweep version %d (current %d)", sw.Version, SpecVersion)
	}
	dims, err := sw.Axes.dims()
	if err != nil {
		return nil, err
	}
	total := 1
	for _, d := range dims {
		total *= len(d.labels)
		// Each axis holds at most MaxSweepChildren values, so checking per
		// axis keeps the product far from integer overflow.
		if total > MaxSweepChildren {
			return nil, fmt.Errorf("scenario: sweep expands to more than %d children", MaxSweepChildren)
		}
	}
	baseName := sw.Name
	if baseName == "" {
		baseName = sw.Base.Name
	}
	exp := &Expansion{Spec: sw, Grid: make([]int, 0, total)}
	for _, d := range dims {
		exp.Dims = append(exp.Dims, Dim{Name: d.name, Labels: d.labels})
	}
	seen := make(map[string]int, total)
	idx := make([]int, len(dims))
	for child := 0; child < total; child++ {
		spec := sw.Base
		var coords []string
		for di, d := range dims {
			d.apply[idx[di]](&spec)
			coords = append(coords, d.name+"="+d.labels[idx[di]])
		}
		if len(coords) > 0 {
			spec.Name = strings.TrimSpace(baseName + "[" + strings.Join(coords, " ") + "]")
		}
		comp, err := Compile(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep child {%s}: %w", strings.Join(coords, " "), err)
		}
		ci, ok := seen[comp.Hash()]
		if !ok {
			ci = len(exp.Children)
			seen[comp.Hash()] = ci
			exp.Children = append(exp.Children, comp)
		}
		exp.Grid = append(exp.Grid, ci)
		// Odometer increment: last axis fastest.
		for di := len(dims) - 1; di >= 0; di-- {
			idx[di]++
			if idx[di] < len(dims[di].labels) {
				break
			}
			idx[di] = 0
		}
	}
	h := sha256.New()
	h.Write([]byte("sweep/v1"))
	for _, c := range exp.Children {
		h.Write([]byte{'\n'})
		h.Write([]byte(c.Hash()))
	}
	exp.hash = hex.EncodeToString(h.Sum(nil))
	return exp, nil
}

// Hash returns the stable sweep hash: the SHA-256 over the ordered child
// canonical hashes. Two sweeps hash equal exactly when they expand to the
// same workloads in the same order, regardless of how the axes were spelled.
func (e *Expansion) Hash() string { return e.hash }

// CostEstimate sums the children's admission cost estimates.
func (e *Expansion) CostEstimate() int64 {
	var total int64
	for _, c := range e.Children {
		total += c.CostEstimate()
	}
	return total
}

// ParseSweep decodes a JSON sweep spec, rejecting unknown fields throughout
// (including inside the base spec) so typos surface as errors.
func ParseSweep(data []byte) (SweepSpec, error) {
	var sw SweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		return SweepSpec{}, fmt.Errorf("scenario: parse sweep: %w", err)
	}
	return sw, nil
}
