package scenario

import "errors"

// Transient classification. A transient error is one where an identical
// rerun can plausibly succeed — injected flakes, resource pressure — as
// opposed to deterministic failures (bad spec, verification failure,
// timeout of a deterministic workload) that every rerun would repeat.
// Classification travels with the error value itself through a structural
// interface, so producers (e.g. the fault injector) need no import of this
// package.

// transientMarked is implemented by any error that self-reports whether a
// retry can help.
type transientMarked interface{ Transient() bool }

// transientErr wraps an error to mark it transient.
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// MarkTransient returns err marked as transient (retryable). A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether any error in err's chain marks itself
// transient via a `Transient() bool` method returning true.
func IsTransient(err error) bool {
	var tm transientMarked
	return errors.As(err, &tm) && tm.Transient()
}
