package hitting_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualradio/internal/hitting"
)

func TestSweepSingleHitsExactly(t *testing.T) {
	beta := 32
	p := &hitting.SweepSingle{Beta: beta}
	for target := 1; target <= beta; target++ {
		rounds, ok := hitting.PlaySingle(p, target, beta)
		if !ok || rounds != target {
			t.Errorf("target %d: rounds=%d ok=%v", target, rounds, ok)
		}
	}
}

func TestPlaySingleTimesOut(t *testing.T) {
	p := &hitting.SweepSingle{Beta: 8}
	if _, ok := hitting.PlaySingle(p, 100, 20); ok {
		t.Error("impossible target reported hit")
	}
}

// TestRandomSingleMeanIsBeta verifies the Θ(β) behavior: the geometric mean
// hitting time of the uniform guesser concentrates near β.
func TestRandomSingleMeanIsBeta(t *testing.T) {
	beta := 64
	rng := rand.New(rand.NewPCG(1, 1))
	total := 0
	trials := 400
	for i := 0; i < trials; i++ {
		p := &hitting.RandomSingle{Beta: beta, Rng: rng}
		target := 1 + rng.IntN(beta)
		r, ok := hitting.PlaySingle(p, target, beta*100)
		if !ok {
			t.Fatal("uniform guesser timed out at 100β rounds")
		}
		total += r
	}
	mean := float64(total) / float64(trials)
	if mean < float64(beta)*0.7 || mean > float64(beta)*1.4 {
		t.Errorf("mean hitting time %.1f, want ≈ β = %d", mean, beta)
	}
}

func TestPlayDoubleOffsetPlayersSolve(t *testing.T) {
	beta := 16
	rngA := rand.New(rand.NewPCG(1, 2))
	rngB := rand.New(rand.NewPCG(3, 4))
	for tA := 1; tA <= beta; tA++ {
		for tB := 1; tB <= beta; tB++ {
			r, ok := hitting.PlayDouble(&hitting.OffsetDouble{}, &hitting.OffsetDouble{},
				beta, tA, tB, beta, rngA, rngB)
			if !ok {
				t.Fatalf("offset players failed at (%d,%d)", tA, tB)
			}
			if r > beta {
				t.Fatalf("offset players needed %d > β rounds", r)
			}
		}
	}
}

// TestReductionSolvesSingleGame verifies Lemma 7.3 end to end: the player
// constructed from a working double-hitting pair solves the single hitting
// game for every target within a constant-factor horizon.
func TestReductionSolvesSingleGame(t *testing.T) {
	f := func(seed uint64, betaRaw uint8) bool {
		beta := 4 + int(betaRaw%12)
		newPlayer := func() hitting.DoublePlayer { return &hitting.OffsetDouble{} }
		single, err := hitting.BuildReduction(newPlayer, newPlayer, 2*beta, 2*beta, 3, seed)
		if err != nil {
			return false
		}
		for target := 1; target <= beta; target++ {
			if _, ok := hitting.PlaySingle(single, target, 8*beta); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBuildReductionRejectsOddRange(t *testing.T) {
	newPlayer := func() hitting.DoublePlayer { return &hitting.OffsetDouble{} }
	if _, err := hitting.BuildReduction(newPlayer, newPlayer, 7, 7, 1, 1); err == nil {
		t.Error("odd range accepted")
	}
}
