// Package hitting implements the abstract games of the paper's Section 7
// lower bound: the β-single hitting game, the β-double hitting game, the
// Lemma 7.3 reduction from double to single, and the direct network
// experiment corresponding to Lemma 7.2 (a CCDS algorithm running on the
// two-clique bridge network against the clique-isolating adversary).
//
// The chain of transformations shows that any CCDS algorithm with a
// 1-complete link detector yields a single-hitting-game player, and the
// single hitting game — identify an arbitrary element of [β] by guessing
// one value per round — requires Ω(β) rounds w.h.p. (Theorem 7.1).
package hitting

import (
	"errors"
	"math/rand/v2"
)

// SinglePlayer is a probabilistic automaton for the β-single hitting game:
// each round it outputs one guess from [1, β]. It has no feedback — the
// execution unfolds independently of the target.
type SinglePlayer interface {
	// Guess returns the player's guess for the given round (1-based
	// values in [1, β]).
	Guess(round int) int
}

// PlaySingle runs the single hitting game: the player guesses once per round
// until it hits target or maxRounds elapse. It returns the number of rounds
// used and whether the target was hit.
func PlaySingle(p SinglePlayer, target, maxRounds int) (int, bool) {
	for r := 1; r <= maxRounds; r++ {
		if p.Guess(r) == target {
			return r, true
		}
	}
	return maxRounds, false
}

// RandomSingle guesses uniformly at random: the canonical Θ(β) player.
type RandomSingle struct {
	Beta int
	Rng  *rand.Rand
}

var _ SinglePlayer = (*RandomSingle)(nil)

// Guess implements SinglePlayer.
func (p *RandomSingle) Guess(int) int { return 1 + p.Rng.IntN(p.Beta) }

// SweepSingle guesses 1, 2, ..., β cyclically — the optimal deterministic
// player, still Θ(β) in the worst case.
type SweepSingle struct {
	Beta int
}

var _ SinglePlayer = (*SweepSingle)(nil)

// Guess implements SinglePlayer.
func (p *SweepSingle) Guess(round int) int { return 1 + (round-1)%p.Beta }

// DoublePlayer is one automaton of the β-double hitting game. The adversary
// picks targets tA, tB ∈ [β]; player A receives tB as input and must output
// tA (and symmetrically for B). The two players cannot communicate after
// receiving their inputs.
type DoublePlayer interface {
	// Start resets the player for a new game with the given range bound
	// and input (the other player's target).
	Start(beta, input int, rng *rand.Rand)
	// Guess returns the player's guess for the given round, or 0 to pass.
	Guess(round int) int
}

// PlayDouble runs the double hitting game until either player hits its
// target or maxRounds elapse. rngA and rngB seed the players' private
// randomness.
func PlayDouble(pa, pb DoublePlayer, beta, tA, tB, maxRounds int, rngA, rngB *rand.Rand) (int, bool) {
	pa.Start(beta, tB, rngA)
	pb.Start(beta, tA, rngB)
	for r := 1; r <= maxRounds; r++ {
		if pa.Guess(r) == tA || pb.Guess(r) == tB {
			return r, true
		}
	}
	return maxRounds, false
}

// RandomDouble guesses uniformly, ignoring its input.
type RandomDouble struct {
	beta int
	rng  *rand.Rand
}

var _ DoublePlayer = (*RandomDouble)(nil)

// Start implements DoublePlayer.
func (p *RandomDouble) Start(beta, _ int, rng *rand.Rand) {
	p.beta = beta
	p.rng = rng
}

// Guess implements DoublePlayer.
func (p *RandomDouble) Guess(int) int { return 1 + p.rng.IntN(p.beta) }

// OffsetDouble sweeps the range starting from an offset derived from its
// input — a simple cooperative strategy exploiting the exchanged inputs
// (the kind of subtlety that makes the Lemma 7.3 reduction non-trivial).
type OffsetDouble struct {
	beta  int
	input int
}

var _ DoublePlayer = (*OffsetDouble)(nil)

// Start implements DoublePlayer.
func (p *OffsetDouble) Start(beta, input int, _ *rand.Rand) {
	p.beta = beta
	p.input = input
}

// Guess implements DoublePlayer.
func (p *OffsetDouble) Guess(round int) int {
	return 1 + (p.input+round-1)%p.beta
}

// ErrNoMajority is returned when the Lemma 7.3 winner table has neither a
// column with β A-wins nor a row with β B-wins, which cannot happen for
// players that actually solve the double hitting game w.h.p.
var ErrNoMajority = errors.New("hitting: winner table has no majority column or row")

// ReducedSingle is the single-hitting player Lemma 7.3 constructs from a
// pair of double-hitting players. It simulates the winning automaton with a
// fixed input and maps its guesses through the bijection ψ.
type ReducedSingle struct {
	inner DoublePlayer
	psi   map[int]int // S_y value -> [1, β]
}

var _ SinglePlayer = (*ReducedSingle)(nil)

// Guess implements SinglePlayer.
func (p *ReducedSingle) Guess(round int) int {
	g := p.inner.Guess(round)
	if mapped, ok := p.psi[g]; ok {
		return mapped
	}
	return 0
}

// PsiInverse returns the value in S_y that ψ maps to target — used by tests
// to drive the simulated game.
func (p *ReducedSingle) PsiInverse(target int) int {
	for x, t := range p.psi {
		if t == target {
			return x
		}
	}
	return 0
}

// BuildReduction performs the Lemma 7.3 construction empirically: it plays
// every target pair (x, y) ∈ [2β]² for `trials` trials of `horizon` rounds,
// tabulating which player reliably wins, then finds a column y with at least
// β A-winners (or a row x with β B-winners, by symmetry) and returns the
// single-hitting player that simulates the winner with that fixed input.
//
// newA and newB construct fresh player instances; seed derives all game
// randomness.
func BuildReduction(newA, newB func() DoublePlayer, beta2, horizon, trials int, seed uint64) (*ReducedSingle, error) {
	if beta2%2 != 0 {
		return nil, errors.New("hitting: the reduction needs an even range 2β")
	}
	beta := beta2 / 2
	// winner[x][y] = true when player A reliably outputs tA=x given input
	// y within the horizon.
	aWins := make([][]bool, beta2+1)
	bWins := make([][]bool, beta2+1)
	for x := 1; x <= beta2; x++ {
		aWins[x] = make([]bool, beta2+1)
		bWins[x] = make([]bool, beta2+1)
		for y := 1; y <= beta2; y++ {
			aOK, bOK := winnersFor(newA, newB, beta2, x, y, horizon, trials, seed)
			aWins[x][y] = aOK
			bWins[x][y] = bOK
		}
	}
	// A column y with at least β A-wins.
	for y := 1; y <= beta2; y++ {
		var sy []int
		for x := 1; x <= beta2; x++ {
			if aWins[x][y] {
				sy = append(sy, x)
			}
		}
		if len(sy) >= beta {
			inner := newA()
			inner.Start(beta2, y, rand.New(rand.NewPCG(seed, 0xA11CE)))
			psi := make(map[int]int, beta)
			for i, x := range sy[:beta] {
				psi[x] = i + 1
			}
			return &ReducedSingle{inner: inner, psi: psi}, nil
		}
	}
	// Symmetric: a row x with at least β B-wins.
	for x := 1; x <= beta2; x++ {
		var sx []int
		for y := 1; y <= beta2; y++ {
			if bWins[x][y] {
				sx = append(sx, y)
			}
		}
		if len(sx) >= beta {
			inner := newB()
			inner.Start(beta2, x, rand.New(rand.NewPCG(seed, 0xB0B)))
			psi := make(map[int]int, beta)
			for i, y := range sx[:beta] {
				psi[y] = i + 1
			}
			return &ReducedSingle{inner: inner, psi: psi}, nil
		}
	}
	return nil, ErrNoMajority
}

// winnersFor estimates which player reliably hits its target for the pair
// (tA=x with input y to A; tB=y with input x to B).
func winnersFor(newA, newB func() DoublePlayer, beta2, x, y, horizon, trials int, seed uint64) (aOK, bOK bool) {
	aHits, bHits := 0, 0
	for trial := 0; trial < trials; trial++ {
		base := seed + uint64(trial)*1000003
		pa := newA()
		pb := newB()
		pa.Start(beta2, y, rand.New(rand.NewPCG(base, uint64(x)<<32|uint64(y))))
		pb.Start(beta2, x, rand.New(rand.NewPCG(base, uint64(y)<<32|uint64(x))))
		aHit, bHit := false, false
		for r := 1; r <= horizon && !aHit && !bHit; r++ {
			if pa.Guess(r) == x {
				aHit = true
			}
			if pb.Guess(r) == y {
				bHit = true
			}
		}
		if aHit {
			aHits++
		}
		if bHit {
			bHits++
		}
	}
	need := (trials + 1) / 2
	return aHits >= need, bHits >= need
}
