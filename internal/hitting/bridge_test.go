package hitting_test

import (
	"testing"

	"dualradio/internal/core"
	"dualradio/internal/hitting"
)

// TestBridgeCCDSSolvesAndCrosses: the τ=1 algorithm on the lower-bound
// network must still produce a valid CCDS (Theorem 6.2 applies), and the
// bridge endpoints must end up in it — which requires the crossing event.
func TestBridgeCCDSSolvesAndCrosses(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := hitting.RunBridgeCCDS(8, seed, core.DefaultParams(), 1<<16)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Solved {
			t.Errorf("seed %d: CCDS invalid on bridge network", seed)
		}
		if !res.BridgeInCCDS {
			t.Errorf("seed %d: bridge endpoints missing from CCDS", seed)
		}
		if res.FirstCrossing < 0 {
			t.Errorf("seed %d: information never crossed the bridge", seed)
		}
	}
}

// TestBridgeCrossingGrowsWithBeta: the hitting event arrives later on larger
// cliques — the empirical content of Theorem 7.1.
func TestBridgeCrossingGrowsWithBeta(t *testing.T) {
	mean := func(beta int) float64 {
		total := 0.0
		runs := 3
		for seed := uint64(1); seed <= uint64(runs); seed++ {
			res, err := hitting.RunBridgeCCDS(beta, seed, core.DefaultParams(), 1<<16)
			if err != nil {
				t.Fatalf("beta %d: %v", beta, err)
			}
			cross := res.FirstCrossing
			if cross < 0 {
				cross = res.Rounds
			}
			total += float64(cross)
		}
		return total / float64(runs)
	}
	small, large := mean(8), mean(32)
	if large <= small {
		t.Errorf("crossing time should grow with β: β=8 %.0f vs β=32 %.0f", small, large)
	}
}

// TestBridgeFastCCDSSolves: with 0-complete detectors the banned-list
// algorithm solves the same topology.
func TestBridgeFastCCDSSolves(t *testing.T) {
	res, err := hitting.RunBridgeFastCCDS(16, 1, core.DefaultParams(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || !res.BridgeInCCDS {
		t.Errorf("fast CCDS failed: solved=%v bridge=%v", res.Solved, res.BridgeInCCDS)
	}
}
