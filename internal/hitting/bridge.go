package hitting

import (
	"math/rand/v2"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/sim"
	"dualradio/internal/verify"
)

// BridgeResult reports one CCDS execution on the two-clique bridge network
// (the Lemma 7.2 construction) against the clique-isolating adversary.
type BridgeResult struct {
	// Beta is the clique size β (so Δ = β and n = 2β).
	Beta int
	// Rounds is the execution length.
	Rounds int
	// FirstCrossing is the first round in which information crossed the
	// bridge — a bridge endpoint broadcast alone network-wide and was
	// received by the far endpoint — or -1 if it never happened. This is
	// the "hitting" event of the reduction; Theorem 7.1 implies its
	// expectation grows as Ω(β).
	FirstCrossing int
	// Solved reports whether the execution produced a valid CCDS
	// (including both bridge endpoints, as connectivity + domination
	// force).
	Solved bool
	// BridgeInCCDS reports whether both bridge endpoints output 1.
	BridgeInCCDS bool
}

// crossObserver watches deliveries across the bridge.
type crossObserver struct {
	bridgeA, bridgeB int
	idA, idB         int
	first            int
}

var _ sim.Observer = (*crossObserver)(nil)

func (o *crossObserver) OnRound(round int, _ []int, delivered []sim.Delivery) {
	if o.first >= 0 {
		return
	}
	for _, d := range delivered {
		if (d.To == o.bridgeB && d.Msg.From() == o.idA) ||
			(d.To == o.bridgeA && d.Msg.From() == o.idB) {
			o.first = round
			return
		}
	}
}

// RunBridgeCCDS executes the Section 6 τ-CCDS algorithm (τ = 1) on the
// two-clique bridge network with the 1-complete detectors from the Lemma 7.2
// simulation and the clique-isolating adversary, and reports when
// information first crossed the bridge.
func RunBridgeCCDS(beta int, seed uint64, params core.Params, b int) (*BridgeResult, error) {
	rng := rand.New(rand.NewPCG(seed, 0xB21D6E))
	net, meta, err := gen.BridgeCliques(beta, rng)
	if err != nil {
		return nil, err
	}
	asg := dualgraph.RandomAssignment(net.N(), rng)
	det := gen.BridgeDetectors(net, asg, meta)
	obs := &crossObserver{
		bridgeA: meta.BridgeA,
		bridgeB: meta.BridgeB,
		idA:     asg.ID(meta.BridgeA),
		idB:     asg.ID(meta.BridgeB),
		first:   -1,
	}
	s := &harness.Scenario{
		Net:      net,
		Asg:      asg,
		Det:      det,
		Adv:      adversary.NewCliqueIsolating(net, meta.BridgeA, meta.BridgeB),
		Params:   params,
		Seed:     seed,
		B:        b,
		Observer: obs,
	}
	out, err := s.RunTauCCDS(1)
	if err != nil {
		return nil, err
	}
	h := detector.BuildH(net, asg, det)
	rep := verify.CCDS(net, h, out.Outputs, 0)
	return &BridgeResult{
		Beta:          beta,
		Rounds:        out.Rounds,
		FirstCrossing: obs.first,
		Solved:        rep.OK(),
		BridgeInCCDS:  out.Outputs[meta.BridgeA] == 1 && out.Outputs[meta.BridgeB] == 1,
	}, nil
}

// RunBridgeFastCCDS executes the Section 5 banned-list CCDS on the same
// two-clique topology but with 0-complete detectors — the other side of the
// separation: with perfect link classification the problem is polylog for
// large b, independent of β.
func RunBridgeFastCCDS(beta int, seed uint64, params core.Params, b int) (*BridgeResult, error) {
	rng := rand.New(rand.NewPCG(seed, 0xFA57))
	net, meta, err := gen.BridgeCliques(beta, rng)
	if err != nil {
		return nil, err
	}
	asg := dualgraph.RandomAssignment(net.N(), rng)
	det := detector.Complete(net, asg)
	s := &harness.Scenario{
		Net:    net,
		Asg:    asg,
		Det:    det,
		Adv:    adversary.NewCliqueIsolating(net, meta.BridgeA, meta.BridgeB),
		Params: params,
		Seed:   seed,
		B:      b,
	}
	out, err := s.RunCCDS()
	if err != nil {
		return nil, err
	}
	h := detector.BuildH(net, asg, det)
	rep := verify.CCDS(net, h, out.Outputs, 0)
	return &BridgeResult{
		Beta:         beta,
		Rounds:       out.Rounds,
		Solved:       rep.OK(),
		BridgeInCCDS: out.Outputs[meta.BridgeA] == 1 && out.Outputs[meta.BridgeB] == 1,
	}, nil
}
