package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary not zero")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

// TestPercentileBounds: any percentile lies within [min, max] and is
// monotone in p.
func TestPercentileBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range raw {
			xs[i] = float64(x)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		prev := lo
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < lo-1e-9 || v > hi+1e-9 || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit := LinearFit(x, y)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R² = %v", fit.R2)
	}
	if f := LinearFit([]float64{1}, []float64{2}); f != (Fit{}) {
		t.Error("underdetermined fit should be zero")
	}
	if f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); f != (Fit{}) {
		t.Error("vertical data should yield zero fit")
	}
}

func TestPowerLawExponentExact(t *testing.T) {
	// y = 3·x².
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * x[i] * x[i]
	}
	e, r2 := PowerLawExponent(x, y)
	if math.Abs(e-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("exponent = %v, R² = %v", e, r2)
	}
	// Non-positive samples are skipped, not propagated as NaN.
	e2, _ := PowerLawExponent([]float64{0, 1, 2, 4}, []float64{5, 1, 4, 16})
	if math.IsNaN(e2) {
		t.Error("NaN exponent")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// All data lines share the header's column alignment width.
	if len(lines[1]) < len("a")+2+len("long-header") {
		t.Error("columns not padded")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.500",
		1234.5: "1234.5",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}
