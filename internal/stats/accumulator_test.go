package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestAccumulatorMatchesSummarizeExact: on samples within the sketch
// capacity, the streaming Summary must be bit-identical to the batch
// Summarize for every field except Std (Welford vs two-pass), which must
// agree to close tolerance.
func TestAccumulatorMatchesSummarizeExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for round := 0; round < 50; round++ {
		n := 1 + rng.IntN(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rng.Float64()*1000) / 8 // mix of ties and fractions
		}
		acc := NewAccumulator()
		for _, x := range xs {
			acc.Add(x)
		}
		want := Summarize(xs)
		got := acc.Summary()
		if got.N != want.N || got.Mean != want.Mean || got.Min != want.Min ||
			got.Max != want.Max || got.Median != want.Median || got.P90 != want.P90 {
			t.Fatalf("round %d: streaming %+v != batch %+v", round, got, want)
		}
		if math.Abs(got.Std-want.Std) > 1e-9*(1+want.Std) {
			t.Fatalf("round %d: Std %v vs %v", round, got.Std, want.Std)
		}
		for _, p := range []float64{0, 25, 50, 77.7, 90, 100} {
			if got, want := acc.Quantile(p), Percentile(xs, p); got != want {
				t.Fatalf("round %d: Quantile(%v) = %v, want %v", round, p, got, want)
			}
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator()
	if s := acc.Summary(); s != (Summary{}) {
		t.Fatalf("empty accumulator summary %+v", s)
	}
	if acc.Mean() != 0 || acc.Std() != 0 || acc.Quantile(50) != 0 {
		t.Fatal("empty accumulator stats not zero")
	}
}

// TestQuantileSketchCompaction: past the capacity the sketch stays bounded
// and its quantiles stay within the sample's range and close to the exact
// percentiles of a uniform stream.
func TestQuantileSketchCompaction(t *testing.T) {
	const cap = 64
	acc := NewAccumulatorSize(cap)
	var sk QuantileSketch
	sk.cap = cap
	rng := rand.New(rand.NewPCG(3, 5))
	var xs []float64
	for i := 0; i < 10_000; i++ {
		x := rng.Float64()
		xs = append(xs, x)
		acc.Add(x)
		sk.Add(x)
	}
	if len(sk.items) > cap+1 {
		t.Fatalf("sketch residency %d exceeds capacity %d", len(sk.items), cap)
	}
	if !sk.Compacted() {
		t.Fatal("sketch never compacted past capacity")
	}
	if got := sk.Count(); got != len(xs) {
		t.Fatalf("sketch weight %d, want %d", got, len(xs))
	}
	for _, p := range []float64{10, 50, 90} {
		exact := Percentile(xs, p)
		approx := acc.Quantile(p)
		if approx < 0 || approx > 1 {
			t.Fatalf("P%v = %v outside the sample range", p, approx)
		}
		// A 64-item sketch over 10k uniform samples keeps a few percent of
		// rank error; assert a loose envelope so the bound is meaningful
		// without being flaky.
		if math.Abs(approx-exact) > 0.1 {
			t.Fatalf("P%v = %v, exact %v: error beyond envelope", p, approx, exact)
		}
	}
	if sk.Quantile(0) < 0 || sk.Quantile(100) > 1 {
		t.Fatal("extreme quantiles escape the sample range")
	}
}

// TestAccumulatorSizeExactBeyondDefault: an accumulator sized to the
// sample stays exact even past DefaultSketchSize values.
func TestAccumulatorSizeExactBeyondDefault(t *testing.T) {
	n := DefaultSketchSize + 500
	xs := make([]float64, n)
	rng := rand.New(rand.NewPCG(9, 2))
	for i := range xs {
		xs[i] = rng.Float64()
	}
	acc := NewAccumulatorSize(n)
	for _, x := range xs {
		acc.Add(x)
	}
	if got, want := acc.Quantile(90), Percentile(xs, 90); got != want {
		t.Fatalf("sized accumulator P90 %v, want exact %v", got, want)
	}
}

// BenchmarkAccumulator measures the streaming fold, compactions included.
func BenchmarkAccumulator(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 100_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := NewAccumulatorSize(1024)
		for _, x := range xs {
			acc.Add(x)
		}
		if acc.Quantile(90) <= 0 {
			b.Fatal("bad quantile")
		}
	}
}
