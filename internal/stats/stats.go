// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics over samples, log-log least-squares
// fits for scaling-exponent estimation, and plain-text table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
// The sample is sorted once and every order statistic (Min, Max, Median,
// P90) reads the shared sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	} else {
		s.Std = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = percentileSorted(sorted, 50)
	s.P90 = percentileSorted(sorted, 90)
	return s
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted non-empty sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Fit is a least-squares linear fit y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y against x by ordinary least squares. It requires at
// least two points; fewer return the zero Fit.
func LinearFit(x, y []float64) Fit {
	n := len(x)
	if n < 2 || len(y) != n {
		return Fit{}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = sxy * sxy / (sxx * syy)
	}
	return f
}

// PowerLawExponent fits y ≈ c·x^e on log-log axes and returns e with the
// fit's R². Non-positive samples are skipped.
func PowerLawExponent(x, y []float64) (float64, float64) {
	var lx, ly []float64
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	f := LinearFit(lx, ly)
	return f.Slope, f.R2
}

// Table renders rows as a fixed-width plain-text table with a header.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a float compactly for table cells.
func F(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e9:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}
