package stats

import (
	"math"
	"sort"
)

// DefaultSketchSize is the quantile sketch's default capacity. It matches
// the scenario layer's per-run trial cap, so any single scenario run stays
// on the sketch's exact path and streaming quantiles are bit-identical to
// the batch Percentile computation.
const DefaultSketchSize = 4096

// Accumulator folds a sample one value at a time into bounded state:
// count, sum, min/max, the Welford variance recurrence, and a quantile
// sketch for Median/P90. It is the streaming counterpart of Summarize —
// a reducer can fold millions of values without retaining them.
//
// Exactness contract: Mean is sum/count with additions in fold order, so it
// is bit-identical to the batch Mean/Summarize computation over the same
// values in the same order. Quantiles are exact (bit-identical to
// Percentile) while the sketch has not compacted, i.e. for samples up to
// the sketch capacity; beyond that they are approximations. Std uses the
// Welford recurrence, which is numerically more stable than — and may
// differ in the final bits from — Summarize's two-pass formula.
type Accumulator struct {
	n   int
	sum float64
	min float64
	max float64
	wm  float64 // Welford running mean (variance recurrence only)
	m2  float64 // Welford sum of squared deviations
	qs  QuantileSketch
}

// NewAccumulator returns an accumulator whose quantile sketch holds up to
// DefaultSketchSize values exactly.
func NewAccumulator() *Accumulator { return NewAccumulatorSize(DefaultSketchSize) }

// NewAccumulatorSize returns an accumulator whose quantile sketch holds up
// to cap values exactly (cap <= 0 means DefaultSketchSize). Sizing the
// sketch to the expected sample keeps quantiles on the exact path.
func NewAccumulatorSize(cap int) *Accumulator {
	a := &Accumulator{}
	a.qs.cap = cap
	return a
}

// Add folds one value.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		a.min = math.Min(a.min, x)
		a.max = math.Max(a.max, x)
	}
	a.n++
	a.sum += x
	d := x - a.wm
	a.wm += d / float64(a.n)
	a.m2 += d * (x - a.wm)
	a.qs.Add(x)
}

// Count returns the number of values folded.
func (a *Accumulator) Count() int { return a.n }

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns sum/count (0 for an empty accumulator) — bit-identical to
// the batch mean over the same fold order.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Std returns the sample standard deviation via Welford (0 for fewer than
// two values).
func (a *Accumulator) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest value folded (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest value folded (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Quantile returns the p-th percentile (0..100) from the sketch.
func (a *Accumulator) Quantile(p float64) float64 { return a.qs.Quantile(p) }

// Summary materializes the streaming state as a Summary. See the type
// comment for how it relates to Summarize bit-for-bit.
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	return Summary{
		N:      a.n,
		Mean:   a.Mean(),
		Std:    a.Std(),
		Min:    a.min,
		Max:    a.max,
		Median: a.Quantile(50),
		P90:    a.Quantile(90),
	}
}

// QuantileSketch is a bounded-memory quantile estimator: it buffers values
// exactly up to its capacity, and past it compacts by merging adjacent
// sorted pairs into weighted midpoints (halving residency, doubling
// weights). While uncompacted, Quantile is bit-identical to Percentile
// over the same values; after compaction it is an approximation whose rank
// error grows with the compaction count. The zero value is ready to use
// with DefaultSketchSize capacity.
type QuantileSketch struct {
	cap    int
	items  []weighted
	sorted bool // items currently sorted by value
	merged bool // true once any compaction happened
}

type weighted struct {
	v float64
	w float64
}

func (q *QuantileSketch) capacity() int {
	if q.cap <= 0 {
		return DefaultSketchSize
	}
	return q.cap
}

// Add folds one value into the sketch.
func (q *QuantileSketch) Add(x float64) {
	q.items = append(q.items, weighted{v: x, w: 1})
	q.sorted = false
	if len(q.items) > q.capacity() {
		q.compact()
	}
}

// Count returns the total weight folded (the number of Add calls).
func (q *QuantileSketch) Count() int {
	w := 0.0
	for _, it := range q.items {
		w += it.w
	}
	return int(w)
}

// Compacted reports whether the sketch has discarded information; while
// false, Quantile is exact.
func (q *QuantileSketch) Compacted() bool { return q.merged }

// compact halves residency: sort by value, then merge each adjacent pair
// into its weighted mean with the pair's combined weight. An odd trailing
// item is kept as-is. Order statistics move by at most one intra-pair rank
// per compaction.
func (q *QuantileSketch) compact() {
	q.sortItems()
	out := q.items[:0]
	i := 0
	for ; i+1 < len(q.items); i += 2 {
		a, b := q.items[i], q.items[i+1]
		w := a.w + b.w
		out = append(out, weighted{v: (a.v*a.w + b.v*b.w) / w, w: w})
	}
	if i < len(q.items) {
		out = append(out, q.items[i])
	}
	q.items = out
	q.merged = true
	q.sorted = true
}

func (q *QuantileSketch) sortItems() {
	if !q.sorted {
		sort.Slice(q.items, func(i, j int) bool { return q.items[i].v < q.items[j].v })
		q.sorted = true
	}
}

// Quantile returns the p-th percentile (0..100). On the exact path (no
// compaction yet) it replicates Percentile's closest-ranks linear
// interpolation operation-for-operation; on the compacted path each item
// stands for w unit samples at its value and the same interpolation runs
// over the expanded ranks.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if len(q.items) == 0 {
		return 0
	}
	q.sortItems()
	if !q.merged {
		// Exact path: all weights are 1; mirror Percentile bit-for-bit.
		n := len(q.items)
		if p <= 0 {
			return q.items[0].v
		}
		if p >= 100 {
			return q.items[n-1].v
		}
		rank := p / 100 * float64(n-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			return q.items[lo].v
		}
		frac := rank - float64(lo)
		return q.items[lo].v*(1-frac) + q.items[hi].v*frac
	}
	total := 0.0
	for _, it := range q.items {
		total += it.w
	}
	if p <= 0 {
		return q.items[0].v
	}
	if p >= 100 {
		return q.items[len(q.items)-1].v
	}
	rank := p / 100 * (total - 1)
	lo := math.Floor(rank)
	frac := rank - lo
	// valueAt(k) is the value of unit sample k in the expanded order.
	cum := 0.0
	var vlo, vhi float64
	found := 0
	for _, it := range q.items {
		if found == 0 && lo < cum+it.w {
			vlo = it.v
			found = 1
		}
		if found >= 1 && lo+1 < cum+it.w {
			vhi = it.v
			found = 2
			break
		}
		cum += it.w
	}
	if found < 2 {
		vhi = q.items[len(q.items)-1].v
		if found == 0 {
			vlo = vhi
		}
	}
	if frac == 0 {
		return vlo
	}
	return vlo*(1-frac) + vhi*frac
}
