package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func hashOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := hashOf("spec-1")
	if _, ok, err := st.Get(h); err != nil || ok {
		t.Fatalf("empty store Get = (%v, %v)", ok, err)
	}
	payload := []byte(`{"spec_hash":"x","trials":[{"trial":0}]}`)
	if err := st.Put(h, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(h)
	if err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v)", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip changed bytes: %q != %q", got, payload)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestStoreKeepsFirstWrite(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := hashOf("spec-2")
	first := []byte(`{"v":1}`)
	if err := st.Put(h, first); err != nil {
		t.Fatal(err)
	}
	// Deterministic results make a second Put redundant; the store keeps
	// the first write so readers keep byte identity.
	if err := st.Put(h, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	got, _, _ := st.Get(h)
	if !bytes.Equal(got, first) {
		t.Fatalf("second Put replaced the entry: %q", got)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Put, want 1", st.Len())
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put(hashOf(fmt.Sprintf("spec-%d", i)), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", st2.Len())
	}
	got, ok, err := st2.Get(hashOf("spec-1"))
	if err != nil || !ok || !bytes.Equal(got, []byte(`{}`)) {
		t.Fatalf("reopened Get = (%q, %v, %v)", got, ok, err)
	}
}

func TestStoreRejectsNonHexKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", "../../../../etc/passwd", strings.Repeat("A", 64),
		hashOf("x")[:63] + "/", strings.Repeat("a", 200),
	} {
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted key %q", key)
		}
		if _, _, err := st.Get(key); err == nil {
			t.Errorf("Get accepted key %q", key)
		}
	}
}

func TestStoreLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Contending writers on a shared key plus private keys.
			_ = st.Put(hashOf("shared"), []byte(`{"shared":true}`))
			_ = st.Put(hashOf(fmt.Sprintf("own-%d", g)), []byte(`{}`))
		}(g)
	}
	wg.Wait()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			t.Errorf("stray file %q left behind", e.Name())
			continue
		}
		files++
	}
	if files != 9 {
		t.Errorf("store holds %d files, want 9", files)
	}
	if st.Len() != 9 {
		t.Errorf("Len = %d, want 9", st.Len())
	}
	// And the files are where Get expects them.
	if _, err := os.Stat(filepath.Join(dir, hashOf("shared")+".json")); err != nil {
		t.Error(err)
	}
}

func BenchmarkStoreRoundTrip(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// A payload shaped like a real multi-trial result (~1 KiB).
	payload := bytes.Repeat([]byte(`{"trial":1,"seed":2,"rounds":3024,"decided_round":288,"size":12,"valid":true}`), 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := hashOf(fmt.Sprintf("bench-%d", i))
		if err := st.Put(h, payload); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := st.Get(h); err != nil || !ok {
			b.Fatal("get miss")
		}
	}
}

// TestGCEvictsOldestByMtime: with a byte cap, writes shed the oldest
// entries (by modification time, name-tiebroken) until the store fits,
// and the entry just written is never the victim.
func TestGCEvictsOldestByMtime(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte { return bytes.Repeat([]byte{'0' + byte(i)}, 100) }
	hashes := make([]string, 5)
	for i := range hashes {
		hashes[i] = hashOf(fmt.Sprintf("gc-%d", i))
		if err := st.Put(hashes[i], payload(i)); err != nil {
			t.Fatal(err)
		}
		// Age the entry so mtime order matches write order even on
		// coarse-mtime filesystems.
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, hashes[i]+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if st.Bytes() != 500 || st.Len() != 5 {
		t.Fatalf("pre-GC store: %d entries, %d bytes", st.Len(), st.Bytes())
	}

	// Capping at 250 evicts the two oldest immediately.
	st.SetMaxBytes(250)
	if st.Len() != 2 || st.Bytes() != 200 {
		t.Fatalf("post-cap store: %d entries, %d bytes", st.Len(), st.Bytes())
	}
	for i, h := range hashes {
		_, ok, err := st.Get(h)
		if err != nil {
			t.Fatal(err)
		}
		if want := i >= 3; ok != want {
			t.Fatalf("entry %d resident=%v, want %v", i, ok, want)
		}
	}

	// A new write triggers GC and survives it: the oldest remaining entry
	// goes instead.
	h := hashOf("gc-new")
	if err := st.Put(h, payload(9)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get(h); !ok {
		t.Fatal("freshly written entry was evicted")
	}
	if _, ok, _ := st.Get(hashes[3]); ok {
		t.Fatal("oldest remaining entry survived GC")
	}
	if st.Bytes() > 250 {
		t.Fatalf("store %d bytes exceeds cap", st.Bytes())
	}

	// Reopen recomputes the byte tally from disk.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Bytes() != st.Bytes() || st2.Len() != st.Len() {
		t.Fatalf("reopen tally (%d, %d) != (%d, %d)", st2.Len(), st2.Bytes(), st.Len(), st.Bytes())
	}

	// Unbounded stores never GC.
	st2.SetMaxBytes(0)
	if err := st2.Put(hashOf("gc-more"), payload(1)); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len()+1 {
		t.Fatal("unbounded store evicted")
	}
}

// The put hook can veto writes (fault injection); a vetoed write leaves no
// entry and no temp litter, and the same hash can be written once the hook
// relents.
func TestPutHookVetoesWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := hashOf("spec-hooked")
	st.SetPutHook(func(hash string) error {
		if hash == h {
			return fmt.Errorf("injected write failure for %s", hash)
		}
		return nil
	})
	if err := st.Put(h, []byte("{}")); err == nil || !strings.Contains(err.Error(), "injected write failure") {
		t.Fatalf("hooked Put = %v", err)
	}
	if _, ok, _ := st.Get(h); ok {
		t.Fatal("vetoed write left an entry")
	}
	if st.Len() != 0 {
		t.Fatalf("Len after vetoed write = %d", st.Len())
	}
	other := hashOf("spec-other")
	if err := st.Put(other, []byte("{}")); err != nil {
		t.Fatalf("unscoped Put failed: %v", err)
	}
	st.SetPutHook(nil)
	if err := st.Put(h, []byte("{}")); err != nil {
		t.Fatalf("Put after clearing hook: %v", err)
	}
}
