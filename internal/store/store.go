// Package store persists simulation results across daemon restarts: one
// JSON file per canonical spec hash under a data directory. It is the
// durable tier behind the service's in-memory result LRU — the LRU serves
// the hot set, the store everything ever completed, so resubmitting a spec
// after a restart is a cache hit instead of a re-simulation.
//
// Results are deterministic in the canonical spec, so the store is
// write-once: the first Put for a hash wins and later Puts are no-ops
// (an equal value by determinism). Writes go through a temp file + rename,
// so a crash mid-write never leaves a truncated entry where a hash would
// be served from.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a per-hash file store rooted at one directory. It is safe for
// concurrent use within a process; cross-process writers are not
// coordinated beyond the atomic rename.
type Store struct {
	dir string

	mu    sync.Mutex
	count int // resident entries; maintained so Len avoids readdir
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	count := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			count++
		}
	}
	return &Store{dir: dir, count: count}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// validHash gates keys to hex strings so a key can never traverse outside
// the store directory.
func validHash(hash string) error {
	if len(hash) < 8 || len(hash) > 128 {
		return fmt.Errorf("store: bad hash length %d", len(hash))
	}
	for _, r := range hash {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return fmt.Errorf("store: hash %q is not lowercase hex", hash)
		}
	}
	return nil
}

func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// Get returns the stored bytes for hash. Absent entries report ok=false
// with a nil error; malformed keys and read failures report the error.
func (s *Store) Get(hash string) ([]byte, bool, error) {
	if err := validHash(hash); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(s.path(hash))
	switch {
	case err == nil:
		return data, true, nil
	case errors.Is(err, os.ErrNotExist):
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store: get %s: %w", hash, err)
	}
}

// Put stores data under hash, atomically (temp file + rename in the store
// directory). If the hash is already resident the existing entry is kept:
// results are deterministic in their spec, so the first write is as good
// as any later one, and keeping it preserves byte identity for readers.
func (s *Store) Put(hash string, data []byte) error {
	if err := validHash(hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path(hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, hash+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", hash, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", hash, werr)
	}
	s.count++
	return nil
}
