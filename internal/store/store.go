// Package store persists simulation results across daemon restarts: one
// JSON file per canonical spec hash under a data directory. It is the
// durable tier behind the service's in-memory result LRU — the LRU serves
// the hot set, the store everything ever completed, so resubmitting a spec
// after a restart is a cache hit instead of a re-simulation.
//
// Results are deterministic in the canonical spec, so the store is
// write-once: the first Put for a hash wins and later Puts are no-ops
// (an equal value by determinism). Writes go through a temp file + rename,
// so a crash mid-write never leaves a truncated entry where a hash would
// be served from.
//
// Growth is bounded by an optional byte cap (SetMaxBytes): when a write
// pushes the store past it, the oldest entries by modification time are
// evicted until it fits. Eviction is safe because the store is a cache of
// reproducible results — an evicted spec simply re-simulates on its next
// submission.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is a per-hash file store rooted at one directory. It is safe for
// concurrent use within a process; cross-process writers are not
// coordinated beyond the atomic rename.
type Store struct {
	dir string

	mu       sync.Mutex
	count    int   // resident entries; maintained so Len avoids readdir
	bytes    int64 // resident payload bytes
	maxBytes int64 // 0 = unbounded
	putHook  func(hash string) error
	observer func(op string, d time.Duration)
}

// SetPutHook installs a hook consulted before every write; a non-nil
// return fails the Put without touching the filesystem. It exists for
// deterministic fault injection in tests and chaos runs (nil disables it).
func (s *Store) SetPutHook(hook func(hash string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putHook = hook
}

// SetObserver installs a latency observer: it receives the wallclock of
// every Put ("put") and of every byte-cap GC pass that actually scans the
// directory ("gc"). nil disables it. Observers run with the store lock
// held and must not call back into the store.
func (s *Store) SetObserver(fn func(op string, d time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	st := &Store{dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		st.count++
		if info, err := e.Info(); err == nil {
			st.bytes += info.Size()
		}
	}
	return st, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Bytes returns the resident payload size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// SetMaxBytes caps the store's total size (0 = unbounded). Whenever a
// write pushes the store past the cap, the oldest entries by modification
// time are evicted until it fits again — the growth policy for long-running
// daemons whose stores would otherwise grow append-only forever. Setting a
// cap over an already-oversized store garbage-collects immediately.
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = n
	s.gcLocked("")
}

// validHash gates keys to hex strings so a key can never traverse outside
// the store directory.
func validHash(hash string) error {
	if len(hash) < 8 || len(hash) > 128 {
		return fmt.Errorf("store: bad hash length %d", len(hash))
	}
	for _, r := range hash {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return fmt.Errorf("store: hash %q is not lowercase hex", hash)
		}
	}
	return nil
}

func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// Get returns the stored bytes for hash. Absent entries report ok=false
// with a nil error; malformed keys and read failures report the error.
func (s *Store) Get(hash string) ([]byte, bool, error) {
	if err := validHash(hash); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(s.path(hash))
	switch {
	case err == nil:
		return data, true, nil
	case errors.Is(err, os.ErrNotExist):
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store: get %s: %w", hash, err)
	}
}

// Put stores data under hash, atomically (temp file + rename in the store
// directory). If the hash is already resident the existing entry is kept:
// results are deterministic in their spec, so the first write is as good
// as any later one, and keeping it preserves byte identity for readers.
func (s *Store) Put(hash string, data []byte) error {
	if err := validHash(hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.observer != nil {
		start := time.Now()                                     //detvet:wallclock store_put latency histogram only
		defer func() { s.observer("put", time.Since(start)) }() //detvet:wallclock store_put latency histogram only
	}
	path := s.path(hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if s.putHook != nil {
		if err := s.putHook(hash); err != nil {
			return fmt.Errorf("store: put %s: %w", hash, err)
		}
	}
	tmp, err := os.CreateTemp(s.dir, hash+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", hash, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", hash, werr)
	}
	s.count++
	s.bytes += int64(len(data))
	s.gcLocked(hash + ".json")
	return nil
}

// gcLocked enforces the byte cap: while the store exceeds it, the oldest
// entries by modification time are removed (ties broken by name for
// determinism). keep names the just-written entry, which is never evicted —
// the cap bounds growth by shedding old results, not fresh ones. Callers
// must hold mu.
func (s *Store) gcLocked(keep string) {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	if s.observer != nil {
		start := time.Now()                                    //detvet:wallclock store_gc latency histogram only
		defer func() { s.observer("gc", time.Since(start)) }() //detvet:wallclock store_gc latency histogram only
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type victim struct {
		name  string
		size  int64
		mtime int64
	}
	var victims []victim
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || e.Name() == keep {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		victims = append(victims, victim{e.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].mtime != victims[j].mtime {
			return victims[i].mtime < victims[j].mtime
		}
		return victims[i].name < victims[j].name
	})
	for _, v := range victims {
		if s.bytes <= s.maxBytes {
			return
		}
		if err := os.Remove(filepath.Join(s.dir, v.name)); err != nil {
			continue
		}
		s.count--
		s.bytes -= v.size
	}
}
