// Package adversary implements reach-set strategies for the dual graph
// model. At the beginning of each round, after seeing which nodes broadcast,
// the adversary chooses a reach set consisting of all reliable edges E plus
// an arbitrary subset of the unreliable edges E' \ E (Section 2). The
// strategies here range from benign (never activate unreliable edges) to
// the clique-isolating adversary used in the Section 7 lower bound proof.
package adversary

import (
	"math/rand/v2"

	"dualradio/internal/dualgraph"
)

// Adversary selects, each round, which unreliable (gray) edges behave
// reliably. Implementations are bound to a specific network at construction
// time. bcast[v] reports whether node v broadcasts this round; the adversary
// may adapt to it, exactly as the model allows. The returned slice holds
// indices into the network's GrayEdges() list and may be in any order; it is
// only valid until the next call.
type Adversary interface {
	Reach(round int, bcast []bool) []int
}

// ListAdversary is an optional extension implemented by adversaries whose
// strategy is driven by the broadcasters rather than the gray edge list.
// The engine passes the precomputed ascending broadcaster list alongside the
// bcast flags, sparing the adversary its own O(n) scan every round.
// ReachList must return exactly what Reach would for the same round.
type ListAdversary interface {
	Adversary
	ReachList(round int, bcast []bool, broadcasters []int) []int
}

// CountedAdversary is a further extension for adversaries whose strategy
// depends on how many reliable broadcasters reach each node. The engine
// computes those counts anyway when resolving receptions, so it shares them:
// relCnt[v] is the number of reliable (G-edge) broadcasters reaching node v
// this round, and hitNodes lists exactly the nodes with relCnt > 0, in hit
// order. Both are read-only views of engine state, valid only for the
// duration of the call. ReachCounted must return exactly what Reach would.
type CountedAdversary interface {
	Adversary
	ReachCounted(round int, bcast []bool, broadcasters []int, relCnt []int32, hitNodes []int32) []int
}

// Skipper is an optional extension for stateful adversaries driven by the
// leap engine (sim.Config.Leap). When the engine jumps over a stretch of
// rounds in which no process broadcasts, it calls Skip(round, rounds) instead
// of issuing the per-round Reach calls for rounds [round, round+rounds):
// the adversary must advance any per-round internal state (burst state
// machines, decay clocks) across the stretch so its later Reach calls have
// the same distribution an exact per-round drive would produce. Stateless
// adversaries and adversaries that consume no randomness on broadcast-free
// rounds need not implement it. The exact engine never calls Skip.
type Skipper interface {
	Adversary
	Skip(round, rounds int)
}

// None never activates unreliable edges: communication happens on G alone.
// With G = G' this is the classic radio network model.
type None struct{}

var _ Adversary = None{}

// Reach implements Adversary.
func (None) Reach(int, []bool) []int { return nil }

// Full activates every unreliable edge every round, making G' the effective
// communication graph (maximizing collision opportunities).
type Full struct {
	all []int
}

var _ Adversary = (*Full)(nil)

// NewFull returns a Full adversary for the given network.
func NewFull(net *dualgraph.Network) *Full {
	k := len(net.GrayEdges())
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	return &Full{all: all}
}

// Reach implements Adversary.
func (f *Full) Reach(int, []bool) []int { return f.all }

// UniformP activates each unreliable edge independently with probability p
// every round — a stochastic middle ground modelling bursty gray-zone links.
type UniformP struct {
	p     float64
	rng   *rand.Rand
	gray  [][2]int
	reuse []int
}

var _ Adversary = (*UniformP)(nil)

// NewUniformP returns a UniformP adversary over the network's gray edges.
func NewUniformP(net *dualgraph.Network, p float64, rng *rand.Rand) *UniformP {
	return &UniformP{p: p, rng: rng, gray: net.GrayEdges()}
}

// Reach implements Adversary.
func (u *UniformP) Reach(_ int, bcast []bool) []int {
	u.reuse = u.reuse[:0]
	for i, e := range u.gray {
		// Only edges incident to a broadcaster can matter this round.
		if !bcast[e[0]] && !bcast[e[1]] {
			continue
		}
		if u.rng.Float64() < u.p {
			u.reuse = append(u.reuse, i)
		}
	}
	return u.reuse
}
