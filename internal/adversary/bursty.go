package adversary

import (
	"math/rand/v2"

	"dualradio/internal/dualgraph"
)

// Bursty models the link burstiness measured in real deployments (the
// β-factor study cited by the paper): each unreliable edge alternates
// between "up" bursts, where it behaves reliably, and "down" gaps, with
// geometrically distributed durations. During an up burst the edge is in
// the reach set whenever it could matter.
type Bursty struct {
	rng       *rand.Rand
	gray      [][2]int
	up        []bool
	remaining []int
	meanUp    float64
	meanDown  float64
	reuse     []int
}

var _ Adversary = (*Bursty)(nil)

// NewBursty returns a Bursty adversary. meanUp and meanDown are the mean
// burst and gap lengths in rounds (values < 1 are clamped to 1).
func NewBursty(net *dualgraph.Network, meanUp, meanDown float64, rng *rand.Rand) *Bursty {
	if meanUp < 1 {
		meanUp = 1
	}
	if meanDown < 1 {
		meanDown = 1
	}
	gray := net.GrayEdges()
	b := &Bursty{
		rng:       rng,
		gray:      gray,
		up:        make([]bool, len(gray)),
		remaining: make([]int, len(gray)),
		meanUp:    meanUp,
		meanDown:  meanDown,
	}
	for i := range gray {
		b.up[i] = rng.Float64() < meanUp/(meanUp+meanDown)
		b.remaining[i] = b.duration(b.up[i])
	}
	return b
}

// duration draws a geometric burst/gap length with the configured mean.
func (b *Bursty) duration(up bool) int {
	mean := b.meanDown
	if up {
		mean = b.meanUp
	}
	d := 1
	for b.rng.Float64() < 1-1/mean {
		d++
	}
	return d
}

// Skip implements Skipper for the leap engine: it advances every edge's
// burst state machine across a stretch of broadcast-free rounds in one step.
// The recurrence is identical to the per-round advance in Reach — subtract
// the elapsed rounds from the remaining burst length, then toggle and redraw
// durations until the balance is positive — and it consumes the RNG in the
// same order, so the post-skip state is bit-identical to what the skipped
// per-round Reach calls would have left behind.
func (b *Bursty) Skip(_, rounds int) {
	for i := range b.gray {
		rem := b.remaining[i] - rounds
		for rem <= 0 {
			b.up[i] = !b.up[i]
			rem += b.duration(b.up[i])
		}
		b.remaining[i] = rem
	}
}

// Reach implements Adversary.
func (b *Bursty) Reach(_ int, bcast []bool) []int {
	b.reuse = b.reuse[:0]
	for i, e := range b.gray {
		// Advance the burst state machine every round.
		b.remaining[i]--
		if b.remaining[i] <= 0 {
			b.up[i] = !b.up[i]
			b.remaining[i] = b.duration(b.up[i])
		}
		if b.up[i] && (bcast[e[0]] || bcast[e[1]]) {
			b.reuse = append(b.reuse, i)
		}
	}
	return b.reuse
}

// Targeted jams one victim node: whenever the victim would uniquely receive
// a message, the adversary activates a gray edge from any other broadcaster
// to collide it. This models a localized interference source and is the
// worst case for a single process's progress.
type Targeted struct {
	inner  *CollisionSeeking
	victim int
	g      *dualgraph.Network
	adj    [][]dualgraph.GrayArc
	reuse  []int
}

var _ Adversary = (*Targeted)(nil)

// NewTargeted returns a Targeted adversary against the given node.
func NewTargeted(net *dualgraph.Network, victim int) *Targeted {
	return &Targeted{
		victim: victim,
		g:      net,
		adj:    net.GrayAdjacency(),
	}
}

// Reach implements Adversary.
func (t *Targeted) Reach(_ int, bcast []bool) []int {
	t.reuse = t.reuse[:0]
	if bcast[t.victim] {
		return t.reuse
	}
	relCount := 0
	for _, w := range t.g.G().Neighbors(t.victim) {
		if bcast[w] {
			relCount++
		}
	}
	if relCount != 1 {
		return t.reuse
	}
	for _, arc := range t.adj[t.victim] {
		if bcast[arc.Peer] {
			t.reuse = append(t.reuse, int(arc.Idx))
			break
		}
	}
	return t.reuse
}
