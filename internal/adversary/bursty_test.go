package adversary_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
)

func TestBurstyActivationFractionTracksDuty(t *testing.T) {
	net := lineNet(t)
	rng := rand.New(rand.NewPCG(1, 1))
	// Mean up 9, mean down 1: edges should be active ~90% of broadcasting
	// rounds; and the reverse for 1/9.
	measure := func(up, down float64) float64 {
		a := adversary.NewBursty(net, up, down, rng)
		bcast := []bool{true, true, true, true}
		active := 0
		rounds := 4000
		for r := 0; r < rounds; r++ {
			active += len(a.Reach(r, bcast))
		}
		return float64(active) / float64(rounds*len(net.GrayEdges()))
	}
	high := measure(9, 1)
	low := measure(1, 9)
	if high < 0.7 || high > 1 {
		t.Errorf("high duty fraction = %.2f, want ≈ 0.9", high)
	}
	if low > 0.3 {
		t.Errorf("low duty fraction = %.2f, want ≈ 0.1", low)
	}
	if low >= high {
		t.Error("duty cycle has no effect")
	}
}

func TestBurstyOnlyTouchesBroadcastIncidentEdges(t *testing.T) {
	net := lineNet(t)
	a := adversary.NewBursty(net, 5, 5, rand.New(rand.NewPCG(2, 2)))
	quiet := []bool{false, false, false, false}
	for r := 0; r < 100; r++ {
		if got := a.Reach(r, quiet); len(got) != 0 {
			t.Fatalf("activated %v with no broadcasters", got)
		}
	}
}

func TestTargetedJamsOnlyVictim(t *testing.T) {
	net := lineNet(t) // gray edges (0,2) and (1,3)
	a := adversary.NewTargeted(net, 1)
	// Node 0 broadcasts (unique delivery to victim 1), node 3 also
	// broadcasts and owns gray edge (1,3): the adversary jams.
	got := a.Reach(0, []bool{true, false, false, true})
	if len(got) != 1 {
		t.Fatalf("activations = %v", got)
	}
	if e := net.GrayEdges()[got[0]]; e != [2]int{1, 3} {
		t.Errorf("activated %v, want (1,3)", e)
	}
	// A delivery to a non-victim is left alone.
	if got := a.Reach(1, []bool{false, false, false, true}); len(got) != 0 {
		t.Errorf("jammed a non-victim: %v", got)
	}
	// The victim broadcasting itself is not jammed (it hears itself).
	if got := a.Reach(2, []bool{true, true, false, true}); len(got) != 0 {
		t.Errorf("jammed a broadcasting victim: %v", got)
	}
}
