package adversary_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// lineNet builds a 4-node unit line with skip-one gray edges: gray edges are
// (0,2) and (1,3).
func lineNet(t *testing.T) *dualgraph.Network {
	t.Helper()
	n := 4
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	coords := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		coords[i] = geom.Point{X: float64(i)}
	}
	add := func(gr *graph.Builder, u, v int) {
		if err := gr.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		add(g, i, i+1)
		add(gp, i, i+1)
	}
	for i := 0; i+2 < n; i++ {
		add(gp, i, i+2)
	}
	return dualgraph.New(g.Build(), gp.Build(), coords, 2)
}

func TestNoneActivatesNothing(t *testing.T) {
	var a adversary.None
	if got := a.Reach(0, []bool{true, true, true, true}); len(got) != 0 {
		t.Errorf("None activated %v", got)
	}
}

func TestFullActivatesEverything(t *testing.T) {
	net := lineNet(t)
	a := adversary.NewFull(net)
	got := a.Reach(0, []bool{false, false, false, false})
	if len(got) != len(net.GrayEdges()) {
		t.Errorf("Full activated %d of %d", len(got), len(net.GrayEdges()))
	}
}

func TestUniformPExtremes(t *testing.T) {
	net := lineNet(t)
	bcast := []bool{true, true, true, true}
	never := adversary.NewUniformP(net, 0, rand.New(rand.NewPCG(1, 1)))
	if got := never.Reach(0, bcast); len(got) != 0 {
		t.Errorf("p=0 activated %v", got)
	}
	always := adversary.NewUniformP(net, 1, rand.New(rand.NewPCG(1, 1)))
	if got := always.Reach(0, bcast); len(got) != len(net.GrayEdges()) {
		t.Errorf("p=1 activated %d edges", len(got))
	}
	// Edges not incident to a broadcaster are never activated.
	if got := always.Reach(0, []bool{false, false, false, false}); len(got) != 0 {
		t.Errorf("idle round activated %v", got)
	}
}

// TestCollisionSeekingDestroysUniqueDelivery: node 1 broadcasts; node 2
// would uniquely receive; node 3 also broadcasts and has a gray edge to
// node 1... more precisely the adversary should activate gray (1,3) to
// collide node 1's reception or (0,2)-style edges for node 0.
func TestCollisionSeekingDestroysUniqueDelivery(t *testing.T) {
	net := lineNet(t)
	a := adversary.NewCollisionSeeking(net)
	// Node 0 and node 3 broadcast. Node 1 uniquely hears node 0 over G;
	// gray edge (1,3) lets the adversary collide it. Symmetrically node 2
	// hears node 3 and gray (0,2) collides it.
	got := a.Reach(0, []bool{true, false, false, true})
	if len(got) != 2 {
		t.Fatalf("expected 2 activations, got %v", got)
	}
	gray := net.GrayEdges()
	seen := map[[2]int]bool{}
	for _, idx := range got {
		seen[gray[idx]] = true
	}
	if !seen[[2]int{0, 2}] || !seen[[2]int{1, 3}] {
		t.Errorf("activated %v, want {0,2} and {1,3}", seen)
	}
}

func TestCollisionSeekingLeavesHopelessAlone(t *testing.T) {
	net := lineNet(t)
	a := adversary.NewCollisionSeeking(net)
	// Only node 0 broadcasts: node 1's unique delivery cannot be collided
	// (node 1's only gray neighbor, node 3, is silent).
	if got := a.Reach(0, []bool{true, false, false, false}); len(got) != 0 {
		t.Errorf("activated %v with no colliding partner available", got)
	}
}

func TestCliqueIsolatingBlocksBridge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	net, meta, err := gen.BridgeCliques(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := adversary.NewCliqueIsolating(net, meta.BridgeA, meta.BridgeB)

	// Bridge endpoint A broadcasts alongside another node: the adversary
	// must activate a gray edge into endpoint B to collide the crossing.
	bcast := make([]bool, net.N())
	bcast[meta.BridgeA] = true
	other := (meta.BridgeA + 1) % meta.Beta // another clique-A node
	bcast[other] = true
	got := a.Reach(0, bcast)
	if len(got) == 0 {
		t.Fatal("adversary failed to block the bridge crossing")
	}
	gray := net.GrayEdges()
	blocked := false
	for _, idx := range got {
		e := gray[idx]
		if e[0] == meta.BridgeB || e[1] == meta.BridgeB {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("activations %v do not reach bridge endpoint B", got)
	}

	// A solo broadcast by the bridge endpoint cannot be blocked.
	solo := make([]bool, net.N())
	solo[meta.BridgeA] = true
	if got := a.Reach(1, solo); len(got) != 0 {
		t.Errorf("solo crossing should be unblockable, activated %v", got)
	}
}

func TestCliqueIsolatingIgnoresIntraCliqueTraffic(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	net, meta, err := gen.BridgeCliques(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := adversary.NewCliqueIsolating(net, meta.BridgeA, meta.BridgeB)
	// Two non-bridge nodes of clique A broadcast: no cross threat, no
	// activations.
	bcast := make([]bool, net.N())
	count := 0
	for v := 0; v < meta.Beta && count < 2; v++ {
		if v != meta.BridgeA {
			bcast[v] = true
			count++
		}
	}
	if got := a.Reach(0, bcast); len(got) != 0 {
		t.Errorf("intra-clique traffic triggered activations %v", got)
	}
}
