package adversary

import "dualradio/internal/dualgraph"

type grayArc struct {
	peer int32
	idx  int32
}

// grayAdjacency builds, for each node, the list of gray edges incident to it.
func grayAdjacency(net *dualgraph.Network) [][]grayArc {
	adj := make([][]grayArc, net.N())
	for i, e := range net.GrayEdges() {
		u, v := e[0], e[1]
		adj[u] = append(adj[u], grayArc{peer: int32(v), idx: int32(i)})
		adj[v] = append(adj[v], grayArc{peer: int32(u), idx: int32(i)})
	}
	return adj
}

// CollisionSeeking is a greedy adaptive adversary: whenever a silent node
// would receive a unique message over reliable edges, it activates a gray
// edge from some other broadcaster to that node, turning the delivery into a
// collision. This is the strongest general-purpose strategy the model
// permits without knowledge of algorithm internals, and it is the behavior
// the paper's Section 4 discussion warns about: unreliable edges thwarting
// standard contention-reduction techniques.
type CollisionSeeking struct {
	net     *dualgraph.Network
	grayAdj [][]grayArc
	relCnt  []int32
	touched []int32
	reuse   []int
}

var _ Adversary = (*CollisionSeeking)(nil)

// NewCollisionSeeking returns a CollisionSeeking adversary bound to net.
func NewCollisionSeeking(net *dualgraph.Network) *CollisionSeeking {
	return &CollisionSeeking{
		net:     net,
		grayAdj: grayAdjacency(net),
		relCnt:  make([]int32, net.N()),
	}
}

// Reach implements Adversary.
func (c *CollisionSeeking) Reach(_ int, bcast []bool) []int {
	c.reuse = c.reuse[:0]
	g := c.net.G()
	// Count reliable broadcasters reaching each node.
	for u, b := range bcast {
		if !b {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if c.relCnt[v] == 0 {
				c.touched = append(c.touched, v)
			}
			c.relCnt[v]++
		}
	}
	// Destroy every unique delivery that a gray edge can reach.
	for _, v := range c.touched {
		if c.relCnt[v] == 1 && !bcast[v] {
			for _, arc := range c.grayAdj[v] {
				if bcast[arc.peer] {
					c.reuse = append(c.reuse, int(arc.idx))
					break
				}
			}
		}
	}
	for _, v := range c.touched {
		c.relCnt[v] = 0
	}
	c.touched = c.touched[:0]
	return c.reuse
}

// CliqueIsolating is the adversary from the Section 7 lower bound proof,
// specialized to the two-clique bridge network: it keeps the two cliques
// informationally independent by colliding any message that would cross the
// bridge while a second broadcaster exists anywhere in the network. Cross
// information can then flow only when a bridge endpoint broadcasts alone
// network-wide — the Ω(Δ) "hitting" event.
type CliqueIsolating struct {
	grayAdj  [][]grayArc
	g        *dualgraph.Network
	bridgeA  int
	bridgeB  int
	reuse    []int
	bcasters []int
}

var _ Adversary = (*CliqueIsolating)(nil)

// NewCliqueIsolating returns the lower-bound adversary. bridgeA and bridgeB
// are the node indices of the bridge endpoints (see gen.BridgeCliques).
func NewCliqueIsolating(net *dualgraph.Network, bridgeA, bridgeB int) *CliqueIsolating {
	return &CliqueIsolating{
		grayAdj: grayAdjacency(net),
		g:       net,
		bridgeA: bridgeA,
		bridgeB: bridgeB,
	}
}

// Reach implements Adversary.
func (c *CliqueIsolating) Reach(_ int, bcast []bool) []int {
	c.reuse = c.reuse[:0]
	c.bcasters = c.bcasters[:0]
	for v, b := range bcast {
		if b {
			c.bcasters = append(c.bcasters, v)
		}
	}
	if len(c.bcasters) < 2 {
		// A solo broadcast cannot be collided; if it comes from a bridge
		// endpoint it crosses, which is exactly the hitting event.
		return c.reuse
	}
	c.blockBridge(bcast, c.bridgeA, c.bridgeB)
	c.blockBridge(bcast, c.bridgeB, c.bridgeA)
	return c.reuse
}

// blockBridge collides the delivery from broadcasting endpoint src to silent
// endpoint dst by activating a gray edge from any other broadcaster to dst.
func (c *CliqueIsolating) blockBridge(bcast []bool, src, dst int) {
	if !bcast[src] || bcast[dst] {
		return
	}
	// If dst already hears 2+ reliable broadcasters it is collided anyway.
	relCount := 0
	for _, w := range c.g.G().Neighbors(dst) {
		if bcast[w] {
			relCount++
		}
	}
	if relCount != 1 {
		return
	}
	for _, arc := range c.grayAdj[dst] {
		if bcast[arc.peer] && int(arc.peer) != src {
			c.reuse = append(c.reuse, int(arc.idx))
			return
		}
	}
}
