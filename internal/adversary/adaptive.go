package adversary

import "dualradio/internal/dualgraph"

// CollisionSeeking is a greedy adaptive adversary: whenever a silent node
// would receive a unique message over reliable edges, it activates a gray
// edge from some other broadcaster to that node, turning the delivery into a
// collision. This is the strongest general-purpose strategy the model
// permits without knowledge of algorithm internals, and it is the behavior
// the paper's Section 4 discussion warns about: unreliable edges thwarting
// standard contention-reduction techniques.
type CollisionSeeking struct {
	net     *dualgraph.Network
	grayAdj [][]dualgraph.GrayArc
	relCnt  []int32
	touched []int32
	reuse   []int
	blist   []int
	// cand[v] is the smallest-index gray edge from a current broadcaster
	// to v (-1 when none), maintained by the broadcaster-driven pass.
	cand        []int32
	candTouched []int32
}

var _ ListAdversary = (*CollisionSeeking)(nil)
var _ CountedAdversary = (*CollisionSeeking)(nil)

// NewCollisionSeeking returns a CollisionSeeking adversary bound to net.
func NewCollisionSeeking(net *dualgraph.Network) *CollisionSeeking {
	c := &CollisionSeeking{
		net:     net,
		grayAdj: net.GrayAdjacency(),
		relCnt:  make([]int32, net.N()),
		cand:    make([]int32, net.N()),
	}
	for i := range c.cand {
		c.cand[i] = -1
	}
	return c
}

// Reach implements Adversary.
func (c *CollisionSeeking) Reach(round int, bcast []bool) []int {
	c.blist = c.blist[:0]
	for u, b := range bcast {
		if b {
			c.blist = append(c.blist, u)
		}
	}
	return c.ReachList(round, bcast, c.blist)
}

// ReachList implements ListAdversary.
func (c *CollisionSeeking) ReachList(round int, bcast []bool, broadcasters []int) []int {
	// Count reliable broadcasters reaching each node.
	g := c.net.G()
	for _, u := range broadcasters {
		for _, v := range g.Neighbors(u) {
			if c.relCnt[v] == 0 {
				c.touched = append(c.touched, v)
			}
			c.relCnt[v]++
		}
	}
	out := c.ReachCounted(round, bcast, broadcasters, c.relCnt, c.touched)
	for _, v := range c.touched {
		c.relCnt[v] = 0
	}
	c.touched = c.touched[:0]
	return out
}

// ReachCounted implements CountedAdversary: with the engine's reliable hit
// counts in hand the strategy needs no counting walks of its own. Both
// branches below pick, for each uniquely-reached node, the lowest-index gray
// edge from a broadcaster (gray adjacency lists are in edge-index order), so
// they produce identical activations; the split only picks the cheaper walk
// direction.
func (c *CollisionSeeking) ReachCounted(_ int, bcast []bool, broadcasters []int, relCnt []int32, hitNodes []int32) []int {
	c.reuse = c.reuse[:0]
	if len(broadcasters) <= 16 {
		// Sparse round: mark the gray reach of the few broadcasters,
		// then destroy every unique delivery that was marked.
		for _, u := range broadcasters {
			for _, arc := range c.grayAdj[u] {
				switch prev := c.cand[arc.Peer]; {
				case prev < 0:
					c.candTouched = append(c.candTouched, arc.Peer)
					c.cand[arc.Peer] = arc.Idx
				case arc.Idx < prev:
					c.cand[arc.Peer] = arc.Idx
				}
			}
		}
		for _, v := range hitNodes {
			if relCnt[v] == 1 && !bcast[v] && c.cand[v] >= 0 {
				c.reuse = append(c.reuse, int(c.cand[v]))
			}
		}
		for _, v := range c.candTouched {
			c.cand[v] = -1
		}
		c.candTouched = c.candTouched[:0]
		return c.reuse
	}
	// Dense round: scanning each victim's gray arcs terminates quickly
	// because most arcs lead to a broadcaster.
	for _, v := range hitNodes {
		if relCnt[v] == 1 && !bcast[v] {
			for _, arc := range c.grayAdj[v] {
				if bcast[arc.Peer] {
					c.reuse = append(c.reuse, int(arc.Idx))
					break
				}
			}
		}
	}
	return c.reuse
}

// CliqueIsolating is the adversary from the Section 7 lower bound proof,
// specialized to the two-clique bridge network: it keeps the two cliques
// informationally independent by colliding any message that would cross the
// bridge while a second broadcaster exists anywhere in the network. Cross
// information can then flow only when a bridge endpoint broadcasts alone
// network-wide — the Ω(Δ) "hitting" event.
type CliqueIsolating struct {
	grayAdj  [][]dualgraph.GrayArc
	g        *dualgraph.Network
	bridgeA  int
	bridgeB  int
	reuse    []int
	bcasters []int
}

var _ ListAdversary = (*CliqueIsolating)(nil)

// NewCliqueIsolating returns the lower-bound adversary. bridgeA and bridgeB
// are the node indices of the bridge endpoints (see gen.BridgeCliques).
func NewCliqueIsolating(net *dualgraph.Network, bridgeA, bridgeB int) *CliqueIsolating {
	return &CliqueIsolating{
		grayAdj: net.GrayAdjacency(),
		g:       net,
		bridgeA: bridgeA,
		bridgeB: bridgeB,
	}
}

// Reach implements Adversary.
func (c *CliqueIsolating) Reach(round int, bcast []bool) []int {
	c.bcasters = c.bcasters[:0]
	for v, b := range bcast {
		if b {
			c.bcasters = append(c.bcasters, v)
		}
	}
	return c.ReachList(round, bcast, c.bcasters)
}

// ReachList implements ListAdversary.
func (c *CliqueIsolating) ReachList(_ int, bcast []bool, broadcasters []int) []int {
	c.reuse = c.reuse[:0]
	if len(broadcasters) < 2 {
		// A solo broadcast cannot be collided; if it comes from a bridge
		// endpoint it crosses, which is exactly the hitting event.
		return c.reuse
	}
	c.blockBridge(bcast, c.bridgeA, c.bridgeB)
	c.blockBridge(bcast, c.bridgeB, c.bridgeA)
	return c.reuse
}

// blockBridge collides the delivery from broadcasting endpoint src to silent
// endpoint dst by activating a gray edge from any other broadcaster to dst.
func (c *CliqueIsolating) blockBridge(bcast []bool, src, dst int) {
	if !bcast[src] || bcast[dst] {
		return
	}
	// If dst already hears 2+ reliable broadcasters it is collided anyway.
	relCount := 0
	for _, w := range c.g.G().Neighbors(dst) {
		if bcast[w] {
			relCount++
		}
	}
	if relCount != 1 {
		return
	}
	for _, arc := range c.grayAdj[dst] {
		if bcast[arc.Peer] && int(arc.Peer) != src {
			c.reuse = append(c.reuse, int(arc.Idx))
			return
		}
	}
}
