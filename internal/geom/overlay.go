package geom

import "math"

// OverlayRadius is the radius of the disks used by the paper's analytical
// overlay (Section 4): disks of radius 1/2 arranged on a hexagonal lattice
// so that every point of the plane is covered.
const OverlayRadius = 0.5

// Overlay is the hexagonal lattice of radius-1/2 disks used throughout the
// paper's probabilistic analysis. Disk centers sit on a triangular grid with
// horizontal spacing equal to the disk radius times sqrt(3) and alternating
// row offsets, which is the densest covering arrangement with minimal
// overlap. The overlay assigns every point in the plane to the disk whose
// center is nearest; ties are broken deterministically by grid order.
type Overlay struct {
	radius float64
	// dx is the horizontal center spacing, dy the vertical row spacing.
	dx float64
	dy float64
}

// NewOverlay returns the canonical hexagonal overlay with radius-1/2 disks.
func NewOverlay() *Overlay { return NewOverlayWithRadius(OverlayRadius) }

// NewOverlayWithRadius returns a hexagonal covering overlay whose disks have
// the provided radius. The radius must be positive; non-positive values fall
// back to OverlayRadius.
func NewOverlayWithRadius(r float64) *Overlay {
	if r <= 0 {
		r = OverlayRadius
	}
	// For a covering, center spacing of r*sqrt(3) horizontally and 1.5*r
	// vertically guarantees every point is within r of some center.
	return &Overlay{radius: r, dx: r * math.Sqrt(3), dy: r * 1.5}
}

// Radius returns the disk radius of the overlay.
func (o *Overlay) Radius() float64 { return o.radius }

// DiskID identifies a single disk in the overlay by its lattice coordinates.
type DiskID struct {
	Row int
	Col int
}

// Center returns the plane coordinates of the given disk's center.
func (o *Overlay) Center(id DiskID) Point {
	x := float64(id.Col) * o.dx
	if id.Row&1 != 0 {
		x += o.dx / 2
	}
	return Point{X: x, Y: float64(id.Row) * o.dy}
}

// DiskFor returns the identifier of the overlay disk covering p. Every point
// is covered by at least one disk; when several cover p, the one with the
// nearest center (ties by row, then column) is returned, so the assignment
// partitions the plane.
func (o *Overlay) DiskFor(p Point) DiskID {
	row := int(math.Round(p.Y / o.dy))
	best := DiskID{Row: row, Col: 0}
	bestDist := math.Inf(1)
	// Scan the two candidate rows around p and the three candidate columns
	// in each; the covering arrangement guarantees the true nearest center
	// falls in this window.
	for dr := -1; dr <= 1; dr++ {
		r := row + dr
		x := p.X
		if r&1 != 0 {
			x -= o.dx / 2
		}
		col := int(math.Round(x / o.dx))
		for dc := -1; dc <= 1; dc++ {
			id := DiskID{Row: r, Col: col + dc}
			d := o.Center(id).Dist2(p)
			if d < bestDist-1e-12 ||
				(math.Abs(d-bestDist) <= 1e-12 && less(id, best)) {
				bestDist = d
				best = id
			}
		}
	}
	return best
}

func less(a, b DiskID) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// IntersectCount returns I_r for this overlay: the maximum number of overlay
// disks that can intersect a disk of radius r (Fact 4.1 of the paper). The
// count is computed exactly by enumerating lattice disks whose centers lie
// within r + disk radius of an arbitrary disk of radius r; by lattice
// symmetry the supremum is attained with the query disk centered on a lattice
// point or deep inside a cell, so we take the max over a small set of
// representative centers.
func (o *Overlay) IntersectCount(r float64) int {
	if r < 0 {
		return 0
	}
	reach := r + o.radius
	// Representative query centers within one lattice cell.
	candidates := []Point{
		{0, 0},
		{o.dx / 2, 0},
		{o.dx / 4, o.dy / 2},
		{o.dx / 2, o.dy / 2},
		{0, o.dy / 2},
		{o.dx / 3, o.dy / 3},
	}
	maxCount := 0
	rowSpan := int(math.Ceil(reach/o.dy)) + 1
	colSpan := int(math.Ceil(reach/o.dx)) + 1
	for _, c := range candidates {
		count := 0
		for row := -rowSpan; row <= rowSpan; row++ {
			for col := -colSpan; col <= colSpan; col++ {
				center := o.Center(DiskID{Row: row, Col: col})
				if center.Dist(c) <= reach+1e-9 {
					count++
				}
			}
		}
		if count > maxCount {
			maxCount = count
		}
	}
	return maxCount
}

// Partition groups point indices by their covering disk. The returned map
// has one entry per occupied disk; because the paper's networks are
// connected, at most len(pts) disks are occupied.
func (o *Overlay) Partition(pts []Point) map[DiskID][]int {
	part := make(map[DiskID][]int)
	for i, p := range pts {
		id := o.DiskFor(p)
		part[id] = append(part[id], i)
	}
	return part
}
