package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 2}, 1},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetricAndNonNegative(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{clamp(ax), clamp(ay)}
		q := Point{clamp(bx), clamp(by)}
		d1, d2 := p.Dist(q), q.Dist(p)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{clamp(ax), clamp(ay)}
		q := Point{clamp(bx), clamp(by)}
		d := p.Dist(q)
		return math.Abs(p.Dist2(q)-d*d) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestBounds(t *testing.T) {
	if r := Bounds(nil); r != (Rect{}) {
		t.Errorf("empty bounds = %v", r)
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r := Bounds(pts)
	if r.Min != (Point{-2, -1}) || r.Max != (Point{4, 5}) {
		t.Errorf("bounds = %v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounds does not contain %v", p)
		}
	}
	if r.Width() != 6 || r.Height() != 6 {
		t.Errorf("width/height = %v/%v", r.Width(), r.Height())
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	if !r.Contains(Point{1, 1}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{2, 2}) {
		t.Error("boundary points should be contained")
	}
	if r.Contains(Point{3, 1}) || r.Contains(Point{1, -0.1}) {
		t.Error("outside points contained")
	}
}

// clamp keeps quick-generated floats in a sane range.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}
