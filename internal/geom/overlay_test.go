package geom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestOverlayCovers verifies the covering property: every point of the plane
// lies within the radius of its assigned disk.
func TestOverlayCovers(t *testing.T) {
	o := NewOverlay()
	f := func(x, y float64) bool {
		p := Point{clamp(x), clamp(y)}
		id := o.DiskFor(p)
		return o.Center(id).Dist(p) <= o.Radius()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOverlayAssignsNearest verifies no other candidate disk is strictly
// closer than the assigned one.
func TestOverlayAssignsNearest(t *testing.T) {
	o := NewOverlay()
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		p := Point{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		id := o.DiskFor(p)
		best := o.Center(id).Dist(p)
		for dr := -2; dr <= 2; dr++ {
			for dc := -2; dc <= 2; dc++ {
				other := DiskID{Row: id.Row + dr, Col: id.Col + dc}
				if o.Center(other).Dist(p) < best-1e-9 {
					t.Fatalf("point %v assigned disk %v at %.4f but %v is at %.4f",
						p, id, best, other, o.Center(other).Dist(p))
				}
			}
		}
	}
}

// TestOverlayDeterministic verifies that DiskFor is a function (stable under
// repeated queries) so it partitions the plane.
func TestOverlayDeterministic(t *testing.T) {
	o := NewOverlay()
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64() * 5, rng.Float64() * 5}
		if o.DiskFor(p) != o.DiskFor(p) {
			t.Fatal("DiskFor is not deterministic")
		}
	}
}

// TestIntersectCountMonotonic verifies I_r grows with r and matches hand
// expectations at the extremes (Fact 4.1: constant for constant r).
func TestIntersectCountMonotonic(t *testing.T) {
	o := NewOverlay()
	prev := 0
	for _, r := range []float64{0, 0.5, 1, 1.5, 2, 3, 4} {
		c := o.IntersectCount(r)
		if c < prev {
			t.Errorf("I_%v = %d < I_prev = %d", r, c, prev)
		}
		prev = c
	}
	if o.IntersectCount(-1) != 0 {
		t.Error("negative radius should intersect nothing")
	}
	if c := o.IntersectCount(0); c < 1 {
		t.Errorf("a point intersects at least one disk, got %d", c)
	}
	// A disk of radius 3 in a radius-1/2 overlay intersects at most
	// roughly (3.5/0.5+1)² disks; sanity-band the value.
	if c := o.IntersectCount(3); c < 20 || c > 120 {
		t.Errorf("I_3 = %d outside sanity band", c)
	}
}

// TestOverlayIndependenceDensity verifies the Corollary 4.7 machinery: a set
// of points pairwise more than 1 apart has at most one point per disk of the
// unit-scaled overlay... more precisely, each radius-1/2 disk holds at most
// one such point.
func TestOverlayIndependenceDensity(t *testing.T) {
	o := NewOverlay()
	rng := rand.New(rand.NewPCG(5, 6))
	var pts []Point
	for len(pts) < 40 {
		cand := Point{rng.Float64() * 20, rng.Float64() * 20}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) <= 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	for id, members := range o.Partition(pts) {
		if len(members) > 1 {
			t.Errorf("disk %v holds %d points pairwise >1 apart", id, len(members))
		}
	}
}

func TestPartitionCoversAllPoints(t *testing.T) {
	o := NewOverlay()
	pts := []Point{{0, 0}, {1, 1}, {2.5, 0.3}, {0, 0}}
	part := o.Partition(pts)
	total := 0
	for _, m := range part {
		total += len(m)
	}
	if total != len(pts) {
		t.Errorf("partition covers %d of %d points", total, len(pts))
	}
}

func TestOverlayWithRadiusFallback(t *testing.T) {
	if o := NewOverlayWithRadius(-1); o.Radius() != OverlayRadius {
		t.Errorf("fallback radius = %v", o.Radius())
	}
	if o := NewOverlayWithRadius(2); o.Radius() != 2 {
		t.Errorf("explicit radius = %v", o.Radius())
	}
}
