package geom

import "slices"

// Grid buckets points into rectangular cells of side at least `reach`, so
// that every pair of points within distance `reach` lies in the same cell
// or in one of the eight surrounding cells. It is the spatial index behind
// the O(n·Δ) geometric generator: instead of an all-pairs distance sweep,
// each point examines only the candidates bucketed around it.
//
// Construction precomputes, per cell, the sorted list of point indices in
// the cell's nine-cell neighborhood (shared by every point in the cell).
// A point's candidate enumeration is then a binary search plus a tail walk
// of that list — no per-point gathering or sorting — which keeps the
// constant factor low enough to win even when cells are coarse relative to
// the deployment area. After(i) yields exactly the candidates with a larger
// index in ascending order: the (u, ascending v > u) visit order of the
// naive double loop.
type Grid struct {
	cols, rows int
	cellIdx    []int32 // cell of each point
	nbhdStart  []int32 // len cols*rows+1; neighborhood bounds into nbhd
	nbhd       []int32 // per-cell sorted nine-cell neighborhood members
}

// NewGrid indexes pts with cells sized for the given reach (> 0). All
// pairwise interactions up to distance reach are then confined to a cell's
// nine-cell neighborhood.
func NewGrid(pts []Point, reach float64) *Grid {
	b := Bounds(pts)
	g := &Grid{}
	var cellW, cellH float64
	g.cols, cellW = axisCells(b.Width(), reach)
	g.rows, cellH = axisCells(b.Height(), reach)
	cells := g.cols * g.rows

	// Bucket the points: counting pass, prefix sums, then placement in
	// ascending point order, which leaves every cell's members ascending.
	g.cellIdx = make([]int32, len(pts))
	start := make([]int32, cells+1)
	for i, p := range pts {
		cx := clampCell((p.X-b.Min.X)/cellW, g.cols)
		cy := clampCell((p.Y-b.Min.Y)/cellH, g.rows)
		c := int32(cy*g.cols + cx)
		g.cellIdx[i] = c
		start[c+1]++
	}
	for c := 0; c < cells; c++ {
		start[c+1] += start[c]
	}
	ids := make([]int32, len(pts))
	next := make([]int32, cells)
	copy(next, start[:cells])
	for i := range pts {
		c := g.cellIdx[i]
		ids[next[c]] = int32(i)
		next[c]++
	}

	// Precompute each cell's nine-cell neighborhood, sorted ascending.
	// Every point lands in at most nine neighborhoods, so the arena holds
	// at most 9n entries.
	g.nbhdStart = make([]int32, cells+1)
	var around [9]int
	total := int32(0)
	for cy := 0; cy < g.rows; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			g.nbhdStart[cy*g.cols+cx] = total
			for _, nc := range g.aroundCells(&around, cx, cy) {
				total += start[nc+1] - start[nc]
			}
		}
	}
	g.nbhdStart[cells] = total
	g.nbhd = make([]int32, total)
	for cy := 0; cy < g.rows; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			c := cy*g.cols + cx
			out := g.nbhd[g.nbhdStart[c]:g.nbhdStart[c]]
			for _, nc := range g.aroundCells(&around, cx, cy) {
				out = append(out, ids[start[nc]:start[nc+1]]...)
			}
			slices.Sort(out)
		}
	}
	return g
}

// aroundCells fills buf with the indices of the up-to-nine cells around
// (cx, cy) and returns the filled prefix.
func (g *Grid) aroundCells(buf *[9]int, cx, cy int) []int {
	out := buf[:0]
	for y := cy - 1; y <= cy+1; y++ {
		if y < 0 || y >= g.rows {
			continue
		}
		for x := cx - 1; x <= cx+1; x++ {
			if x < 0 || x >= g.cols {
				continue
			}
			out = append(out, y*g.cols+x)
		}
	}
	return out
}

// axisCells returns how many cells cover an extent and their size, keeping
// each cell at least reach wide (degenerate extents collapse to one cell).
// The count is derived from a slightly inflated reach: without the slack,
// an extent/reach ratio that rounds up across an integer would yield cells
// an ulp narrower than reach, and a pair at distance within that ulp of
// reach could land two cells apart — outside the nine-cell neighborhood
// the coverage guarantee promises. The margin dwarfs the rounding error of
// the whole division chain; candidates are a superset either way, so the
// cell count never affects which pairs are evaluated, only where.
func axisCells(extent, reach float64) (int, float64) {
	n := int(extent / (reach * (1 + 1e-9)))
	if n < 1 {
		return 1, reach
	}
	return n, extent / float64(n)
}

func clampCell(f float64, n int) int {
	c := int(f)
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// After returns the indices j > i of all points bucketed in the nine cells
// around point i — a superset of every point within reach of it — in
// ascending order. The slice aliases the grid's arena and must not be
// modified.
func (g *Grid) After(i int) []int32 {
	c := g.cellIdx[i]
	nb := g.nbhd[g.nbhdStart[c]:g.nbhdStart[c+1]]
	// Binary-search the first index > i.
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nb[mid] <= int32(i) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return nb[lo:]
}
