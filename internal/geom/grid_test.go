package geom

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// TestGridCoversReach checks the core guarantee: for every point i, the
// nine-cell neighborhood contains every j > i within the reach distance.
func TestGridCoversReach(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, tc := range []struct {
		name  string
		n     int
		side  float64
		reach float64
	}{
		{"dense", 300, 10, 2},
		{"sparse", 50, 100, 1.5},
		{"tiny-area", 40, 0.5, 2},
		{"single-row", 30, 9, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pts := make([]Point, tc.n)
			for i := range pts {
				pts[i] = Point{X: rng.Float64() * tc.side, Y: rng.Float64() * tc.side}
			}
			g := NewGrid(pts, tc.reach)
			r2 := tc.reach * tc.reach
			for i := range pts {
				buf := g.After(i)
				if !slices.IsSorted(buf) {
					t.Fatalf("point %d: candidates not ascending: %v", i, buf)
				}
				got := make(map[int32]bool, len(buf))
				for _, j := range buf {
					if int(j) <= i {
						t.Fatalf("point %d: candidate %d is not a later index", i, j)
					}
					if got[j] {
						t.Fatalf("point %d: duplicate candidate %d", i, j)
					}
					got[j] = true
				}
				for j := i + 1; j < tc.n; j++ {
					if pts[i].Dist2(pts[j]) <= r2 && !got[int32(j)] {
						t.Fatalf("point %d: in-reach point %d missing from candidates", i, j)
					}
				}
			}
		})
	}
}

// TestGridDegeneratePoints covers coincident and collinear embeddings,
// where the bounding box collapses along an axis.
func TestGridDegeneratePoints(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	g := NewGrid(pts, 1)
	buf := g.After(0)
	if len(buf) != 2 || buf[0] != 1 || buf[1] != 2 {
		t.Fatalf("coincident points: got %v, want [1 2]", buf)
	}
	// Collinear points 5 apart with reach 2: no candidate survives the
	// nine-cell filter (nothing is within a cell of anything else).
	line := []Point{{X: 0}, {X: 5}, {X: 10}}
	gl := NewGrid(line, 2)
	if got := gl.After(0); len(got) != 0 {
		t.Fatalf("collinear far points: unexpected candidates %v", got)
	}
}
