// Package geom provides the two-dimensional geometry substrate used by the
// dual graph radio network model of Censor-Hillel et al. (PODC 2011).
//
// The paper embeds every node in the plane and assumes a constant d >= 1
// such that all node pairs within distance 1 share a reliable edge and no
// unreliable edge spans more than distance d. Its proofs cover the plane
// with an overlay of radius-1/2 disks arranged on a hexagonal lattice and
// reason about I_r, the maximum number of overlay disks intersecting a disk
// of radius r (Fact 4.1: I_c = O(1) for constant c). This package supplies
// the points, distances, and the overlay itself so that the verification
// layer can check the paper's density corollaries (for example
// Corollary 4.7) against actual executions.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional plane.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as edge generation.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the vector sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	Min Point
	Max Point
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Bounds returns the tightest rectangle containing all points, or a zero
// rectangle when pts is empty.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}
