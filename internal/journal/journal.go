// Package journal is an append-only NDJSON write-ahead log: one JSON
// record per line, appended to a file as state transitions happen and
// replayed on startup to reconstruct in-flight state after a crash.
//
// The durability model targets process death (kill -9, panic, OOM), not
// machine loss: a completed write(2) survives the process because the bytes
// live in the kernel page cache, so no fsync is issued per append and the
// hot path stays cheap. A crash can truncate at most the final line — the
// record being appended when the process died — and ReadAll tolerates
// exactly that: a trailing partial line is discarded, never misparsed,
// because every complete record ends in '\n'.
//
// Compaction uses generations: Begin starts a fresh generation at
// path+".tmp", Seal atomically renames it over path once the live state has
// been re-recorded, and the open file descriptor keeps appending to the
// renamed file. A crash before Seal leaves the previous generation intact;
// a crash after Seal leaves the compacted one — there is no window where
// neither is complete.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Journal is one open generation of an NDJSON log. It is safe for
// concurrent appends.
type Journal struct {
	path string // final path; Seal renames the generation here

	mu      sync.Mutex
	f       *os.File
	sealed  bool
	appends int
}

// ReadAll returns the complete records of the journal at path, one raw
// JSON line each, in append order. A missing file is an empty journal. A
// trailing line without a newline — the append in flight when a previous
// process died — is discarded; blank lines are skipped.
func ReadAll(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	// Drop the torn tail: everything after the last newline is a partial
	// append whose transition never durably happened.
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		return nil, nil
	} else {
		data = data[:i+1]
	}
	var records [][]byte
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		records = append(records, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: scan %s: %w", path, err)
	}
	return records, nil
}

// Begin starts a fresh generation: a truncated file at path+".tmp" that
// receives appends until Seal renames it over path. The previous
// generation at path is left untouched until then, so the live state it
// records survives a crash mid-rebuild.
func Begin(path string) (*Journal, error) {
	f, err := os.OpenFile(path+".tmp", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: begin %s: %w", path, err)
	}
	return &Journal{path: path, f: f}, nil
}

// Append marshals v and writes it as one NDJSON line.
func (j *Journal) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.appends++
	return nil
}

// Appends returns the number of records appended to the current
// generation — the compaction trigger for callers that rewrite the journal
// once it has grown far past the live state it describes.
func (j *Journal) Appends() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Seal atomically renames the in-progress generation over the journal
// path. Appends continue to the same file descriptor — on POSIX the rename
// does not invalidate it — so Seal marks the moment the new generation
// becomes the journal, not the end of writing.
func (j *Journal) Seal() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if j.sealed {
		return nil
	}
	if err := os.Rename(j.path+".tmp", j.path); err != nil {
		return fmt.Errorf("journal: seal: %w", err)
	}
	j.sealed = true
	return nil
}

// Sealed reports whether the current generation has been renamed over the
// journal path — the precondition for Compact. Callers that may hold a
// never-sealed generation (e.g. a server torn down mid-startup) check this
// before compacting on shutdown.
func (j *Journal) Sealed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealed
}

// Compact replaces the journal's contents with exactly records: a fresh
// generation is written to the side, sealed, and becomes the append target.
// The journal must already be sealed — compacting an unsealed generation
// would discard the records that distinguish it from the previous one.
func (j *Journal) Compact(records []any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if !j.sealed {
		return errors.New("journal: compact before seal")
	}
	f, err := os.OpenFile(j.path+".tmp", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range records {
		data, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("journal: compact marshal: %w", err)
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("journal: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("journal: compact flush: %w", err)
	}
	if err := os.Rename(j.path+".tmp", j.path); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	old := j.f
	j.f = f
	j.appends = len(records)
	old.Close()
	return nil
}

// Close releases the file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal's final path.
func (j *Journal) Path() string { return j.path }
