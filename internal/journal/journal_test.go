package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

type rec struct {
	Op string `json:"op"`
	ID int    `json:"id"`
}

func readRecs(t *testing.T, path string) []rec {
	t.Helper()
	lines, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]rec, 0, len(lines))
	for _, l := range lines {
		var r rec
		if err := json.Unmarshal(l, &r); err != nil {
			t.Fatalf("bad record %q: %v", l, err)
		}
		out = append(out, r)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := Begin(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Seal(); err != nil {
		t.Fatal(err)
	}
	want := []rec{{"accept", 1}, {"start", 1}, {"terminal", 1}}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Appends(); got != 3 {
		t.Fatalf("Appends() = %d, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecs(t, path); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
}

func TestReadAllMissingFileIsEmpty(t *testing.T) {
	lines, err := ReadAll(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || lines != nil {
		t.Fatalf("missing journal: %v records, err %v", lines, err)
	}
}

// A crash mid-append leaves a torn final line; replay must discard it and
// keep every complete record before it.
func TestReadAllDiscardsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	body := `{"op":"accept","id":1}` + "\n" + `{"op":"start","id":1}` + "\n" + `{"op":"term`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	got := readRecs(t, path)
	want := []rec{{"accept", 1}, {"start", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay with torn tail = %v, want %v", got, want)
	}
	// A journal that is nothing but a torn line replays empty.
	if err := os.WriteFile(path, []byte(`{"op":"acc`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readRecs(t, path); len(got) != 0 {
		t.Fatalf("all-torn journal replayed %v", got)
	}
}

// Begin must leave the previous generation readable until Seal renames the
// new one over it — the crash-mid-rebuild guarantee.
func TestBeginPreservesPreviousGenerationUntilSeal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	if err := os.WriteFile(path, []byte(`{"op":"accept","id":7}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Begin(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{"accept", 8}); err != nil {
		t.Fatal(err)
	}
	// Before Seal: the old generation is what ReadAll sees.
	if got := readRecs(t, path); !reflect.DeepEqual(got, []rec{{"accept", 7}}) {
		t.Fatalf("pre-seal replay = %v, want the previous generation", got)
	}
	if err := j.Seal(); err != nil {
		t.Fatal(err)
	}
	// After Seal: the new generation took over, and appends keep landing in
	// it through the already-open descriptor.
	if err := j.Append(rec{"start", 8}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if got := readRecs(t, path); !reflect.DeepEqual(got, []rec{{"accept", 8}, {"start", 8}}) {
		t.Fatalf("post-seal replay = %v", got)
	}
}

func TestCompactReplacesContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := Begin(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(nil); err == nil {
		t.Fatal("Compact before Seal must fail")
	}
	if err := j.Seal(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(rec{"accept", i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]any{rec{"accept", 9}}); err != nil {
		t.Fatal(err)
	}
	if got := j.Appends(); got != 1 {
		t.Fatalf("Appends() after compact = %d, want 1", got)
	}
	// Appends continue into the compacted generation.
	if err := j.Append(rec{"terminal", 9}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if got := readRecs(t, path); !reflect.DeepEqual(got, []rec{{"accept", 9}, {"terminal", 9}}) {
		t.Fatalf("post-compact replay = %v", got)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := Begin(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Seal(); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(rec{"accept", w*per + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	got := readRecs(t, path)
	if len(got) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(got), writers*per)
	}
	seen := make(map[int]bool, len(got))
	for _, r := range got {
		if seen[r.ID] {
			t.Fatalf("record %d appeared twice (torn interleaved write?)", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := Begin(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Seal()
	j.Close()
	if err := j.Append(rec{"accept", 1}); err == nil {
		t.Fatal("append to closed journal succeeded")
	}
}
