// Package report turns a completed parameter sweep into the paper's
// figure-shaped tables: child aggregates pivoted onto the sweep's axes,
// one axis as rows, one as columns, every remaining axis collapsed into
// the cells (mean ± std across the collapsed grid points). The same
// Report renders as CSV (machine-readable, deterministic — suitable for
// byte-diffing across daemon restarts), JSON, or a plain-text table via
// the stats table renderer.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dualradio/internal/scenario"
	"dualradio/internal/stats"
)

// Metric names accepted by Options.Metric, in display order.
var metricNames = []string{
	"valid_fraction",
	"mean_rounds",
	"mean_decided_round",
	"p90_decided_round",
	"mean_size",
	"mean_latency",
}

// Metrics returns the selectable metric names.
func Metrics() []string {
	return append([]string(nil), metricNames...)
}

// metricValue extracts a metric from an aggregate. ok=false marks a metric
// the aggregate does not carry (e.g. decision latency for a run where no
// trial decided), so the cell can render empty instead of a fake zero.
func metricValue(a scenario.Aggregate, name string) (float64, bool) {
	switch name {
	case "valid_fraction":
		return a.ValidFraction, true
	case "mean_rounds":
		return a.MeanRounds, true
	case "mean_decided_round":
		return a.MeanDecidedRound, a.MeanDecidedRound != 0
	case "p90_decided_round":
		return a.P90DecidedRound, a.P90DecidedRound != 0
	case "mean_size":
		return a.MeanSize, true
	case "mean_latency":
		return a.MeanLatency, a.MeanLatency != 0
	}
	return 0, false
}

// Options selects what Build pivots.
type Options struct {
	// Metric is one of Metrics() (default "mean_rounds").
	Metric string
	// Rows and Cols name the axes to pivot onto. Defaults: the sweep's
	// first axis as rows and its second as columns; axes beyond those are
	// collapsed into the cells. The explicit value "-" pivots nothing onto
	// that dimension (collapsing the axis that would have been picked).
	Rows, Cols string
	// Present, when non-nil, masks which children carry aggregates (indexed
	// like exp.Children): grid points whose child is absent are skipped, so
	// their cells fold only the points that actually completed — possibly
	// rendering empty. This is how partial reports over still-running
	// sweeps stay honest. nil means every child is present.
	Present []bool
}

// Cell is one pivot cell: the metric over every grid point that maps to
// (row, col), collapsed across the non-pivot axes.
type Cell struct {
	// N counts the grid points carrying the metric (0 renders empty).
	N int `json:"n"`
	// Mean and Std summarize the metric across those points (Std is 0 for
	// a single point).
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// Report is a pivoted sweep: rows × cols of metric cells.
type Report struct {
	SweepHash string `json:"sweep_hash"`
	Name      string `json:"name,omitempty"`
	Metric    string `json:"metric"`
	// RowAxis/ColAxis name the pivoted axes ("" when the sweep has fewer
	// than one/two axes).
	RowAxis string `json:"row_axis,omitempty"`
	ColAxis string `json:"col_axis,omitempty"`
	// RowLabels and ColLabels are the axis values in sweep order.
	RowLabels []string `json:"rows"`
	ColLabels []string `json:"cols"`
	// Cells is indexed [row][col].
	Cells [][]Cell `json:"cells"`
}

// Build pivots a sweep's child aggregates onto its axes. aggs must be
// indexed like exp.Children (the grid-order child list); a sweep is
// reportable exactly when every child completed.
func Build(exp *scenario.Expansion, aggs []scenario.Aggregate, opts Options) (*Report, error) {
	if len(aggs) != len(exp.Children) {
		return nil, fmt.Errorf("report: %d aggregates for %d children", len(aggs), len(exp.Children))
	}
	if opts.Present != nil && len(opts.Present) != len(exp.Children) {
		return nil, fmt.Errorf("report: presence mask covers %d of %d children", len(opts.Present), len(exp.Children))
	}
	metric := opts.Metric
	if metric == "" {
		metric = "mean_rounds"
	}
	valid := false
	for _, m := range metricNames {
		if m == metric {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("report: unknown metric %q (want one of %s)", metric, strings.Join(metricNames, "|"))
	}
	rowDim, colDim, err := pickAxes(exp.Dims, opts.Rows, opts.Cols)
	if err != nil {
		return nil, err
	}
	r := &Report{
		SweepHash: exp.Hash(),
		Name:      exp.Spec.Name,
		Metric:    metric,
		RowLabels: []string{"all"},
		ColLabels: []string{metric},
	}
	if rowDim >= 0 {
		r.RowAxis = exp.Dims[rowDim].Name
		r.RowLabels = append([]string(nil), exp.Dims[rowDim].Labels...)
	}
	if colDim >= 0 {
		r.ColAxis = exp.Dims[colDim].Name
		r.ColLabels = append([]string(nil), exp.Dims[colDim].Labels...)
	}
	accs := make([][]*stats.Accumulator, len(r.RowLabels))
	for i := range accs {
		accs[i] = make([]*stats.Accumulator, len(r.ColLabels))
		for j := range accs[i] {
			accs[i][j] = stats.NewAccumulator()
		}
	}
	// Walk the full grid in odometer order (last axis fastest), mapping
	// every grid point to its pivot cell. Deduplicated grid points fold
	// their shared child's aggregate once per point, which keeps the pivot
	// faithful to the declared grid.
	coord := make([]int, len(exp.Dims))
	for _, ci := range exp.Grid {
		row, col := 0, 0
		if rowDim >= 0 {
			row = coord[rowDim]
		}
		if colDim >= 0 {
			col = coord[colDim]
		}
		if opts.Present == nil || opts.Present[ci] {
			if v, ok := metricValue(aggs[ci], metric); ok {
				accs[row][col].Add(v)
			}
		}
		for di := len(coord) - 1; di >= 0; di-- {
			coord[di]++
			if coord[di] < len(exp.Dims[di].Labels) {
				break
			}
			coord[di] = 0
		}
	}
	r.Cells = make([][]Cell, len(r.RowLabels))
	for i := range r.Cells {
		r.Cells[i] = make([]Cell, len(r.ColLabels))
		for j, acc := range accs[i] {
			r.Cells[i][j] = Cell{N: acc.Count(), Mean: acc.Mean(), Std: acc.Std()}
		}
	}
	return r, nil
}

// pickAxes resolves the row/column axis indices (-1 = no such axis).
func pickAxes(dims []scenario.Dim, rows, cols string) (int, int, error) {
	find := func(name string) (int, error) {
		for i, d := range dims {
			if d.Name == name {
				return i, nil
			}
		}
		var names []string
		for _, d := range dims {
			names = append(names, d.Name)
		}
		return -1, fmt.Errorf("report: sweep has no axis %q (axes: %s)", name, strings.Join(names, ", "))
	}
	rowDim, colDim := -1, -1
	var err error
	switch rows {
	case "-":
	case "":
		if len(dims) > 0 {
			rowDim = 0
		}
	default:
		if rowDim, err = find(rows); err != nil {
			return 0, 0, err
		}
	}
	switch cols {
	case "-":
	case "":
		for i := range dims {
			if i != rowDim {
				colDim = i
				break
			}
		}
	default:
		if colDim, err = find(cols); err != nil {
			return 0, 0, err
		}
	}
	if rowDim >= 0 && rowDim == colDim {
		return 0, 0, fmt.Errorf("report: rows and cols both pivot axis %q", dims[rowDim].Name)
	}
	return rowDim, colDim, nil
}

// cell formats a cell value deterministically: empty for no data, the bare
// mean for a single point, and mean±std once an axis was collapsed into it.
func (c Cell) String() string {
	if c.N == 0 {
		return ""
	}
	mean := strconv.FormatFloat(c.Mean, 'g', 6, 64)
	if c.N < 2 {
		return mean
	}
	return mean + "±" + strconv.FormatFloat(c.Std, 'g', 6, 64)
}

// header returns the corner label for the row-label column.
func (r *Report) header() string {
	if r.RowAxis == "" {
		return "sweep"
	}
	if r.ColAxis == "" {
		return r.RowAxis
	}
	return r.RowAxis + `\` + r.ColAxis
}

// WriteCSV renders the pivot as CSV: a header row of column labels, then
// one row per row label. The encoding is deterministic in the sweep and
// its results, so two reports over the same completed sweep — before and
// after a daemon restart — are byte-identical.
func (r *Report) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := make([]string, 0, len(r.ColLabels)+1)
	row = append(row, esc(r.header()))
	for _, c := range r.ColLabels {
		row = append(row, esc(c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
		return err
	}
	for i, label := range r.RowLabels {
		row = row[:0]
		row = append(row, esc(label))
		for _, c := range r.Cells[i] {
			row = append(row, esc(c.String()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders WriteCSV to a string.
func (r *Report) CSV() string {
	var sb strings.Builder
	_ = r.WriteCSV(&sb)
	return sb.String()
}

// Table renders the pivot through the stats plain-text table renderer.
func (r *Report) Table() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("sweep %s · %s", shortHash(r.SweepHash), r.Metric),
		Columns: append([]string{r.header()}, r.ColLabels...),
	}
	if r.Name != "" {
		t.Title = fmt.Sprintf("%s · %s (sweep %s)", r.Name, r.Metric, shortHash(r.SweepHash))
	}
	for i, label := range r.RowLabels {
		cells := make([]string, 0, len(r.Cells[i])+1)
		cells = append(cells, label)
		for _, c := range r.Cells[i] {
			if s := c.String(); s != "" {
				cells = append(cells, s)
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
