package report

import (
	"encoding/json"
	"strings"
	"testing"

	"dualradio/internal/scenario"
)

// misSweep is the golden fixture: the same 2×2 mis sweep shape the
// end-to-end restart check (scripts/sweep_e2e.sh) reports over.
func misSweep(t testing.TB) (*scenario.Expansion, []scenario.Aggregate) {
	t.Helper()
	sw := scenario.SweepSpec{
		Name: "mis-golden",
		Base: scenario.Spec{
			Algorithm:       scenario.AlgoMIS,
			Network:         scenario.NetworkSpec{N: 24},
			Trials:          2,
			StopWhenDecided: true,
		},
		Axes: scenario.SweepAxes{
			N:        &scenario.Axis{Values: []float64{16, 24}},
			GrayProb: &scenario.Axis{Values: []float64{0.1, 0.3}},
		},
	}
	exp, err := scenario.ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	aggs := make([]scenario.Aggregate, len(exp.Children))
	for i, c := range exp.Children {
		res, err := c.Run(nil, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		aggs[i] = res.Aggregate
	}
	return exp, aggs
}

// TestGoldenCSV locks the CSV rendering of a small mis sweep byte-for-byte:
// the simulation is deterministic in the specs, so this exact text must
// reproduce on every run, machine, and daemon restart.
func TestGoldenCSV(t *testing.T) {
	exp, aggs := misSweep(t)
	rep, err := Build(exp, aggs, Options{Metric: "mean_rounds"})
	if err != nil {
		t.Fatal(err)
	}
	golden := "n\\gray_prob,0.1,0.3\n" +
		"16,69,77\n" +
		"24,104,119\n"
	if got := rep.CSV(); got != golden {
		t.Fatalf("golden CSV drifted:\ngot:\n%swant:\n%s", got, golden)
	}
	valid, err := Build(exp, aggs, Options{Metric: "valid_fraction"})
	if err != nil {
		t.Fatal(err)
	}
	goldenValid := "n\\gray_prob,0.1,0.3\n" +
		"16,1,1\n" +
		"24,1,1\n"
	if got := valid.CSV(); got != goldenValid {
		t.Fatalf("golden valid_fraction CSV drifted:\ngot:\n%swant:\n%s", got, goldenValid)
	}
}

// TestPivotSelection: explicit rows/cols transpose the pivot, and "-"
// collapses an axis into mean±std cells.
func TestPivotSelection(t *testing.T) {
	exp, aggs := misSweep(t)
	transposed, err := Build(exp, aggs, Options{Metric: "mean_rounds", Rows: "gray_prob"})
	if err != nil {
		t.Fatal(err)
	}
	if transposed.RowAxis != "gray_prob" || transposed.ColAxis != "n" {
		t.Fatalf("transpose picked %q/%q", transposed.RowAxis, transposed.ColAxis)
	}
	if got := transposed.CSV(); got != "gray_prob\\n,16,24\n0.1,69,104\n0.3,77,119\n" {
		t.Fatalf("transposed CSV:\n%s", got)
	}

	collapsed, err := Build(exp, aggs, Options{Metric: "mean_rounds", Cols: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if collapsed.ColAxis != "" || len(collapsed.ColLabels) != 1 {
		t.Fatalf("collapsed report still has columns: %+v", collapsed)
	}
	for i, row := range collapsed.Cells {
		c := row[0]
		if c.N != 2 {
			t.Fatalf("row %d collapses %d points, want 2", i, c.N)
		}
		if c.Std == 0 {
			t.Fatalf("row %d: collapsing distinct gray_prob cells should produce a spread", i)
		}
		if !strings.Contains(c.String(), "±") {
			t.Fatalf("collapsed cell renders %q without ±", c.String())
		}
	}

	if _, err := Build(exp, aggs, Options{Metric: "mean_rounds", Rows: "tau"}); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if _, err := Build(exp, aggs, Options{Metric: "mean_rounds", Rows: "n", Cols: "n"}); err == nil {
		t.Fatal("rows == cols accepted")
	}
	if _, err := Build(exp, aggs, Options{Metric: "nope"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

// TestJSONAndTableRenderings: the JSON form round-trips and the table form
// goes through the stats renderer with every cell filled.
func TestJSONAndTableRenderings(t *testing.T) {
	exp, aggs := misSweep(t)
	rep, err := Build(exp, aggs, Options{Metric: "mean_size"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metric != "mean_size" || len(back.Cells) != 2 || len(back.Cells[0]) != 2 {
		t.Fatalf("JSON round trip lost shape: %+v", back)
	}
	tbl := rep.Table()
	for _, want := range []string{"mis-golden", "mean_size", "n\\gray_prob", "0.1", "0.3", "16", "24"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table lacks %q:\n%s", want, tbl)
		}
	}
}

// TestAxisFreeSweep: a sweep with no axes still reports (one cell).
func TestAxisFreeSweep(t *testing.T) {
	sw := scenario.SweepSpec{
		Base: scenario.Spec{
			Algorithm:       scenario.AlgoMIS,
			Network:         scenario.NetworkSpec{N: 16},
			Trials:          1,
			StopWhenDecided: true,
		},
	}
	exp, err := scenario.ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Children[0].Run(nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Build(exp, []scenario.Aggregate{res.Aggregate}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || len(rep.Cells[0]) != 1 || rep.Cells[0][0].N != 1 {
		t.Fatalf("axis-free report shape: %+v", rep)
	}
	if rep.Cells[0][0].Mean != res.Aggregate.MeanRounds {
		t.Fatalf("cell %v != aggregate mean rounds %v", rep.Cells[0][0].Mean, res.Aggregate.MeanRounds)
	}
}

// TestMissingMetricCellsRenderEmpty: a metric some children lack (decision
// latency for runs that never decide) yields empty cells, not zeros.
func TestMissingMetricCellsRenderEmpty(t *testing.T) {
	exp, aggs := misSweep(t)
	for i := range aggs {
		aggs[i].MeanLatency = 0 // mis runs carry no local latency
	}
	rep, err := Build(exp, aggs, Options{Metric: "mean_latency"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Cells {
		for _, c := range row {
			if c.N != 0 || c.String() != "" {
				t.Fatalf("missing metric rendered %+v", c)
			}
		}
	}
	if !strings.Contains(rep.Table(), "-") {
		t.Fatal("table should render empty cells as -")
	}
}

func BenchmarkBuildReport(b *testing.B) {
	// A full 512-child grid pivot: 8×8×8 axes collapsed onto two.
	var dims []scenario.Dim
	for _, name := range []string{"n", "gray_prob", "tau"} {
		d := scenario.Dim{Name: name}
		for i := 0; i < 8; i++ {
			d.Labels = append(d.Labels, string(rune('a'+i)))
		}
		dims = append(dims, d)
	}
	exp := &scenario.Expansion{Dims: dims}
	aggs := make([]scenario.Aggregate, 512)
	for i := range aggs {
		exp.Grid = append(exp.Grid, i)
		exp.Children = append(exp.Children, nil)
		aggs[i] = scenario.Aggregate{Trials: 5, MeanRounds: float64(i), MeanSize: float64(i % 7), ValidFraction: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(exp, aggs, Options{Metric: "mean_rounds"}); err != nil {
			b.Fatal(err)
		}
	}
}
