package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): for each family a # HELP line, a # TYPE line, then its
// sample lines. Families render in name order and series in label-value
// order, so successive scrapes of the same state are byte-identical and
// diffs between scrapes are line-stable. Histograms render cumulative
// _bucket series (ending in le="+Inf"), then _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	r.runCollect()
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if err := f.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeProm(w io.Writer) error {
	rows := f.rows()
	if len(rows) == 0 {
		return nil // a labeled family with no series yet renders nothing
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, row := range rows {
		switch f.kind {
		case KindHistogram:
			if err := f.writeHistogram(w, row); err != nil {
				return err
			}
		default:
			v := row.s.val.Load()
			if row.s.gaugeFn != nil {
				v = row.s.gaugeFn()
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.name, labelString(f.labels, row.s.labelValues, "", 0), formatValue(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *family) writeHistogram(w io.Writer, row seriesRow) error {
	cum := int64(0)
	for i, bound := range f.buckets {
		cum += row.s.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, row.s.labelValues, "le", bound), cum); err != nil {
			return err
		}
	}
	cum += row.s.counts[len(f.buckets)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelStringInf(f.labels, row.s.labelValues), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(f.labels, row.s.labelValues, "", 0), formatValue(row.s.sum.Load())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.name, labelString(f.labels, row.s.labelValues, "", 0), cum)
	return err
}

// seriesRow pairs a series with its sort key.
type seriesRow struct {
	key string
	s   *series
}

// rows snapshots the family's series sorted by label values.
func (f *family) rows() []seriesRow {
	f.mu.Lock()
	rows := make([]seriesRow, 0, len(f.order))
	for _, key := range f.order {
		rows = append(rows, seriesRow{key, f.series[key]})
	}
	f.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	return rows
}

// labelString renders {a="x",b="y"} with values escaped, appending an
// optional le bound for histogram buckets. Empty label sets (and no le)
// render as "".
func labelString(labels, values []string, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatValue(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func labelStringInf(labels, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if len(labels) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are legal).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatValue renders a sample value: integers without a decimal point,
// everything else in shortest round-trip form — matching what the
// hand-rolled gauge endpoint emitted before the registry existed.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot families for JSON health endpoints.
type (
	// FamilySnapshot is one family: its kind, help, and series.
	FamilySnapshot struct {
		Kind   Kind             `json:"kind"`
		Help   string           `json:"help,omitempty"`
		Series []SeriesSnapshot `json:"series"`
	}
	// SeriesSnapshot is one series' current value(s). Value is set for
	// counters and gauges; Count/Sum/Buckets for histograms (Buckets maps
	// upper bound → cumulative count, +Inf omitted since it equals Count).
	SeriesSnapshot struct {
		Labels  map[string]string `json:"labels,omitempty"`
		Value   *float64          `json:"value,omitempty"`
		Count   *int64            `json:"count,omitempty"`
		Sum     *float64          `json:"sum,omitempty"`
		Buckets map[string]int64  `json:"buckets,omitempty"`
	}
)

// Snapshot returns every family's current state keyed by name, for JSON
// rendering in /healthz. Collect hooks run first, so scrape-time gauges
// are fresh.
func (r *Registry) Snapshot() map[string]FamilySnapshot {
	r.runCollect()
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	out := make(map[string]FamilySnapshot, len(names))
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		rows := f.rows()
		if len(rows) == 0 {
			continue
		}
		fs := FamilySnapshot{Kind: f.kind, Help: f.help}
		for _, row := range rows {
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					ss.Labels[l] = row.s.labelValues[i]
				}
			}
			if f.kind == KindHistogram {
				h := Histogram{f, row.s}
				count, sum := h.Count(), h.Sum()
				ss.Count, ss.Sum = &count, &sum
				ss.Buckets = make(map[string]int64, len(f.buckets))
				cum := int64(0)
				for i, bound := range f.buckets {
					cum += row.s.counts[i].Load()
					ss.Buckets[formatValue(bound)] = cum
				}
			} else {
				v := row.s.val.Load()
				if row.s.gaugeFn != nil {
					v = row.s.gaugeFn()
				}
				ss.Value = &v
			}
			fs.Series = append(fs.Series, ss)
		}
		out[name] = fs
	}
	return out
}
