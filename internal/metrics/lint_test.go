package metrics

import (
	"strings"
	"testing"
)

const validPayload = `# HELP radiod_jobs Registered jobs.
# TYPE radiod_jobs gauge
radiod_jobs 3
# HELP radiod_cache_hits_total Cache hits.
# TYPE radiod_cache_hits_total counter
radiod_cache_hits_total{tier="lru"} 5
radiod_cache_hits_total{tier="store"} 2
# HELP radiod_job_duration_seconds Job wallclock.
# TYPE radiod_job_duration_seconds histogram
radiod_job_duration_seconds_bucket{preset="mis-quick",le="0.1"} 1
radiod_job_duration_seconds_bucket{preset="mis-quick",le="1"} 3
radiod_job_duration_seconds_bucket{preset="mis-quick",le="+Inf"} 4
radiod_job_duration_seconds_sum{preset="mis-quick"} 2.5
radiod_job_duration_seconds_count{preset="mis-quick"} 4
`

func TestLintAcceptsValidPayload(t *testing.T) {
	stats, err := Lint([]byte(validPayload))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Families != 3 || stats.Counters != 1 || stats.Gauges != 1 || stats.Histograms != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Series != 4 { // 1 gauge + 2 counter series + 1 histogram series
		t.Fatalf("series %d, want 4", stats.Series)
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]struct {
		payload string
		wantErr string
	}{
		"sample before TYPE": {
			payload: "radiod_jobs 3\n",
			wantErr: "before any TYPE",
		},
		"TYPE without HELP": {
			payload: "# TYPE x gauge\nx 1\n",
			wantErr: "precedes its HELP",
		},
		"interleaved families": {
			payload: "# HELP a h\n# TYPE a gauge\na 1\n# HELP b h\n# TYPE b gauge\nb 1\na 2\n",
			wantErr: "outside its family block",
		},
		"duplicate series": {
			payload: "# HELP a h\n# TYPE a counter\na{k=\"v\"} 1\na{k=\"v\"} 2\n",
			wantErr: "duplicate series",
		},
		"histogram without +Inf": {
			payload: "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			wantErr: `lacks le="+Inf"`,
		},
		"histogram without sum": {
			payload: "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			wantErr: "lacks _sum",
		},
		"histogram count mismatch": {
			payload: "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
			wantErr: "!= count",
		},
		"non-cumulative buckets": {
			payload: "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			wantErr: "decreases",
		},
		"bucket without le": {
			payload: "# HELP h h\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			wantErr: "lacks an le label",
		},
		"bad escape": {
			payload: "# HELP a h\n# TYPE a counter\na{k=\"\\x\"} 1\n",
			wantErr: "invalid escape",
		},
		"unterminated label value": {
			payload: "# HELP a h\n# TYPE a counter\na{k=\"v} 1\n",
			wantErr: "unterminated",
		},
		"bad value": {
			payload: "# HELP a h\n# TYPE a gauge\na xyz\n",
			wantErr: "bad sample value",
		},
		"empty payload": {
			payload: "",
			wantErr: "no metric families",
		},
		"reopened family": {
			payload: "# HELP a h\n# TYPE a gauge\na 1\n# HELP b h\n# TYPE b gauge\nb 1\n# HELP a h\n# TYPE a gauge\n",
			wantErr: "duplicate HELP",
		},
	}
	for name, tc := range cases {
		_, err := Lint([]byte(tc.payload))
		if err == nil {
			t.Fatalf("%s: lint accepted bad payload", name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

// TestLintDecodesEscapes: escaped label values parse back to their raw
// form and round-trip through EscapeLabelValue.
func TestLintDecodesEscapes(t *testing.T) {
	raw := "a\\b\"c\nd"
	payload := "# HELP a h\n# TYPE a counter\na{k=\"" + EscapeLabelValue(raw) + "\"} 1\n"
	if _, err := Lint([]byte(payload)); err != nil {
		t.Fatalf("escaped payload rejected: %v", err)
	}
	_, labels, _, _, _, err := parseSample("a{k=\"" + EscapeLabelValue(raw) + "\"} 1")
	if err != nil {
		t.Fatal(err)
	}
	if labels != "k="+raw {
		t.Fatalf("decoded labels %q, want %q", labels, "k="+raw)
	}
}
