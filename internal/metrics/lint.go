package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintStats summarizes a linted exposition payload.
type LintStats struct {
	Families   int
	Counters   int
	Gauges     int
	Histograms int
	Series     int // distinct (name, labels) sample series
}

// Lint parses a Prometheus text exposition payload and enforces the
// contract WriteProm promises (and scrapers assume):
//
//   - every sample belongs to a family announced by a preceding # HELP and
//     # TYPE pair, and families do not interleave;
//   - metric and label names are well-formed, label values are properly
//     escaped, and no series appears twice;
//   - histograms are complete and coherent: cumulative buckets are
//     non-decreasing, the +Inf bucket is present and equals _count, and
//     _sum / _count accompany every series.
//
// It returns the payload's stats so callers can additionally assert shape
// (e.g. "at least 3 histograms"). It is used by the registry's own tests
// and by the e2e scripts to lint live /metrics output.
func Lint(data []byte) (LintStats, error) {
	var stats LintStats
	type histSeries struct {
		buckets map[float64]int64
		sum     *float64
		count   *int64
	}
	var (
		curName string // current family, "" before the first
		curKind Kind
		helped  = map[string]bool{}
		typed   = map[string]Kind{}
		closed  = map[string]bool{} // families that may not reappear
		seen    = map[string]bool{} // full series keys
		hists   = map[string]*histSeries{}
	)
	finishFamily := func() error {
		if curName == "" || curKind != KindHistogram {
			return nil
		}
		prefix := curName + "\xff"
		found := false
		for key, hs := range hists {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			found = true
			if hs.sum == nil {
				return fmt.Errorf("histogram %s series %q lacks _sum", curName, key)
			}
			if hs.count == nil {
				return fmt.Errorf("histogram %s series %q lacks _count", curName, key)
			}
			inf, ok := hs.buckets[inf()]
			if !ok {
				return fmt.Errorf("histogram %s series %q lacks le=\"+Inf\" bucket", curName, key)
			}
			if inf != *hs.count {
				return fmt.Errorf("histogram %s series %q: +Inf bucket %d != count %d", curName, key, inf, *hs.count)
			}
			bounds := make([]float64, 0, len(hs.buckets))
			for b := range hs.buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			last := int64(-1)
			for _, b := range bounds {
				if hs.buckets[b] < last {
					return fmt.Errorf("histogram %s series %q: bucket le=%q count %d decreases", curName, key, formatValue(b), hs.buckets[b])
				}
				last = hs.buckets[b]
			}
		}
		if !found {
			return fmt.Errorf("histogram %s has no _bucket series", curName)
		}
		return nil
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !nameRe.MatchString(name) {
				return stats, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					return stats, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helped[name] = true
			case "TYPE":
				if len(fields) < 4 {
					return stats, fmt.Errorf("line %d: TYPE %s lacks a type", lineNo, name)
				}
				kind := Kind(fields[3])
				if kind != KindCounter && kind != KindGauge && kind != KindHistogram {
					return stats, fmt.Errorf("line %d: unknown type %q for %s", lineNo, fields[3], name)
				}
				if !helped[name] {
					return stats, fmt.Errorf("line %d: TYPE %s precedes its HELP", lineNo, name)
				}
				if _, dup := typed[name]; dup {
					return stats, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if closed[name] {
					return stats, fmt.Errorf("line %d: family %s reopened (interleaved families)", lineNo, name)
				}
				if err := finishFamily(); err != nil {
					return stats, err
				}
				if curName != "" {
					closed[curName] = true
				}
				typed[name] = kind
				curName, curKind = name, kind
				stats.Families++
				switch kind {
				case KindCounter:
					stats.Counters++
				case KindGauge:
					stats.Gauges++
				case KindHistogram:
					stats.Histograms++
				}
			}
			continue
		}
		name, labels, leVal, hasLE, value, err := parseSample(line)
		if err != nil {
			return stats, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if curName == "" {
			return stats, fmt.Errorf("line %d: sample %s before any TYPE line", lineNo, name)
		}
		base := name
		suffix := ""
		if curKind == KindHistogram {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && strings.TrimSuffix(name, sfx) == curName {
					base, suffix = curName, sfx
					break
				}
			}
		}
		if base != curName {
			return stats, fmt.Errorf("line %d: sample %s outside its family block (current family %s)", lineNo, name, curName)
		}
		if curKind == KindHistogram && suffix == "" {
			return stats, fmt.Errorf("line %d: bare sample %s in histogram family", lineNo, name)
		}
		if suffix == "_bucket" && !hasLE {
			return stats, fmt.Errorf("line %d: %s lacks an le label", lineNo, name)
		}
		if suffix != "_bucket" && hasLE {
			return stats, fmt.Errorf("line %d: %s carries an le label", lineNo, name)
		}
		seriesKey := base + "\xff" + labels
		fullKey := name + "\xff" + labels + "\xff" + leVal
		if seen[fullKey] {
			return stats, fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, name, labels)
		}
		seen[fullKey] = true
		if curKind == KindHistogram {
			hs := hists[seriesKey]
			if hs == nil {
				hs = &histSeries{buckets: map[float64]int64{}}
				hists[seriesKey] = hs
				stats.Series++
			}
			switch suffix {
			case "_bucket":
				bound, err := parseLE(leVal)
				if err != nil {
					return stats, fmt.Errorf("line %d: %v", lineNo, err)
				}
				hs.buckets[bound] = int64(value)
			case "_sum":
				v := value
				hs.sum = &v
			case "_count":
				c := int64(value)
				hs.count = &c
			}
		} else {
			stats.Series++
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if err := finishFamily(); err != nil {
		return stats, err
	}
	if stats.Families == 0 {
		return stats, fmt.Errorf("no metric families found")
	}
	return stats, nil
}

func inf() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return inf(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// parseSample parses one exposition sample line into its metric name, a
// canonical label string (le excluded), the le value if present, and the
// sample value. Escapes in label values are validated and decoded.
func parseSample(line string) (name, labels, leVal string, hasLE bool, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if space < 0 {
		return "", "", "", false, 0, fmt.Errorf("sample %q lacks a value", line)
	}
	if brace >= 0 && brace < space {
		name = rest[:brace]
		end, pairs, perr := parseLabels(rest[brace:])
		if perr != nil {
			return "", "", "", false, 0, perr
		}
		var kept []string
		for _, p := range pairs {
			if p[0] == "le" {
				leVal, hasLE = p[1], true
				continue
			}
			if !labelRe.MatchString(p[0]) {
				return "", "", "", false, 0, fmt.Errorf("bad label name %q", p[0])
			}
			kept = append(kept, p[0]+"="+p[1])
		}
		labels = strings.Join(kept, ",")
		rest = rest[brace+end:]
	} else {
		name = rest[:space]
		rest = rest[space:]
	}
	if !nameRe.MatchString(name) {
		return "", "", "", false, 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", "", false, 0, fmt.Errorf("sample %q has %d value fields", line, len(fields))
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", "", false, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	return name, labels, leVal, hasLE, value, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{'. It
// returns the index just past the closing brace and the decoded pairs.
func parseLabels(s string) (int, [][2]string, error) {
	i := 1
	var pairs [][2]string
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, pairs, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("invalid escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return 0, nil, fmt.Errorf("raw newline in label value in %q", s)
			}
			val.WriteByte(c)
			i++
		}
		pairs = append(pairs, [2]string{key, val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
