package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value %v, want 3", got)
	}
	g := r.Gauge("depth", "Queue depth.")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value %v, want 3", got)
	}
	r.GaugeFunc("live", "Computed at scrape.", func() float64 { return 42 })
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"requests_total 3\n", "depth 3\n", "live 42\n"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition lacks %q:\n%s", want, b.String())
		}
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ups_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	c.Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if h.Sum() != 55.65 {
		t.Fatalf("sum %v, want 55.65", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	// Bucket bounds are inclusive: 0.1 lands in le="0.1".
	want := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 55.65
lat_seconds_count 5
`
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestExpositionGolden locks the full multi-family output format: HELP and
// TYPE headers, name-sorted families, label-sorted series, escaping, and
// the histogram block shape.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.CounterVec("jobs_total", "Jobs by outcome.", "outcome")
	jobs.With("done").Add(4)
	jobs.With("failed").Inc()
	r.Gauge("alpha", "Sorted first despite late registration.").Set(1)
	esc := r.CounterVec("esc_total", "Escaping.", "path")
	esc.With("a\\b\"c\nd").Inc()
	h := r.HistogramVec("dur_seconds", "Durations.", []float64{0.5}, "preset")
	h.With("mis-quick").Observe(0.25)
	h.With("mis-quick").Observe(2)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha Sorted first despite late registration.
# TYPE alpha gauge
alpha 1
# HELP dur_seconds Durations.
# TYPE dur_seconds histogram
dur_seconds_bucket{preset="mis-quick",le="0.5"} 1
dur_seconds_bucket{preset="mis-quick",le="+Inf"} 2
dur_seconds_sum{preset="mis-quick"} 2.25
dur_seconds_count{preset="mis-quick"} 2
# HELP esc_total Escaping.
# TYPE esc_total counter
esc_total{path="a\\b\"c\nd"} 1
# HELP jobs_total Jobs by outcome.
# TYPE jobs_total counter
jobs_total{outcome="done"} 4
jobs_total{outcome="failed"} 1
`
	if b.String() != want {
		t.Fatalf("golden mismatch:\n%s\nwant:\n%s", b.String(), want)
	}
	// The golden output must also satisfy the lint contract.
	stats, err := Lint([]byte(b.String()))
	if err != nil {
		t.Fatalf("golden output fails lint: %v", err)
	}
	if stats.Histograms != 1 || stats.Counters != 2 || stats.Gauges != 1 {
		t.Fatalf("lint stats %+v", stats)
	}
	// Rendering twice is byte-identical (stable line order).
	var b2 strings.Builder
	if err := r.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("two renders of identical state differ")
	}
}

// TestSeriesCap: past the cap, new label sets collapse onto the overflow
// series instead of growing the family, and the drops are counted.
func TestSeriesCap(t *testing.T) {
	r := NewRegistry()
	r.SeriesCap = 3
	v := r.CounterVec("churn_total", "Worker churn.", "worker")
	v.With("w1").Inc()
	v.With("w2").Inc()
	v.With("w3").Inc()
	v.With("w4").Inc() // over cap: overflow
	v.With("w5").Inc() // over cap: same overflow series
	v.With("w1").Inc() // existing series still fine
	if got := r.DroppedSeries(); got != 2 {
		t.Fatalf("dropped series %d, want 2", got)
	}
	if got := v.With("_overflow").Value(); got != 2 {
		t.Fatalf("overflow series value %v, want 2", got)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "w4") || strings.Contains(b.String(), "w5") {
		t.Fatalf("capped series leaked into exposition:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `churn_total{worker="_overflow"} 2`) {
		t.Fatalf("no overflow series in exposition:\n%s", b.String())
	}
}

// TestConcurrentObserves hammers one histogram and one counter vec from
// many goroutines — the -race check that instruments are lock-free-safe
// and the totals add up.
func TestConcurrentObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{0.001, 0.01, 0.1, 1})
	v := r.CounterVec("ops_total", "ops", "kind")
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 100)
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count %d, want %d", got, goroutines*perG)
	}
	total := v.With("a").Value() + v.With("b").Value() + v.With("c").Value()
	if total != goroutines*perG {
		t.Fatalf("counter total %v, want %d", total, goroutines*perG)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := Lint([]byte(b.String())); err != nil {
		t.Fatalf("post-hammer exposition fails lint: %v", err)
	}
}

func TestGaugeVecResetAndCollect(t *testing.T) {
	r := NewRegistry()
	hb := r.GaugeVec("hb_age_seconds", "Heartbeat age.", "worker")
	live := []string{"w1", "w2"}
	r.OnCollect(func() {
		hb.Reset()
		for _, w := range live {
			hb.With(w).Set(1.5)
		}
	})
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `hb_age_seconds{worker="w2"} 1.5`) {
		t.Fatalf("collect hook did not populate gauges:\n%s", b.String())
	}
	live = []string{"w2"}
	b.Reset()
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `worker="w1"`) {
		t.Fatalf("reset did not drop the dead worker's series:\n%s", b.String())
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	for name, fn := range map[string]func(){
		"kind conflict":  func() { r.Gauge("x_total", "h") },
		"invalid name":   func() { r.Counter("0bad", "h") },
		"invalid label":  func() { r.CounterVec("y_total", "h", "le") },
		"empty buckets":  func() { r.Histogram("z_seconds", "h", nil) },
		"inf bucket":     func() { r.Histogram("w_seconds", "h", []float64{1, inf()}) },
		"unsorted":       func() { r.Histogram("v_seconds", "h", []float64{2, 1}) },
		"label arity":    func() { r.CounterVec("a_total", "h", "k").With("x", "y") },
		"schema changed": func() { r.CounterVec("x_total", "h", "k") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(7)
	h := r.Histogram("h_seconds", "h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	snap := r.Snapshot()
	c := snap["c_total"]
	if c.Kind != KindCounter || *c.Series[0].Value != 7 {
		t.Fatalf("counter snapshot %+v", c)
	}
	hs := snap["h_seconds"]
	if *hs.Series[0].Count != 2 || *hs.Series[0].Sum != 5.5 {
		t.Fatalf("histogram snapshot %+v", hs.Series[0])
	}
	if hs.Series[0].Buckets["1"] != 1 || hs.Series[0].Buckets["10"] != 2 {
		t.Fatalf("histogram buckets %+v", hs.Series[0].Buckets)
	}
}
