// Package metrics is a dependency-free instrumentation registry for the
// simulation service: counters, gauges, and fixed-bucket histograms, each
// optionally labeled, rendered in the Prometheus text exposition format
// (with # HELP / # TYPE headers, escaped label values, and a stable line
// order) and snapshottable as JSON for health endpoints.
//
// The paper's algorithms are randomized — decision rounds, broadcast
// counts, and therefore wallclock are distributions, not points — so the
// histogram is the primary instrument: per-preset latency distributions
// answer "where does a job's time go?" in a way a gauge never can.
//
// Concurrency: every instrument is safe for concurrent use (atomic
// counters and bucket cells); registration and label-set creation take the
// registry lock. Label cardinality is bounded per labeled family by
// Registry.SeriesCap — once a family holds that many series, further label
// combinations collapse onto a shared overflow series labeled "_overflow"
// instead of growing without bound (a fleet with worker churn must not
// leak a series per dead worker name), and the registry counts the drops.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultSeriesCap bounds the label-set cardinality of one labeled family
// unless the registry overrides it.
const DefaultSeriesCap = 256

// overflowLabel is the label value every rejected label combination
// collapses onto once a family reaches its series cap.
const overflowLabel = "_overflow"

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Kind is an instrument family's type, named as the exposition format
// spells it.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds instrument families and renders them. Construct with
// NewRegistry; the zero value is not usable.
type Registry struct {
	// SeriesCap bounds each labeled family's series count (applied at
	// family creation; default DefaultSeriesCap). Set it before creating
	// vecs.
	SeriesCap int

	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; rendering sorts a copy
	collect  []func() // run before every render/snapshot
	dropped  atomic.Int64
}

// family is one named metric: a fixed kind, help text, label schema, and
// its series (one for the unlabeled case).
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // nil for unlabeled
	buckets []float64 // histograms only; ascending, without +Inf
	cap     int

	mu     sync.Mutex
	series map[string]*series // keyed by joined label values
	order  []string
}

// series is one (labelValues, value) cell. Counter and gauge use val;
// histograms use counts/sum.
type series struct {
	labelValues []string
	val         atomicFloat
	counts      []atomic.Int64 // per bucket, non-cumulative; last = +Inf
	sum         atomicFloat
	gaugeFn     func() float64 // callback gauges
}

// atomicFloat is a float64 with atomic add/store via bit casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}
func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{SeriesCap: DefaultSeriesCap, families: make(map[string]*family)}
}

// DroppedSeries returns how many instrument acquisitions were collapsed
// onto an overflow series because their family hit its cardinality cap.
func (r *Registry) DroppedSeries() int64 { return r.dropped.Load() }

// OnCollect registers a hook run before every render and snapshot —
// the place to refresh gauges computed from external state (queue depths,
// per-worker heartbeat ages) at scrape time rather than on every change.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

func (r *Registry) runCollect() {
	r.mu.Lock()
	hooks := append([]func(){}, r.collect...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// register creates or fetches a family, enforcing one kind per name. A
// name or schema conflict panics: instrument registration is programmer
// error territory, exactly like prometheus/client_golang.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q re-registered with a different schema", name))
		}
		return f
	}
	cap := r.SeriesCap
	if cap <= 0 {
		cap = DefaultSeriesCap
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		cap:     cap,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// seriesFor fetches or creates the series for the given label values,
// collapsing onto the overflow series past the family cap.
func (f *family) seriesFor(r *Registry, values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.series) >= f.cap {
		r.dropped.Add(1)
		over := make([]string, len(f.labels))
		for i := range over {
			over[i] = overflowLabel
		}
		okey := strings.Join(over, "\xff")
		if s, ok := f.series[okey]; ok {
			return s
		}
		s := f.newSeries(over)
		f.series[okey] = s
		f.order = append(f.order, okey)
		return s
	}
	s := f.newSeries(append([]string(nil), values...))
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func (f *family) newSeries(values []string) *series {
	s := &series{labelValues: values}
	if f.kind == KindHistogram {
		s.counts = make([]atomic.Int64, len(f.buckets)+1) // +Inf cell last
	}
	return s
}

// Counter is a monotonically increasing count.
type Counter struct{ s *series }

// Inc adds 1.
func (c Counter) Inc() { c.s.val.Add(1) }

// Add adds d (negative deltas panic — counters only go up).
func (c Counter) Add(d float64) {
	if d < 0 {
		panic("metrics: counter decrease")
	}
	c.s.val.Add(d)
}

// Value returns the current count.
func (c Counter) Value() float64 { return c.s.val.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g Gauge) Set(v float64) { g.s.val.Store(v) }

// Add adds d.
func (g Gauge) Add(d float64) { g.s.val.Add(d) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.s.val.Load() }

// Histogram is a fixed-bucket distribution: counts per upper bound plus a
// sum, rendered cumulatively with a +Inf bucket.
type Histogram struct {
	f *family
	s *series
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.s.counts[i].Add(1)
	h.s.sum.Add(v)
}

// Count returns the total number of observations.
func (h Histogram) Count() int64 {
	var n int64
	for i := range h.s.counts {
		n += h.s.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h Histogram) Sum() float64 { return h.s.sum.Load() }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return Counter{f.seriesFor(r, nil)}
}

// Gauge registers (or fetches) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return Gauge{f.seriesFor(r, nil)}
}

// GaugeFunc registers a gauge whose value is computed by fn at every
// render and snapshot — for instantaneous values derived from live state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	s := f.seriesFor(r, nil)
	s.gaugeFn = fn
}

// Histogram registers (or fetches) an unlabeled histogram over the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	checkBuckets(name, buckets)
	f := r.register(name, help, KindHistogram, nil, buckets)
	return Histogram{f, f.seriesFor(r, nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r, r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (v CounterVec) With(values ...string) Counter {
	return Counter{v.f.seriesFor(v.r, values)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r, r.register(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge {
	return Gauge{v.f.seriesFor(v.r, values)}
}

// Reset drops every series in the family — for scrape-time gauges whose
// label population changes (e.g. the live-worker set), refreshed by an
// OnCollect hook.
func (v GaugeVec) Reset() {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	v.f.series = make(map[string]*series)
	v.f.order = nil
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec registers a labeled histogram family over the given bucket
// upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	checkBuckets(name, buckets)
	return HistogramVec{r, r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f, v.f.seriesFor(v.r, values)}
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic(fmt.Sprintf("metrics: histogram %q must not include +Inf explicitly", name))
	}
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default duration histogram: 1ms to ~2 minutes in
// ×2 steps (18 buckets), in seconds.
var LatencyBuckets = ExpBuckets(0.001, 2, 18)
