package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose per-iteration output feeds
// something order-sensitive in the same function: a JSON marshal or encode,
// a hash write, a journal append or store put, or an append to a slice
// declared outside the loop that the function never sorts afterwards. Map
// iteration order is deliberately randomized by the runtime, so any of
// those sinks makes output bytes differ run to run — breaking canonical
// hashes, byte-identical cached results, and journal replay.
//
// The canonical fix — collect keys, sort, iterate the sorted slice — is
// recognized and not flagged: an append to an outer slice is fine when a
// sort.* or slices.* call over that slice appears later in the function.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding JSON, hashes, journal/store writes, or " +
		"unsorted slice accumulation; map order is nondeterministic",
	Keys: []string{"maporder"},
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMaporder(pass, fd.Body)
		}
	}
}

func checkFuncMaporder(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isMapRange(pass.Info, r) {
			ranges = append(ranges, r)
		}
		return true
	})
	for _, r := range ranges {
		checkMapRange(pass, body, r)
	}
}

func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange scans one map-range body for order-sensitive sinks and for
// appends to slices declared outside the loop; the latter are fine only if
// the enclosing function sorts the slice somewhere.
func checkMapRange(pass *Pass, fnBody *ast.BlockStmt, r *ast.RangeStmt) {
	type pendingAppend struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var appends []pendingAppend
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := FuncOf(pass.Info, n.Fun); fn != nil {
				if sink := orderSink(fn); sink != "" {
					pass.Reportf(n.Pos(),
						"%s inside range over a map: iteration order is nondeterministic, so the emitted bytes differ run to run; iterate sorted keys instead",
						sink)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				// Appends to loop-local slices are harmless: whatever is
				// accumulated dies (or is sorted) within one iteration.
				if obj.Pos() >= r.Pos() && obj.Pos() <= r.End() {
					continue
				}
				appends = append(appends, pendingAppend{obj: obj, call: call})
			}
		}
		return true
	})
	for _, a := range appends {
		if sortedLater(pass, fnBody, a.obj) {
			continue
		}
		pass.Reportf(a.call.Pos(),
			"append to %q inside range over a map with no later sort: element order is nondeterministic; sort %q before it feeds anything order-sensitive",
			a.obj.Name(), a.obj.Name())
	}
}

// orderSink classifies calls whose byte output depends on argument order:
// JSON marshalling, hashing, and the durability layer.
func orderSink(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "encoding/json":
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode":
			return "json." + fn.Name()
		}
	case path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/"):
		return path + "." + fn.Name() + " (hashing)"
	case durabilityTarget(fn):
		return fn.Pkg().Name() + "." + fn.Name() + " (durability write)"
	}
	return ""
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedLater reports whether the function body contains a sort.* or
// slices.* call that mentions obj — the collect-then-sort idiom that makes
// accumulating from a map range deterministic.
func sortedLater(pass *Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := FuncOf(pass.Info, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
