package analysis_test

import (
	"testing"

	"dualradio/internal/analysis"
	"dualradio/internal/analysis/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysis.Walltime, "testdata/walltime")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, analysis.Globalrand, "testdata/globalrand")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysis.Maporder, "testdata/maporder")
}

func TestJournalerr(t *testing.T) {
	analysistest.Run(t, analysis.Journalerr, "testdata/journalerr")
}

func TestHashneutral(t *testing.T) {
	analysistest.Run(t, analysis.Hashneutral, "testdata/hashneutral")
}
