package analysis

import (
	"go/ast"
	"strings"
)

// Globalrand forbids the package-level math/rand and math/rand/v2
// convenience functions (rand.IntN, rand.Float64, rand.Shuffle, …)
// everywhere: they draw from a process-global generator seeded outside the
// spec, so two runs of the same (spec, seed) would diverge. Constructors
// (rand.New, rand.NewPCG, rand.NewChaCha8, rand.NewZipf, rand.NewSource)
// and methods on an explicit *rand.Rand are fine — that is exactly the
// discipline the repo already follows: every consumer threads a seeded
// *rand.Rand or PCG stream derived from the spec seed.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand[/v2] functions; randomness must flow " +
		"from a seeded *rand.Rand derived from the spec seed",
	Keys: []string{"globalrand"},
	Run:  runGlobalrand,
}

func runGlobalrand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := FuncOf(pass.Info, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig := fn.Signature(); sig != nil && sig.Recv() != nil {
				return true // methods on an explicit generator are the sanctioned form
			}
			if strings.HasPrefix(fn.Name(), "New") {
				return true // constructors produce the explicit generator
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global generator; thread a seeded *rand.Rand (or PCG stream) derived from the spec seed instead",
				fn.Name())
			return true
		})
	}
}
