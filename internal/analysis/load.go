package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed, and type-checked package ready for
// analysis. Only the packages matched by the Load patterns are represented;
// their dependencies are imported from compiler export data and never
// parsed.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists the pattern-matched packages (plus their dependency closure
// for export data) with the go tool, parses and type-checks the matched
// packages, and returns them ready for Analyze. Test files are not listed
// by `go list`'s GoFiles and are deliberately out of scope: tests may
// legitimately read wallclocks and range over maps.
//
// Type information comes from the same compiler export data `go build`
// produces, read with the standard library's gc importer, so Load needs no
// dependencies beyond the go tool itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := map[string]string{} // import path (as written) -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Vendored or otherwise remapped imports resolve through ImportMap;
		// alias the source spelling to the resolved package's export data.
		for src, resolved := range p.ImportMap {
			if e, ok := exports[resolved]; ok {
				exports[src] = e
			}
		}
		if !p.DepOnly && p.Name != "" && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: unsafeAware{imp}}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// unsafeAware resolves the pseudo-package "unsafe", which has no export
// data, before delegating to the gc export-data importer.
type unsafeAware struct{ types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.Importer.Import(path)
}
