package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Journalerr requires the error of every durability-critical call —
// journal.Append, journal.Seal, journal.Compact, store.Put — to be
// checked. These calls are the crash-safety contract: a dropped Append
// error means a job the journal replay will never re-admit, a dropped Put
// error a result the next restart silently recomputes. Discarding the
// error with `_` counts as unchecked, as do `go` and `defer` statements
// (their error has nowhere to go).
var Journalerr = &Analyzer{
	Name: "journalerr",
	Doc: "require the error of journal.Append/Seal/Compact and store.Put to be " +
		"checked; dropped durability errors break crash-safe replay",
	Keys: []string{"journalerr"},
	Run:  runJournalerr,
}

// durabilityTarget reports whether fn is one of the journal/store calls
// whose error the analyzer guards. Matching is by defining package path
// suffix plus name, so the check is typo-proof against unrelated methods
// that happen to share a name (e.g. slices.Compact).
func durabilityTarget(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch path := fn.Pkg().Path(); {
	case strings.HasSuffix(path, "internal/journal"):
		switch fn.Name() {
		case "Append", "Seal", "Compact":
			return true
		}
	case strings.HasSuffix(path, "internal/store"):
		return fn.Name() == "Put"
	}
	return false
}

func runJournalerr(pass *Pass) {
	describe := func(call *ast.CallExpr) (*types.Func, bool) {
		fn := FuncOf(pass.Info, call.Fun)
		return fn, durabilityTarget(fn)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if fn, hit := describe(call); hit {
						pass.Reportf(call.Pos(),
							"error of %s.%s is unchecked; a dropped durability error breaks crash-safe replay",
							fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.GoStmt:
				if fn, hit := describe(n.Call); hit {
					pass.Reportf(n.Call.Pos(),
						"error of %s.%s is unchecked in go statement", fn.Pkg().Name(), fn.Name())
				}
			case *ast.DeferStmt:
				if fn, hit := describe(n.Call); hit {
					pass.Reportf(n.Call.Pos(),
						"error of %s.%s is unchecked in defer statement", fn.Pkg().Name(), fn.Name())
				}
			case *ast.AssignStmt:
				checkAssign(pass, n, describe)
			}
			return true
		})
	}
}

// checkAssign flags durability calls whose error lands in a blank
// identifier, in both the 1:1 form `_ = j.Append(v)` and the tuple form
// `v, _ := store.Get(...)`-style assignments where the error result's slot
// is blank.
func checkAssign(pass *Pass, n *ast.AssignStmt, describe func(*ast.CallExpr) (*types.Func, bool)) {
	report := func(call *ast.CallExpr, fn *types.Func) {
		pass.Reportf(call.Pos(),
			"error of %s.%s is discarded with _; a dropped durability error breaks crash-safe replay",
			fn.Pkg().Name(), fn.Name())
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple assignment from one multi-result call: the error is by
		// convention the final result.
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
			if fn, hit := describe(call); hit && isBlank(n.Lhs[len(n.Lhs)-1]) {
				report(call, fn)
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fn, hit := describe(call); hit && isBlank(n.Lhs[i]) {
				report(call, fn)
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
