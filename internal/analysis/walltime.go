package analysis

import (
	"go/ast"
)

// walltimeForbidden are the package-level time functions that read the
// wallclock. Timer and ticker constructors (time.After, time.NewTicker,
// time.AfterFunc, time.Sleep) are scheduling, not data: they decide when
// code runs, never what it computes, so they are left to review. time.Tick
// is included because its channel delivers wallclock Time values.
var walltimeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
}

// Walltime forbids wallclock reads: every simulation, reduction, hash, and
// report must be a pure function of (spec, seed), so time.Now and friends
// may appear only at observability-only call sites that carry an explicit
// //detvet:wallclock <reason> annotation (event timestamps, latency
// histograms, calibration — all excluded from canonical hashes and replay).
// References to the functions as values (e.g. an injectable `now: time.Now`
// clock default) are flagged the same as calls: the value read is what
// matters, not the call syntax.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid wallclock reads (time.Now/Since/Until/Tick) outside annotated " +
		"observability sites; deterministic code is a pure function of (spec, seed)",
	Keys: []string{"wallclock"},
	Run:  runWalltime,
}

func runWalltime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := FuncOf(pass.Info, sel)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !walltimeForbidden[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wallclock: deterministic code must be a pure function of (spec, seed); annotate observability-only sites with //detvet:wallclock <reason>",
				fn.Name())
			return true
		})
	}
}
