package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Hashneutral enforces struct-tag discipline on canonically-hashed structs
// so a new field can never half-join the hash. A struct is covered when it
// has a CanonicalHash method (the spec-identity contract: hash = SHA-256 of
// the canonical form's JSON) or carries a //detvet:hashed marker (structs
// whose JSON encoding is persisted or compared byte-for-byte, e.g. results
// served from the write-once store). Coverage extends recursively through
// struct-typed fields, including pointers, slices, and cross-package types.
//
// Rules, in order, one diagnostic per field:
//
//   - every field must be exported: encoding/json silently skips unexported
//     fields, so two specs differing there would collide on one hash;
//   - every field must carry an explicit json tag (or json:"-"): an
//     untagged field joins the encoding under its raw Go name;
//   - on CanonicalHash structs only, every tagged field must either use
//     omitempty, be explicitly cleared in the CanonicalHash method body
//     (the established hash-excluded marker, e.g. Name and TimeoutMS), or
//     carry a //detvet:hashneutral <reason> annotation. A field that always
//     marshals changes the canonical bytes of every pre-existing spec the
//     moment it is added, orphaning every stored result.
var Hashneutral = &Analyzer{
	Name: "hashneutral",
	Doc: "struct-tag discipline for canonically-hashed structs: exported, " +
		"explicitly json-tagged, and omitempty/cleared/annotated so new fields " +
		"cannot silently rewrite existing hashes",
	Keys:       []string{"hashneutral"},
	MarkerKeys: []string{"hashed"},
	Run:        runHashneutral,
}

// hashedMode distinguishes the two coverage tiers.
type hashedMode int

const (
	// modeCanonical covers structs with a CanonicalHash method: full rules
	// including the omitempty/cleared discipline (hash identity must be
	// stable across schema growth).
	modeCanonical hashedMode = iota
	// modeMarked covers //detvet:hashed structs: exported + tagged only
	// (their bytes are persisted per-version; growth is allowed to change
	// new encodings but never to smuggle fields past the encoder).
	modeMarked
)

func runHashneutral(pass *Pass) {
	specs := map[*types.TypeName]*ast.TypeSpec{}
	var marked, canonical []*types.TypeName
	cleared := map[*types.TypeName]map[string]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				specs[tn] = ts
				if hasHashedMarker(gd.Doc) || hasHashedMarker(ts.Doc) {
					marked = append(marked, tn)
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "CanonicalHash" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tn := receiverTypeName(pass.Info, fd.Recv.List[0].Type)
			if tn == nil {
				continue
			}
			if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
				continue
			}
			canonical = append(canonical, tn)
			cleared[tn] = clearedFields(pass.Info, fd, tn)
		}
	}

	sort.Slice(canonical, func(i, j int) bool { return canonical[i].Pos() < canonical[j].Pos() })
	sort.Slice(marked, func(i, j int) bool { return marked[i].Pos() < marked[j].Pos() })

	c := &hashChecker{pass: pass, specs: specs, visited: map[visitKey]bool{}}
	for _, tn := range canonical {
		c.checkStruct(tn, modeCanonical, cleared[tn], token.NoPos)
	}
	for _, tn := range marked {
		c.checkStruct(tn, modeMarked, nil, token.NoPos)
	}
}

func hasHashedMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//"+annotationPrefix+"hashed") {
			return true
		}
	}
	return false
}

func receiverTypeName(info *types.Info, recv ast.Expr) *types.TypeName {
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	id, ok := recv.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, _ := info.Uses[id].(*types.TypeName)
	if tn == nil {
		tn, _ = info.Defs[id].(*types.TypeName)
	}
	return tn
}

// clearedFields collects the field names the CanonicalHash body assigns on
// any value of the receiver struct type — the established hash-excluded
// marker (`c.Name = ""`, `c.TimeoutMS = 0` before marshalling).
func clearedFields(info *types.Info, fd *ast.FuncDecl, tn *types.TypeName) map[string]bool {
	out := map[string]bool{}
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			tv, ok := info.Types[sel.X]
			if !ok || tv.Type == nil {
				continue
			}
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj() == tn {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

type visitKey struct {
	tn   *types.TypeName
	mode hashedMode
}

type hashChecker struct {
	pass    *Pass
	specs   map[*types.TypeName]*ast.TypeSpec
	visited map[visitKey]bool
}

// checkStruct applies the field rules to tn's struct and recurses into
// struct-typed fields. For same-package structs diagnostics anchor on the
// field declaration; for cross-package structs (whose source is out of
// reach) they anchor on fallbackPos, the referencing field, so a single
// //detvet:hashneutral annotation there vouches for the whole remote type.
func (c *hashChecker) checkStruct(tn *types.TypeName, mode hashedMode, cleared map[string]bool, fallbackPos token.Pos) {
	key := visitKey{tn, mode}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	local := tn.Pkg() == c.pass.Pkg
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		pos := fallbackPos
		if local {
			if p := c.fieldPos(tn, fld.Name()); p != token.NoPos {
				pos = p
			}
		}
		where := fmt.Sprintf("hashed struct %s: field %s", tn.Name(), fld.Name())
		if !local {
			where = fmt.Sprintf("hashed struct %s (via %s.%s): field %s",
				tn.Pkg().Path(), tn.Pkg().Name(), tn.Name(), fld.Name())
		}
		if !fld.Exported() {
			c.pass.Reportf(pos,
				"%s is unexported: encoding/json skips it, so the canonical hash silently ignores it", where)
			continue
		}
		jsonTag, hasTag := reflect.StructTag(st.Tag(i)).Lookup("json")
		if !hasTag {
			c.pass.Reportf(pos,
				"%s has no json tag: it joins the canonical encoding under its raw Go name; tag it explicitly (or json:\"-\" to exclude it)", where)
			continue
		}
		name, opts, _ := strings.Cut(jsonTag, ",")
		if name == "-" && opts == "" {
			continue // excluded from the encoding entirely
		}
		// encoding/json ignores omitempty on non-pointer struct fields, so
		// requiring it there would be noise; the discipline lives in the
		// nested struct's own fields, which the recursion below covers.
		_, inlineStruct := fld.Type().Underlying().(*types.Struct)
		if mode == modeCanonical && !inlineStruct &&
			!strings.Contains(","+opts+",", ",omitempty,") &&
			!cleared[fld.Name()] {
			c.pass.Reportf(pos,
				"%s always joins the canonical encoding: adding such a field rewrites every existing spec hash; add omitempty, clear it in CanonicalHash, or annotate //detvet:hashneutral <reason>", where)
			continue
		}
		if elem := structElem(fld.Type()); elem != nil {
			c.checkStruct(elem, mode, nil, pos)
		}
	}
}

// fieldPos finds the declaration position of a field in a same-package
// struct type.
func (c *hashChecker) fieldPos(tn *types.TypeName, field string) token.Pos {
	ts := c.specs[tn]
	if ts == nil {
		return token.NoPos
	}
	structType, ok := ts.Type.(*ast.StructType)
	if !ok {
		return token.NoPos
	}
	for _, f := range structType.Fields.List {
		for _, name := range f.Names {
			if name.Name == field {
				return name.Pos()
			}
		}
	}
	return token.NoPos
}

// structElem unwraps pointers, slices, arrays, and map values down to a
// named struct type worth recursing into; basic types, interfaces, and
// stdlib opaque types return nil.
func structElem(t types.Type) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); !ok {
				return nil
			}
			tn := u.Obj()
			if tn.Pkg() == nil {
				return nil
			}
			// A type with its own MarshalJSON controls its encoding
			// wholesale; its fields are not the hash surface (time.Time is
			// the canonical example).
			if m, _, _ := types.LookupFieldOrMethod(types.NewPointer(u), true, nil, "MarshalJSON"); m != nil {
				return nil
			}
			return tn
		default:
			return nil
		}
	}
}
