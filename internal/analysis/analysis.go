// Package analysis is detvet's static-analysis framework: a deliberately
// small, stdlib-only reimplementation of the slice of
// golang.org/x/tools/go/analysis that the repo's determinism lint wall
// needs. (The build environment pins the module graph to the standard
// library, so the x/tools multichecker is not available; the Analyzer /
// Pass / Diagnostic shape below mirrors it closely enough that a future
// migration is mechanical.)
//
// The analyzers in this package encode the invariant the whole system is
// named for: execution is a pure function of (spec, seed), so results,
// reports, and journal replays are byte-identical across restarts, workers,
// and crashes. Differential tests (e.g. TestWallclockStampsAreHashNeutral)
// catch violations after the fact; these analyzers reject them at `make
// check` time.
//
// # Annotation grammar
//
// A diagnostic is suppressed by a detvet annotation — a line or block
// comment of the form
//
//	//detvet:<key> <reason>
//
// placed on the same line as the flagged expression (trailing — covers
// exactly that line) or alone on the line immediately above it (covers
// exactly the next line). The <key> names the analyzer's escape hatch
// (the walltime analyzer uses the key "wallclock"); the <reason> is a
// free-form justification and is mandatory: an annotation without a reason
// is itself a diagnostic, so an escape hatch can never be silent. Marker
// keys (currently "hashed", consumed by the hashneutral analyzer) label
// declarations rather than excusing diagnostics and need no reason.
// Unknown keys are diagnostics too, so a typoed annotation fails loudly
// instead of silently not suppressing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one detvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is the one-paragraph description printed by detvet -list.
	Doc string
	// Keys are the annotation keys whose //detvet:<key> <reason> comments
	// suppress this analyzer's diagnostics. Usually {Name}; walltime uses
	// the established "wallclock" key.
	Keys []string
	// MarkerKeys are annotation keys this analyzer consumes as declaration
	// markers (no reason required, no suppression semantics).
	MarkerKeys []string
	// Run reports diagnostics via pass.Reportf.
	Run func(*Pass)
}

// A Diagnostic is one finding, positioned for file:line:col printing.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	annots []Annotation
	diags  []Diagnostic
}

// An Annotation is one parsed //detvet:<key> <reason> comment.
type Annotation struct {
	Key    string
	Reason string
	File   string
	Line   int
	Pos    token.Pos
	// OwnLine reports whether the annotation is alone on its line. A
	// standalone annotation covers the line below it; a trailing one covers
	// exactly the line it shares with code — never the next line, so an
	// annotation can't silently leak onto an unrelated neighbor.
	OwnLine bool
}

// annotationPrefix is what a comment body must start with to be a detvet
// annotation. Like //go:build directives there is no space after the
// comment marker, so prose that merely mentions an annotation never parses
// as one.
const annotationPrefix = "detvet:"

// parseAnnotations extracts every detvet annotation from the files'
// comments, line and block comments alike.
func parseAnnotations(fset *token.FileSet, files []*ast.File) []Annotation {
	var out []Annotation
	for _, f := range files {
		// Mark the lines that hold code tokens so trailing annotations can
		// be told apart from standalone ones.
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			if n.Pos().IsValid() {
				codeLines[fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := c.Text
				switch {
				case strings.HasPrefix(body, "//"):
					body = body[2:]
				case strings.HasPrefix(body, "/*"):
					body = strings.TrimSuffix(body[2:], "*/")
				}
				if !strings.HasPrefix(body, annotationPrefix) {
					continue
				}
				rest := strings.TrimPrefix(body, annotationPrefix)
				key, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out = append(out, Annotation{
					Key:     strings.TrimSpace(key),
					Reason:  strings.TrimSpace(reason),
					File:    pos.Filename,
					Line:    pos.Line,
					Pos:     c.Pos(),
					OwnLine: !codeLines[pos.Line],
				})
			}
		}
	}
	return out
}

// Reportf records a diagnostic at pos unless a matching annotation
// suppresses it. An annotation matches when its key is one of the
// analyzer's Keys and it sits on the diagnostic's line (trailing) or the
// line immediately above. A reasonless annotation still suppresses — its
// own "requires a reason" diagnostic is the single actionable finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Position) bool {
	for _, a := range p.annots {
		if a.File != pos.Filename {
			continue
		}
		if a.OwnLine {
			if a.Line != pos.Line-1 {
				continue
			}
		} else if a.Line != pos.Line {
			continue
		}
		for _, k := range p.Analyzer.Keys {
			if a.Key == k {
				return true
			}
		}
	}
	return false
}

// Annotations returns the package's parsed detvet annotations (all keys,
// not just this analyzer's). Analyzers that consume markers use this.
func (p *Pass) Annotations() []Annotation { return p.annots }

// RunAnalyzer runs one analyzer over one loaded package and returns its
// diagnostics, including the "annotation requires a reason" findings for
// the analyzer's own keys.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		annots:   parseAnnotations(fset, files),
	}
	a.Run(pass)
	for _, an := range pass.annots {
		for _, k := range a.Keys {
			if an.Key == k && an.Reason == "" {
				pass.diags = append(pass.diags, Diagnostic{
					Pos:      fset.Position(an.Pos),
					Analyzer: a.Name,
					Message: fmt.Sprintf("//detvet:%s annotation requires a reason (write //detvet:%s <why this site is exempt>)",
						k, k),
				})
			}
		}
	}
	return pass.diags
}

// KnownKeys collects every annotation key the analyzer set understands.
func KnownKeys(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{}
	for _, a := range analyzers {
		for _, k := range a.Keys {
			known[k] = true
		}
		for _, k := range a.MarkerKeys {
			known[k] = true
		}
	}
	return known
}

// CheckAnnotations flags detvet annotations whose key no analyzer in the
// run understands: a typo in the key would otherwise silently fail to
// suppress anything.
func CheckAnnotations(fset *token.FileSet, files []*ast.File, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range parseAnnotations(fset, files) {
		if known[a.Key] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(a.Pos),
			Analyzer: "annotations",
			Message:  fmt.Sprintf("unknown detvet annotation key %q", a.Key),
		})
	}
	return diags
}

// Analyze runs every analyzer over every package, checks annotation keys,
// and returns the deduplicated findings in file/line order.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := KnownKeys(analyzers)
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			diags = append(diags, RunAnalyzer(a, p.Fset, p.Files, p.Types, p.Info)...)
		}
		diags = append(diags, CheckAnnotations(p.Fset, p.Files, known)...)
	}
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// FuncOf resolves the *types.Func a call or selector expression names, or
// nil when the expression is not a statically-known function or method
// (builtins, type conversions, function-typed variables).
func FuncOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// All returns the detvet analyzer suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, Globalrand, Maporder, Journalerr, Hashneutral}
}
