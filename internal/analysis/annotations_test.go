package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseAnnotations(t *testing.T) {
	fset, files := parseOne(t, `package p

//detvet:wallclock event timestamp only
var a int

var b int //detvet:journalerr best-effort shutdown

/*detvet:maporder consumer is a set*/
var c int

// detvet:wallclock a space after the marker means prose, not an annotation
var d int

// The //detvet:wallclock grammar mentioned mid-comment is not an annotation.
var e int
`)
	got := parseAnnotations(fset, files)
	if len(got) != 3 {
		t.Fatalf("got %d annotations, want 3: %+v", len(got), got)
	}
	wants := []struct {
		key, reason string
		line        int
	}{
		{"wallclock", "event timestamp only", 3},
		{"journalerr", "best-effort shutdown", 6},
		{"maporder", "consumer is a set", 8},
	}
	for i, w := range wants {
		a := got[i]
		if a.Key != w.key || a.Reason != w.reason || a.Line != w.line {
			t.Errorf("annotation %d = {%q %q line %d}, want {%q %q line %d}",
				i, a.Key, a.Reason, a.Line, w.key, w.reason, w.line)
		}
	}
}

func TestCheckAnnotationsUnknownKey(t *testing.T) {
	fset, files := parseOne(t, `package p

//detvet:walltime wrong key: the walltime analyzer's hatch is "wallclock"
var a int

//detvet:wallclock correctly keyed
var b int
`)
	known := KnownKeys(All())
	diags := CheckAnnotations(fset, files, known)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `unknown detvet annotation key "walltime"`) {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

func TestKnownKeysCoverSuite(t *testing.T) {
	known := KnownKeys(All())
	for _, k := range []string{"wallclock", "globalrand", "maporder", "journalerr", "hashneutral", "hashed"} {
		if !known[k] {
			t.Errorf("key %q missing from the suite's known set", k)
		}
	}
	if known["walltime"] {
		t.Error("walltime must not be an annotation key; the hatch is spelled wallclock")
	}
}
