package fixture

import (
	"crypto/sha256"
	"encoding/json"

	"example.com/remote"
)

// GoodSpec follows the full discipline: omitempty everywhere growth can
// happen, required identity fields annotated, excluded fields cleared in
// CanonicalHash.
type GoodSpec struct {
	// Name is cosmetic and cleared before hashing.
	Name string `json:"name,omitempty"`
	// Kind is the identity-defining required field.
	Kind string `json:"kind"` //detvet:hashneutral required identity field, present in every canonical encoding since v0
	// Count joined after v0; omitempty keeps old hashes intact.
	Count int `json:"count,omitempty"`
	// Stamp is execution policy: no omitempty, but cleared in CanonicalHash.
	Stamp int64 `json:"stamp"`
	// Skipped never marshals.
	Skipped int `json:"-"`
	// Engine is an enum with a canonical default: Canonical maps the
	// default spelling to the empty string, so omitempty keeps every
	// pre-field hash intact while non-default values hash distinctly.
	Engine string `json:"engine,omitempty"`
	// Nested recursion follows omitempty discipline too.
	Nested GoodNested `json:"nested,omitempty"`
	// Remote types that keep the discipline pass without annotation.
	Tagged *remote.Tagged `json:"tagged,omitempty"`
}

type GoodNested struct {
	Weight float64 `json:"weight,omitempty"`
}

func (s GoodSpec) CanonicalHash() (string, error) {
	c := s
	c.Name = ""
	c.Stamp = 0
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return string(sum[:]), nil
}

// BadSpec breaks every rule once.
type BadSpec struct {
	ID     string `json:"id,omitempty"`
	Extra  int    `json:"extra"`  // want `field Extra always joins the canonical encoding`
	Engine string `json:"engine"` // want `field Engine always joins the canonical encoding`
	NoTag  int    // want `field NoTag has no json tag`
	hidden int    // want `field hidden is unexported`
	// A non-pointer struct field needs no omitempty (encoding/json ignores
	// it there); the discipline applies to the nested fields instead.
	Nested BadNested `json:"nested"`
	// Remote struct fields are checked through export data; an annotation
	// on the referencing field vouches for the whole remote type.
	Params    *remote.Untagged `json:"params,omitempty"`  // want `hashed struct example\.com/remote .* field Epochs has no json tag` `field Phase has no json tag`
	ParamsOK  *remote.Untagged `json:"params2,omitempty"` //detvet:hashneutral legacy encoding under Go field names; retagging would orphan stored results
	unused    bool             // want `field unused is unexported`
	Recursive *BadSpec         `json:"recursive,omitempty"`
}

type BadNested struct {
	Weight float64 // want `field Weight has no json tag`
}

func (s *BadSpec) CanonicalHash() string {
	b, _ := json.Marshal(s)
	sum := sha256.Sum256(b)
	return string(sum[:])
}

// Plain structs without a CanonicalHash method or marker are untouched.
type Plain struct {
	X       int
	private string
}

// MarkedResult is covered by the //detvet:hashed marker: persisted bytes,
// so fields must be exported and explicitly tagged — but omitempty is not
// required (results are written once per version).
//
//detvet:hashed
type MarkedResult struct {
	Rounds int          `json:"rounds"`
	Loose  int          // want `field Loose has no json tag`
	secret int          // want `field secret is unexported`
	Items  []MarkedItem `json:"items,omitempty"`
}

type MarkedItem struct {
	Seed uint64 // want `field Seed has no json tag`
}
