package fixture

import "time"

// A trailing annotation with a reason suppresses the diagnostic.
func okTrailing(t0 time.Time) time.Duration {
	return time.Since(t0) //detvet:wallclock latency histogram only, hash-excluded
}

// So does an annotation on the line immediately above.
func okPreceding() time.Time {
	//detvet:wallclock event timestamp, replay-ignored and hash-excluded
	return time.Now()
}

// An annotation two lines up does NOT reach the call.
func badTooFar() time.Time {
	//detvet:wallclock this annotation is orphaned by the blank line

	return time.Now() // want `time\.Now reads the wallclock`
}

// An annotation without a reason still suppresses the underlying finding,
// but is itself the diagnostic: escape hatches are never silent.
func badNoReason() time.Time {
	return time.Now() /*detvet:wallclock*/ // want `annotation requires a reason`
}
