package fixture

import "time"

// bad call sites: unannotated wallclock reads.
func badNow() time.Time {
	return time.Now() // want `time\.Now reads the wallclock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wallclock`
}

func badUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time\.Until reads the wallclock`
}

func badTick() <-chan time.Time {
	return time.Tick(1) // want `time\.Tick reads the wallclock`
}

// A reference to time.Now as a value is the same wallclock dependency as a
// call (an injectable clock default, for instance).
var clock = time.Now // want `time\.Now reads the wallclock`

// Scheduling primitives decide when code runs, not what it computes.
func okScheduling() {
	time.Sleep(1)
	<-time.After(1)
}

// Methods on Time/Duration values are pure.
func okMethods(t0, t1 time.Time) float64 {
	return t0.Sub(t1).Seconds()
}
