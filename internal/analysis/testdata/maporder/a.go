package fixture

import (
	"crypto/sha256"
	"encoding/json"
	"sort"

	"dualradio/internal/journal"
)

// Marshalling per-iteration output of a map range emits bytes in random
// order.
func badJSON(m map[string]int) {
	for k, v := range m {
		json.Marshal([]any{k, v}) // want `json\.Marshal inside range over a map`
	}
}

func badEncoder(m map[string]int, enc *json.Encoder) {
	for k := range m {
		enc.Encode(k) // want `json\.Encode inside range over a map`
	}
}

// Hashing inside a map range makes the digest order-dependent.
func badHash(m map[string][]byte) [32]byte {
	var sum [32]byte
	for _, v := range m {
		sum = sha256.Sum256(v) // want `hashing\) inside range over a map`
	}
	return sum
}

// Durability writes inside a map range journal records in random order.
func badJournal(m map[string]int, j *journal.Journal) error {
	for k := range m {
		if err := j.Append(k); err != nil { // want `journal\.Append \(durability write\) inside range over a map`
			return err
		}
	}
	return nil
}

// Accumulating into an outer slice with no later sort leaks map order.
func badAppend(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // want `append to "vals" inside range over a map with no later sort`
	}
	return vals
}

// The canonical fix — collect, sort, then use — is not flagged.
func okSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator counts as sorting too.
func okSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Loop-local accumulation dies within the iteration; order cannot leak.
func okLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// Ranging over a slice is always ordered.
func okSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Order-insensitive reduction over a map is fine.
func okReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// The escape hatch: a vouched-for site is suppressed.
func okAnnotated(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) //detvet:maporder consumer treats vals as a set
	}
	return vals
}
