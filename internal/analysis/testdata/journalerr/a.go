package fixture

import (
	"dualradio/internal/journal"
	"dualradio/internal/store"
)

// Bare statement: the error vanishes.
func badStmt(j *journal.Journal, v any) {
	j.Append(v) // want `error of journal\.Append is unchecked`
}

// Blank assignment: the error is deliberately but silently dropped.
func badBlank(j *journal.Journal) {
	_ = j.Seal() // want `error of journal\.Seal is discarded with _`
}

// go/defer: the error has nowhere to go.
func badGoDefer(j *journal.Journal, v any) {
	go j.Append(v)       // want `error of journal\.Append is unchecked in go statement`
	defer j.Compact(nil) // want `error of journal\.Compact is unchecked in defer statement`
}

func badStore(s *store.Store) {
	s.Put("ab12", nil) // want `error of store\.Put is unchecked`
}

// Checked forms.
func good(j *journal.Journal, s *store.Store, v any) error {
	if err := j.Append(v); err != nil {
		return err
	}
	if err := s.Put("ab12", nil); err != nil {
		return err
	}
	if err := j.Compact(nil); err != nil {
		return err
	}
	return j.Seal()
}

// Assigning to a real variable is checked (staticcheck/compiler guard
// unused variables from there).
func goodVar(j *journal.Journal, v any) error {
	err := j.Append(v)
	return err
}

// Unrelated methods that share a name are not targets.
type other struct{}

func (other) Append(v any) error { return nil }

func goodUnrelated(o other, v any) {
	o.Append(v)
}

// The escape hatch: shutdown paths that genuinely cannot propagate.
func okAnnotated(j *journal.Journal) {
	_ = j.Seal() //detvet:journalerr best-effort seal on shutdown path
}
