package fixture

import "math/rand/v2"

// Package-level convenience functions draw from the process-global RNG.
func badIntN() int {
	return rand.IntN(10) // want `rand\.IntN draws from the process-global generator`
}

func badFloat() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global generator`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global generator`
}

// A reference as a value is the same global dependency.
var perm = rand.Perm // want `rand\.Perm draws from the process-global generator`

// The sanctioned form: a generator seeded from the spec seed, threaded
// explicitly.
func okSeeded(seed uint64) int {
	r := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	return r.IntN(10)
}

// Constructors alone are fine too.
func okConstructor(seed uint64) *rand.PCG {
	return rand.NewPCG(seed, seed)
}

// The escape hatch works here as everywhere.
func okAnnotated() int {
	return rand.IntN(10) //detvet:globalrand jitter outside any deterministic path
}
