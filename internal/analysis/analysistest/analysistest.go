// Package analysistest runs a detvet analyzer over a directory of fixture
// files and checks its diagnostics against `// want "regexp"` comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest. Fixtures
// type-check against small in-memory stubs of the packages the analyzers
// care about (time, math/rand/v2, encoding/json, crypto/sha256, sort,
// dualradio/internal/journal, …), so the tests are hermetic: no go tool,
// no build cache, no network.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dualradio/internal/analysis"
)

// stubs maps import paths to minimal package sources. Bodies are omitted
// (bodyless functions type-check like assembly-backed declarations);
// signatures only need to be close enough for the analyzers' package-path +
// name matching.
var stubs = map[string]string{
	"time": `package time
type Duration int64
func (d Duration) Seconds() float64
type Time struct{ wall uint64 }
func (t Time) Sub(u Time) Duration
func Now() Time
func Since(t Time) Duration
func Until(t Time) Duration
func Tick(d Duration) <-chan Time
func After(d Duration) <-chan Time
func Sleep(d Duration)
`,
	"math/rand/v2": `package rand
type Source interface{ Uint64() uint64 }
type PCG struct{ hi, lo uint64 }
func NewPCG(seed1, seed2 uint64) *PCG
func (p *PCG) Uint64() uint64
type Rand struct{ src Source }
func New(src Source) *Rand
func (r *Rand) IntN(n int) int
func (r *Rand) Float64() float64
func (r *Rand) Uint64() uint64
func IntN(n int) int
func Int() int
func Uint64() uint64
func Float64() float64
func Perm(n int) []int
func Shuffle(n int, swap func(i, j int))
`,
	"encoding/json": `package json
func Marshal(v any) ([]byte, error)
func MarshalIndent(v any, prefix, indent string) ([]byte, error)
type Encoder struct{ w any }
func NewEncoder(w any) *Encoder
func (e *Encoder) Encode(v any) error
`,
	"hash": `package hash
type Hash interface {
	Write(p []byte) (n int, err error)
	Sum(b []byte) []byte
}
`,
	"crypto/sha256": `package sha256
import "hash"
const Size = 32
func Sum256(data []byte) [Size]byte
func New() hash.Hash
`,
	"sort": `package sort
func Strings(x []string)
func Ints(x []int)
func Slice(x any, less func(i, j int) bool)
`,
	"slices": `package slices
type ordered interface{ ~int | ~int64 | ~float64 | ~string }
func Sort[E ordered](x []E)
func SortFunc[E any](x []E, cmp func(a, b E) int)
`,
	"dualradio/internal/journal": `package journal
type Journal struct{ path string }
func Begin(path string) (*Journal, error)
func (j *Journal) Append(v any) error
func (j *Journal) Seal() error
func (j *Journal) Compact(records []any) error
`,
	"dualradio/internal/store": `package store
type Store struct{ dir string }
func Open(dir string) (*Store, error)
func (s *Store) Put(hash string, data []byte) error
func (s *Store) Get(hash string) ([]byte, bool, error)
`,
	"example.com/remote": `package remote
type Untagged struct {
	Epochs float64
	Phase  float64
}
type Tagged struct {
	Epochs float64 ` + "`json:\"epochs,omitempty\"`" + `
}
`,
}

// stubImporter lazily type-checks stub sources, using itself for nested
// stub imports.
type stubImporter struct {
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	src, ok := stubs[path]
	if !ok {
		return nil, fmt.Errorf("analysistest: no stub for import %q", path)
	}
	f, err := parser.ParseFile(si.fset, path+"/stub.go", src, 0)
	if err != nil {
		return nil, fmt.Errorf("analysistest: parse stub %q: %v", path, err)
	}
	conf := types.Config{Importer: si}
	pkg, err := conf.Check(path, si.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, fmt.Errorf("analysistest: typecheck stub %q: %v", path, err)
	}
	si.pkgs[path] = pkg
	return pkg, nil
}

// expectation is one `// want` regexp anchored to a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// parseWants extracts the expectations from `// want "rx" "rx2"` comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(body, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// Run loads every .go file under dir as one fixture package, runs the
// analyzer (with the framework's annotation semantics), and asserts that
// diagnostics and `// want` expectations match one-to-one per line.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	si := &stubImporter{fset: fset, pkgs: map[string]*types.Package{}}
	conf := types.Config{Importer: si}
	pkg, err := conf.Check("fixture", fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typecheck fixtures in %s: %v", dir, err)
	}

	diags := analysis.RunAnalyzer(a, fset, files, pkg, info)
	wants := parseWants(t, fset, files)

	matchedDiag := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matchedDiag[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matchedDiag[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
	for i, d := range diags {
		if !matchedDiag[i] {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
}
