package bcast_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/bcast"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

func TestBuildValidation(t *testing.T) {
	net, err := gen.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bcast.Build(bcast.Config{Net: net, Source: -1}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := bcast.Build(bcast.Config{Net: net, Source: 9}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := bcast.Build(bcast.Config{Net: net, Source: 0, Relay: make([]bool, 3)}); err == nil {
		t.Error("relay mask size mismatch accepted")
	}
}

func TestFloodCoversLine(t *testing.T) {
	net, err := gen.Line(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bcast.Run(bcast.Config{Net: net, Source: 0, Seed: 1},
		sim.Config{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != net.N() {
		t.Errorf("covered %d of %d", res.Covered, net.N())
	}
	if res.Rounds <= 0 || res.Transmissions == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestBackboneRelaysOnly(t *testing.T) {
	net, err := gen.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	// Relays: every even node (a dominating connected set on the line via
	// gray... on the reliable line 0-2-4... is NOT connected; use interior
	// nodes 1..7 instead).
	relay := make([]bool, net.N())
	for v := 1; v < net.N()-1; v++ {
		relay[v] = true
	}
	procs, err := bcast.Build(bcast.Config{Net: net, Source: 0, Relay: relay, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MaxRounds: 5000})
	if err != nil {
		t.Fatal(err)
	}
	covered := func() bool {
		for _, p := range procs {
			if !p.(*bcast.Proc).Informed() {
				return false
			}
		}
		return true
	}
	if _, err := r.RunUntil(covered); err != nil {
		t.Fatal(err)
	}
	if !covered() {
		t.Fatal("backbone dissemination failed to cover")
	}
	// The last node (a non-relay) must never have transmitted.
	if procs[net.N()-1].(*bcast.Proc).Sent() != 0 {
		t.Error("non-relay node transmitted")
	}
	// The source transmits even if not flagged a relay.
	if procs[0].(*bcast.Proc).Sent() == 0 {
		t.Error("source never transmitted")
	}
}

func TestFloodUnderAdversary(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: 48}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bcast.Run(bcast.Config{Net: net, Source: 0, Seed: 3},
		sim.Config{Adversary: adversary.NewCollisionSeeking(net)}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != net.N() {
		t.Errorf("adversarial flood covered %d of %d", res.Covered, net.N())
	}
}

func TestHeardAtOrdering(t *testing.T) {
	net, err := gen.Line(8)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := bcast.Build(bcast.Config{Net: net, Source: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MaxRounds: 5000})
	if err != nil {
		t.Fatal(err)
	}
	covered := func() bool {
		for _, p := range procs {
			if !p.(*bcast.Proc).Informed() {
				return false
			}
		}
		return true
	}
	if _, err := r.RunUntil(covered); err != nil {
		t.Fatal(err)
	}
	// On a line (ignoring the gray skip edges, which only accelerate),
	// information flows outward: node v+2 cannot hear before node v.
	for v := 0; v+2 < net.N(); v++ {
		a := procs[v].(*bcast.Proc).HeardAt()
		b := procs[v+2].(*bcast.Proc).HeardAt()
		if v > 0 && b >= 0 && a >= 0 && b < a {
			t.Errorf("node %d heard at %d before node %d at %d", v+2, b, v, a)
		}
	}
}
