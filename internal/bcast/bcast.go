// Package bcast implements multihop broadcast workloads in the dual graph
// radio model — the canonical problem the dual graph papers ([10, 11] in the
// paper's bibliography) show to be strictly harder with unreliable links,
// and the paper's own motivation for building a CCDS backbone.
//
// Two dissemination strategies are provided as sim processes:
//
//   - DecayFlood: every informed node relays using the exponential-decay
//     contention scheme (broadcast with halving probability, restarting
//     each Θ(log n)-round phase).
//   - BackboneFlood: only backbone (CCDS) members relay; everyone else
//     just listens. Domination guarantees coverage while the backbone's
//     constant degree keeps contention, and therefore latency, low.
package bcast

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dualradio/internal/dualgraph"
	"dualradio/internal/sim"
)

// payloadMsg is the disseminated message; Origin identifies the broadcast.
type payloadMsg struct {
	from   int
	origin int
	bits   int
}

// From implements sim.Message.
func (m payloadMsg) From() int { return m.from }

// BitSize implements sim.Message.
func (m payloadMsg) BitSize() int { return m.bits }

// Origin returns the id of the process that initiated the broadcast.
func (m payloadMsg) Origin() int { return m.origin }

// Proc is one node of a dissemination execution.
type Proc struct {
	id       int
	n        int
	source   bool
	relay    bool
	informed bool
	heardAt  int
	phaseLen int
	phase    int
	inPhase  int
	rng      *rand.Rand
	origin   int
	sent     int
}

var _ sim.Process = (*Proc)(nil)

// Config assembles a dissemination run over an existing network.
type Config struct {
	// Net is the dual graph network.
	Net *dualgraph.Network
	// Source is the node index initiating the broadcast.
	Source int
	// Relay flags which nodes may retransmit; nil means every node (flood).
	Relay []bool
	// Seed derives per-node randomness.
	Seed uint64
	// PhaseFactor scales the decay phase length (default 2·log₂ n).
	PhaseFactor float64
}

// Build constructs the per-node processes for the run.
func Build(cfg Config) ([]sim.Process, error) {
	n := cfg.Net.N()
	if cfg.Source < 0 || cfg.Source >= n {
		return nil, fmt.Errorf("bcast: source %d out of range", cfg.Source)
	}
	if cfg.Relay != nil && len(cfg.Relay) != n {
		return nil, fmt.Errorf("bcast: relay mask covers %d of %d nodes", len(cfg.Relay), n)
	}
	factor := cfg.PhaseFactor
	if factor <= 0 {
		factor = 2
	}
	logN := int(math.Ceil(math.Log2(float64(n))))
	if logN < 1 {
		logN = 1
	}
	phaseLen := int(math.Ceil(factor * float64(logN)))
	procs := make([]sim.Process, n)
	for v := 0; v < n; v++ {
		relay := cfg.Relay == nil || cfg.Relay[v] || v == cfg.Source
		procs[v] = &Proc{
			id:       v + 1,
			n:        n,
			source:   v == cfg.Source,
			relay:    relay,
			informed: v == cfg.Source,
			heardAt:  -1,
			phaseLen: phaseLen,
			rng:      rand.New(rand.NewPCG(cfg.Seed, uint64(v)+0xB0A)),
			origin:   cfg.Source + 1,
		}
	}
	return procs, nil
}

// Informed reports whether the node has the message.
func (p *Proc) Informed() bool { return p.informed }

// HeardAt returns the round the node first received the message, -1 for the
// source or uninformed nodes.
func (p *Proc) HeardAt() int { return p.heardAt }

// Sent returns how many times this node transmitted.
func (p *Proc) Sent() int { return p.sent }

// Broadcast implements sim.Process: informed relays use exponential decay —
// within each phase the probability halves from 1/2 down to 1/n, so
// whatever the local contention, some sub-phase matches it.
func (p *Proc) Broadcast(round int) sim.Message {
	if !p.informed || !p.relay {
		return nil
	}
	if p.inPhase >= p.phaseLen {
		p.inPhase = 0
	}
	step := p.inPhase
	p.inPhase++
	prob := math.Ldexp(0.5, -step) // 1/2, 1/4, 1/8, ...
	if prob < 1/float64(p.n) {
		prob = 1 / float64(p.n)
	}
	if p.rng.Float64() < prob {
		p.sent++
		return payloadMsg{from: p.id, origin: p.origin, bits: 64}
	}
	return nil
}

// Receive implements sim.Process.
func (p *Proc) Receive(round int, msg sim.Message) {
	if msg == nil || p.informed {
		return
	}
	if _, ok := msg.(payloadMsg); ok {
		p.informed = true
		p.heardAt = round
	}
}

// Output implements sim.Process: 1 once informed.
func (p *Proc) Output() int {
	if p.informed {
		return 1
	}
	return 0
}

// Done implements sim.Process: dissemination runs until stopped externally.
func (p *Proc) Done() bool { return false }

// Result summarizes a dissemination run.
type Result struct {
	// Rounds is the number of rounds until every node was informed (or
	// the cap, if coverage failed).
	Rounds int
	// Covered is the number of informed nodes.
	Covered int
	// Transmissions is the total number of sends.
	Transmissions int
}

// Run executes the dissemination until full coverage or maxRounds. The
// engine config supplies the adversary and worker settings; its network,
// process, and round-cap fields are overwritten.
func Run(cfg Config, engine sim.Config, maxRounds int) (*Result, error) {
	procs, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	engine.Net = cfg.Net
	engine.Processes = procs
	engine.MaxRounds = maxRounds
	runner, err := sim.NewRunner(engine)
	if err != nil {
		return nil, err
	}
	covered := func() bool {
		for _, p := range procs {
			if !p.(*Proc).Informed() {
				return false
			}
		}
		return true
	}
	if _, err := runner.RunUntil(covered); err != nil {
		return nil, err
	}
	res := &Result{Rounds: runner.Round()}
	for _, p := range procs {
		bp := p.(*Proc)
		if bp.Informed() {
			res.Covered++
		}
		res.Transmissions += bp.Sent()
	}
	return res, nil
}
