package harness

import (
	"errors"

	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// ContinuousOutcome records the committed outputs of a continuous CCDS
// execution at each requested checkpoint round.
type ContinuousOutcome struct {
	// Period is δ_CDS, the rerun period in rounds.
	Period int
	// Checkpoints maps each requested round to the committed outputs
	// observed immediately after that round.
	Checkpoints map[int][]int
	// Final holds the committed outputs when the execution stopped.
	Final []int
	// Rounds is the number of rounds executed.
	Rounds int
}

// RunContinuousCCDS executes the Section 8 continuous CCDS with the given
// dynamic detector for the given number of rerun periods, sampling committed
// outputs at the supplied checkpoint rounds.
func (s *Scenario) RunContinuousCCDS(dyn detector.Dynamic, periods int, checkpoints []int) (*ContinuousOutcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.B <= 0 {
		return nil, errors.New("harness: CCDS requires a positive message bound B")
	}
	if dyn == nil {
		return nil, errors.New("harness: nil dynamic detector")
	}
	n := s.Net.N()
	delta := s.Net.Delta()
	procs := make([]sim.Process, n)
	var period int
	for v := 0; v < n; v++ {
		node := v
		p, err := core.NewContinuousCCDSProcess(core.ContinuousConfig{
			ID:    s.Asg.ID(v),
			N:     n,
			Delta: delta,
			B:     s.B,
			DetectorAt: func(round int) *detector.Set {
				return dyn.At(round).Set(node)
			},
			Params: s.params(),
			Rng:    s.RngFor(v),
		})
		if err != nil {
			return nil, err
		}
		procs[v] = p
		period = p.Period()
	}
	runner, err := sim.NewRunner(sim.Config{
		Net:         s.Net,
		Adversary:   s.Adv,
		Processes:   procs,
		MessageBits: s.B,
		MaxRounds:   periods*period + 1,
		Observer:    s.Observer,
		Workers:     s.Workers,
		Leap:        s.Leap,
	})
	if err != nil {
		return nil, err
	}
	out := &ContinuousOutcome{Period: period, Checkpoints: make(map[int][]int)}
	pending := append([]int(nil), checkpoints...)
	// Under the leap engine the clock can jump over broadcast-free
	// stretches, so a checkpoint round may never be observed exactly. The
	// skipped rounds cannot change committed outputs (no broadcasts, hence
	// no receptions and no period boundaries), so a checkpoint inside a
	// jumped stretch reports the snapshot taken before the jump.
	var prev []int
	if s.Leap {
		prev = committedOutputs(procs)
	}
	for runner.Step() {
		r := runner.Round()
		for i := 0; i < len(pending); i++ {
			c := pending[i]
			if c > r {
				continue
			}
			if c == r || prev == nil {
				out.Checkpoints[c] = committedOutputs(procs)
			} else {
				out.Checkpoints[c] = prev
			}
			pending = append(pending[:i], pending[i+1:]...)
			i--
		}
		if s.Leap && len(pending) > 0 {
			prev = committedOutputs(procs)
		}
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	out.Final = committedOutputs(procs)
	out.Rounds = runner.Round()
	return out, nil
}

func committedOutputs(procs []sim.Process) []int {
	out := make([]int, len(procs))
	for v, p := range procs {
		out[v] = p.Output()
	}
	return out
}
