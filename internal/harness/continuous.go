package harness

import (
	"errors"

	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// ContinuousOutcome records the committed outputs of a continuous CCDS
// execution at each requested checkpoint round.
type ContinuousOutcome struct {
	// Period is δ_CDS, the rerun period in rounds.
	Period int
	// Checkpoints maps each requested round to the committed outputs
	// observed immediately after that round.
	Checkpoints map[int][]int
	// Final holds the committed outputs when the execution stopped.
	Final []int
	// Rounds is the number of rounds executed.
	Rounds int
}

// RunContinuousCCDS executes the Section 8 continuous CCDS with the given
// dynamic detector for the given number of rerun periods, sampling committed
// outputs at the supplied checkpoint rounds.
func (s *Scenario) RunContinuousCCDS(dyn detector.Dynamic, periods int, checkpoints []int) (*ContinuousOutcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.B <= 0 {
		return nil, errors.New("harness: CCDS requires a positive message bound B")
	}
	if dyn == nil {
		return nil, errors.New("harness: nil dynamic detector")
	}
	n := s.Net.N()
	delta := s.Net.Delta()
	procs := make([]sim.Process, n)
	var period int
	for v := 0; v < n; v++ {
		node := v
		p, err := core.NewContinuousCCDSProcess(core.ContinuousConfig{
			ID:    s.Asg.ID(v),
			N:     n,
			Delta: delta,
			B:     s.B,
			DetectorAt: func(round int) *detector.Set {
				return dyn.At(round).Set(node)
			},
			Params: s.params(),
			Rng:    s.RngFor(v),
		})
		if err != nil {
			return nil, err
		}
		procs[v] = p
		period = p.Period()
	}
	runner, err := sim.NewRunner(sim.Config{
		Net:         s.Net,
		Adversary:   s.Adv,
		Processes:   procs,
		MessageBits: s.B,
		MaxRounds:   periods*period + 1,
		Observer:    s.Observer,
		Workers:     s.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &ContinuousOutcome{Period: period, Checkpoints: make(map[int][]int)}
	pending := append([]int(nil), checkpoints...)
	for runner.Step() {
		r := runner.Round()
		for i := 0; i < len(pending); i++ {
			if pending[i] == r {
				out.Checkpoints[r] = committedOutputs(procs)
				pending = append(pending[:i], pending[i+1:]...)
				i--
			}
		}
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	out.Final = committedOutputs(procs)
	out.Rounds = runner.Round()
	return out, nil
}

func committedOutputs(procs []sim.Process) []int {
	out := make([]int, len(procs))
	for v, p := range procs {
		out[v] = p.Output()
	}
	return out
}
