package harness

import (
	"math/rand/v2"
	"sync"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/graph"
	"dualradio/internal/memo"
)

// InstanceSpec identifies the immutable, topology-determining inputs of a
// generated scenario: everything that shapes the (network, assignment,
// detector) triple and nothing else. Parameters that only affect a trial's
// execution — message bound, protocol constants, adversary — deliberately
// stay out of the key so sweeps over them share one instance.
type InstanceSpec struct {
	// N is the network size.
	N int
	// TargetDegree steers the reliable-graph degree (0 = generator default).
	TargetDegree float64
	// GrayProb is the gray-zone edge probability (0 = generator default,
	// negative = no unreliable edges).
	GrayProb float64
	// Tau selects the detector: 0 builds the 0-complete detector, positive
	// values a τ-complete detector with gray-first mistake placement.
	Tau int
	// Seed derives the construction RNG stream.
	Seed uint64
}

// Instance is the immutable scenario skeleton shared across trials: the
// network, the process-to-node assignment, and the link detector. None of
// the three is modified after construction by any consumer (processes clone
// detector sets before mutating), so a single instance may back any number
// of concurrent executions.
type Instance struct {
	Net *dualgraph.Network
	Asg *dualgraph.Assignment
	Det *detector.Detector

	hOnce sync.Once
	h     *graph.Graph
}

// H returns the Section 3 graph H induced by the instance's detector
// (mutual detector membership). Every verification pass consults it, so it
// is memoized with the instance rather than rebuilt per trial. The graph is
// immutable and shared.
func (i *Instance) H() *graph.Graph {
	i.hOnce.Do(func() { i.h = detector.BuildH(i.Net, i.Asg, i.Det) })
	return i.h
}

// instanceStream is the PCG stream id of the construction RNG. It predates
// the cache (the experiment layer always seeded construction with it), so
// cached and from-scratch instances are byte-identical.
const instanceStream = 0x5EED

// BuildInstance constructs an instance from scratch: network generation,
// assignment shuffle, and detector placement all consume one seeded RNG
// stream, in that order.
func BuildInstance(spec InstanceSpec) (*Instance, error) {
	rng := rand.New(rand.NewPCG(spec.Seed, instanceStream))
	net, err := gen.RandomGeometric(gen.GeometricConfig{
		N:            spec.N,
		TargetDegree: spec.TargetDegree,
		GrayProb:     spec.GrayProb,
	}, rng)
	if err != nil {
		return nil, err
	}
	asg := dualgraph.RandomAssignment(spec.N, rng)
	var det *detector.Detector
	if spec.Tau == 0 {
		det = detector.Complete(net, asg)
	} else {
		det = detector.TauComplete(net, asg, spec.Tau, detector.PlaceGrayFirst, rng)
	}
	return &Instance{Net: net, Asg: asg, Det: det}, nil
}

// instanceCacheSize bounds the instance cache. The experiments' parameter
// grid is a few dozen specs, but the simulation service sweeps arbitrarily
// many distinct specs per process, so cold instances are evicted
// least-recently-used beyond this many.
const instanceCacheSize = 256

// instances memoizes BuildInstance per spec, evicting cold entries.
var instances = memo.NewLRU[InstanceSpec, *Instance](instanceCacheSize)

// SharedInstance returns the memoized instance for spec, building it on
// first use. Construction is deterministic in spec, so the cached triple is
// identical to a fresh BuildInstance; concurrent callers (trials fanned out
// by Trials) receive the same pointers via the cache's singleflight build.
func SharedInstance(spec InstanceSpec) (*Instance, error) {
	return instances.Get(spec, func() (*Instance, error) {
		return BuildInstance(spec)
	})
}
