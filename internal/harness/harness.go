// Package harness assembles complete executions: it wires a network,
// process-id assignment, link detectors, an adversary, and per-process
// randomness into a sim.Runner for each of the paper's algorithms, and
// gathers the outcomes into verification-ready form. The public dualradio
// facade, the test suites, and the experiment harness all build on it.
package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/graph"
	"dualradio/internal/sim"
)

// Scenario bundles everything an execution needs besides the algorithm.
type Scenario struct {
	Net *dualgraph.Network
	Asg *dualgraph.Assignment
	Det *detector.Detector
	Adv adversary.Adversary // nil = no unreliable activations
	// Params holds the algorithms' constant factors; zero value means
	// core.DefaultParams.
	Params core.Params
	// Seed derives every process's private randomness stream.
	Seed uint64
	// B is the message-size bound in bits (0 = unbounded for MIS;
	// CCDS algorithms require a positive bound).
	B int
	// MaxRounds caps executions that have no fixed length.
	MaxRounds int
	// StopWhenDecided ends fixed-schedule executions as soon as every
	// process has output 0 or 1 instead of driving the full schedule.
	// Outputs are frozen from that point on (decisions never revert), so
	// experiments that only consume Outputs and DecidedRound — decision
	// latency, validity, density — see identical results at a fraction of
	// the simulated rounds. Stats that keep accumulating over the full
	// schedule (Rounds, Broadcasts, ...) do differ; leave this off when
	// those matter.
	StopWhenDecided bool
	// Workers fans process callbacks out over goroutines when > 1.
	Workers int
	// Leap selects the leap engine (sim.Config.Leap): geometric round
	// sampling and clock jumps over broadcast-free stretches. Executions are
	// statistically equivalent to the exact engine but not bit-identical.
	Leap bool
	// Observer, if non-nil, receives per-round callbacks.
	Observer sim.Observer
	// Shared, if non-nil, is the cached instance backing Net/Asg/Det.
	// Scenario.H consults it so derived immutable state (the graph H) is
	// computed once per instance instead of once per trial.
	Shared *Instance
}

// H returns the Section 3 graph H for the scenario's network, assignment,
// and detector — memoized on the shared instance when one backs this
// scenario unchanged, rebuilt otherwise (e.g. after a test swaps Det).
func (s *Scenario) H() *graph.Graph {
	if s.Shared != nil && s.Shared.Det == s.Det &&
		s.Shared.Net == s.Net && s.Shared.Asg == s.Asg {
		return s.Shared.H()
	}
	return detector.BuildH(s.Net, s.Asg, s.Det)
}

func (s *Scenario) params() core.Params {
	if s.Params == (core.Params{}) {
		return core.DefaultParams()
	}
	return s.Params
}

// RngFor returns the deterministic private randomness stream of the process
// at node v (keyed by its process id, so the stream is stable under
// re-assignment of processes to nodes).
func (s *Scenario) RngFor(v int) *rand.Rand {
	id := uint64(s.Asg.ID(v))
	return rand.New(rand.NewPCG(s.Seed, id*0x9e3779b97f4a7c15+0x1234567))
}

func (s *Scenario) validate() error {
	if s.Net == nil {
		return errors.New("harness: nil network")
	}
	if s.Asg == nil {
		return errors.New("harness: nil assignment")
	}
	if s.Asg.N() != s.Net.N() {
		return fmt.Errorf("harness: assignment covers %d nodes, network has %d", s.Asg.N(), s.Net.N())
	}
	return nil
}

func (s *Scenario) detSet(v int) *detector.Set {
	if s.Det == nil {
		return nil
	}
	return s.Det.Set(v)
}

// Outcome captures an execution's results in node order.
type Outcome struct {
	// Outputs holds each node's output (sim.Undecided, 0, or 1).
	Outputs []int
	// InMIS flags the nodes whose process joined the MIS (or the
	// dominating structure, for the τ algorithm).
	InMIS []bool
	// Rounds is the number of rounds executed.
	Rounds int
	// DecidedRound is the first round by which every process had decided,
	// or -1 if some never did.
	DecidedRound int
	// Stats carries the engine counters.
	Stats sim.Stats
	// Err records a fatal execution error (message-size violation).
	Err error
}

func collect(r *sim.Runner, inMIS func(p sim.Process) bool) *Outcome {
	procs := r.Processes()
	out := &Outcome{
		Outputs: make([]int, len(procs)),
		InMIS:   make([]bool, len(procs)),
	}
	for v, p := range procs {
		out.Outputs[v] = p.Output()
		if inMIS != nil {
			out.InMIS[v] = inMIS(p)
		}
	}
	st := r.Stats()
	out.Rounds = st.Rounds
	out.DecidedRound = st.DecidedRound
	out.Stats = st
	out.Err = r.Err()
	return out
}

func (s *Scenario) run(procs []sim.Process, maxRounds int) (*sim.Runner, error) {
	runner, err := sim.NewRunner(sim.Config{
		Net:         s.Net,
		Adversary:   s.Adv,
		Processes:   procs,
		MessageBits: s.B,
		MaxRounds:   maxRounds,
		Observer:    s.Observer,
		Workers:     s.Workers,
		Leap:        s.Leap,
	})
	if err != nil {
		return nil, err
	}
	if s.StopWhenDecided {
		_, err = runner.RunUntil(runner.AllDecided)
	} else {
		_, err = runner.Run()
	}
	return runner, err
}

// RunMIS executes the Section 4 MIS algorithm with 0-complete-style
// detector filtering.
func (s *Scenario) RunMIS() (*Outcome, error) {
	return s.RunMISFiltered(core.FilterDetector)
}

// RunMISFiltered executes the Section 4 MIS algorithm with an explicit
// reception filter (FilterNone reproduces the classic-model variant).
func (s *Scenario) RunMISFiltered(filter core.FilterMode) (*Outcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := s.Net.N()
	procs := make([]sim.Process, n)
	var total int
	for v := 0; v < n; v++ {
		p, err := core.NewMISProcess(core.MISConfig{
			ID:       s.Asg.ID(v),
			N:        n,
			Detector: s.detSet(v),
			Filter:   filter,
			// Mutual filtering needs the sender's detector set on the
			// wire (the Section 6 labeling rule).
			LabelMessages: filter == core.FilterMutual,
			Params:        s.params(),
			Rng:           s.RngFor(v),
		})
		if err != nil {
			return nil, err
		}
		procs[v] = p
		total = p.Rounds()
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = total + 1
	}
	runner, err := s.run(procs, maxRounds)
	if err != nil {
		return nil, err
	}
	return collect(runner, func(p sim.Process) bool {
		return p.(*core.MISProcess).InMIS()
	}), nil
}

// RunCCDS executes the Section 5 banned-list CCDS algorithm.
func (s *Scenario) RunCCDS() (*Outcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.B <= 0 {
		return nil, errors.New("harness: CCDS requires a positive message bound B")
	}
	n := s.Net.N()
	delta := s.Net.Delta()
	procs := make([]sim.Process, n)
	var total int
	for v := 0; v < n; v++ {
		p, err := core.NewCCDSProcess(core.CCDSConfig{
			ID:       s.Asg.ID(v),
			N:        n,
			Delta:    delta,
			B:        s.B,
			Detector: s.detSet(v),
			Params:   s.params(),
			Rng:      s.RngFor(v),
		})
		if err != nil {
			return nil, err
		}
		procs[v] = p
		total = p.Rounds()
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = total + 1
	}
	runner, err := s.run(procs, maxRounds)
	if err != nil {
		return nil, err
	}
	return collect(runner, func(p sim.Process) bool {
		return p.(*core.CCDSProcess).InMIS()
	}), nil
}

// RunBaselineCCDS executes the naive enumeration CCDS used as the Section 5
// comparison point.
func (s *Scenario) RunBaselineCCDS() (*Outcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.B <= 0 {
		return nil, errors.New("harness: CCDS requires a positive message bound B")
	}
	n := s.Net.N()
	delta := s.Net.Delta()
	procs := make([]sim.Process, n)
	var total int
	for v := 0; v < n; v++ {
		p, err := core.NewBaselineCCDSProcess(core.CCDSConfig{
			ID:       s.Asg.ID(v),
			N:        n,
			Delta:    delta,
			B:        s.B,
			Detector: s.detSet(v),
			Params:   s.params(),
			Rng:      s.RngFor(v),
		})
		if err != nil {
			return nil, err
		}
		procs[v] = p
		total = p.Rounds()
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = total + 1
	}
	runner, err := s.run(procs, maxRounds)
	if err != nil {
		return nil, err
	}
	return collect(runner, func(p sim.Process) bool {
		return p.(*core.BaselineCCDSProcess).InMIS()
	}), nil
}

// RunTauCCDS executes the Section 6 CCDS algorithm for τ-complete detectors.
func (s *Scenario) RunTauCCDS(tau int) (*Outcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.B <= 0 {
		return nil, errors.New("harness: CCDS requires a positive message bound B")
	}
	n := s.Net.N()
	delta := s.Net.Delta()
	procs := make([]sim.Process, n)
	var total int
	for v := 0; v < n; v++ {
		p, err := core.NewTauCCDSProcess(core.CCDSConfig{
			ID:       s.Asg.ID(v),
			N:        n,
			Delta:    delta,
			B:        s.B,
			Detector: s.detSet(v),
			Params:   s.params(),
			Rng:      s.RngFor(v),
		}, tau)
		if err != nil {
			return nil, err
		}
		procs[v] = p
		total = p.Rounds()
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = total + 1
	}
	runner, err := s.run(procs, maxRounds)
	if err != nil {
		return nil, err
	}
	return collect(runner, func(p sim.Process) bool {
		return p.(*core.TauCCDSProcess).Dominator()
	}), nil
}

// RunAsyncMIS executes the Section 9 asynchronous-start MIS variant. wake
// gives each node's wake-up round; filter selects topology knowledge
// (FilterNone for the classic model). The execution stops once every process
// has decided or MaxRounds elapse.
func (s *Scenario) RunAsyncMIS(wake []int, filter core.FilterMode) (*AsyncOutcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := s.Net.N()
	if len(wake) != n {
		return nil, fmt.Errorf("harness: %d wake rounds for %d nodes", len(wake), n)
	}
	procs := make([]sim.Process, n)
	for v := 0; v < n; v++ {
		p, err := core.NewAsyncMISProcess(core.MISConfig{
			ID:       s.Asg.ID(v),
			N:        n,
			Detector: s.detSet(v),
			Filter:   filter,
			Params:   s.params(),
			Rng:      s.RngFor(v),
		}, wake[v])
		if err != nil {
			return nil, err
		}
		procs[v] = p
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	runner, err := sim.NewRunner(sim.Config{
		Net:         s.Net,
		Adversary:   s.Adv,
		Processes:   procs,
		MessageBits: s.B,
		MaxRounds:   maxRounds,
		Observer:    s.Observer,
		Workers:     s.Workers,
		Leap:        s.Leap,
	})
	if err != nil {
		return nil, err
	}
	// The runner tracks decisions incrementally, so the stop condition is
	// O(1) per round instead of an O(n) scan.
	if _, err := runner.RunUntil(runner.AllDecided); err != nil {
		return nil, err
	}
	base := collect(runner, func(p sim.Process) bool {
		return p.(*core.AsyncMISProcess).InMIS()
	})
	out := &AsyncOutcome{Outcome: *base, Latency: make([]int, n)}
	for v, p := range procs {
		out.Latency[v] = p.(*core.AsyncMISProcess).DecisionLatency()
	}
	return out, nil
}

// AsyncOutcome extends Outcome with per-process decision latencies (local
// rounds from wake-up to output), the quantity Theorem 9.4 bounds.
type AsyncOutcome struct {
	Outcome
	Latency []int
}
