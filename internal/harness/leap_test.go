package harness

import (
	"fmt"
	"math"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/verify"
)

// The leap engine is statistically equivalent to the exact engine, not
// bit-identical: a leap trial draws its coins in a different order, so the
// two engines realize different executions of the same random process. The
// suite below locks the equivalence at the level the paper's guarantees
// live: every trial of every protocol must still solve its problem, the
// deterministic schedule lengths must agree exactly, and batch statistics
// (structure size, decision round) must agree within a three-sigma
// two-sample band over a fixed seed set — deterministic, so a regression
// that shifts the leap engine's distribution fails reproducibly.

const leapEquivSeeds = 12

// leapScenario assembles one trial scenario on the shared memoized instance.
func leapScenario(t *testing.T, spec InstanceSpec, seed uint64, leap bool) (*Scenario, *Instance) {
	t.Helper()
	spec.Seed = seed
	inst, err := SharedInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	return &Scenario{
		Net:    inst.Net,
		Asg:    inst.Asg,
		Det:    inst.Det,
		Adv:    adversary.NewCollisionSeeking(inst.Net),
		Params: core.DefaultParams(),
		Seed:   seed,
		Leap:   leap,
		Shared: inst,
	}, inst
}

// equivStats accumulates one engine's batch.
type equivStats struct {
	sizes   []float64
	decided []float64
	rounds  []int
}

func (s *equivStats) push(size, decided, rounds int) {
	s.sizes = append(s.sizes, float64(size))
	s.decided = append(s.decided, float64(decided))
	s.rounds = append(s.rounds, rounds)
}

func meanVar(xs []float64) (float64, float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return mean, sq / float64(len(xs))
}

// checkBand asserts |mean(a)-mean(b)| within the two-sample three-sigma
// band (plus one unit of absolute slack for near-degenerate variances).
func checkBand(t *testing.T, name string, a, b []float64) {
	t.Helper()
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	band := 3*math.Sqrt((va+vb)/float64(len(a))) + 1
	if d := math.Abs(ma - mb); d > band {
		t.Errorf("%s: exact mean %.2f vs leap mean %.2f differ by %.2f > band %.2f",
			name, ma, mb, d, band)
	}
}

func countMembers(inMIS []bool) int {
	c := 0
	for _, in := range inMIS {
		if in {
			c++
		}
	}
	return c
}

// TestLeapEquivalenceMIS: every leap trial solves MIS; schedule length and
// batch statistics match the exact engine.
func TestLeapEquivalenceMIS(t *testing.T) {
	spec := InstanceSpec{N: 64}
	var exact, leap equivStats
	for seed := uint64(1); seed <= leapEquivSeeds; seed++ {
		for _, isLeap := range []bool{false, true} {
			s, _ := leapScenario(t, spec, seed, isLeap)
			out, err := s.RunMIS()
			if err != nil {
				t.Fatalf("seed %d leap=%v: %v", seed, isLeap, err)
			}
			if rep := verify.MIS(s.Net, s.H(), out.Outputs); !rep.OK() {
				t.Fatalf("seed %d leap=%v: invalid MIS: %v", seed, isLeap, rep.Err())
			}
			st := &exact
			if isLeap {
				st = &leap
			}
			st.push(countMembers(out.InMIS), out.DecidedRound, out.Rounds)
		}
	}
	for i := range exact.rounds {
		if exact.rounds[i] != leap.rounds[i] {
			t.Errorf("seed %d: fixed schedule length %d (exact) vs %d (leap)",
				i+1, exact.rounds[i], leap.rounds[i])
		}
	}
	checkBand(t, "mis size", exact.sizes, leap.sizes)
	checkBand(t, "mis decided round", exact.decided, leap.decided)
}

// TestLeapEquivalenceCCDSFamily covers the three enumeration-era CCDS
// variants: every leap trial yields a valid CCDS with the exact schedule
// length, and structure sizes agree in distribution.
func TestLeapEquivalenceCCDSFamily(t *testing.T) {
	const b = 1 << 15
	for _, tc := range []struct {
		name string
		tau  int
		run  func(s *Scenario) (*Outcome, error)
	}{
		{"ccds", 0, func(s *Scenario) (*Outcome, error) { return s.RunCCDS() }},
		{"baseline", 0, func(s *Scenario) (*Outcome, error) { return s.RunBaselineCCDS() }},
		{"tau", 1, func(s *Scenario) (*Outcome, error) { return s.RunTauCCDS(1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := InstanceSpec{N: 48, Tau: tc.tau}
			var exact, leap equivStats
			for seed := uint64(1); seed <= leapEquivSeeds; seed++ {
				for _, isLeap := range []bool{false, true} {
					s, _ := leapScenario(t, spec, seed, isLeap)
					s.B = b
					out, err := tc.run(s)
					if err != nil {
						t.Fatalf("seed %d leap=%v: %v", seed, isLeap, err)
					}
					if rep := verify.CCDS(s.Net, s.H(), out.Outputs, 0); !rep.OK() {
						t.Fatalf("seed %d leap=%v: invalid CCDS: %v", seed, isLeap, rep.Err())
					}
					st := &exact
					if isLeap {
						st = &leap
					}
					st.push(countMembers(out.InMIS), out.DecidedRound, out.Rounds)
				}
			}
			for i := range exact.rounds {
				if exact.rounds[i] != leap.rounds[i] {
					t.Errorf("seed %d: fixed schedule length %d (exact) vs %d (leap)",
						i+1, exact.rounds[i], leap.rounds[i])
				}
			}
			checkBand(t, tc.name+" size", exact.sizes, leap.sizes)
		})
	}
}

// TestLeapEquivalenceAsyncMIS: asynchronous starts in the classic model;
// every leap trial solves MIS over G and decision rounds agree in
// distribution. AsyncMIS runs until all decide, so round counts are
// distributional, not exact.
func TestLeapEquivalenceAsyncMIS(t *testing.T) {
	spec := InstanceSpec{N: 48, GrayProb: -1}
	var exact, leap equivStats
	for seed := uint64(1); seed <= leapEquivSeeds; seed++ {
		for _, isLeap := range []bool{false, true} {
			s, inst := leapScenario(t, spec, seed, isLeap)
			s.Det = nil
			s.Adv = nil
			wake := make([]int, inst.Net.N())
			for v := range wake {
				wake[v] = (v * 37) % 200
			}
			out, err := s.RunAsyncMIS(wake, core.FilterNone)
			if err != nil {
				t.Fatalf("seed %d leap=%v: %v", seed, isLeap, err)
			}
			if rep := verify.MIS(s.Net, s.Net.G(), out.Outputs); !rep.OK() {
				t.Fatalf("seed %d leap=%v: invalid async MIS: %v", seed, isLeap, rep.Err())
			}
			st := &exact
			if isLeap {
				st = &leap
			}
			st.push(countMembers(out.InMIS), out.DecidedRound, out.Rounds)
		}
	}
	checkBand(t, "async size", exact.sizes, leap.sizes)
	checkBand(t, "async decided round", exact.decided, leap.decided)
}

// TestLeapEquivalenceContinuousCCDS: the continuous rerun under a stable
// detector; committed outputs at the checkpoint must solve CCDS for both
// engines and the bounded execution length agrees exactly.
func TestLeapEquivalenceContinuousCCDS(t *testing.T) {
	const b = 1 << 15
	spec := InstanceSpec{N: 48}
	for seed := uint64(1); seed <= 4; seed++ {
		var rounds [2]int
		for ei, isLeap := range []bool{false, true} {
			s, _ := leapScenario(t, spec, seed, isLeap)
			s.B = b
			period, err := core.CCDSRounds(s.Net.N(), s.Net.Delta(), b, s.Params)
			if err != nil {
				t.Fatal(err)
			}
			dyn := detector.NewSchedule(detector.ScheduleStep{Round: 0, Detector: s.Det})
			checkpoint := 2 * period
			out, err := s.RunContinuousCCDS(dyn, 3, []int{checkpoint})
			if err != nil {
				t.Fatalf("seed %d leap=%v: %v", seed, isLeap, err)
			}
			outputs, ok := out.Checkpoints[checkpoint]
			if !ok {
				t.Fatalf("seed %d leap=%v: checkpoint %d not sampled", seed, isLeap, checkpoint)
			}
			if rep := verify.CCDS(s.Net, s.H(), outputs, 0); !rep.OK() {
				t.Fatalf("seed %d leap=%v: invalid committed CCDS: %v", seed, isLeap, rep.Err())
			}
			rounds[ei] = out.Rounds
		}
		if rounds[0] != rounds[1] {
			t.Errorf("seed %d: bounded run length %d (exact) vs %d (leap)", seed, rounds[0], rounds[1])
		}
	}
}

// TestLeapDistinctExecutions guards against the equivalence suite passing
// vacuously: the two engines must actually realize different coin orders,
// so at least one seed must differ somewhere (outputs or decision round).
func TestLeapDistinctExecutions(t *testing.T) {
	spec := InstanceSpec{N: 64}
	for seed := uint64(1); seed <= uint64(leapEquivSeeds); seed++ {
		sE, _ := leapScenario(t, spec, seed, false)
		sL, _ := leapScenario(t, spec, seed, true)
		outE, err := sE.RunMIS()
		if err != nil {
			t.Fatal(err)
		}
		outL, err := sL.RunMIS()
		if err != nil {
			t.Fatal(err)
		}
		if outE.DecidedRound != outL.DecidedRound {
			return
		}
		if fmt.Sprint(outE.Outputs) != fmt.Sprint(outL.Outputs) {
			return
		}
	}
	t.Error("exact and leap realized identical executions on every seed; leap engine likely not engaged")
}
