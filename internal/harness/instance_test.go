package harness

import (
	"testing"
)

// TestSharedInstanceMatchesBuild locks the cache to the from-scratch
// construction: same edges, same assignment, same detector sets.
func TestSharedInstanceMatchesBuild(t *testing.T) {
	spec := InstanceSpec{N: 64, Tau: 1, Seed: 3}
	shared, err := SharedInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Net.N() != fresh.Net.N() || shared.Net.G().M() != fresh.Net.G().M() ||
		shared.Net.GPrime().M() != fresh.Net.GPrime().M() {
		t.Fatalf("cached network differs from fresh build")
	}
	for v := 0; v < spec.N; v++ {
		if shared.Asg.ID(v) != fresh.Asg.ID(v) {
			t.Fatalf("assignment differs at node %d", v)
		}
		a, b := shared.Det.Set(v).IDs(), fresh.Det.Set(v).IDs()
		if len(a) != len(b) {
			t.Fatalf("detector set size differs at node %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("detector set differs at node %d", v)
			}
		}
	}
}

// TestSharedInstancePointerIdentityUnderTrials exercises the singleflight
// contract under the trial scheduler's real concurrency (run with -race):
// every trial that asks for the same spec must receive pointer-identical
// Net/Asg/Det, including the trials racing on the very first build.
func TestSharedInstancePointerIdentityUnderTrials(t *testing.T) {
	spec := InstanceSpec{N: 48, Seed: 99}
	const trials = 64
	got, err := TrialsWorkers(trials, 8, func(trial int) (*Instance, error) {
		return SharedInstance(spec)
	})
	if err != nil {
		t.Fatal(err)
	}
	first := got[0]
	if first == nil {
		t.Fatal("nil instance")
	}
	for i, inst := range got {
		if inst.Net != first.Net || inst.Asg != first.Asg || inst.Det != first.Det {
			t.Fatalf("trial %d received a different instance (Net %p/%p Asg %p/%p Det %p/%p)",
				i, inst.Net, first.Net, inst.Asg, first.Asg, inst.Det, first.Det)
		}
	}
	// Distinct specs must not alias.
	other, err := SharedInstance(InstanceSpec{N: 48, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if other.Net == first.Net {
		t.Fatal("distinct specs share a network")
	}
}
