package harness

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/verify"
)

// FuzzLeapDifferential is the differential harness between the exact and
// leap engines: one fuzz input configures a workload (size, seed, protocol,
// adversary) and both engines run it. The invariants are exactly what the
// leap contract owes — nothing bitwise, everything structural:
//
//   - neither engine panics, and both agree on whether the workload errors;
//   - fixed-schedule protocols run for the identical number of rounds (the
//     schedule length is seed-independent arithmetic, so any divergence is
//     an engine bug, not randomness);
//   - under a jam-free adversary both engines' outputs solve the problem
//     (validity is NOT an invariant under jamming: the adversary is allowed
//     to starve a run, and the two engines realize different executions).
//
// Kept small enough for the CI fuzz-smoke budget: n is clamped to [8, 48]
// and CCDS variants get a generous message bound so schedules stay short.
func FuzzLeapDifferential(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(24), uint64(1))
	f.Add(uint8(1), uint8(1), uint16(32), uint64(7))
	f.Add(uint8(2), uint8(2), uint16(16), uint64(3))
	f.Add(uint8(3), uint8(3), uint16(48), uint64(11))
	f.Add(uint8(4), uint8(0), uint16(8), uint64(5))
	f.Fuzz(func(t *testing.T, algo, advKind uint8, rawN uint16, seed uint64) {
		n := 8 + int(rawN)%41 // [8, 48]
		tau := 0
		if algo%5 == 3 {
			tau = 1
		}
		inst, err := SharedInstance(InstanceSpec{N: n, Tau: tau, Seed: seed})
		if err != nil {
			return // unbuildable instance: nothing to compare
		}
		jamFree := advKind%3 == 0
		buildAdv := func() adversary.Adversary {
			switch advKind % 3 {
			case 0:
				return nil
			case 1:
				return adversary.NewCollisionSeeking(inst.Net)
			default:
				return adversary.NewBursty(inst.Net, 4, 4, rand.New(rand.NewPCG(seed, 0xF122)))
			}
		}
		type result struct {
			outputs []int
			rounds  int
			err     error
		}
		run := func(leap bool) result {
			s := &Scenario{
				Net:    inst.Net,
				Asg:    inst.Asg,
				Det:    inst.Det,
				Adv:    buildAdv(),
				Params: core.DefaultParams(),
				Seed:   seed,
				B:      1 << 15,
				Leap:   leap,
				Shared: inst,
			}
			var out *Outcome
			var err error
			switch algo % 5 {
			case 0:
				out, err = s.RunMIS()
			case 1:
				out, err = s.RunCCDS()
			case 2:
				out, err = s.RunBaselineCCDS()
			case 3:
				out, err = s.RunTauCCDS(tau)
			default:
				out, err = s.RunMISFiltered(core.FilterNone)
			}
			if err != nil {
				return result{err: err}
			}
			return result{outputs: out.Outputs, rounds: out.Rounds}
		}
		exact := run(false)
		leap := run(true)
		if (exact.err == nil) != (leap.err == nil) {
			t.Fatalf("engines disagree on error: exact %v vs leap %v", exact.err, leap.err)
		}
		if exact.err != nil {
			return
		}
		if exact.rounds != leap.rounds {
			t.Fatalf("fixed schedule length diverged: exact %d vs leap %d rounds", exact.rounds, leap.rounds)
		}
		if jamFree {
			s := &Scenario{Net: inst.Net, Asg: inst.Asg, Det: inst.Det, Shared: inst}
			h := s.H()
			for name, r := range map[string][]int{"exact": exact.outputs, "leap": leap.outputs} {
				var rep *verify.Report
				if algo%5 == 0 || algo%5 == 4 {
					rep = verify.MISOver(inst.Net.G(), h, r)
				} else {
					rep = verify.CCDS(inst.Net, h, r, 0)
				}
				if !rep.OK() {
					t.Fatalf("%s engine produced invalid outputs on a jam-free run: %v", name, rep.Err())
				}
			}
		}
	})
}
