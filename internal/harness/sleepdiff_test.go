package harness

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/sim"
)

// plainOnly hides a process's BroadcastSleep method from the engine,
// forcing the call-every-round discipline while preserving the fixed-length
// and passive-receiver contracts.
type plainOnly struct{ inner sim.Process }

func (p plainOnly) Broadcast(r int) sim.Message  { return p.inner.Broadcast(r) }
func (p plainOnly) Receive(r int, m sim.Message) { p.inner.Receive(r, m) }
func (p plainOnly) Output() int                  { return p.inner.Output() }
func (p plainOnly) Done() bool                   { return p.inner.Done() }
func (p plainOnly) Rounds() int                  { return p.inner.(interface{ Rounds() int }).Rounds() }
func (p plainOnly) PassiveReceive()              {}

// bcastLog records each round's broadcaster set.
type bcastLog struct{ rounds [][]int }

func (l *bcastLog) OnRound(round int, broadcasters []int, _ []sim.Delivery) {
	l.rounds = append(l.rounds, append([]int(nil), broadcasters...))
}

// runFleet drives a fleet to completion and returns outputs + the log.
func runFleet(t *testing.T, inst *Instance, procs []sim.Process, b int) ([]int, *bcastLog) {
	t.Helper()
	log := &bcastLog{}
	r, err := sim.NewRunner(sim.Config{
		Net:         inst.Net,
		Adversary:   adversary.NewCollisionSeeking(inst.Net),
		Processes:   procs,
		MessageBits: b,
		Observer:    log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs := make([]int, len(procs))
	for v, p := range procs {
		outs[v] = p.Output()
	}
	return outs, log
}

func procRng(seed uint64, id int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(id)*0x9e3779b97f4a7c15+0x1234567))
}

// TestSleepEquivalenceTauAndBaseline locks the SleepBroadcaster paths of
// the enumeration-based processes to the plain call-every-round discipline:
// identical seeds must yield identical broadcaster sets every round and
// identical outputs, whether or not the engine skips sleeping processes.
func TestSleepEquivalenceTauAndBaseline(t *testing.T) {
	for _, tc := range []struct {
		name string
		tau  int
		make func(cfg core.CCDSConfig) (sim.Process, error)
	}{
		{"baseline", 0, func(cfg core.CCDSConfig) (sim.Process, error) {
			return core.NewBaselineCCDSProcess(cfg)
		}},
		{"tau1", 1, func(cfg core.CCDSConfig) (sim.Process, error) {
			return core.NewTauCCDSProcess(cfg, 1)
		}},
		{"tau2", 2, func(cfg core.CCDSConfig) (sim.Process, error) {
			return core.NewTauCCDSProcess(cfg, 2)
		}},
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				inst, err := BuildInstance(InstanceSpec{N: 64, Tau: tc.tau, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				n := inst.Net.N()
				const b = 1 << 16
				build := func(plain bool) []sim.Process {
					procs := make([]sim.Process, n)
					for v := 0; v < n; v++ {
						p, err := tc.make(core.CCDSConfig{
							ID:       inst.Asg.ID(v),
							N:        n,
							Delta:    inst.Net.Delta(),
							B:        b,
							Detector: inst.Det.Set(v),
							Params:   core.DefaultParams(),
							Rng:      procRng(seed, inst.Asg.ID(v)),
						})
						if err != nil {
							t.Fatal(err)
						}
						if plain {
							procs[v] = plainOnly{inner: p}
						} else {
							procs[v] = p
						}
					}
					return procs
				}
				sleepOuts, sleepLog := runFleet(t, inst, build(false), b)
				plainOuts, plainLog := runFleet(t, inst, build(true), b)
				if len(sleepLog.rounds) != len(plainLog.rounds) {
					t.Fatalf("round counts differ: sleep %d vs plain %d",
						len(sleepLog.rounds), len(plainLog.rounds))
				}
				for r := range plainLog.rounds {
					sr, pr := sleepLog.rounds[r], plainLog.rounds[r]
					if len(sr) != len(pr) {
						t.Fatalf("round %d: broadcasters differ: sleep %v vs plain %v", r, sr, pr)
					}
					for i := range sr {
						if sr[i] != pr[i] {
							t.Fatalf("round %d: broadcasters differ: sleep %v vs plain %v", r, sr, pr)
						}
					}
				}
				for v := range plainOuts {
					if sleepOuts[v] != plainOuts[v] {
						t.Fatalf("node %d: output %d (sleep) vs %d (plain)", v, sleepOuts[v], plainOuts[v])
					}
				}
			})
		}
	}
}
