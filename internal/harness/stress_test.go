package harness_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// TestMISStressManySeeds measures the empirical w.h.p. behavior of the MIS
// under the collision-seeking adversary: every run must satisfy all three
// MIS conditions. Default parameters are calibrated to make this pass.
func TestMISStressManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, n := range []int{64, 128, 256} {
		failures := 0
		runs := 20
		for seed := uint64(0); seed < uint64(runs); seed++ {
			rng := rand.New(rand.NewPCG(seed, 99))
			net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			asg := dualgraph.RandomAssignment(n, rng)
			det := detector.Complete(net, asg)
			s := &harness.Scenario{
				Net: net, Asg: asg, Det: det,
				Adv:  adversary.NewCollisionSeeking(net),
				Seed: seed,
			}
			out, err := s.RunMIS()
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			h := detector.BuildH(net, asg, det)
			if rep := verify.MIS(net, h, out.Outputs); !rep.OK() {
				failures++
				t.Logf("n=%d seed=%d: %v", n, seed, rep.Err())
			}
		}
		if failures > 0 {
			t.Errorf("n=%d: %d/%d runs violated MIS conditions", n, failures, runs)
		}
	}
}

// TestCCDSStressManySeeds does the same for the full CCDS pipeline.
func TestCCDSStressManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, n := range []int{64, 128} {
		failures := 0
		runs := 10
		for seed := uint64(0); seed < uint64(runs); seed++ {
			rng := rand.New(rand.NewPCG(seed, 7))
			net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			asg := dualgraph.RandomAssignment(n, rng)
			det := detector.Complete(net, asg)
			s := &harness.Scenario{
				Net: net, Asg: asg, Det: det,
				Adv:  adversary.NewCollisionSeeking(net),
				Seed: seed,
				B:    512,
			}
			out, err := s.RunCCDS()
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			h := detector.BuildH(net, asg, det)
			if rep := verify.CCDS(net, h, out.Outputs, 0); !rep.OK() {
				failures++
				t.Logf("n=%d seed=%d: %v", n, seed, rep.Err())
			}
		}
		if failures > 0 {
			t.Errorf("n=%d: %d/%d runs violated CCDS conditions", n, failures, runs)
		}
	}
}
