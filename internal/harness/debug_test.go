package harness_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// TestDebugMISViolation reports the join epochs of violating pairs to
// distinguish same-epoch double joins from missed-announcement late joins.
func TestDebugMISViolation(t *testing.T) {
	seed := uint64(1)
	rng := rand.New(rand.NewPCG(seed, 1))
	n := 96
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.RandomAssignment(n, rng)
	det := detector.Complete(net, asg)
	procs := make([]sim.Process, n)
	for v := 0; v < n; v++ {
		id := uint64(asg.ID(v))
		p, err := core.NewMISProcess(core.MISConfig{
			ID:       asg.ID(v),
			N:        n,
			Detector: det.Set(v),
			Filter:   core.FilterDetector,
			Params:   core.DefaultParams(),
			Rng:      rand.New(rand.NewPCG(seed, id*0x9e3779b97f4a7c15+0x1234567)),
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[v] = p
	}
	runner, err := sim.NewRunner(sim.Config{
		Net:       net,
		Adversary: adversary.NewCollisionSeeking(net),
		Processes: procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	net.G().Edges(func(u, v int) {
		pu := procs[u].(*core.MISProcess)
		pv := procs[v].(*core.MISProcess)
		if pu.InMIS() && pv.InMIS() {
			t.Logf("violation: nodes %d (epoch %d) and %d (epoch %d)",
				u, pu.JoinedEpoch(), v, pv.JoinedEpoch())
		}
	})
}
