package harness_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// scenario builds a random geometric network with 0-complete detectors and a
// collision-seeking adversary.
func scenario(t *testing.T, n int, seed uint64) *harness.Scenario {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	asg := dualgraph.RandomAssignment(n, rng)
	det := detector.Complete(net, asg)
	return &harness.Scenario{
		Net:  net,
		Asg:  asg,
		Det:  det,
		Adv:  adversary.NewCollisionSeeking(net),
		Seed: seed,
		B:    512,
	}
}

func TestMISSolvesOnRandomGeometric(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		s := scenario(t, 96, seed)
		out, err := s.RunMIS()
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		h := detector.BuildH(s.Net, s.Asg, s.Det)
		if rep := verify.MIS(s.Net, h, out.Outputs); !rep.OK() {
			t.Errorf("seed %d: %v", seed, rep.Err())
		}
		if out.DecidedRound < 0 {
			t.Errorf("seed %d: not all processes decided within %d rounds", seed, out.Rounds)
		}
	}
}

func TestCCDSSolvesOnRandomGeometric(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		s := scenario(t, 96, seed)
		out, err := s.RunCCDS()
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		h := detector.BuildH(s.Net, s.Asg, s.Det)
		if rep := verify.CCDS(s.Net, h, out.Outputs, 0); !rep.OK() {
			t.Errorf("seed %d: %v", seed, rep.Err())
		}
	}
}

func TestTauCCDSSolvesWithMistakenDetectors(t *testing.T) {
	seed := uint64(7)
	rng := rand.New(rand.NewPCG(seed, 1))
	n := 96
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	asg := dualgraph.RandomAssignment(n, rng)
	det := detector.TauComplete(net, asg, 1, detector.PlaceGrayFirst, rng)
	s := &harness.Scenario{
		Net: net, Asg: asg, Det: det,
		Adv:  adversary.NewCollisionSeeking(net),
		Seed: seed,
		B:    4096, // the Section 6 algorithm labels messages with detector sets
	}
	out, err := s.RunTauCCDS(1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	h := detector.BuildH(net, asg, det)
	if rep := verify.CCDS(net, h, out.Outputs, 0); !rep.OK() {
		t.Errorf("%v", rep.Err())
	}
}

func TestAsyncMISClassicModel(t *testing.T) {
	seed := uint64(11)
	rng := rand.New(rand.NewPCG(seed, 1))
	n := 64
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n, GrayProb: -1}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	asg := dualgraph.IdentityAssignment(n)
	s := &harness.Scenario{
		Net: net, Asg: asg,
		Seed:      seed,
		MaxRounds: 1 << 18,
	}
	wake := make([]int, n)
	for v := range wake {
		wake[v] = rng.IntN(500)
	}
	out, err := s.RunAsyncMIS(wake, core.FilterNone)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// In the classic model H = G.
	if rep := verify.MIS(net, net.G(), out.Outputs); !rep.OK() {
		t.Errorf("%v", rep.Err())
	}
}
