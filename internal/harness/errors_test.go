package harness_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/core"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
)

func smallScenario(t *testing.T) *harness.Scenario {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: 32}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(32)
	return &harness.Scenario{
		Net: net, Asg: asg,
		Det:  detector.Complete(net, asg),
		Seed: 1,
	}
}

func TestScenarioValidation(t *testing.T) {
	s := smallScenario(t)
	bad := *s
	bad.Net = nil
	if _, err := bad.RunMIS(); err == nil {
		t.Error("nil network accepted")
	}
	bad = *s
	bad.Asg = nil
	if _, err := bad.RunMIS(); err == nil {
		t.Error("nil assignment accepted")
	}
	bad = *s
	bad.Asg = dualgraph.IdentityAssignment(10)
	if _, err := bad.RunMIS(); err == nil {
		t.Error("size-mismatched assignment accepted")
	}
}

func TestCCDSRequiresMessageBound(t *testing.T) {
	s := smallScenario(t)
	if _, err := s.RunCCDS(); err == nil {
		t.Error("CCDS without B accepted")
	}
	if _, err := s.RunBaselineCCDS(); err == nil {
		t.Error("baseline without B accepted")
	}
	if _, err := s.RunTauCCDS(1); err == nil {
		t.Error("tau CCDS without B accepted")
	}
	if _, err := s.RunContinuousCCDS(detector.NewStatic(s.Det), 1, nil); err == nil {
		t.Error("continuous without B accepted")
	}
	s.B = 512
	if _, err := s.RunContinuousCCDS(nil, 1, nil); err == nil {
		t.Error("continuous with nil dynamic detector accepted")
	}
}

func TestAsyncWakeLengthValidation(t *testing.T) {
	s := smallScenario(t)
	if _, err := s.RunAsyncMIS(make([]int, 3), core.FilterDetector); err == nil {
		t.Error("wrong wake slice length accepted")
	}
}

// TestRngForDeterministicAndDistinct: process randomness streams are stable
// across calls and distinct across processes.
func TestRngForDeterministicAndDistinct(t *testing.T) {
	s := smallScenario(t)
	a1 := s.RngFor(0).Uint64()
	a2 := s.RngFor(0).Uint64()
	if a1 != a2 {
		t.Error("RngFor is not deterministic")
	}
	b := s.RngFor(1).Uint64()
	if a1 == b {
		t.Error("distinct processes share a stream")
	}
	// Streams key off the process id, not the node index, so they follow
	// the process under re-assignment.
	ids := make([]int, 32)
	for v := range ids {
		ids[v] = 32 - v
	}
	asg, err := dualgraph.NewAssignment(ids)
	if err != nil {
		t.Fatal(err)
	}
	s2 := *s
	s2.Asg = asg
	// Node 31 now hosts process id 1, which node 0 hosted under the
	// identity assignment... under identity, node 0 has id 1.
	if s2.RngFor(31).Uint64() != a1 {
		t.Error("stream did not follow the process id")
	}
}

// TestOutcomeFieldsConsistent: outputs, membership and rounds cohere.
func TestOutcomeFieldsConsistent(t *testing.T) {
	s := smallScenario(t)
	out, err := s.RunMIS()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Outputs) != 32 || len(out.InMIS) != 32 {
		t.Fatalf("outcome sizes: %d/%d", len(out.Outputs), len(out.InMIS))
	}
	for v := range out.Outputs {
		if out.InMIS[v] != (out.Outputs[v] == 1) {
			t.Errorf("node %d: InMIS=%v but output=%d", v, out.InMIS[v], out.Outputs[v])
		}
	}
	if out.DecidedRound > out.Rounds {
		t.Errorf("decided at %d after %d rounds", out.DecidedRound, out.Rounds)
	}
	if out.Err != nil {
		t.Errorf("unexpected execution error: %v", out.Err)
	}
}
