package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
)

// testScenario builds a self-contained seeded scenario, mirroring how the
// experiment layer derives a full trial from one seed.
func testScenario(n int, seed uint64) (*Scenario, error) {
	rng := rand.New(rand.NewPCG(seed, 0x5EED))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: n}, rng)
	if err != nil {
		return nil, err
	}
	asg := dualgraph.RandomAssignment(n, rng)
	return &Scenario{
		Net:  net,
		Asg:  asg,
		Det:  detector.Complete(net, asg),
		Adv:  adversary.NewCollisionSeeking(net),
		Seed: seed,
	}, nil
}

// trialValue is the deterministic per-trial computation used by the tests:
// it derives everything from the trial index, like real experiment trials
// derive everything from their seed.
func trialValue(i int) float64 {
	rng := rand.New(rand.NewPCG(uint64(i+1), 0xBEEF))
	sum := 0.0
	for k := 0; k < 100; k++ {
		sum += rng.Float64()
	}
	return sum
}

// TestTrialsMatchesSequentialAcrossWorkerCounts verifies the scheduler's
// core guarantee: results are returned in trial order and are identical to
// a plain sequential loop for every worker count, including degenerate ones.
func TestTrialsMatchesSequentialAcrossWorkerCounts(t *testing.T) {
	const count = 23
	want := make([]float64, count)
	for i := range want {
		want[i] = trialValue(i)
	}
	for _, workers := range []int{1, 2, 3, count - 1, count, count + 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := TrialsWorkers(count, workers, func(i int) (float64, error) {
				return trialValue(i), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: %v != %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestTrialsFirstErrorInTrialOrder verifies the error reported is the first
// one in trial order, matching the sequential loop, independent of which
// worker hit an error first.
func TestTrialsFirstErrorInTrialOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := TrialsWorkers(10, 4, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 7:
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want the trial-3 error", err)
	}
}

// TestTrialsEdgeCases covers empty and single-trial scheduling.
func TestTrialsEdgeCases(t *testing.T) {
	if out, err := Trials(0, func(int) (int, error) { return 1, nil }); err != nil || out != nil {
		t.Fatalf("zero trials: %v %v", out, err)
	}
	out, err := Trials(1, func(i int) (int, error) { return i + 41, nil })
	if err != nil || len(out) != 1 || out[0] != 41 {
		t.Fatalf("single trial: %v %v", out, err)
	}
}

// TestTrialsRunScenarios runs real simulator scenarios through the
// scheduler and checks bit-identical outcomes against the sequential loop —
// the property the experiment tables rely on.
func TestTrialsRunScenarios(t *testing.T) {
	run := func(seed int) (int, error) {
		s, err := testScenario(96, uint64(seed+1))
		if err != nil {
			return 0, err
		}
		out, err := s.RunMIS()
		if err != nil {
			return 0, err
		}
		return out.DecidedRound, nil
	}
	const count = 4
	want := make([]int, count)
	for i := range want {
		v, err := run(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	got, err := TrialsWorkers(count, 4, run)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trial %d: DecidedRound %d != %d", i, got[i], want[i])
		}
	}
}
