package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Trials runs count independent trials concurrently across GOMAXPROCS
// workers and returns their results in trial order. It is the experiment
// layer's scheduler: each trial derives all of its randomness from its own
// index (per-trial PCG streams), so trials share no state and the results —
// and therefore every table and metric reduced from them in index order —
// are bit-identical to a sequential loop, regardless of worker count or
// interleaving.
//
// On failure Trials returns the first error in trial order — the same error
// the equivalent sequential loop would have surfaced — after letting every
// trial finish, so even the failure mode is schedule-independent.
func Trials[T any](count int, fn func(trial int) (T, error)) ([]T, error) {
	return TrialsWorkers(count, runtime.GOMAXPROCS(0), fn)
}

// TrialsWorkers is Trials with an explicit worker count (minimum 1). The
// result is identical for every worker count; workers only change the
// schedule.
func TrialsWorkers[T any](count, workers int, fn func(trial int) (T, error)) ([]T, error) {
	if count <= 0 {
		return nil, nil
	}
	if workers > count {
		workers = count
	}
	results := make([]T, count)
	errs := make([]error, count)
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= count {
						return
					}
					results[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < count; i++ {
			results[i], errs[i] = fn(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
