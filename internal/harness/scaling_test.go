package harness_test

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/adversary"
	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/harness"
	"dualradio/internal/verify"
)

// TestCCDSDegreeBoundedAcrossN is the defining "constant-bounded" check:
// the maximum number of CCDS members adjacent to any node in G' must not
// grow with n (condition 4 of the Section 3 CCDS definition). Geometry and
// degree are held fixed while n doubles twice; the realized bound may
// fluctuate but must stay within a fixed band rather than scale with n.
func TestCCDSDegreeBoundedAcrossN(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	maxDegAt := func(n int) float64 {
		total := 0.0
		runs := 3
		for seed := uint64(1); seed <= uint64(runs); seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(n)))
			net, err := gen.RandomGeometric(gen.GeometricConfig{
				N:            n,
				TargetDegree: 18, // fixed local density across sizes
			}, rng)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			asg := dualgraph.RandomAssignment(n, rng)
			det := detector.Complete(net, asg)
			s := &harness.Scenario{
				Net: net, Asg: asg, Det: det,
				Adv:  adversary.NewCollisionSeeking(net),
				Seed: seed,
				B:    1024,
			}
			out, err := s.RunCCDS()
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			h := detector.BuildH(net, asg, det)
			if rep := verify.CCDS(net, h, out.Outputs, 0); !rep.OK() {
				t.Fatalf("n=%d seed=%d: %v", n, seed, rep.Err())
			}
			total += float64(verify.MaxCCDSDegree(net, out.Outputs))
		}
		return total / float64(runs)
	}
	small := maxDegAt(80)
	large := maxDegAt(320)
	t.Logf("mean max CCDS degree: n=80 -> %.1f, n=320 -> %.1f", small, large)
	// A 4x larger network must not have a meaningfully larger backbone
	// degree; allow 50% slack for noise.
	if large > 1.5*small {
		t.Errorf("backbone degree grows with n: %.1f -> %.1f", small, large)
	}
}
