package trace_test

import (
	"strings"
	"testing"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
	"dualradio/internal/sim"
	"dualradio/internal/trace"
)

type fakeMsg struct{ from int }

func (m fakeMsg) From() int    { return m.from }
func (m fakeMsg) BitSize() int { return 8 }

func TestRecorderAggregates(t *testing.T) {
	r := trace.NewRecorder(4)
	r.OnRound(0, []int{1, 2}, []sim.Delivery{{To: 0, Msg: fakeMsg{from: 2}}})
	r.OnRound(1, []int{1}, nil)
	if r.Rounds() != 2 {
		t.Errorf("rounds = %d", r.Rounds())
	}
	if r.PerNodeBroadcasts[1] != 2 || r.PerNodeBroadcasts[2] != 1 {
		t.Errorf("broadcast counts = %v", r.PerNodeBroadcasts)
	}
	if r.PerNodeDeliveries[0] != 1 {
		t.Errorf("delivery counts = %v", r.PerNodeDeliveries)
	}
	if len(r.RoundBroadcasts) != 2 || r.RoundBroadcasts[0] != 2 {
		t.Errorf("round series = %v", r.RoundBroadcasts)
	}
	busiest, count := r.BusiestNode()
	if busiest != 1 || count != 2 {
		t.Errorf("busiest = %d (%d)", busiest, count)
	}
	out := r.Summary()
	for _, want := range []string{"rounds observed", "total broadcasts", "busiest node"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderCapsSeries(t *testing.T) {
	r := trace.NewRecorder(2)
	r.MaxRounds = 3
	for i := 0; i < 10; i++ {
		r.OnRound(i, nil, nil)
	}
	if len(r.RoundBroadcasts) != 3 {
		t.Errorf("series length = %d, want capped at 3", len(r.RoundBroadcasts))
	}
	if r.Rounds() != 10 {
		t.Errorf("rounds = %d", r.Rounds())
	}
}

func TestMapMarksOutputs(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	net := dualgraph.New(g, g, []geom.Point{{X: 0}, {X: 1}, {X: 2}}, 2)
	out := trace.Map(net, []int{1, 0, -1}, 20, 5)
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") || !strings.Contains(out, "?") {
		t.Errorf("map missing marks:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Error("map missing legend")
	}
	// Tiny canvas parameters fall back to usable defaults.
	if small := trace.Map(net, []int{1, 0, 0}, 1, 1); len(small) == 0 {
		t.Error("degenerate canvas produced nothing")
	}
}
