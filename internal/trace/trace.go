// Package trace provides execution observability: a sim.Observer that
// aggregates per-round and per-node activity, and an ASCII renderer that
// draws the network embedding with algorithm outputs — handy for eyeballing
// MIS spacing and CCDS backbones from the command line.
package trace

import (
	"fmt"
	"strings"

	"dualradio/internal/dualgraph"
	"dualradio/internal/sim"
)

// Recorder aggregates execution activity. It implements sim.Observer.
type Recorder struct {
	// PerNodeBroadcasts counts transmissions by node.
	PerNodeBroadcasts []int
	// PerNodeDeliveries counts successful receptions by node.
	PerNodeDeliveries []int
	// RoundBroadcasts holds the number of broadcasters per round (capped
	// at MaxRounds entries to bound memory).
	RoundBroadcasts []int
	// MaxRounds caps the per-round series; 0 means 1<<20.
	MaxRounds int

	rounds int
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder for an n-node network.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		PerNodeBroadcasts: make([]int, n),
		PerNodeDeliveries: make([]int, n),
	}
}

// OnRound implements sim.Observer.
func (r *Recorder) OnRound(round int, broadcasters []int, delivered []sim.Delivery) {
	r.rounds++
	cap := r.MaxRounds
	if cap == 0 {
		cap = 1 << 20
	}
	if len(r.RoundBroadcasts) < cap {
		r.RoundBroadcasts = append(r.RoundBroadcasts, len(broadcasters))
	}
	for _, v := range broadcasters {
		if v < len(r.PerNodeBroadcasts) {
			r.PerNodeBroadcasts[v]++
		}
	}
	for _, d := range delivered {
		if d.To < len(r.PerNodeDeliveries) {
			r.PerNodeDeliveries[d.To]++
		}
	}
}

// Rounds returns the number of observed rounds.
func (r *Recorder) Rounds() int { return r.rounds }

// BusiestNode returns the node with the most transmissions and its count.
func (r *Recorder) BusiestNode() (int, int) {
	best, bestCount := -1, -1
	for v, c := range r.PerNodeBroadcasts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	return best, bestCount
}

// Summary renders aggregate statistics as a short report.
func (r *Recorder) Summary() string {
	totalB, totalD := 0, 0
	for _, c := range r.PerNodeBroadcasts {
		totalB += c
	}
	for _, c := range r.PerNodeDeliveries {
		totalD += c
	}
	busiest, count := r.BusiestNode()
	var sb strings.Builder
	fmt.Fprintf(&sb, "rounds observed:    %d\n", r.rounds)
	fmt.Fprintf(&sb, "total broadcasts:   %d (%.2f per round)\n",
		totalB, safeDiv(totalB, r.rounds))
	fmt.Fprintf(&sb, "total deliveries:   %d (%.1f%% of broadcasts)\n",
		totalD, 100*safeDiv(totalD, totalB))
	fmt.Fprintf(&sb, "busiest node:       %d with %d transmissions\n", busiest, count)
	return sb.String()
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Map renders the network embedding as ASCII art, marking each node by its
// output: '#' for members (output 1), '.' for covered nodes, '?' for
// undecided. width and height bound the canvas in characters.
func Map(net *dualgraph.Network, outputs []int, width, height int) string {
	if width < 8 {
		width = 60
	}
	if height < 4 {
		height = 24
	}
	coords := net.Coords()
	minX, minY := coords[0].X, coords[0].Y
	maxX, maxY := minX, minY
	for _, p := range coords {
		minX, maxX = minF(minX, p.X), maxF(maxX, p.X)
		minY, maxY = minF(minY, p.Y), maxF(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for v, p := range coords {
		x := int(float64(width-1) * (p.X - minX) / spanX)
		y := int(float64(height-1) * (p.Y - minY) / spanY)
		mark := byte('?')
		if v < len(outputs) {
			switch outputs[v] {
			case 1:
				mark = '#'
			case 0:
				mark = '.'
			}
		}
		// Members overwrite covered marks when cells collide.
		if grid[y][x] == ' ' || mark == '#' {
			grid[y][x] = mark
		}
	}
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	sb.WriteString("legend: '#' member (output 1), '.' covered (output 0), '?' undecided\n")
	return sb.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
