package core

import "dualradio/internal/memo"

// Shared protocol tables.
//
// Every process of a fleet derives the same fixed round layout and phase
// probability table from (n, Params) — and, for the CCDS algorithms, from
// (n, Δ, b, Params). The schedules are immutable once built, so instead of
// recomputing them n times per fleet (n probability tables, n chunk-layout
// derivations), the constructors below memoize one canonical copy per
// parameter set and every process holds a pointer to it. The experiments'
// parameter grids are tens of entries, but the simulation service sweeps
// arbitrarily many distinct specs per process, so each cache is bounded:
// cold schedules are evicted least-recently-used beyond tableCacheSize and
// rebuilt on demand.

// tableCacheSize bounds each schedule cache.
const tableCacheSize = 256

type misKey struct {
	n int
	p Params
}

var misSchedules = memo.NewLRU[misKey, *misSchedule](tableCacheSize)

// misScheduleFor returns the shared immutable MIS schedule for (n, p).
func misScheduleFor(n int, p Params) *misSchedule {
	s, _ := misSchedules.Get(misKey{n, p}, func() (*misSchedule, error) {
		sched := newMISSchedule(n, p)
		return &sched, nil
	})
	return s
}

type ccdsKey struct {
	n, delta, b int
	p           Params
}

var ccdsSchedules = memo.NewLRU[ccdsKey, *ccdsSchedule](tableCacheSize)

// ccdsScheduleFor returns the shared immutable Section 5 CCDS schedule for
// (n, Δ, b, p). Construction errors (a b too small to carry an id) are
// memoized alongside values: they are deterministic in the key.
func ccdsScheduleFor(n, delta, b int, p Params) (*ccdsSchedule, error) {
	return ccdsSchedules.Get(ccdsKey{n, delta, b, p}, func() (*ccdsSchedule, error) {
		sched, err := newCCDSSchedule(n, delta, b, p)
		if err != nil {
			return nil, err
		}
		return &sched, nil
	})
}

var enumSchedules = memo.NewLRU[ccdsKey, *enumSchedule](tableCacheSize)

// enumScheduleFor returns the shared immutable enumeration-connect schedule
// for (n, Δ, b, p).
func enumScheduleFor(n, delta, b int, p Params) (*enumSchedule, error) {
	return enumSchedules.Get(ccdsKey{n, delta, b, p}, func() (*enumSchedule, error) {
		sched, err := newEnumSchedule(n, delta, b, p)
		if err != nil {
			return nil, err
		}
		return &sched, nil
	})
}
