package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
)

func TestContinuousConfigValidation(t *testing.T) {
	cfg := ContinuousConfig{
		ID: 1, N: 8, Delta: 3, B: 512,
		Params: DefaultParams(),
		Rng:    rand.New(rand.NewPCG(1, 1)),
	}
	if _, err := NewContinuousCCDSProcess(cfg); err == nil {
		t.Error("nil detector view accepted")
	}
	cfg.DetectorAt = func(int) *detector.Set { return detector.NewSet(8) }
	cfg.B = 4
	if _, err := NewContinuousCCDSProcess(cfg); err == nil {
		t.Error("tiny b accepted")
	}
}

// TestContinuousCommitsAtPeriodBoundary: the committed output only changes
// at multiples of δ_CDS, and reflects the previous period's result.
func TestContinuousCommitsAtPeriodBoundary(t *testing.T) {
	n := 8
	views := 0
	cfg := ContinuousConfig{
		ID: 1, N: n, Delta: 3, B: 512,
		DetectorAt: func(int) *detector.Set {
			views++
			return detector.NewSet(n)
		},
		Params: DefaultParams(),
		Rng:    rand.New(rand.NewPCG(2, 2)),
	}
	p, err := NewContinuousCCDSProcess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	period := p.Period()
	// Before the first period completes the output is undecided.
	for r := 0; r < period; r++ {
		p.Broadcast(r)
		p.Receive(r, nil)
		if p.Output() != -1 {
			t.Fatalf("output committed mid-period at round %d", r)
		}
	}
	// The boundary commit happens on the first Broadcast of the next
	// period. A lone process always ends in its own CCDS.
	p.Broadcast(period)
	if p.Output() != 1 {
		t.Errorf("committed output = %d, want 1 for a lone process", p.Output())
	}
	if views != 2 {
		t.Errorf("detector consulted %d times, want once per period start", views)
	}
	if p.Done() {
		t.Error("continuous process must never report done")
	}
}

// TestContinuousTracksDetectorChanges: when the detector view changes
// between periods, the new period's inner run uses the new view.
func TestContinuousTracksDetectorChanges(t *testing.T) {
	n := 8
	var served []*detector.Set
	cfg := ContinuousConfig{
		ID: 1, N: n, Delta: 3, B: 512,
		DetectorAt: func(round int) *detector.Set {
			s := detector.NewSet(n)
			if round > 0 {
				s.Add(2)
			}
			served = append(served, s)
			return s
		},
		Params: DefaultParams(),
		Rng:    rand.New(rand.NewPCG(3, 3)),
	}
	p, err := NewContinuousCCDSProcess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= p.Period(); r++ {
		p.Broadcast(r)
		p.Receive(r, nil)
	}
	if len(served) != 2 {
		t.Fatalf("served %d views", len(served))
	}
	if served[0].Contains(2) || !served[1].Contains(2) {
		t.Error("detector views not taken at period starts")
	}
}
