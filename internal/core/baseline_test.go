package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

// TestBaselineSolvesOnLine: the naive enumeration CCDS produces a connected
// dominating structure on a path.
func TestBaselineSolvesOnLine(t *testing.T) {
	net, err := gen.Line(14)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(net.N())
	det := detector.Complete(net, asg)
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		p, err := NewBaselineCCDSProcess(CCDSConfig{
			ID: asg.ID(v), N: net.N(), Delta: net.Delta(), B: 1 << 12,
			Detector: det.Set(v), Params: DefaultParams(),
			Rng: rand.New(rand.NewPCG(4, uint64(v+1))),
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[v] = p
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	member := make([]bool, net.N())
	for v, p := range procs {
		if p.Output() == sim.Undecided {
			t.Errorf("node %d undecided", v)
		}
		member[v] = p.Output() == 1
	}
	if !net.G().ConnectedSubset(member) {
		t.Error("baseline CCDS disconnected")
	}
	for v := range member {
		if member[v] {
			continue
		}
		dominated := false
		for _, w := range net.G().Neighbors(v) {
			if member[w] {
				dominated = true
			}
		}
		if !dominated {
			t.Errorf("node %d undominated", v)
		}
	}
}

// TestBaselineScheduleDominatedByDelta: the baseline's schedule grows with Δ
// while the banned-list algorithm's stays flat at large b — the quantitative
// design claim of Section 5.
func TestBaselineScheduleDominatedByDelta(t *testing.T) {
	p := DefaultParams()
	const n, b = 2048, 1 << 14
	prevBase := 0
	for _, delta := range []int{64, 256, 1024} {
		banned, err := CCDSRounds(n, delta, b, p)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := BaselineCCDSRounds(n, delta, b, p)
		if err != nil {
			t.Fatal(err)
		}
		if naive <= prevBase {
			t.Errorf("baseline schedule not growing with Δ at %d", delta)
		}
		prevBase = naive
		if delta >= 1024 && naive <= banned {
			t.Errorf("at Δ=%d the baseline (%d) should exceed banned-list (%d)",
				delta, naive, banned)
		}
	}
}
